"""Unit tests for the deterministic fault-injection layer."""

import pytest

from repro.faults import (
    FaultPolicy,
    FaultyFileSystem,
    InjectedCrash,
    TornWriteError,
    parse_fault_profile,
)
from repro.storage import TransientFsError


class TestFaultPolicy:
    def test_quiet_policy_injects_nothing(self):
        policy = FaultPolicy()
        for i in range(200):
            policy.on_read(f"/warehouse/maxson_cache/t/{i}")
            policy.on_write(f"/warehouse/maxson_cache/t/{i}")
            assert policy.corrupt("/warehouse/maxson_cache/x", b"abc") == b"abc"
            assert policy.torn_length("/warehouse/maxson_cache/x", 100) is None
        assert policy.counters.to_dict() == {
            "read_errors": 0,
            "write_errors": 0,
            "corruptions": 0,
            "torn_appends": 0,
            "crashes": 0,
            "latency_spikes": 0,
        }

    def test_same_seed_same_decisions(self):
        def run(seed):
            policy = FaultPolicy(seed=seed, read_error_rate=0.3)
            outcomes = []
            for i in range(100):
                try:
                    policy.on_read(f"/data/{i}")
                    outcomes.append(False)
                except TransientFsError:
                    outcomes.append(True)
            return outcomes

        assert run(7) == run(7)
        assert run(7) != run(8)
        assert any(run(7))  # the rate actually fires

    def test_error_prefix_scopes_injection(self):
        policy = FaultPolicy(
            read_error_rate=1.0, error_path_prefix="/warehouse/maxson_cache"
        )
        policy.on_read("/warehouse/raw/t/part-0")  # out of scope: silent
        with pytest.raises(TransientFsError):
            policy.on_read("/warehouse/maxson_cache/t/part-0")
        assert policy.counters.read_errors == 1

    def test_corrupt_flips_exactly_one_byte(self):
        policy = FaultPolicy(corrupt_rate=1.0, corrupt_path_prefix="/c")
        original = bytes(range(64))
        mutated = policy.corrupt("/c/file", original)
        assert mutated != original
        assert len(mutated) == len(original)
        diffs = [i for i in range(64) if mutated[i] != original[i]]
        assert len(diffs) == 1
        assert mutated[diffs[0]] == original[diffs[0]] ^ 0xFF
        # out-of-prefix reads are untouched even at rate 1.0
        assert policy.corrupt("/raw/file", original) == original

    def test_crash_fires_once_on_nth_write(self):
        policy = FaultPolicy(crash_after_writes=3, crash_path_prefix="/c")
        policy.on_write("/c/a")
        policy.on_write("/raw/ignored")  # wrong prefix: not counted
        policy.on_write("/c/b")
        with pytest.raises(InjectedCrash):
            policy.on_write("/c/c")
        # disarmed after firing
        policy.on_write("/c/d")
        assert policy.counters.crashes == 1

    def test_torn_length_is_proper_prefix(self):
        policy = FaultPolicy(torn_append_rate=1.0, error_path_prefix="/")
        torn = policy.torn_length("/x", 50)
        assert torn is not None and 0 <= torn < 50
        assert policy.torn_length("/x", 0) is None

    def test_latency_spike_fires_at_rate_and_is_counted(self):
        import time

        policy = FaultPolicy(
            seed=3, latency_spike_rate=0.5, latency_spike_seconds=0.001
        )
        started = time.perf_counter()
        for i in range(100):
            policy.on_read(f"/data/{i}")
        elapsed = time.perf_counter() - started
        spikes = policy.counters.latency_spikes
        assert 20 <= spikes <= 80  # ~50 of 100 reads, seeded
        assert elapsed >= spikes * 0.001

    def test_latency_spike_scoped_to_error_prefix(self):
        policy = FaultPolicy(
            latency_spike_rate=1.0,
            latency_spike_seconds=0.0001,
            error_path_prefix="/slow",
        )
        for i in range(20):
            policy.on_read(f"/fast/{i}")
        assert policy.counters.latency_spikes == 0
        policy.on_read("/slow/x")
        assert policy.counters.latency_spikes == 1


class TestParseFaultProfile:
    def test_full_spec(self):
        policy = parse_fault_profile(
            "seed=9,read_error=0.1,write_error=0.2,corrupt=0.3,"
            "torn_append=0.4,latency=0.01,spike_rate=0.25,"
            "spike_seconds=0.05,error_prefix=/a,"
            "corrupt_prefix=/b,crash_after=5,crash_prefix=/c"
        )
        assert policy.seed == 9
        assert policy.latency_spike_rate == 0.25
        assert policy.latency_spike_seconds == 0.05
        assert policy.read_error_rate == 0.1
        assert policy.write_error_rate == 0.2
        assert policy.corrupt_rate == 0.3
        assert policy.torn_append_rate == 0.4
        assert policy.read_latency_seconds == 0.01
        assert policy.error_path_prefix == "/a"
        assert policy.corrupt_path_prefix == "/b"
        assert policy.crash_after_writes == 5
        assert policy.crash_path_prefix == "/c"

    def test_empty_spec_is_quiet(self):
        policy = parse_fault_profile("")
        assert policy.read_error_rate == 0.0
        assert policy.corrupt_rate == 0.0

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-profile key"):
            parse_fault_profile("explode=1.0")

    def test_bad_value_rejected(self):
        with pytest.raises(ValueError, match="bad value"):
            parse_fault_profile("corrupt=lots")


class TestFaultyFileSystem:
    def test_behaves_like_block_fs_when_quiet(self):
        fs = FaultyFileSystem()
        fs.create("/d/f", b"hello ")
        fs.append("/d/f", b"world")
        assert fs.read("/d/f") == b"hello world"

    def test_read_error_injection(self):
        fs = FaultyFileSystem()
        fs.create("/d/f", b"payload")
        fs.policy = FaultPolicy(read_error_rate=1.0)
        with pytest.raises(TransientFsError):
            fs.read("/d/f")

    def test_torn_append_lands_prefix(self):
        fs = FaultyFileSystem()
        fs.create("/d/f", b"")
        fs.policy = FaultPolicy(torn_append_rate=1.0, seed=1)
        with pytest.raises(TornWriteError):
            fs.append("/d/f", b"0123456789")
        landed = fs.read("/d/f")
        assert len(landed) < 10
        assert b"0123456789".startswith(landed)

    def test_corruption_on_read_leaves_disk_intact(self):
        fs = FaultyFileSystem()
        fs.create("/warehouse/maxson_cache/t/f", b"A" * 100)
        fs.policy = FaultPolicy(corrupt_rate=1.0)
        corrupted = fs.read("/warehouse/maxson_cache/t/f")
        assert corrupted != b"A" * 100
        fs.policy = FaultPolicy()
        assert fs.read("/warehouse/maxson_cache/t/f") == b"A" * 100

    def test_torn_write_error_is_transient(self):
        # the server's retry loop keys on TransientFsError
        assert issubclass(TornWriteError, TransientFsError)
