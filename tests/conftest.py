"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.engine import Session
from repro.jsonlib import dumps
from repro.storage import BlockFileSystem, DataType, Schema


@pytest.fixture
def fs() -> BlockFileSystem:
    return BlockFileSystem()


@pytest.fixture
def session() -> Session:
    return Session(fs=BlockFileSystem())


@pytest.fixture
def sales_session(session: Session) -> Session:
    """A session with the paper's Fig 1 sale-logs table loaded.

    Table ``mydb.T``: (mall_id, date, sale_logs-json), 5 daily partitions
    of 40 rows each, deterministic values.
    """
    schema = Schema.of(
        ("mall_id", DataType.STRING),
        ("date", DataType.STRING),
        ("sale_logs", DataType.STRING),
    )
    session.catalog.create_table("mydb", "T", schema)
    for day in range(1, 6):
        rows = []
        for i in range(40):
            index = (day - 1) * 40 + i
            log = {
                "item_id": index % 17,
                "item_name": f"item{index % 17}",
                "sale_count": (index * 3) % 100,
                "turnover": (index * 7) % 1000,
                "price": (index % 50) + 1,
            }
            rows.append(("0001", f"2019010{day}", dumps(log)))
        session.catalog.append_rows("mydb", "T", rows, row_group_size=10)
    return session
