"""Deadline-aware shedding + priority admission, and their isolation
from the retry/breaker machinery (admission rejections are not faults)."""

import threading
import time

import pytest

from repro.server import (
    AdmissionController,
    AdmissionTimeout,
    QueryShedError,
    QueueFullError,
)


class TestDeadlineShed:
    def test_past_deadline_shed_immediately(self):
        controller = AdmissionController(per_tenant_limit=1, queue_capacity=4)
        with pytest.raises(QueryShedError):
            controller.acquire("a", deadline=time.monotonic() - 0.001)
        assert controller.snapshot()["shed_deadline"] == 1
        assert controller.active == 0

    def test_shed_when_estimate_exceeds_remaining_budget(self):
        controller = AdmissionController(per_tenant_limit=1, queue_capacity=4)
        with pytest.raises(QueryShedError) as info:
            controller.acquire(
                "a",
                deadline=time.monotonic() + 0.05,
                service_estimate=10.0,
            )
        # Retry-after hint tells the client when another attempt could fit.
        assert info.value.retry_after_seconds >= 10.0

    def test_feasible_deadline_admits(self):
        controller = AdmissionController(per_tenant_limit=1, queue_capacity=4)
        controller.acquire(
            "a", deadline=time.monotonic() + 30.0, service_estimate=0.01
        )
        assert controller.active == 1
        controller.release("a")

    def test_deadline_reached_while_queued_sheds_not_times_out(self):
        controller = AdmissionController(
            per_tenant_limit=1, queue_capacity=4, timeout_seconds=30.0
        )
        controller.acquire("a")  # occupy the only slot
        with pytest.raises(QueryShedError):
            controller.acquire("a", deadline=time.monotonic() + 0.02)
        snapshot = controller.snapshot()
        assert snapshot["shed_deadline"] == 1
        assert snapshot["timed_out"] == 0
        controller.release("a")

    def test_retry_after_is_never_negative(self):
        err = QueryShedError("late", retry_after_seconds=-5.0)
        assert err.retry_after_seconds == 0.0


class TestPriorityAdmission:
    def test_priority_waiter_admitted_before_earlier_cold_waiter(self):
        controller = AdmissionController(
            per_tenant_limit=1, queue_capacity=8, timeout_seconds=5.0
        )
        controller.acquire("a")  # occupy the slot
        order: list[str] = []
        order_lock = threading.Lock()

        def waiter(name: str, priority: int):
            controller.acquire("a", priority=priority)
            with order_lock:
                order.append(name)
            time.sleep(0.01)
            controller.release("a")

        cold = threading.Thread(target=waiter, args=("cold", 0))
        cold.start()
        while controller.waiting < 1:
            time.sleep(0.001)
        hot = threading.Thread(target=waiter, args=("hot", 1))
        hot.start()
        while controller.waiting < 2:
            time.sleep(0.001)
        controller.release("a")
        cold.join(timeout=5)
        hot.join(timeout=5)
        assert order == ["hot", "cold"]
        assert controller.snapshot()["priority_admitted"] == 1

    def test_fifo_within_equal_priority(self):
        controller = AdmissionController(
            per_tenant_limit=1, queue_capacity=8, timeout_seconds=5.0
        )
        controller.acquire("a")
        order: list[int] = []
        order_lock = threading.Lock()

        def waiter(rank: int):
            controller.acquire("a")
            with order_lock:
                order.append(rank)
            time.sleep(0.005)
            controller.release("a")

        threads = []
        for rank in range(3):
            t = threading.Thread(target=waiter, args=(rank,))
            t.start()
            while controller.waiting < rank + 1:
                time.sleep(0.001)
            threads.append(t)
        controller.release("a")
        for t in threads:
            t.join(timeout=5)
        assert order == [0, 1, 2]

    def test_fast_path_preserved_when_no_waiters(self):
        controller = AdmissionController(per_tenant_limit=2, queue_capacity=4)
        controller.acquire("a", priority=0)
        controller.acquire("a", priority=1)
        snapshot = controller.snapshot()
        assert snapshot["admitted"] == 2
        assert snapshot["priority_admitted"] == 1
        controller.release("a")
        controller.release("a")


class TestRejectionIsolation:
    """Satellite: shed/timeout are overload signals — never retried,
    never counted against the cache-table circuit breaker."""

    def test_admission_errors_not_retried_by_server_policy(self):
        from repro.core.resilience import RetryPolicy

        policy = RetryPolicy(max_retries=8)
        for exc in (
            QueueFullError("full"),
            AdmissionTimeout("slow"),
            QueryShedError("late"),
        ):
            assert not policy.should_retry(exc, attempt=0)

    def test_sheds_leave_breaker_and_retry_counters_untouched(self):
        from repro.core import MaxsonConfig, MaxsonSystem, PredictorConfig
        from repro.engine import Session
        from repro.jsonlib import dumps
        from repro.server import MaxsonServer, ServerConfig
        from repro.storage import BlockFileSystem, DataType, Schema

        session = Session(fs=BlockFileSystem())
        schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
        session.catalog.create_table("db", "t", schema)
        session.catalog.append_rows(
            "db",
            "t",
            [(i, dumps({"a": i})) for i in range(20)],
            row_group_size=10,
        )
        system = MaxsonSystem(
            session=session,
            config=MaxsonConfig(predictor=PredictorConfig(model="oracle")),
        )
        sql = "select get_json_object(payload, '$.a') as a from db.t"
        with MaxsonServer(system, ServerConfig(max_workers=2)) as server:
            for _ in range(5):
                with pytest.raises(QueryShedError):
                    server.execute(sql, deadline_ms=0.0)
            status = server.status()
            assert status.queries_shed == 5
            assert status.shed_breakdown == {"deadline": 5}
            assert status.query_retries == 0
            assert server.system.breaker.snapshot() == {
                "quarantined": [],
                "half_open": [],
            }
            # The service stays fully functional for unbounded queries.
            assert server.execute(sql).rows
