"""Unit tests for the virtual clock and maintenance scheduler."""

import pytest

from repro.server import MaintenanceScheduler, VirtualClock


class FakeServer:
    def __init__(self):
        self.cycles = []
        self.refreshed = 0

    def run_midnight_cycle(self, day, history_days):
        self.cycles.append((day, history_days))
        return f"report-day-{day}"

    def refresh_cache(self):
        self.refreshed += 1


class TestVirtualClock:
    def test_days_partition_seconds(self):
        clock = VirtualClock(seconds_per_day=10.0)
        assert clock.day == 0
        clock.advance(25.0)
        assert clock.day == 2
        assert clock.seconds == 25.0

    def test_never_backwards(self):
        clock = VirtualClock(seconds_per_day=10.0)
        clock.advance_to(30.0)
        clock.advance_to(5.0)
        assert clock.seconds == 30.0
        with pytest.raises(ValueError):
            clock.advance(-1.0)

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            VirtualClock(seconds_per_day=0)


class TestScheduler:
    def test_no_cycle_within_a_day(self):
        server = FakeServer()
        sched = MaintenanceScheduler(server, clock=VirtualClock(10.0))
        assert sched.advance_to(9.9) == []
        assert server.cycles == []

    def test_one_cycle_per_crossed_boundary(self):
        server = FakeServer()
        sched = MaintenanceScheduler(
            server, clock=VirtualClock(10.0), history_days=5
        )
        actions = sched.advance_to(35.0)  # crosses days 1, 2, 3
        assert actions == ["midnight:1", "midnight:2", "midnight:3"]
        assert server.cycles == [(1, 5), (2, 5), (3, 5)]
        assert sched.reports == ["report-day-1", "report-day-2", "report-day-3"]
        # advancing again within day 3 fires nothing more
        assert sched.advance_to(36.0) == []

    def test_advance_days_convenience(self):
        server = FakeServer()
        sched = MaintenanceScheduler(server, clock=VirtualClock(10.0))
        assert sched.advance_days(2) == ["midnight:1", "midnight:2"]

    def test_refresh_interval(self):
        server = FakeServer()
        sched = MaintenanceScheduler(
            server, clock=VirtualClock(100.0), refresh_interval_seconds=10.0
        )
        assert "refresh" in sched.advance_to(10.0)
        assert server.refreshed == 1
        sched.advance_to(15.0)  # only 5s since last refresh
        assert server.refreshed == 1
        sched.advance_to(20.0)
        assert server.refreshed == 2

    def test_snapshot(self):
        server = FakeServer()
        sched = MaintenanceScheduler(server, clock=VirtualClock(10.0))
        sched.advance_days(1)
        snap = sched.snapshot()
        assert snap["midnight_cycles"] == 1
        assert snap["virtual_day"] == 1
