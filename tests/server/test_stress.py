"""Concurrency stress: mixed traffic across live cache-generation swaps.

The scenario the server subsystem exists for: ≥8 client threads issue a
mix of cached (hot) and uncached (cold) queries while the maintenance
path rebuilds and atomically swaps the cache generation twice, mid
traffic. The test then asserts the three properties the design doc
promises:

* **no torn reads** — every concurrent result is row-identical to the
  serial reference, and every hot query planned against *some complete*
  generation (zero raw parses, nonzero cache hits; an empty or
  half-swapped registry would force a raw parse);
* **no lost collector counts** — per-path counts on the stress day equal
  exactly what the threads issued, and concurrent ``ingest`` events all
  land;
* **result equivalence with serial execution** is byte-for-byte on rows.
"""

import threading

from repro.core import MaxsonConfig, MaxsonSystem, PredictorConfig
from repro.engine import Session
from repro.jsonlib import dumps
from repro.server import MaxsonServer, ServerConfig
from repro.storage import BlockFileSystem, DataType, Schema
from repro.workload import PathKey

HOT_SQL = "select get_json_object(payload, '$.hot') as h from db.t"
COLD_SQL = "select get_json_object(payload, '$.cold') as c from db.t"
HOT_KEY = PathKey("db", "t", "payload", "$.hot")
COLD_KEY = PathKey("db", "t", "payload", "$.cold")
INGEST_KEY = PathKey("db", "t", "payload", "$.synthetic")

N_THREADS = 10
QUERIES_PER_THREAD = 8
INGEST_EVENTS = 200
STRESS_DAY = 10  # outside every cycle's history/target window


def build_system() -> MaxsonSystem:
    session = Session(fs=BlockFileSystem())
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("db", "t", schema)
    rows = [
        (i, dumps({"hot": i % 7, "cold": f"c{i}", "big": "x" * 60}))
        for i in range(120)
    ]
    session.catalog.append_rows("db", "t", rows, row_group_size=20)
    return MaxsonSystem(
        session=session,
        config=MaxsonConfig(predictor=PredictorConfig(model="oracle")),
    )


def test_stress_across_generation_swaps():
    system = build_system()
    # Warm-up stats (day 0) and oracle ground truth for the three cycle
    # target days: $.hot is an MPJP every day, so generations 1..3 all
    # cache it and a hot query must hit whichever generation it leases.
    system.sql(HOT_SQL, day=0)
    system.sql(HOT_SQL, day=0)
    system.sql(COLD_SQL, day=0)
    for day in (1, 2, 3):
        system.collector.record_query(day, (HOT_KEY, HOT_KEY))

    serial_hot = system.baseline_sql(HOT_SQL).rows
    serial_cold = system.baseline_sql(COLD_SQL).rows
    issued_before = {
        HOT_KEY: system.collector.count(HOT_KEY, STRESS_DAY),
        COLD_KEY: system.collector.count(COLD_KEY, STRESS_DAY),
    }
    assert issued_before == {HOT_KEY: 0, COLD_KEY: 0}

    server = MaxsonServer(
        system,
        ServerConfig(
            max_workers=N_THREADS,
            per_tenant_limit=4,
            queue_capacity=256,
            admission_timeout_seconds=120.0,
        ),
    )
    # Generation 1 is live before traffic starts, so every hot query in
    # the stress phase should be served from cache.
    server.run_midnight_cycle(day=1)
    assert system.generation == 1

    failures: list[str] = []
    failures_lock = threading.Lock()
    start = threading.Barrier(N_THREADS + 2)
    hot_issued = [0] * N_THREADS
    cold_issued = [0] * N_THREADS

    def fail(message: str) -> None:
        with failures_lock:
            failures.append(message)

    def client(idx: int) -> None:
        start.wait()
        for i in range(QUERIES_PER_THREAD):
            hot = (idx + i) % 2 == 0
            sql = HOT_SQL if hot else COLD_SQL
            try:
                result = server.execute(
                    sql, tenant=f"tenant-{idx % 4}", day=STRESS_DAY
                )
            except Exception as exc:  # admission errors count as failures
                fail(f"client {idx} query {i}: {exc!r}")
                continue
            if hot:
                hot_issued[idx] += 1
                if result.rows != serial_hot:
                    fail(f"client {idx} query {i}: torn hot rows")
                if result.metrics.parse_documents != 0:
                    fail(
                        f"client {idx} query {i}: hot query parsed raw JSON "
                        "(saw an empty/partial registry mid-swap)"
                    )
                if result.metrics.cache_hits <= 0:
                    fail(f"client {idx} query {i}: hot query missed cache")
            else:
                cold_issued[idx] += 1
                if result.rows != serial_cold:
                    fail(f"client {idx} query {i}: torn cold rows")

    def ingester() -> None:
        start.wait()
        for _ in range(INGEST_EVENTS):
            server.ingest(STRESS_DAY + 1, (INGEST_KEY,))

    threads = [
        threading.Thread(target=client, args=(idx,), name=f"client-{idx}")
        for idx in range(N_THREADS)
    ]
    threads.append(threading.Thread(target=ingester, name="ingester"))
    for t in threads:
        t.start()
    # Maintenance runs in the main thread WHILE traffic flows: two more
    # midnight cycles, each building generation N+1 beside the live one
    # and swapping it in under active leases.
    start.wait()
    server.scheduler.advance_days(1)  # -> day 2, generation 2
    server.scheduler.advance_days(1)  # -> day 3, generation 3
    for t in threads:
        t.join(timeout=300)
        assert not t.is_alive(), f"{t.name} did not finish"

    assert failures == []
    assert system.generation == 3
    # Old generations fully retired once their last lease drained: the
    # cache database holds exactly the live generation's tables.
    guard = server.generation_guard.snapshot()
    assert guard["active_leases"] == 0
    assert guard["pending_retirements"] == 0
    assert guard["swaps"] == 3
    live_tables = system.registry.cache_tables()
    from repro.core.cacher import CACHE_DATABASE

    on_disk = {info.name for info in system.catalog.list_tables(CACHE_DATABASE)}
    assert on_disk == live_tables

    # No lost collector counts: exact per-path totals for the stress day
    # and for the concurrent ingest stream.
    total_hot = sum(hot_issued)
    total_cold = sum(cold_issued)
    assert total_hot + total_cold == N_THREADS * QUERIES_PER_THREAD
    assert system.collector.count(HOT_KEY, STRESS_DAY) == total_hot
    assert system.collector.count(COLD_KEY, STRESS_DAY) == total_cold
    assert len(system.collector.queries_on(STRESS_DAY)) == total_hot + total_cold
    assert system.collector.count(INGEST_KEY, STRESS_DAY + 1) == INGEST_EVENTS

    status = server.status()
    assert status.queries_completed == N_THREADS * QUERIES_PER_THREAD
    assert status.queries_failed == 0
    assert status.cache_hits > 0
    server.shutdown()


def test_serial_equivalence_after_swaps():
    """After the dust settles, cached results still equal baseline."""
    system = build_system()
    system.sql(HOT_SQL, day=0)
    system.sql(HOT_SQL, day=0)
    for day in (1, 2):
        system.collector.record_query(day, (HOT_KEY, HOT_KEY))
    server = MaxsonServer(system, ServerConfig(max_workers=2))
    server.run_midnight_cycle(day=1)
    server.run_midnight_cycle(day=2)
    cached = server.execute(HOT_SQL, day=2)
    baseline = system.baseline_sql(HOT_SQL)
    assert cached.rows == baseline.rows
    assert cached.metrics.parse_documents == 0
    server.shutdown()
