"""Per-query deadlines through the server: bounded slack, worker
reclamation, and honest latency accounting for timed-out queries."""

import time

import pytest

from repro.core import MaxsonConfig, MaxsonSystem, PredictorConfig
from repro.engine import DeadlineExceededError, Session
from repro.faults import FaultPolicy, FaultyFileSystem
from repro.jsonlib import dumps
from repro.server import MaxsonServer, ServerConfig
from repro.storage import DataType, Schema

SQL = "select get_json_object(payload, '$.a') as a from db.t"

#: Generous unwind allowance on top of the deadline: one injected read
#: latency (the largest atomic step that cannot observe the token) plus
#: scheduler noise. The contract is *bounded* slack, not zero slack.
SLACK_SECONDS = 0.5


def build_slow_system(
    read_latency: float = 0.02, rows: int = 80, scan_workers: int = 1
) -> MaxsonSystem:
    """A system whose table scans are slow (fault-injected read latency),
    loaded quietly so the data itself is intact."""
    session = Session(fs=FaultyFileSystem(policy=FaultPolicy()))
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("db", "t", schema)
    # One file (= one scan split) per append: an 8-split scan where every
    # split pays the injected read latency.
    for start in range(0, rows, 10):
        data = [
            (i, dumps({"a": i % 9, "pad": "x" * 40}))
            for i in range(start, min(start + 10, rows))
        ]
        session.catalog.append_rows("db", "t", data, row_group_size=10)
    session.fs.policy = FaultPolicy(read_latency_seconds=read_latency)
    if scan_workers > 1:
        session.scan_workers = scan_workers
    return MaxsonSystem(
        session=session,
        config=MaxsonConfig(predictor=PredictorConfig(model="oracle")),
    )


class TestDeadlineEnforcement:
    def test_deadline_exceeded_within_bounded_slack(self):
        system = build_slow_system(read_latency=0.02)
        with MaxsonServer(system, ServerConfig(max_workers=2)) as server:
            deadline_seconds = 0.05
            started = time.perf_counter()
            with pytest.raises(DeadlineExceededError):
                server.execute(SQL, deadline_ms=deadline_seconds * 1000)
            elapsed = time.perf_counter() - started
            assert elapsed < deadline_seconds + SLACK_SECONDS
            status = server.status()
            assert status.queries_deadline_exceeded == 1
            assert status.queries_failed == 0
            assert status.queries_completed == 0

    def test_workers_and_leases_reclaimed_after_deadline(self):
        system = build_slow_system(read_latency=0.02, scan_workers=4)
        with MaxsonServer(system, ServerConfig(max_workers=2)) as server:
            with pytest.raises(DeadlineExceededError):
                server.execute(SQL, deadline_ms=40.0)
            status = server.status()
            assert status.active_queries == 0
            assert status.active_leases == 0
            # The pool still serves: the same query completes without a
            # deadline and matches the fault-free baseline.
            result = server.execute(SQL)
            assert sorted(map(str, result.rows)) == sorted(
                map(str, server.system.baseline_sql(SQL).rows)
            )

    def test_config_default_deadline_applies(self):
        system = build_slow_system(read_latency=0.02)
        config = ServerConfig(max_workers=2, default_deadline_ms=40.0)
        with MaxsonServer(system, config) as server:
            with pytest.raises(DeadlineExceededError):
                server.execute(SQL)
            # A per-request override can relax back to unbounded... by
            # passing a generous deadline instead.
            assert server.execute(SQL, deadline_ms=60_000.0).rows

    def test_latency_accounting_includes_timed_out_queries(self):
        # Satellite: timed-out queries must appear in the histogram and
        # percentiles with their own counter — not silently vanish.
        system = build_slow_system(read_latency=0.02)
        with MaxsonServer(system, ServerConfig(max_workers=2)) as server:
            with pytest.raises(DeadlineExceededError):
                server.execute(SQL, deadline_ms=40.0)
            status = server.status()
            assert status.queries_deadline_exceeded == 1
            # The ~40ms of consumed wall time is in the percentile sample.
            assert status.latency_max_seconds >= 0.03
            text = server.metrics_text()
            assert "deadline_exceeded_total 1" in text
            # The latency histogram observed the timed-out request.
            assert "query_latency_seconds_count 1" in text

    def test_shed_latency_accounted_with_reason_counter(self):
        system = build_slow_system(read_latency=0.0)
        with MaxsonServer(system, ServerConfig(max_workers=2)) as server:
            from repro.server import QueryShedError

            with pytest.raises(QueryShedError):
                server.execute(SQL, deadline_ms=0.0)
            status = server.status()
            assert status.queries_shed == 1
            assert status.shed_breakdown == {"deadline": 1}
            assert 'shed_total{reason="deadline"} 1' in server.metrics_text()

    def test_submit_propagates_deadline(self):
        system = build_slow_system(read_latency=0.02)
        with MaxsonServer(system, ServerConfig(max_workers=2)) as server:
            future = server.submit(SQL, deadline_ms=40.0)
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=10)
