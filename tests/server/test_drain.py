"""Graceful drain: in-flight queries finish, stragglers are cancelled
cooperatively at the drain timeout, and admission stops immediately."""

import time

import pytest

from repro.core import MaxsonConfig, MaxsonSystem, PredictorConfig
from repro.engine import QueryCancelledError, Session
from repro.faults import FaultPolicy, FaultyFileSystem
from repro.jsonlib import dumps
from repro.server import MaxsonServer, ServerConfig
from repro.storage import BlockFileSystem, DataType, Schema

SQL = "select get_json_object(payload, '$.a') as a from db.t"


def build_system(read_latency: float = 0.0, files: int = 8) -> MaxsonSystem:
    fs = (
        FaultyFileSystem(policy=FaultPolicy())
        if read_latency
        else BlockFileSystem()
    )
    session = Session(fs=fs)
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("db", "t", schema)
    for chunk in range(files):
        rows = [(chunk * 10 + i, dumps({"a": i % 5})) for i in range(10)]
        session.catalog.append_rows("db", "t", rows, row_group_size=10)
    if read_latency:
        session.fs.policy = FaultPolicy(read_latency_seconds=read_latency)
    return MaxsonSystem(
        session=session,
        config=MaxsonConfig(predictor=PredictorConfig(model="oracle")),
    )


class TestGracefulDrain:
    def test_in_flight_queries_finish_within_drain_window(self):
        server = MaxsonServer(build_system(), ServerConfig(max_workers=4))
        futures = [server.submit(SQL) for _ in range(6)]
        server.shutdown(drain_timeout=30.0)
        for future in futures:
            assert future.result(timeout=10).rows
        status = server.status()
        assert status.queries_completed == 6
        assert status.drain_cancelled == 0
        assert status.draining is True

    def test_stragglers_cancelled_at_drain_timeout(self):
        # 20ms per split * 8 splits: a query needs ~160ms; the drain
        # window of 50ms forces cooperative cancellation.
        server = MaxsonServer(
            build_system(read_latency=0.02), ServerConfig(max_workers=2)
        )
        future = server.submit(SQL)
        time.sleep(0.03)  # let it get into execution
        started = time.perf_counter()
        server.shutdown(drain_timeout=0.05)
        assert time.perf_counter() - started < 5.0
        with pytest.raises(QueryCancelledError, match="drain"):
            future.result(timeout=10)
        status = server.status()
        assert status.drain_cancelled >= 1
        assert status.queries_cancelled >= 1
        assert status.active_queries == 0
        assert status.active_leases == 0

    def test_submit_rejected_once_draining(self):
        server = MaxsonServer(build_system(), ServerConfig(max_workers=2))
        server.shutdown()
        with pytest.raises(RuntimeError):
            server.submit(SQL)

    def test_shutdown_is_idempotent(self):
        server = MaxsonServer(build_system(), ServerConfig(max_workers=2))
        server.shutdown()
        server.shutdown()  # second call is a no-op, not an error

    def test_drain_timeout_from_config(self):
        config = ServerConfig(max_workers=2, drain_timeout_seconds=0.05)
        server = MaxsonServer(build_system(read_latency=0.02), config)
        future = server.submit(SQL)
        time.sleep(0.03)
        server.shutdown()  # uses config.drain_timeout_seconds
        with pytest.raises(QueryCancelledError):
            future.result(timeout=10)

    def test_cancelled_stragglers_never_produce_partial_rows(self):
        server = MaxsonServer(
            build_system(read_latency=0.02), ServerConfig(max_workers=2)
        )
        baseline = sorted(map(str, server.system.baseline_sql(SQL).rows))
        futures = [server.submit(SQL) for _ in range(3)]
        time.sleep(0.03)
        server.shutdown(drain_timeout=0.05)
        for future in futures:
            try:
                result = future.result(timeout=10)
            except Exception:
                continue  # cancelled (cooperatively or before starting)
            # Whatever completed is complete: full rows, never a prefix.
            assert sorted(map(str, result.rows)) == baseline
