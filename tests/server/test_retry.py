"""Bounded retry of transient file-system faults in the request path."""

import pytest

from repro.core import MaxsonConfig, MaxsonSystem, PredictorConfig
from repro.engine import Session
from repro.faults import FaultPolicy, FaultyFileSystem
from repro.jsonlib import dumps
from repro.server import MaxsonServer, ServerConfig
from repro.storage import DataType, Schema, TransientFsError

SQL = "select id, get_json_object(payload, '$.m') as m from db.t"


def build_server(max_query_retries: int):
    faulty = FaultyFileSystem()
    session = Session(fs=faulty)
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("db", "t", schema)
    session.catalog.append_rows(
        "db", "t", [(i, dumps({"m": i})) for i in range(20)]
    )
    system = MaxsonSystem(
        session=session,
        config=MaxsonConfig(predictor=PredictorConfig(model="always")),
    )
    server = MaxsonServer(
        system,
        ServerConfig(
            max_workers=2,
            max_query_retries=max_query_retries,
            retry_backoff_seconds=0.0,
        ),
    )
    return server, faulty


class TestQueryRetry:
    def test_transient_read_errors_are_retried(self):
        server, faulty = build_server(max_query_retries=10)
        with server:
            # seed 1: first draw 0.134 (fault), second 0.847 (clean) —
            # exactly one retry, then success
            faulty.policy = FaultPolicy(seed=1, read_error_rate=0.4)
            result = server.execute(SQL)
            faulty.policy = FaultPolicy()
            assert len(result.rows) == 20
            status = server.status()
            assert status.query_retries >= 1
            assert status.queries_failed == 0

    def test_exhausted_retries_raise_and_count_failure(self):
        server, faulty = build_server(max_query_retries=2)
        with server:
            faulty.policy = FaultPolicy(read_error_rate=1.0)
            with pytest.raises(TransientFsError):
                server.execute(SQL)
            faulty.policy = FaultPolicy()
            status = server.status()
            assert status.queries_failed == 1
            assert status.query_retries == 2  # both retries consumed

    def test_zero_retries_fails_fast(self):
        server, faulty = build_server(max_query_retries=0)
        with server:
            faulty.policy = FaultPolicy(read_error_rate=1.0)
            with pytest.raises(TransientFsError):
                server.execute(SQL)
            faulty.policy = FaultPolicy()
            assert server.status().query_retries == 0

    def test_no_lease_leaked_across_retries(self):
        server, faulty = build_server(max_query_retries=8)
        with server:
            faulty.policy = FaultPolicy(seed=4, read_error_rate=0.5)
            try:
                server.execute(SQL)
            except TransientFsError:
                pass
            faulty.policy = FaultPolicy()
            assert server.generation_guard.active_leases() == 0
