"""Memory-pressure watchdog: shrink ordering, pressure shedding, and
the probable-hit exemption."""

import pytest

from repro.core import MaxsonConfig, MaxsonSystem, PredictorConfig
from repro.engine import Session
from repro.jsonlib import dumps
from repro.server import MaxsonServer, MemoryWatchdog, QueryShedError, ServerConfig
from repro.storage import BlockFileSystem, DataType, Schema

SQL = "select get_json_object(payload, '$.a') as a from db.t"
OTHER_SQL = "select get_json_object(payload, '$.b') as b from db.t"


def build_session() -> Session:
    session = Session(fs=BlockFileSystem())
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("db", "t", schema)
    rows = [(i, dumps({"a": i % 7, "b": f"x{i}"})) for i in range(50)]
    session.catalog.append_rows("db", "t", rows, row_group_size=10)
    return session


def warm_caches(session: Session) -> None:
    """Put bytes in the result + plan tiers (two recurrences each)."""
    session.configure_result_cache(True)
    for _ in range(2):
        session.sql(SQL)
        session.sql(OTHER_SQL)


class TestMemoryWatchdog:
    def test_under_limit_is_a_no_op(self):
        session = build_session()
        warm_caches(session)
        watchdog = MemoryWatchdog(session, soft_limit_bytes=1 << 30)
        assert watchdog.check() is False
        snapshot = watchdog.snapshot()
        assert snapshot["shrinks"] == 0
        assert snapshot["under_pressure"] is False

    def test_over_limit_shrinks_result_then_plan_tiers(self):
        session = build_session()
        warm_caches(session)
        ledger = session.cache_ledger
        assert ledger.tier_bytes("result") > 0
        assert ledger.tier_bytes("plan") > 0
        document = ledger.tier_bytes("document")
        # A limit below the cache tiers but above the (unshrinkable)
        # document tier: the shrink pass must fully resolve pressure.
        watchdog = MemoryWatchdog(session, soft_limit_bytes=document + 1)
        still_over = watchdog.check()
        assert still_over is False
        assert ledger.tier_bytes("result") == 0
        assert ledger.tier_bytes("plan") == 0
        snapshot = watchdog.snapshot()
        assert snapshot["shrinks"] == 1
        assert snapshot["bytes_reclaimed"] > 0
        assert snapshot["pressure_events"] == 0

    def test_pressure_persists_when_document_tier_alone_exceeds_limit(self):
        session = build_session()
        warm_caches(session)
        # The document tier is transient per-query state the watchdog
        # cannot evict; pin it above the limit to model irreducible load.
        session.cache_ledger.set_tier("document", 10_000)
        watchdog = MemoryWatchdog(session, soft_limit_bytes=1_000)
        assert watchdog.check() is True
        snapshot = watchdog.snapshot()
        assert snapshot["under_pressure"] is True
        assert snapshot["pressure_events"] == 1
        # The shrinkable tiers were still drained first.
        assert session.cache_ledger.tier_bytes("result") == 0
        assert session.cache_ledger.tier_bytes("plan") == 0

    def test_invalid_configuration_rejected(self):
        session = build_session()
        with pytest.raises(ValueError):
            MemoryWatchdog(session, soft_limit_bytes=-1)
        with pytest.raises(ValueError):
            MemoryWatchdog(session, soft_limit_bytes=10, shrink_headroom=0.0)


class TestServerUnderPressure:
    def build_server(self) -> MaxsonServer:
        system = MaxsonSystem(
            session=build_session(),
            config=MaxsonConfig(predictor=PredictorConfig(model="oracle")),
        )
        return MaxsonServer(
            system,
            ServerConfig(max_workers=2, result_cache=True),
        )

    def test_cold_queries_shed_under_persistent_pressure(self):
        with self.build_server() as server:
            server.execute(OTHER_SQL)
            # Pin the (unshrinkable) document tier above the limit so
            # pressure survives the shrink pass.
            server.system.session.cache_ledger.set_tier("document", 10_000)
            server.watchdog = MemoryWatchdog(
                server.system.session, soft_limit_bytes=1_000
            )
            with pytest.raises(QueryShedError) as info:
                server.execute(SQL)
            assert info.value.retry_after_seconds > 0
            status = server.status()
            assert status.shed_breakdown == {"memory_pressure": 1}
            assert status.watchdog["under_pressure"] is True
            assert "memory_pressure 1" in server.metrics_text()

    def test_probable_result_cache_hits_exempt_from_pressure_shed(self):
        class AlwaysPressure:
            """Watchdog stub: pressure persists, nothing is evicted —
            isolates the server's shed/exempt policy from shrink
            mechanics (a real shrink would evict the cached result and
            make the exemption unobservable)."""

            def check(self):
                return True

            def snapshot(self):
                return {
                    "soft_limit_bytes": 1,
                    "shrinks": 0,
                    "bytes_reclaimed": 0,
                    "pressure_events": 1,
                    "under_pressure": True,
                }

        with self.build_server() as server:
            server.execute(SQL)
            server.execute(SQL)  # second run: admitted to the result cache
            assert server.system.session.probable_result_cache_hit(SQL)
            server.watchdog = AlwaysPressure()
            # Cold query: shed. Probable hit: admitted and served.
            with pytest.raises(QueryShedError):
                server.execute(OTHER_SQL)
            assert server.execute(SQL).rows
            status = server.status()
            assert status.shed_breakdown == {"memory_pressure": 1}
            assert status.queries_completed == 3

    def test_breaker_never_touched_by_watchdog(self):
        with self.build_server() as server:
            server.execute(SQL)
            server.system.session.cache_ledger.set_tier("document", 10_000)
            server.watchdog = MemoryWatchdog(
                server.system.session, soft_limit_bytes=1_000
            )
            for _ in range(3):
                with pytest.raises(QueryShedError):
                    server.execute(OTHER_SQL)
            assert server.system.breaker.snapshot() == {
                "quarantined": [],
                "half_open": [],
            }

    def test_config_wires_watchdog(self):
        system = MaxsonSystem(
            session=build_session(),
            config=MaxsonConfig(predictor=PredictorConfig(model="oracle")),
        )
        config = ServerConfig(max_workers=2, memory_soft_limit_bytes=1 << 30)
        with MaxsonServer(system, config) as server:
            assert server.watchdog is not None
            server.execute(SQL)
            status = server.status()
            assert status.watchdog["soft_limit_bytes"] == 1 << 30
            assert status.watchdog["under_pressure"] is False
