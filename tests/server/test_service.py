"""Tests for MaxsonServer: execute/submit, ingest, status, lifecycle."""

import pytest

from repro.core import MaxsonConfig, MaxsonSystem, PredictorConfig
from repro.engine import Session
from repro.jsonlib import dumps
from repro.server import MaxsonServer, ServerConfig
from repro.storage import BlockFileSystem, DataType, Schema
from repro.workload import PathKey

HOT_SQL = "select get_json_object(payload, '$.hot') as h from db.t"
COLD_SQL = "select get_json_object(payload, '$.cold') as c from db.t"

HOT_KEY = PathKey("db", "t", "payload", "$.hot")


def build_system(model="oracle") -> MaxsonSystem:
    session = Session(fs=BlockFileSystem())
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("db", "t", schema)
    rows = [
        (i, dumps({"hot": i % 5, "cold": f"c{i}", "big": "x" * 50}))
        for i in range(60)
    ]
    session.catalog.append_rows("db", "t", rows, row_group_size=10)
    config = MaxsonConfig(predictor=PredictorConfig(model=model))
    return MaxsonSystem(session=session, config=config)


@pytest.fixture
def server():
    with MaxsonServer(build_system(), ServerConfig(max_workers=4)) as srv:
        yield srv


class TestRequestPath:
    def test_execute_matches_baseline(self, server):
        baseline = server.system.baseline_sql(HOT_SQL)
        result = server.execute(HOT_SQL, day=0)
        assert result.rows == baseline.rows

    def test_submit_returns_future(self, server):
        future = server.submit(COLD_SQL, tenant="alpha", day=0)
        assert future.result().rows

    def test_failure_counted_and_raised(self, server):
        with pytest.raises(Exception):
            server.execute("select nope from db.missing", day=0)
        assert server.status().queries_failed == 1

    def test_execute_feeds_collector(self, server):
        server.execute(HOT_SQL, day=3)
        assert server.system.collector.count(HOT_KEY, 3) == 1

    def test_ingest_records_stats_event(self, server):
        server.ingest(5, (HOT_KEY, HOT_KEY))
        assert server.system.collector.count(HOT_KEY, 5) == 2
        assert server.status().stats_events_ingested == 1


class TestMaintenanceAndStatus:
    def test_midnight_cycle_swaps_generation(self, server):
        server.execute(HOT_SQL, day=0)
        server.execute(HOT_SQL, day=0)
        server.ingest(1, (HOT_KEY, HOT_KEY))
        server.run_midnight_cycle(day=1)
        assert server.system.generation == 1
        hot = server.execute(HOT_SQL, day=1)
        assert hot.metrics.parse_documents == 0
        assert hot.metrics.cache_hits > 0

    def test_status_snapshot_fields(self, server):
        server.execute(HOT_SQL, day=0)
        server.execute(HOT_SQL, day=0)
        server.ingest(1, (HOT_KEY, HOT_KEY))
        server.run_midnight_cycle(day=1)
        server.execute(HOT_SQL, day=1)
        status = server.status()
        assert status.queries_completed == 3
        assert status.qps > 0
        assert status.generation == 1
        assert status.cached_paths == 1
        assert status.cache_hits > 0
        assert 0.0 < status.cache_hit_ratio <= 1.0
        assert status.build_seconds > 0
        assert status.midnight_cycles == 0  # cycle ran directly, not via clock
        assert status.latency_p50_seconds > 0
        assert status.latency_p95_seconds >= status.latency_p50_seconds
        assert status.tenants == {"default": 3}

    def test_status_to_dict_is_json_safe(self, server):
        import json

        server.execute(COLD_SQL, day=0)
        payload = json.dumps(server.status().to_dict())
        assert "cache_hit_ratio" in payload

    def test_status_format_renders(self, server):
        server.execute(COLD_SQL, day=0)
        text = server.status().format()
        assert "Maxson server status" in text
        assert "hit_ratio" in text

    def test_scheduler_drives_cycles(self, server):
        server.execute(HOT_SQL, day=0)
        server.execute(HOT_SQL, day=0)
        server.ingest(1, (HOT_KEY, HOT_KEY))
        server.scheduler.advance_days(1)
        status = server.status()
        assert status.midnight_cycles == 1
        assert status.generation == 1


class TestLifecycle:
    def test_submit_after_shutdown_rejected(self):
        server = MaxsonServer(build_system(), ServerConfig(max_workers=2))
        server.shutdown()
        with pytest.raises(RuntimeError):
            server.submit(HOT_SQL)

    def test_default_system(self):
        server = MaxsonServer()
        assert server.system is not None
        server.shutdown()
