"""Unit tests for the admission controller."""

import threading
import time

import pytest

from repro.server import AdmissionController, AdmissionTimeout, QueueFullError


class TestFastPath:
    def test_admit_and_release(self):
        ctrl = AdmissionController(per_tenant_limit=2, queue_capacity=4)
        with ctrl.admit("a"):
            assert ctrl.active == 1
        assert ctrl.active == 0
        snap = ctrl.snapshot()
        assert snap["admitted"] == 1
        assert snap["shed"] == 0

    def test_distinct_tenants_independent(self):
        ctrl = AdmissionController(per_tenant_limit=1, queue_capacity=4)
        ctrl.acquire("a")
        ctrl.acquire("b")  # b is under its own limit
        assert ctrl.active == 2
        ctrl.release("a")
        ctrl.release("b")


class TestLimits:
    def test_per_tenant_limit_blocks_then_proceeds(self):
        ctrl = AdmissionController(
            per_tenant_limit=1, queue_capacity=4, timeout_seconds=5.0
        )
        ctrl.acquire("a")
        admitted = threading.Event()

        def second():
            ctrl.acquire("a")
            admitted.set()
            ctrl.release("a")

        t = threading.Thread(target=second)
        t.start()
        time.sleep(0.05)
        assert not admitted.is_set()  # still waiting behind the limit
        ctrl.release("a")
        t.join(timeout=5)
        assert admitted.is_set()

    def test_limit_never_exceeded_under_contention(self):
        ctrl = AdmissionController(
            per_tenant_limit=3, queue_capacity=64, timeout_seconds=10.0
        )
        peak = [0]
        peak_lock = threading.Lock()
        active = [0]

        def work():
            with ctrl.admit("a"):
                with peak_lock:
                    active[0] += 1
                    peak[0] = max(peak[0], active[0])
                time.sleep(0.005)
                with peak_lock:
                    active[0] -= 1

        threads = [threading.Thread(target=work) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert peak[0] <= 3
        assert ctrl.snapshot()["admitted"] == 16


class TestShedAndTimeout:
    def test_queue_full_sheds(self):
        ctrl = AdmissionController(
            per_tenant_limit=1, queue_capacity=1, timeout_seconds=5.0
        )
        ctrl.acquire("a")
        waiter_started = threading.Event()
        waiter_done = threading.Event()

        def waiter():
            waiter_started.set()
            ctrl.acquire("a", timeout=5.0)
            ctrl.release("a")
            waiter_done.set()

        t = threading.Thread(target=waiter)
        t.start()
        waiter_started.wait()
        time.sleep(0.05)  # let the waiter enter the queue
        with pytest.raises(QueueFullError):
            ctrl.acquire("a")
        assert ctrl.snapshot()["shed"] == 1
        ctrl.release("a")
        t.join(timeout=5)
        assert waiter_done.is_set()

    def test_timeout(self):
        ctrl = AdmissionController(
            per_tenant_limit=1, queue_capacity=4, timeout_seconds=0.05
        )
        ctrl.acquire("a")
        with pytest.raises(AdmissionTimeout):
            ctrl.acquire("a")
        assert ctrl.snapshot()["timed_out"] == 1
        ctrl.release("a")
