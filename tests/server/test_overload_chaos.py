"""Seeded overload/chaos stress: deadlines + load shedding + faults.

The overload acceptance gates (the CI chaos job asserts the same
invariants at larger scale):

* a shed or timed-out query **never** produces a wrong or partial
  answer — it raises, contributes to shed/deadline counters, and leaves
  nothing behind;
* every request is accounted exactly once
  (completed + failed + shed + deadline_exceeded + cancelled = total);
* the PR-2 invariants hold throughout: the build journal has no pending
  entries after the run and all completed answers verify against the
  fault-free baseline.
"""

import pytest

from repro.core import MaxsonConfig, MaxsonSystem, PredictorConfig
from repro.engine import Session
from repro.faults import CACHE_PATH_PREFIX, FaultPolicy, FaultyFileSystem
from repro.server import (
    MaxsonServer,
    ServerConfig,
    build_replay_workload,
    replay,
)
from repro.workload import build_queries, load_tables

DAYS = 2
PER_DAY = 16


def build_stack(policy: FaultPolicy):
    faulty = FaultyFileSystem()
    session = Session(fs=faulty)
    system = MaxsonSystem(
        session=session,
        config=MaxsonConfig(predictor=PredictorConfig(model="always")),
    )
    factories = load_tables(system.catalog, rows_per_table=60, days=DAYS)
    queries = build_queries(factories)
    faulty.policy = policy
    return system, faulty, queries


#: The chaos matrix: slow splits (latency spikes), transient cache-read
#: errors, cache corruption — each with deadlines armed.
CHAOS_PROFILES = {
    "slow_splits": FaultPolicy(
        seed=17, latency_spike_rate=0.25, latency_spike_seconds=0.01
    ),
    "spikes_plus_read_errors": FaultPolicy(
        seed=19,
        latency_spike_rate=0.2,
        latency_spike_seconds=0.01,
        read_error_rate=0.1,
        error_path_prefix=CACHE_PATH_PREFIX,
    ),
    "spikes_plus_corruption": FaultPolicy(
        seed=23,
        latency_spike_rate=0.2,
        latency_spike_seconds=0.01,
        corrupt_rate=0.4,
        corrupt_path_prefix=CACHE_PATH_PREFIX,
    ),
}


@pytest.mark.parametrize("profile", sorted(CHAOS_PROFILES))
def test_overload_with_deadlines_is_never_wrong(profile):
    system, faulty, queries = build_stack(CHAOS_PROFILES[profile])
    requests = build_replay_workload(
        queries, days=DAYS, per_day=PER_DAY, tenants=3, seed=31
    )
    config = ServerConfig(
        max_workers=4,
        queue_capacity=8,
        admission_timeout_seconds=5.0,
        max_query_retries=8,
        retry_backoff_seconds=0.0,
    )
    with MaxsonServer(system, config) as server:
        report = replay(server, requests, verify=True, deadline_ms=250.0)
        status = report.status

    # Gate 1: zero wrong or partial answers among whatever completed.
    assert report.mismatched == 0, "an overloaded query returned wrong rows"
    assert report.completed > 0

    # Gate 2: exact accounting — every request ends in exactly one bin.
    assert (
        report.completed
        + report.failed
        + report.shed
        + report.deadline_exceeded
        + report.cancelled
        == report.requests
    )
    assert report.failed == 0
    assert status.queries_deadline_exceeded == report.deadline_exceeded
    assert status.queries_shed == report.shed

    # Gate 3: PR-2 invariants hold under cancellation and shedding.
    assert system.journal.pending() == []
    # The latency spikes really fired (the chaos was real). Only
    # asserted for unscoped profiles: when spikes share the cache-path
    # prefix with read errors, the number of cache reads is
    # timing-dependent under concurrency (the breaker may quarantine
    # the cache tables after the first injected error).
    if CHAOS_PROFILES[profile].error_path_prefix is None:
        assert faulty.policy.counters.latency_spikes > 0


def test_sustained_overload_sheds_but_stays_live():
    """Queue capacity 2 with a slow backend: most requests shed, yet the
    server keeps answering and the books balance."""
    system, faulty, queries = build_stack(
        FaultPolicy(seed=29, read_latency_seconds=0.005)
    )
    requests = build_replay_workload(
        queries, days=1, per_day=24, tenants=2, seed=37
    )
    # Pool wider than the tenant slots (8 admitters vs 2x1 slots) so the
    # burst deterministically overflows the bounded admission queue
    # instead of serializing in the executor's backlog.
    config = ServerConfig(
        max_workers=8,
        per_tenant_limit=1,
        queue_capacity=2,
        admission_timeout_seconds=0.05,
        retry_backoff_seconds=0.0,
    )
    with MaxsonServer(system, config) as server:
        report = replay(server, requests, verify=True)
        status = report.status

    assert report.shed > 0, "overload never triggered shedding"
    assert report.completed > 0, "shedding starved the service entirely"
    assert report.mismatched == 0
    assert report.failed == 0
    assert (
        report.completed + report.shed + report.deadline_exceeded
        == report.requests
    )
    # Shed requests appear in the breakdown and the latency books.
    assert sum(status.shed_breakdown.values()) == report.shed
    assert status.queries_shed == report.shed


def test_deadline_matrix_accounting():
    """Sweep deadlines from impossible to generous: the sum of outcome
    bins is exact at every point, and a generous deadline completes
    everything a no-deadline run would."""
    for deadline_ms, expect_all_complete in ((0.001, False), (60_000.0, True)):
        system, faulty, queries = build_stack(FaultPolicy())
        requests = build_replay_workload(
            queries, days=1, per_day=10, tenants=2, seed=41
        )
        config = ServerConfig(max_workers=4, retry_backoff_seconds=0.0)
        with MaxsonServer(system, config) as server:
            report = replay(
                server, requests, verify=True, deadline_ms=deadline_ms
            )
        assert (
            report.completed
            + report.failed
            + report.shed
            + report.deadline_exceeded
            + report.cancelled
            == report.requests
        )
        assert report.mismatched == 0
        if expect_all_complete:
            assert report.completed == report.requests
        else:
            # An already-expired deadline is shed at admission (or dies
            # at the first cooperative check) — never a wrong answer.
            assert report.completed == 0
            assert report.shed + report.deadline_exceeded == report.requests
