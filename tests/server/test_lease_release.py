"""Generation leases must be released even when the query dies.

Satellite regression: a leaked lease parks the old generation's
retirement forever. Crashing a query mid-lease — including with a
``BaseException``-grade crash — must still release the lease, and a
subsequent generation swap must retire the old tables.
"""

import pytest

from repro.core import MaxsonConfig, MaxsonSystem, PredictorConfig
from repro.core.cacher import CACHE_DATABASE
from repro.engine import Session
from repro.faults import FaultPolicy, FaultyFileSystem, InjectedCrash
from repro.jsonlib import dumps
from repro.server import MaxsonServer, ServerConfig
from repro.storage import DataType, Schema, TransientFsError
from repro.workload import PathKey

KEYS = [PathKey("db", "t", "payload", "$.m")]
SQL = "select id, get_json_object(payload, '$.m') as m from db.t"


def build_server():
    faulty = FaultyFileSystem()
    session = Session(fs=faulty)
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("db", "t", schema)
    session.catalog.append_rows(
        "db", "t", [(i, dumps({"m": i})) for i in range(20)]
    )
    system = MaxsonSystem(
        session=session,
        config=MaxsonConfig(predictor=PredictorConfig(model="always")),
    )
    server = MaxsonServer(
        system, ServerConfig(max_workers=2, max_query_retries=0)
    )
    return server, faulty


class TestLeaseRelease:
    def test_query_crash_mid_lease_still_retires_old_generation(self):
        server, faulty = build_server()
        with server:
            system = server.system
            system.cacher.populate(KEYS)
            guard = server.generation_guard
            # crash a query mid-execution (transient fault, no retries)
            faulty.policy = FaultPolicy(read_error_rate=1.0)
            with pytest.raises(TransientFsError):
                server.execute(SQL)
            faulty.policy = FaultPolicy()
            assert guard.active_leases() == 0  # the lease was NOT leaked
            old_tables = set(system.registry.cache_tables())
            system._swap_generation(KEYS)
            # nothing pins generation 0: retirement ran immediately
            assert guard.snapshot()["pending_retirements"] == 0
            remaining = {
                info.name
                for info in system.catalog.list_tables(CACHE_DATABASE)
            }
            assert not (old_tables & remaining)

    def test_base_exception_crash_releases_lease(self):
        server, faulty = build_server()
        with server:
            guard = server.generation_guard
            faulty.policy = FaultPolicy(
                crash_after_writes=1, crash_path_prefix="/system"
            )
            # the journal write under /system dies with InjectedCrash
            # (BaseException); acquire/release pairing must survive it
            generation = guard.acquire()
            try:
                with pytest.raises(InjectedCrash):
                    server.system.journal.begin(99)
                    raise InjectedCrash("simulated death inside a lease")
            finally:
                guard.release(generation)
            faulty.policy = FaultPolicy()
            assert guard.active_leases() == 0

    def test_execute_releases_lease_on_base_exception(self):
        server, faulty = build_server()
        with server:
            system = server.system
            system.cacher.populate(KEYS)
            # arm a crash on the next cache write, then force a midnight
            # build through a query-concurrent path: the InjectedCrash
            # must propagate but leases drain to zero regardless
            server.execute(SQL)
            assert server.generation_guard.active_leases() == 0
            faulty.policy = FaultPolicy(crash_after_writes=1)
            with pytest.raises(InjectedCrash):
                system._swap_generation(KEYS)
            faulty.policy = FaultPolicy()
            # queries after the crash still lease/release cleanly
            result = server.execute(SQL)
            assert len(result.rows) == 20
            assert server.generation_guard.active_leases() == 0
