"""Server observability: percentiles, Prometheus metrics, traces, logs."""

import json

import pytest

from repro.core import MaxsonConfig, MaxsonSystem, PredictorConfig
from repro.engine import Session
from repro.jsonlib import dumps
from repro.obs.promlint import validate_text
from repro.server import MaxsonServer, ServerConfig
from repro.server.status import percentile
from repro.storage import BlockFileSystem, DataType, Schema
from repro.workload import PathKey

HOT_SQL = "select get_json_object(payload, '$.hot') as h from db.t"
COLD_SQL = "select get_json_object(payload, '$.cold') as c from db.t"
HOT_KEY = PathKey("db", "t", "payload", "$.hot")


def build_system(model="oracle") -> MaxsonSystem:
    session = Session(fs=BlockFileSystem())
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("db", "t", schema)
    rows = [
        (i, dumps({"hot": i % 5, "cold": f"c{i}", "big": "x" * 50}))
        for i in range(60)
    ]
    session.catalog.append_rows("db", "t", rows, row_group_size=10)
    config = MaxsonConfig(predictor=PredictorConfig(model=model))
    return MaxsonSystem(session=session, config=config)


class TestPercentile:
    """Nearest-rank must use ceil: int(f*n) over-reported small samples."""

    def test_median_of_four_is_second_value(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.0

    def test_median_of_odd_sample_is_middle(self):
        assert percentile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_p95_of_hundred(self):
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 0.95) == 95.0
        assert percentile(values, 0.99) == 99.0

    def test_extremes_clamped(self):
        values = [1.0, 2.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 3.0

    def test_single_element(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.99) == 7.0

    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0


@pytest.fixture
def server():
    with MaxsonServer(build_system(), ServerConfig(max_workers=4)) as srv:
        yield srv


def run_cached_day(server):
    """Day 0 traffic + midnight so day 1 queries hit the cache."""
    server.execute(HOT_SQL, day=0)
    server.execute(HOT_SQL, day=0)
    server.ingest(1, (HOT_KEY, HOT_KEY))
    server.run_midnight_cycle(day=1)
    server.execute(HOT_SQL, day=1)


class TestPrometheusExport:
    def test_exposition_is_lint_clean(self, server):
        run_cached_day(server)
        text = server.metrics_text()
        assert validate_text(text) == []

    def test_core_series_present_and_counted(self, server):
        run_cached_day(server)
        server.execute(COLD_SQL, tenant="alpha", day=1)
        text = server.metrics_text()
        assert 'maxson_queries_total{tenant="default"} 3' in text
        assert 'maxson_queries_total{tenant="alpha"} 1' in text
        assert "maxson_query_latency_seconds_count 4" in text
        assert "maxson_query_latency_seconds_bucket" in text
        assert 'le="+Inf"' in text
        assert "maxson_cache_generation 1" in text
        assert "maxson_cached_paths 1" in text
        assert "maxson_cache_hits_total" in text

    def test_failures_counted(self, server):
        with pytest.raises(Exception):
            server.execute("select nope from db.missing", day=0)
        assert "maxson_queries_failed_total 1" in server.metrics_text()

    def test_efficacy_gauges_after_two_cycles(self, server):
        run_cached_day(server)
        server.ingest(2, (HOT_KEY, HOT_KEY))
        server.run_midnight_cycle(day=2)  # retires + scores generation 1
        text = server.metrics_text()
        assert 'maxson_generation_precision{generation="1"} 1' in text
        assert (
            'maxson_generation_byte_weighted_hit_ratio{generation="1"}' in text
        )
        assert validate_text(text) == []

    def test_snapshot_mirrors_exposition(self, server):
        run_cached_day(server)
        snap = json.loads(json.dumps(server.metrics_snapshot()))
        assert snap["maxson_queries_total"]['{tenant="default"}'] == 3.0
        assert snap["maxson_query_latency_seconds_count"]["{}"] == 3.0


class TestStatusObservability:
    def test_status_carries_efficacy_records(self, server):
        run_cached_day(server)
        server.ingest(2, (HOT_KEY, HOT_KEY))
        server.run_midnight_cycle(day=2)
        status = server.status()
        assert len(status.cache_efficacy) == 1
        record = status.cache_efficacy[-1]
        assert record["generation"] == 1
        assert record["precision"] == 1.0
        assert record["recall"] == 1.0
        formatted = status.format()
        assert "efficacy:" in formatted and "gen 1" in formatted
        json.dumps(status.to_dict())  # stays JSON-safe

    def test_slow_queries_in_status(self):
        config = ServerConfig(max_workers=2, slow_query_seconds=1e-9)
        with MaxsonServer(build_system(), config) as server:
            server.execute(HOT_SQL, day=0)
            status = server.status()
            assert status.slow_queries == 1
            assert "slow queries" in status.format()


class TestTracesAndLogs:
    def test_trace_dir_collects_query_and_midnight_spans(self, tmp_path):
        config = ServerConfig(max_workers=2, trace_dir=str(tmp_path))
        with MaxsonServer(build_system(), config) as server:
            run_cached_day(server)
            status = server.status()
        lines = [
            json.loads(l)
            for l in (tmp_path / "traces.jsonl").read_text().splitlines()
        ]
        names = {l["name"] for l in lines}
        assert {"query", "scan", "project"} <= names
        assert {"midnight", "collect", "predict", "score", "build", "swap"} <= names
        query_ids = {l.get("query_id") for l in lines if "query_id" in l}
        assert query_ids == {"q-1", "q-2", "q-3"}
        assert status.observability["trace"]["spans_written"] == len(lines)

    def test_structured_log_file(self, tmp_path):
        log = tmp_path / "server.ndjson"
        config = ServerConfig(
            max_workers=2, log_file=str(log), log_all_queries=True
        )
        with MaxsonServer(build_system(), config) as server:
            server.execute(HOT_SQL, tenant="alpha", day=0)
            server.run_midnight_cycle(day=1)
        events = [json.loads(l) for l in log.read_text().splitlines()]
        kinds = [e["event"] for e in events]
        assert kinds[0] == "server_started"
        assert kinds[-1] == "server_stopped"
        assert "query" in kinds
        assert "midnight_cycle" in kinds
        query = next(e for e in events if e["event"] == "query")
        assert query["query_id"] == "q-1"
        assert query["tenant"] == "alpha"
        assert "seconds" in query

    def test_explain_analyze_through_server(self, server):
        report = server.explain_analyze(HOT_SQL, tenant="alpha")
        assert report.startswith("EXPLAIN ANALYZE")
        assert "scan" in report.lower()
        assert "metrics: read=" in report
