"""Acceptance: a multi-day replay under faults is degraded, never wrong.

The seeded stress run injects cache-file corruption, transient read
errors and one mid-build process crash (with a server restart) into a
multi-day replay, and requires:

* every completed query's rows are identical to the fault-free plain
  engine's answer for the same SQL (corruption is restricted to the
  cache database, so the raw data both engines read stays trustworthy);
* the degraded-mode counters — fallbacks, corruption detections,
  quarantine skips, recovery actions — are all nonzero, proving the
  resilience paths actually ran rather than the faults never firing.
"""

import pytest

from repro.core import MaxsonConfig, MaxsonSystem, PredictorConfig
from repro.faults import CACHE_PATH_PREFIX, FaultPolicy, FaultyFileSystem, InjectedCrash
from repro.server import (
    MaxsonServer,
    ServerConfig,
    build_replay_workload,
    replay,
)
from repro.workload import build_queries, load_tables

DAYS = 3
PER_DAY = 10


def build_stack():
    faulty = FaultyFileSystem()
    from repro.engine import Session

    session = Session(fs=faulty)
    system = MaxsonSystem(
        session=session,
        config=MaxsonConfig(predictor=PredictorConfig(model="always")),
    )
    factories = load_tables(system.catalog, rows_per_table=60, days=DAYS)
    queries = build_queries(factories)
    return system, faulty, queries


def server_config() -> ServerConfig:
    return ServerConfig(
        max_workers=4,
        max_query_retries=8,
        retry_backoff_seconds=0.0,
        admission_timeout_seconds=30.0,
    )


class TestFaultStress:
    def test_replay_under_faults_never_answers_wrong(self):
        system, faulty, queries = build_stack()
        requests = build_replay_workload(
            queries, days=DAYS, per_day=PER_DAY, tenants=3, seed=5
        )
        # heavy corruption + transient errors on every cache read (raw
        # data stays clean, so builds succeed and the baseline is exact)
        faulty.policy = FaultPolicy(
            seed=13,
            corrupt_rate=0.5,
            corrupt_path_prefix=CACHE_PATH_PREFIX,
            read_error_rate=0.1,
            error_path_prefix=CACHE_PATH_PREFIX,
        )
        with MaxsonServer(system, server_config()) as server:
            report = replay(server, requests, verify=True)
            status = report.status

        assert report.mismatched == 0, "a degraded query returned wrong rows"
        assert report.failed == 0
        assert report.verified > 0
        assert report.completed == len(requests)
        # the faults really fired and the resilience paths really ran
        assert faulty.policy.counters.corruptions > 0
        assert status.corruption_events > 0
        assert status.fallback_queries > 0
        assert status.fallback_splits >= status.fallback_queries
        assert status.quarantine_skips > 0
        assert status.quarantined_tables > 0

    def test_mid_build_crash_restart_recovery_then_clean_replay(self):
        system, faulty, queries = build_stack()
        requests = build_replay_workload(
            queries, days=DAYS, per_day=PER_DAY, tenants=3, seed=6
        )
        config = server_config()

        # --- life before the crash: one verified replay day ------------
        day0 = [r for r in requests if r.day == 0]
        with MaxsonServer(system, config) as server:
            report = replay(server, day0, verify=True)
            assert report.mismatched == 0 and report.failed == 0
            # --- the crash: kill the next generation build mid-write ---
            faulty.policy = FaultPolicy(seed=21, crash_after_writes=2)
            with pytest.raises(InjectedCrash):
                server.scheduler.advance_days(1)
            faulty.policy = FaultPolicy()
        assert faulty.policy.counters.crashes == 0  # fresh quiet policy
        assert system.journal.pending()  # the build never committed

        # --- the restart: a new server over the surviving state --------
        faulty.policy = FaultPolicy(
            seed=14,
            corrupt_rate=0.3,
            corrupt_path_prefix=CACHE_PATH_PREFIX,
            read_error_rate=0.05,
            error_path_prefix=CACHE_PATH_PREFIX,
        )
        with MaxsonServer(system, config) as server2:
            # startup recovery dropped the orphaned half-built generation
            assert server2.recovered_tables
            assert system.journal.pending() == []
            report2 = replay(server2, requests, verify=True)
            status = server2.status()

        assert report2.mismatched == 0, "wrong answers after crash recovery"
        assert report2.failed == 0
        assert report2.verified > 0
        assert status.recovery_actions > 0
        assert status.corruption_events > 0
        assert status.fallback_queries > 0
