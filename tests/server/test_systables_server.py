"""System tables through the server: every outcome leaves exactly one
``system.queries`` row, and the SQL-visible counts reconcile with the
replay report and the Prometheus counters — on both worker backends.

This is the paper's observability acceptance gate: the engine must be
able to answer, via its own SQL path, the same accounting questions the
external scrape answers, with no drift between the three ledgers.
"""

import json

import pytest

from repro.core import MaxsonConfig, MaxsonSystem, PredictorConfig
from repro.engine import DeadlineExceededError, Session
from repro.faults import FaultPolicy, FaultyFileSystem
from repro.jsonlib import dumps
from repro.server import (
    MaxsonServer,
    ServerConfig,
    build_replay_workload,
    replay,
)
from repro.server.admission import AdmissionError
from repro.server.replay import ReplayRequest
from repro.storage import DataType, Schema
from repro.workload import build_queries, load_tables

SLOW_SQL = "select get_json_object(payload, '$.a') as a from db.t"


def make_replay_server(backend: str, **overrides) -> tuple[MaxsonServer, dict]:
    system = MaxsonSystem(
        config=MaxsonConfig(predictor=PredictorConfig(model="always"))
    )
    factories = load_tables(system.catalog, rows_per_table=60, days=2)
    queries = build_queries(factories)
    config = ServerConfig(
        max_workers=4,
        system_tables=True,
        scan_workers=2,
        worker_backend=backend,
        **overrides,
    )
    return MaxsonServer(system, config), queries


def build_slow_system(read_latency: float = 0.01, rows: int = 40) -> MaxsonSystem:
    """Latency-injected scans: deadlines fire deterministically."""
    session = Session(fs=FaultyFileSystem(policy=FaultPolicy()))
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("db", "t", schema)
    for start in range(0, rows, 10):
        data = [
            (i, dumps({"a": i % 9, "pad": "x" * 40}))
            for i in range(start, min(start + 10, rows))
        ]
        session.catalog.append_rows("db", "t", data, row_group_size=10)
    session.fs.policy = FaultPolicy(read_latency_seconds=read_latency)
    return MaxsonSystem(
        session=session,
        config=MaxsonConfig(predictor=PredictorConfig(model="oracle")),
    )


def breakdown(server: MaxsonServer) -> dict:
    rows = server.system.session.sql(
        "SELECT status, count(*) AS n FROM system.queries GROUP BY status"
    ).rows
    return {row["status"]: row["n"] for row in rows}


def prom_sum(text: str, name: str) -> float:
    """Sum every sample of ``maxson_<name>`` across its label sets."""
    total = 0.0
    for line in text.splitlines():
        if line.startswith("#"):
            continue
        head, _, value = line.rpartition(" ")
        if head.split("{")[0] == f"maxson_{name}":
            total += float(value)
    return total


class TestReplayReconciliation:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_queries_rows_reconcile_with_report_and_metrics(self, backend):
        server, queries = make_replay_server(backend)
        try:
            requests = build_replay_workload(
                queries, days=2, per_day=8, tenants=2, seed=3
            )
            report = replay(server, requests)
            accounted = (
                report.completed
                + report.failed
                + report.shed
                + report.deadline_exceeded
                + report.cancelled
            )
            counts = breakdown(server)
            assert sum(counts.values()) == accounted == report.requests
            assert counts.get("completed", 0) == report.completed
            text = server.metrics_text()
            assert prom_sum(text, "queries_total") == report.completed
            assert prom_sum(text, "queries_failed_total") == report.failed
            assert prom_sum(text, "telemetry_events_total") >= report.requests
        finally:
            server.shutdown()

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_span_rows_recorded_identically_per_backend(self, backend, tmp_path):
        """Traced queries land span rows attributed to their backend —
        the cross-process propagation leg, observed through SQL."""
        server, queries = make_replay_server(
            backend, trace_dir=str(tmp_path / "traces")
        )
        try:
            requests = build_replay_workload(
                queries, days=1, per_day=6, tenants=2, seed=3
            )
            replay(server, requests)
            rows = server.system.session.sql(
                "SELECT backend, count(*) AS n FROM system.spans "
                "GROUP BY backend"
            ).rows
            counts = {row["backend"]: row["n"] for row in rows}
            assert counts.get(backend, 0) > 0
            split_rows = server.system.session.sql(
                "SELECT name, worker FROM system.spans"
            ).rows
            splits = [r for r in split_rows if r["name"] == "split"]
            assert splits
            if backend == "process":
                assert all(
                    str(r["worker"]).startswith("pid-") for r in splits
                )
        finally:
            server.shutdown()


class TestMixedOutcomes:
    def test_every_outcome_leaves_one_row(self):
        system = build_slow_system()
        config = ServerConfig(
            max_workers=2,
            per_tenant_limit=1,
            admission_timeout_seconds=0.05,
            system_tables=True,
        )
        with MaxsonServer(system, config) as server:
            # Deadline first: with no service history the admission
            # estimator can't pre-shed, so the query starts and is then
            # cooperatively cancelled mid-scan.
            with pytest.raises(DeadlineExceededError):
                server.execute(SLOW_SQL, deadline_ms=15.0)
            for _ in range(3):
                assert server.execute(SLOW_SQL).rows
            with pytest.raises(Exception):
                server.execute("select a from nodb.missing")
            # Occupy blocked-tenant's only slot, then time out behind it.
            server.admission.acquire("tenant-00")
            try:
                with pytest.raises(AdmissionError):
                    server.execute(SLOW_SQL, tenant="tenant-00")
            finally:
                server.admission.release("tenant-00")
            counts = breakdown(server)
            assert counts == {
                "completed": 3,
                "failed": 1,
                "deadline_exceeded": 1,
                "shed": 1,
            }
            text = server.metrics_text()
            assert prom_sum(text, "queries_total") == 3
            assert prom_sum(text, "queries_failed_total") == 1
            assert prom_sum(text, "deadline_exceeded_total") == 1
            assert prom_sum(text, "shed_total") >= 1

    def test_failed_query_incident_renders(self):
        system = build_slow_system()
        config = ServerConfig(max_workers=2, system_tables=True)
        with MaxsonServer(system, config) as server:
            with pytest.raises(Exception):
                server.execute("select a from nodb.missing", tenant="t-9")
            rows = server.system.session.sql(
                "SELECT kind, payload FROM system.incidents"
            ).rows
            failed = [r for r in rows if r["kind"] == "failed"]
            assert len(failed) == 1
            doc = json.loads(failed[0]["payload"])
            assert doc["kind"] == "failed"
            assert doc["tenant"] == "t-9"
            assert "nodb.missing" in doc["sql"]
            assert doc["error"]
            # The flight record carries enough state to diagnose cold:
            # breaker + admission + watchdog snapshots are dicts, and
            # the (unplannable) statement still produced a record.
            assert isinstance(doc["breaker"], dict)
            assert isinstance(doc["admission"], dict)

    def test_slow_query_incident_has_plan_and_span_tree(self):
        system = build_slow_system()
        config = ServerConfig(
            max_workers=2,
            system_tables=True,
            slow_query_seconds=0.0001,
            trace_dir=None,
        )
        with MaxsonServer(system, config) as server:
            assert server.execute(SLOW_SQL).rows
            rows = server.system.session.sql(
                "SELECT kind, payload FROM system.incidents"
            ).rows
            slow = [r for r in rows if r["kind"] == "slow_query"]
            assert slow
            doc = json.loads(slow[0]["payload"])
            assert "ScanExec" in doc["plan"] or "Scan" in doc["plan"]
            assert doc["fingerprint"]
            assert doc["params_hash"]


class TestDisabledByDefault:
    def test_no_system_tables_without_flag(self):
        system = build_slow_system()
        with MaxsonServer(system, ServerConfig(max_workers=2)) as server:
            assert server.telemetry is None
            assert server.execute(SLOW_SQL).rows
            assert not server.system.catalog.table_exists("system", "queries")
