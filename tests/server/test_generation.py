"""Unit tests for generation leases and deferred retirement."""

import threading

from repro.server import GenerationGuard


class FakeSystem:
    def __init__(self):
        self.generation = 0
        self.generation_guard = None


def make_guard():
    system = FakeSystem()
    guard = GenerationGuard(system)
    assert system.generation_guard is guard
    return system, guard


class TestLeases:
    def test_lease_pins_current_generation(self):
        system, guard = make_guard()
        with guard.lease() as generation:
            assert generation == 0
            assert guard.active_leases() == 1
        assert guard.active_leases() == 0

    def test_lease_after_swap_pins_new_generation(self):
        system, guard = make_guard()
        guard.complete_swap(
            0, 1, install=lambda: setattr(system, "generation", 1),
            retire=lambda: None,
        )
        with guard.lease() as generation:
            assert generation == 1


class TestRetirement:
    def test_idle_swap_retires_immediately(self):
        system, guard = make_guard()
        retired = []
        guard.complete_swap(
            0, 1, install=lambda: setattr(system, "generation", 1),
            retire=lambda: retired.append(0),
        )
        assert retired == [0]
        assert guard.snapshot()["retired_immediately"] == 1

    def test_active_lease_defers_retirement(self):
        system, guard = make_guard()
        retired = []
        lease = guard.lease()
        lease.__enter__()
        guard.complete_swap(
            0, 1, install=lambda: setattr(system, "generation", 1),
            retire=lambda: retired.append(0),
        )
        # old generation still leased: tables must survive
        assert retired == []
        assert guard.snapshot()["pending_retirements"] == 1
        lease.__exit__(None, None, None)
        assert retired == [0]
        assert guard.snapshot()["retired_deferred"] == 1

    def test_retirement_waits_for_last_of_many_leases(self):
        system, guard = make_guard()
        retired = []
        first, second = guard.lease(), guard.lease()
        first.__enter__()
        second.__enter__()
        guard.complete_swap(
            0, 1, install=lambda: setattr(system, "generation", 1),
            retire=lambda: retired.append(0),
        )
        first.__exit__(None, None, None)
        assert retired == []  # one lease still out
        second.__exit__(None, None, None)
        assert retired == [0]

    def test_concurrent_leases_and_swaps(self):
        system, guard = make_guard()
        retired = []
        stop = threading.Event()

        def client():
            while not stop.is_set():
                with guard.lease():
                    pass

        threads = [threading.Thread(target=client) for _ in range(4)]
        for t in threads:
            t.start()
        for old in range(20):
            guard.complete_swap(
                old,
                old + 1,
                install=lambda g=old + 1: setattr(system, "generation", g),
                retire=lambda g=old: retired.append(g),
            )
        stop.set()
        for t in threads:
            t.join()
        # every one of the 20 generations was retired exactly once
        assert sorted(retired) == list(range(20))
        assert guard.active_leases() == 0
