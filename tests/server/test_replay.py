"""Tests for the replay driver (workload building + day-by-day replay)."""

from repro.core import MaxsonConfig, MaxsonSystem, PredictorConfig
from repro.server import (
    MaxsonServer,
    ServerConfig,
    build_replay_workload,
    replay,
)
from repro.workload import PathKey, build_queries, load_tables


def make_server(rows=80):
    system = MaxsonSystem(
        config=MaxsonConfig(predictor=PredictorConfig(model="always"))
    )
    factories = load_tables(system.catalog, rows_per_table=rows, days=2)
    queries = build_queries(factories)
    server = MaxsonServer(
        system, ServerConfig(max_workers=4, per_tenant_limit=2)
    )
    return server, queries


class TestWorkload:
    def test_deterministic_for_seed(self):
        server, queries = make_server()
        try:
            a = build_replay_workload(queries, days=2, per_day=10, tenants=3, seed=5)
            b = build_replay_workload(queries, days=2, per_day=10, tenants=3, seed=5)
            assert a == b
            c = build_replay_workload(queries, days=2, per_day=10, tenants=3, seed=6)
            assert a != c
        finally:
            server.shutdown()

    def test_shape(self):
        server, queries = make_server()
        try:
            requests = build_replay_workload(
                queries, days=2, per_day=10, tenants=3, seed=5
            )
            assert len(requests) == 20
            assert {r.day for r in requests} == {0, 1}
            assert all(r.tenant.startswith("tenant-") for r in requests)
            assert all(r.query_id in queries for r in requests)
        finally:
            server.shutdown()


class TestReplay:
    def test_replay_runs_cycles_between_days(self):
        server, queries = make_server()
        try:
            requests = build_replay_workload(
                queries, days=2, per_day=8, tenants=2, seed=3
            )
            report = replay(server, requests)
            assert report.completed == 16
            assert report.failed == 0
            assert report.days == 2
            # one midnight boundary between day 0 and day 1
            assert len(report.midnight_reports) == 1
            assert report.status.generation == 1
            assert report.status.qps > 0
            assert report.status.cache_hit_ratio > 0
        finally:
            server.shutdown()

    def test_replay_interleaves_stats_events(self):
        server, queries = make_server()
        try:
            key = PathKey("prod", "events", "payload", "$.synthetic")
            requests = build_replay_workload(
                queries, days=1, per_day=4, tenants=2, seed=3
            )
            report = replay(
                server, requests, stats_events=[(0, (key, key)), (0, (key,))]
            )
            assert report.status.stats_events_ingested == 2
            assert server.system.collector.count(key, 0) == 3
        finally:
            server.shutdown()

    def test_empty_replay(self):
        server, _ = make_server(rows=40)
        try:
            report = replay(server, [])
            assert report.requests == 0
            assert report.status is not None
        finally:
            server.shutdown()
