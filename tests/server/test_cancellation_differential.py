"""Cancellation-mid-split differential tests (under every fault profile).

A query cancelled partway through a scan must leave the system exactly
as if it had never run: no partially-admitted result-cache entry, no
pending journal record, a clean breaker, and bit-identical results from
the next (uncancelled) run compared against a twin system that never saw
the cancellation.
"""

import pytest

from repro.core import MaxsonConfig, MaxsonSystem, PredictorConfig
from repro.engine import CancelToken, QueryCancelledError, Session
from repro.faults import FaultPolicy, FaultyFileSystem
from repro.jsonlib import dumps
from repro.storage import DataType, Schema, FsError
from repro.workload import PathKey

SQL = "select get_json_object(payload, '$.hot') as h from db.t"

PROFILES = {
    "quiet": {},
    "read_errors": {"read_error_rate": 0.05, "seed": 3},
    "corruption": {"corrupt_rate": 0.2, "seed": 5},
    "torn_appends": {"torn_append_rate": 0.2, "seed": 7},
    "latency_spikes": {
        "latency_spike_rate": 0.3,
        "latency_spike_seconds": 0.002,
        "seed": 9,
    },
}


class CancelAfterChecks(CancelToken):
    """Cancels itself at the Nth cooperative check — a deterministic
    mid-split cancellation point (the N+1th check raises)."""

    __slots__ = ("limit",)

    def __init__(self, limit: int) -> None:
        super().__init__()
        self.limit = limit

    def check(self) -> None:
        if self.checks >= self.limit:
            self.cancel("mid-split test cancellation")
        super().check()


def build_system(policy_kwargs: dict, warm_cache: bool) -> MaxsonSystem:
    session = Session(fs=FaultyFileSystem(policy=FaultPolicy()))
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("db", "t", schema)
    for chunk in range(8):
        rows = [
            (chunk * 10 + i, dumps({"hot": (chunk * 10 + i) % 7, "cold": "c"}))
            for i in range(10)
        ]
        session.catalog.append_rows("db", "t", rows, row_group_size=10)
    session.configure_result_cache(True)
    session.scan_workers = 4
    system = MaxsonSystem(
        session=session,
        config=MaxsonConfig(predictor=PredictorConfig(model="oracle")),
    )
    if warm_cache:
        # Build cache tables while the policy is still quiet, so both
        # twins start from identical on-disk state. Two days of path
        # history make $.hot an MPJP for the midnight predictor.
        key = PathKey("db", "t", "payload", "$.hot")
        for day in (0, 1):
            system.collector.record_query(day, (key, key))
        system.run_midnight_cycle(day=1)
    session.fs.policy = FaultPolicy(**policy_kwargs)
    return system


def run_to_completion(system: MaxsonSystem, attempts: int = 50):
    """Retry transient faults until the query completes (serial client)."""
    last = None
    for _ in range(attempts):
        try:
            return system.sql(SQL, day=1)
        except FsError as exc:
            last = exc
    raise AssertionError(f"query never completed: {last}")


@pytest.mark.parametrize("profile", sorted(PROFILES))
@pytest.mark.parametrize("warm_cache", [False, True], ids=["raw", "cached"])
def test_cancel_mid_split_leaves_no_trace(profile, warm_cache):
    cancelled = build_system(PROFILES[profile], warm_cache)
    control = build_system(PROFILES[profile], warm_cache)

    # --- cancelled run: dies at the 3rd cooperative check ------------
    entries_before = cancelled.session.result_cache_stats()["entries"]
    token = CancelAfterChecks(limit=3)
    with pytest.raises((QueryCancelledError, FsError)):
        # An injected transient fault may beat the cancellation point;
        # either way the attempt must not complete.
        while True:
            cancelled.sql(SQL, day=1, cancel_token=token)
    assert token.cancelled

    # --- invariant: nothing was partially admitted or left open ------
    stats = cancelled.session.result_cache_stats()
    assert stats["entries"] == entries_before
    assert not cancelled.session.probable_result_cache_hit(SQL)
    assert cancelled.journal.pending() == []
    assert cancelled.breaker.quarantined_tables() == []

    # --- differential: next run matches the never-cancelled twin -----
    after_cancel = run_to_completion(cancelled)
    never_cancelled = run_to_completion(control)
    assert sorted(map(str, after_cancel.rows)) == sorted(
        map(str, never_cancelled.rows)
    )
    # And both match the fault-free baseline (degraded, never wrong).
    baseline = cancelled.baseline_sql(SQL)
    assert sorted(map(str, after_cancel.rows)) == sorted(
        map(str, baseline.rows)
    )


def test_cancelled_attempt_does_not_pollute_breaker_window():
    """A cancellation during a cache-table read must not count as a
    cache failure: the breaker window only sees real read/validation
    failures."""
    system = build_system({}, warm_cache=True)
    token = CancelAfterChecks(limit=1)
    with pytest.raises(QueryCancelledError):
        system.sql(SQL, day=1, cancel_token=token)
    assert system.breaker.snapshot() == {"quarantined": [], "half_open": []}
    # The cache path still serves (no quarantine, no fallback).
    result = system.sql(SQL, day=1)
    assert result.metrics.cache_hits > 0
