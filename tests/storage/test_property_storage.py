"""Property-based tests on the storage layer (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import (
    ColumnStats,
    ComparisonSarg,
    DataType,
    OrcFileReader,
    OrcWriter,
    SargOp,
    Schema,
)

rows_strategy = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(min_value=-(2**40), max_value=2**40)),
        st.one_of(st.none(), st.text(max_size=20)),
        st.one_of(
            st.none(),
            st.floats(allow_nan=False, allow_infinity=False, width=32),
        ),
        st.one_of(st.none(), st.booleans()),
    ),
    max_size=60,
)


def _schema() -> Schema:
    return Schema.of(
        ("i", DataType.INT64),
        ("s", DataType.STRING),
        ("f", DataType.FLOAT64),
        ("b", DataType.BOOL),
    )


@given(rows_strategy, st.integers(min_value=1, max_value=7))
@settings(max_examples=60, deadline=None)
def test_orc_round_trip_any_rows(rows, row_group_size):
    writer = OrcWriter(_schema(), row_group_size=row_group_size)
    writer.write_rows(rows)
    reader = OrcFileReader(writer.finish())
    assert reader.read_rows() == rows
    assert reader.row_count == len(rows)


@given(
    st.lists(st.integers(min_value=-100, max_value=100), min_size=1, max_size=50),
    st.integers(min_value=-100, max_value=100),
    st.sampled_from(list(SargOp)[:5]),
    st.integers(min_value=1, max_value=9),
)
@settings(max_examples=120, deadline=None)
def test_sarg_elimination_is_sound(values, literal, op, row_group_size):
    """A SARG-skipped row group must contain zero rows matching the
    corresponding exact predicate."""
    schema = Schema.of(("i", DataType.INT64))
    writer = OrcWriter(schema, row_group_size=row_group_size)
    writer.write_rows([(v,) for v in values])
    reader = OrcFileReader(writer.finish())
    predicate = {
        SargOp.EQ: lambda v: v == literal,
        SargOp.LT: lambda v: v < literal,
        SargOp.LE: lambda v: v <= literal,
        SargOp.GT: lambda v: v > literal,
        SargOp.GE: lambda v: v >= literal,
    }[op]
    sarg = ComparisonSarg("i", op, literal)
    layout = reader.row_group_layout()
    start = 0
    for rg in layout:
        chunk = values[start : start + rg.row_count]
        if not sarg.may_match(rg.column_stats):
            assert not any(predicate(v) for v in chunk)
        start += rg.row_count


@given(st.lists(st.one_of(st.none(), st.integers(-50, 50)), max_size=40))
@settings(max_examples=100, deadline=None)
def test_column_stats_bound_values(values):
    stats = ColumnStats.of(values)
    non_null = [v for v in values if v is not None]
    assert stats.value_count == len(values)
    assert stats.null_count == len(values) - len(non_null)
    if non_null:
        assert stats.minimum == min(non_null)
        assert stats.maximum == max(non_null)
        for v in non_null:
            assert stats.minimum <= v <= stats.maximum
    else:
        assert stats.all_null
