"""Unit tests for the column codec."""

import pytest

from repro.storage.codec import (
    CodecError,
    decode_column,
    encode_column,
    read_varint,
    write_varint,
    zigzag_decode,
    zigzag_encode,
)
from repro.storage.schema import DataType


class TestVarint:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**32, 2**63])
    def test_round_trip(self, value):
        out = bytearray()
        write_varint(out, value)
        decoded, pos = read_varint(bytes(out), 0)
        assert decoded == value
        assert pos == len(out)

    def test_negative_rejected(self):
        with pytest.raises(CodecError):
            write_varint(bytearray(), -1)

    def test_truncated(self):
        out = bytearray()
        write_varint(out, 300)
        with pytest.raises(CodecError):
            read_varint(bytes(out[:-1]), 0)

    def test_overlong_rejected(self):
        with pytest.raises(CodecError):
            read_varint(b"\xff" * 12, 0)


class TestZigzag:
    @pytest.mark.parametrize("value", [0, 1, -1, 63, -64, 2**40, -(2**40)])
    def test_round_trip(self, value):
        assert zigzag_decode(zigzag_encode(value)) == value

    def test_small_magnitudes_stay_small(self):
        assert zigzag_encode(-1) == 1
        assert zigzag_encode(1) == 2


class TestColumnRoundTrip:
    @pytest.mark.parametrize(
        "dtype, values",
        [
            (DataType.INT64, [1, -5, None, 0, 2**50]),
            (DataType.FLOAT64, [1.5, None, -2.25, 0.0]),
            (DataType.STRING, ["a", None, "", "éclair", "x" * 500]),
            (DataType.BOOL, [True, False, None, True]),
            (DataType.INT64, []),
            (DataType.STRING, [None, None]),
        ],
    )
    def test_round_trip(self, dtype, values):
        data = encode_column(dtype, values)
        decoded_dtype, decoded, pos = decode_column(data)
        assert decoded_dtype == dtype
        assert decoded == values
        assert pos == len(data)

    def test_sequential_chunks(self):
        a = encode_column(DataType.INT64, [1, 2])
        b = encode_column(DataType.STRING, ["x"])
        blob = a + b
        dtype_a, values_a, pos = decode_column(blob, 0)
        dtype_b, values_b, end = decode_column(blob, pos)
        assert values_a == [1, 2]
        assert values_b == ["x"]
        assert end == len(blob)

    def test_unknown_tag(self):
        with pytest.raises(CodecError):
            decode_column(b"\x99\x01\x00")

    def test_truncated_string(self):
        data = encode_column(DataType.STRING, ["hello"])
        with pytest.raises(CodecError):
            decode_column(data[:-2])

    def test_truncated_float(self):
        data = encode_column(DataType.FLOAT64, [1.0])
        with pytest.raises(CodecError):
            decode_column(data[:-1])

    def test_empty_input(self):
        with pytest.raises(CodecError):
            decode_column(b"")
