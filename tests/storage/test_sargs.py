"""Unit tests for search arguments (row-group elimination)."""

import pytest

from repro.storage import (
    AndSarg,
    ColumnStats,
    ComparisonSarg,
    OrSarg,
    SargOp,
    always_true,
)


def stats(lo, hi, nulls=0, count=10):
    return {"c": ColumnStats(lo, hi, nulls, count)}


class TestComparison:
    def test_eq_inside_range(self):
        assert ComparisonSarg("c", SargOp.EQ, 5).may_match(stats(0, 10))

    def test_eq_outside_range(self):
        assert not ComparisonSarg("c", SargOp.EQ, 50).may_match(stats(0, 10))

    def test_lt(self):
        assert ComparisonSarg("c", SargOp.LT, 1).may_match(stats(0, 10))
        assert not ComparisonSarg("c", SargOp.LT, 0).may_match(stats(0, 10))

    def test_le(self):
        assert ComparisonSarg("c", SargOp.LE, 0).may_match(stats(0, 10))
        assert not ComparisonSarg("c", SargOp.LE, -1).may_match(stats(0, 10))

    def test_gt(self):
        assert ComparisonSarg("c", SargOp.GT, 9).may_match(stats(0, 10))
        assert not ComparisonSarg("c", SargOp.GT, 10).may_match(stats(0, 10))

    def test_ge(self):
        assert ComparisonSarg("c", SargOp.GE, 10).may_match(stats(0, 10))
        assert not ComparisonSarg("c", SargOp.GE, 11).may_match(stats(0, 10))

    def test_string_range(self):
        s = stats("aaa", "mmm")
        assert ComparisonSarg("c", SargOp.EQ, "bbb").may_match(s)
        assert not ComparisonSarg("c", SargOp.EQ, "zzz").may_match(s)

    def test_missing_stats_conservative(self):
        assert ComparisonSarg("other", SargOp.EQ, 5).may_match(stats(0, 10))

    def test_all_null_group_never_matches_comparison(self):
        s = stats(None, None, nulls=10, count=10)
        assert not ComparisonSarg("c", SargOp.EQ, 5).may_match(s)

    def test_is_null(self):
        assert ComparisonSarg("c", SargOp.IS_NULL).may_match(stats(0, 10, nulls=1))
        assert not ComparisonSarg("c", SargOp.IS_NULL).may_match(stats(0, 10, nulls=0))

    def test_is_not_null(self):
        assert ComparisonSarg("c", SargOp.IS_NOT_NULL).may_match(stats(0, 10))
        all_null = stats(None, None, nulls=10, count=10)
        assert not ComparisonSarg("c", SargOp.IS_NOT_NULL).may_match(all_null)

    def test_incomparable_types_conservative(self):
        # int literal against string stats: cannot eliminate.
        assert ComparisonSarg("c", SargOp.EQ, 5).may_match(stats("a", "z"))

    def test_numeric_cross_type_comparable(self):
        assert not ComparisonSarg("c", SargOp.GT, 10.5).may_match(stats(0, 10))

    def test_columns(self):
        assert ComparisonSarg("c", SargOp.EQ, 1).columns() == {"c"}


class TestCompound:
    def test_and_eliminates_if_any_child_does(self):
        sarg = AndSarg(
            (
                ComparisonSarg("c", SargOp.GE, 0),
                ComparisonSarg("c", SargOp.GT, 10),
            )
        )
        assert not sarg.may_match(stats(0, 10))

    def test_and_passes_when_all_pass(self):
        sarg = AndSarg(
            (
                ComparisonSarg("c", SargOp.GE, 0),
                ComparisonSarg("c", SargOp.LE, 10),
            )
        )
        assert sarg.may_match(stats(0, 10))

    def test_or_requires_all_children_eliminable(self):
        sarg = OrSarg(
            (
                ComparisonSarg("c", SargOp.GT, 100),
                ComparisonSarg("c", SargOp.LT, -100),
            )
        )
        assert not sarg.may_match(stats(0, 10))
        sarg2 = OrSarg(
            (
                ComparisonSarg("c", SargOp.GT, 100),
                ComparisonSarg("c", SargOp.EQ, 5),
            )
        )
        assert sarg2.may_match(stats(0, 10))

    def test_empty_or_true(self):
        assert OrSarg(()).may_match(stats(0, 10))

    def test_always_true(self):
        assert always_true().may_match(stats(0, 10))
        assert always_true().columns() == set()

    def test_compound_columns(self):
        sarg = AndSarg(
            (ComparisonSarg("a", SargOp.EQ, 1), ComparisonSarg("b", SargOp.EQ, 2))
        )
        assert sarg.columns() == {"a", "b"}


class TestColumnStatsOf:
    def test_of_values(self):
        s = ColumnStats.of([3, 1, None, 2])
        assert (s.minimum, s.maximum, s.null_count, s.value_count) == (1, 3, 1, 4)

    def test_of_all_null(self):
        s = ColumnStats.of([None, None])
        assert s.all_null
        assert s.minimum is None

    def test_of_empty(self):
        s = ColumnStats.of([])
        assert s.value_count == 0
        assert s.all_null


class TestSoundnessProperty:
    """SARG elimination must be sound: a skipped group has no matches."""

    @pytest.mark.parametrize("op,literal", [
        (SargOp.EQ, 5), (SargOp.LT, 3), (SargOp.LE, 3),
        (SargOp.GT, 7), (SargOp.GE, 7),
    ])
    def test_no_false_eliminations(self, op, literal):
        import random

        rng = random.Random(0)
        ops = {
            SargOp.EQ: lambda v: v == literal,
            SargOp.LT: lambda v: v < literal,
            SargOp.LE: lambda v: v <= literal,
            SargOp.GT: lambda v: v > literal,
            SargOp.GE: lambda v: v >= literal,
        }
        for _ in range(50):
            values = [rng.randint(0, 10) for _ in range(20)]
            group_stats = {"c": ColumnStats.of(values)}
            sarg = ComparisonSarg("c", op, literal)
            if not sarg.may_match(group_stats):
                assert not any(ops[op](v) for v in values)
