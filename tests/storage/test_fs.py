"""Unit tests for the simulated block file system."""

import pytest

from repro.storage import BlockFileSystem, FsError


class TestCreateReadDelete:
    def test_create_and_read(self, fs: BlockFileSystem):
        fs.create("/a/b.txt", b"hello")
        assert fs.read("/a/b.txt") == b"hello"

    def test_create_existing_fails(self, fs: BlockFileSystem):
        fs.create("/a", b"x")
        with pytest.raises(FsError):
            fs.create("/a", b"y")

    def test_read_missing_fails(self, fs: BlockFileSystem):
        with pytest.raises(FsError):
            fs.read("/nope")

    def test_ranged_read(self, fs: BlockFileSystem):
        fs.create("/f", b"0123456789")
        assert fs.read("/f", offset=2, length=3) == b"234"
        assert fs.read("/f", offset=8) == b"89"

    def test_append_only(self, fs: BlockFileSystem):
        fs.create("/f", b"ab")
        fs.append("/f", b"cd")
        assert fs.read("/f") == b"abcd"

    def test_append_missing_fails(self, fs: BlockFileSystem):
        with pytest.raises(FsError):
            fs.append("/ghost", b"x")

    def test_delete_file(self, fs: BlockFileSystem):
        fs.create("/f", b"x")
        fs.delete("/f")
        assert not fs.exists("/f")

    def test_delete_directory_recursive(self, fs: BlockFileSystem):
        fs.create("/d/a", b"1")
        fs.create("/d/sub/b", b"2")
        fs.delete("/d")
        assert not fs.exists("/d/a")
        assert not fs.exists("/d/sub/b")

    def test_delete_missing_is_idempotent(self, fs: BlockFileSystem):
        # Retry/recovery paths re-issue deletes they may have completed;
        # a missing path reports False instead of raising.
        assert fs.delete("/ghost") is False
        fs.create("/f", b"x")
        assert fs.delete("/f") is True
        assert fs.delete("/f") is False
        fs.create("/d/a", b"1")
        assert fs.delete("/d") is True
        assert fs.delete("/d") is False

    def test_path_normalisation(self, fs: BlockFileSystem):
        fs.create("a/b", b"x")
        assert fs.read("/a/b") == b"x"

    def test_double_slash_rejected(self, fs: BlockFileSystem):
        with pytest.raises(FsError):
            fs.create("/a//b", b"x")


class TestBlocks:
    def test_block_count(self):
        fs = BlockFileSystem(block_size=4)
        fs.create("/f", b"123456789")  # 9 bytes -> 3 blocks of 4
        assert fs.status("/f").block_count == 3
        assert fs.blocks_of("/f") == [(0, 4), (4, 4), (8, 1)]

    def test_empty_file_zero_blocks(self, fs: BlockFileSystem):
        fs.create("/f", b"")
        assert fs.status("/f").block_count == 0
        assert fs.blocks_of("/f") == []


class TestDirectories:
    def test_listing_sorted(self, fs: BlockFileSystem):
        fs.create("/t/part-00002", b"2")
        fs.create("/t/part-00000", b"0")
        fs.create("/t/part-00001", b"1")
        names = [s.path for s in fs.list_directory("/t")]
        assert names == ["/t/part-00000", "/t/part-00001", "/t/part-00002"]

    def test_listing_excludes_nested(self, fs: BlockFileSystem):
        fs.create("/t/a", b"1")
        fs.create("/t/sub/b", b"2")
        assert [s.path for s in fs.list_directory("/t")] == ["/t/a"]

    def test_file_splits_order(self, fs: BlockFileSystem):
        fs.create("/t/b", b"")
        fs.create("/t/a", b"")
        assert fs.file_splits("/t") == ["/t/a", "/t/b"]

    def test_directory_size(self, fs: BlockFileSystem):
        fs.create("/t/a", b"12345")
        fs.create("/t/b", b"1")
        assert fs.directory_size("/t") == 6
        assert fs.directory_size("/missing") == 0

    def test_directory_mtime_is_latest(self):
        ticks = iter(range(100))
        fs = BlockFileSystem(clock=lambda: float(next(ticks)))
        fs.create("/t/a", b"")
        fs.create("/t/b", b"")
        assert fs.directory_mtime("/t") == 1.0

    def test_directory_mtime_missing_raises(self, fs: BlockFileSystem):
        with pytest.raises(FsError):
            fs.directory_mtime("/missing")


class TestClockAndStats:
    def test_injected_clock_controls_mtime(self):
        fs = BlockFileSystem(clock=lambda: 42.0)
        fs.create("/f", b"x")
        assert fs.status("/f").modification_time == 42.0

    def test_append_advances_mtime(self):
        ticks = iter([1.0, 2.0])
        fs = BlockFileSystem(clock=lambda: next(ticks))
        fs.create("/f", b"x")
        fs.append("/f", b"y")
        assert fs.status("/f").modification_time == 2.0

    def test_io_stats(self, fs: BlockFileSystem):
        fs.create("/f", b"12345")
        fs.read("/f")
        fs.read("/f", offset=0, length=2)
        assert fs.stats.bytes_written == 5
        assert fs.stats.bytes_read == 7
        assert fs.stats.reads == 2
        assert fs.stats.writes == 1
        fs.stats.reset()
        assert fs.stats.bytes_read == 0
