"""MORC v2 integrity: per-stripe checksums and the footer CRC."""

import struct

import pytest

from repro.storage import DataType, OrcWriter, Schema, checksum_of
from repro.storage.orc import (
    MAGIC,
    CorruptStripeError,
    OrcError,
    OrcFileReader,
    _encode_footer,
)

SCHEMA = Schema.of(("id", DataType.INT64), ("name", DataType.STRING))


def build_file(rows=40, row_group_size=10, rows_per_stripe=20) -> bytes:
    writer = OrcWriter(SCHEMA, row_group_size=row_group_size, stripe_bytes=1 << 30)
    for i in range(rows):
        writer.write_row((i, f"n{i}"))
        if (i + 1) % rows_per_stripe == 0:
            writer._flush_stripe()
    return writer.finish()


class TestRoundTrip:
    def test_v2_files_round_trip(self):
        blob = build_file()
        reader = OrcFileReader(blob)
        assert reader.version == 2
        assert reader.read_rows() == [(i, f"n{i}") for i in range(40)]

    def test_every_stripe_carries_a_checksum(self):
        reader = OrcFileReader(build_file())
        assert reader.stripe_count == 2
        for stripe in reader.stripes:
            span = reader._data[stripe.offset : stripe.offset + stripe.length]
            assert stripe.checksum == checksum_of(span)


class TestCorruptionDetection:
    def test_stripe_payload_flip_raises(self):
        blob = bytearray(build_file())
        stripe = OrcFileReader(bytes(blob)).stripes[0]
        blob[stripe.offset + stripe.length // 2] ^= 0xFF
        corrupted = OrcFileReader(bytes(blob))  # footer still intact
        with pytest.raises(CorruptStripeError):
            corrupted.read_rows()

    def test_footer_flip_raises_at_open(self):
        blob = bytearray(build_file())
        last = OrcFileReader(bytes(blob)).stripes[-1]
        # flip a byte just past the stripes (inside the footer)
        blob[last.offset + last.length + 2] ^= 0xFF
        with pytest.raises(OrcError):
            OrcFileReader(bytes(blob))

    def test_every_position_flip_is_detected(self):
        """Any single-byte flip anywhere in the file raises before any
        value is returned — corruption degrades, never lies."""
        blob = build_file(rows=20, row_group_size=5, rows_per_stripe=10)
        for position in range(len(blob)):
            mutated = bytearray(blob)
            mutated[position] ^= 0xFF
            with pytest.raises(OrcError):
                OrcFileReader(bytes(mutated)).read_rows()

    def test_skipped_stripe_is_not_verified(self):
        """Lazy verification: a corrupt stripe whose row groups are all
        masked out never gets hashed, so the read still succeeds."""
        blob = bytearray(build_file())
        first = OrcFileReader(bytes(blob)).stripes[0]
        blob[first.offset + 1] ^= 0xFF
        corrupted = OrcFileReader(bytes(blob))
        groups_in_first = len(first.row_groups)
        total_groups = len(corrupted.row_group_layout())
        mask = [False] * groups_in_first + [True] * (
            total_groups - groups_in_first
        )
        rows = corrupted.read_rows(row_group_mask=mask)
        assert [r[0] for r in rows] == list(range(20, 40))
        # touching the corrupt stripe still raises
        with pytest.raises(CorruptStripeError):
            corrupted.read_rows()


class TestBackwardCompatibility:
    def test_v1_files_still_readable(self):
        """A pre-checksum (version 1) file opens and reads normally."""
        blob = build_file()
        reader = OrcFileReader(blob)
        # re-serialise as v1: version byte 1, v1 footer, no footer CRC
        footer = _encode_footer(reader.schema, reader.stripes, version=1)
        body_end = max(s.offset + s.length for s in reader.stripes)
        v1 = bytearray()
        v1 += MAGIC
        v1.append(1)
        v1 += blob[len(MAGIC) + 1 : body_end]
        v1 += footer
        v1 += struct.pack("<I", len(footer))
        v1 += MAGIC
        v1_reader = OrcFileReader(bytes(v1))
        assert v1_reader.version == 1
        assert v1_reader.read_rows() == reader.read_rows()
