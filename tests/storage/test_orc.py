"""Unit tests for the ORC-like file format."""

import pytest

from repro.storage import (
    DataType,
    OrcError,
    OrcFileReader,
    OrcWriter,
    Schema,
)


def make_schema() -> Schema:
    return Schema.of(
        ("id", DataType.INT64),
        ("name", DataType.STRING),
        ("score", DataType.FLOAT64),
        ("ok", DataType.BOOL),
    )


def write_rows(rows, row_group_size=4, stripe_bytes=1 << 20) -> bytes:
    writer = OrcWriter(
        make_schema(), row_group_size=row_group_size, stripe_bytes=stripe_bytes
    )
    writer.write_rows(rows)
    return writer.finish()


def sample_rows(n):
    return [(i, f"name{i}", i * 0.5, i % 2 == 0) for i in range(n)]


class TestRoundTrip:
    def test_basic(self):
        rows = sample_rows(10)
        reader = OrcFileReader(write_rows(rows))
        assert reader.row_count == 10
        assert reader.read_rows() == rows

    def test_empty_file(self):
        reader = OrcFileReader(write_rows([]))
        assert reader.row_count == 0
        assert reader.read_rows() == []

    def test_nulls_survive(self):
        rows = [(None, None, None, None), (1, "a", 1.0, True)]
        reader = OrcFileReader(write_rows(rows))
        assert reader.read_rows() == rows

    def test_schema_preserved(self):
        reader = OrcFileReader(write_rows(sample_rows(1)))
        assert reader.schema.names == ["id", "name", "score", "ok"]
        assert reader.schema.field("score").dtype == DataType.FLOAT64

    def test_column_projection(self):
        reader = OrcFileReader(write_rows(sample_rows(5)))
        columns, _ = reader.read_columns(["name", "id"])
        assert set(columns) == {"name", "id"}
        assert columns["id"] == list(range(5))

    def test_unknown_column_raises(self):
        reader = OrcFileReader(write_rows(sample_rows(1)))
        with pytest.raises(Exception):
            reader.read_columns(["nope"])


class TestRowGroups:
    def test_group_layout(self):
        reader = OrcFileReader(write_rows(sample_rows(10), row_group_size=4))
        layout = reader.row_group_layout()
        assert [rg.row_count for rg in layout] == [4, 4, 2]

    def test_group_statistics(self):
        reader = OrcFileReader(write_rows(sample_rows(8), row_group_size=4))
        layout = reader.row_group_layout()
        first = layout[0].column_stats["id"]
        assert (first.minimum, first.maximum) == (0, 3)
        second = layout[1].column_stats["id"]
        assert (second.minimum, second.maximum) == (4, 7)

    def test_null_stats(self):
        rows = [(None, "a", 1.0, True), (None, "b", 2.0, False)]
        reader = OrcFileReader(write_rows(rows))
        stats = reader.row_group_layout()[0].column_stats["id"]
        assert stats.all_null
        assert stats.null_count == 2

    def test_mask_skips_groups(self):
        reader = OrcFileReader(write_rows(sample_rows(12), row_group_size=4))
        columns, _ = reader.read_columns(["id"], row_group_mask=[True, False, True])
        assert columns["id"] == [0, 1, 2, 3, 8, 9, 10, 11]

    def test_skipped_groups_cost_no_bytes(self):
        reader = OrcFileReader(write_rows(sample_rows(12), row_group_size=4))
        _, all_bytes = reader.read_columns(["id"])
        _, some_bytes = reader.read_columns(
            ["id"], row_group_mask=[True, False, False]
        )
        assert some_bytes < all_bytes

    def test_projection_cost_less_than_full(self):
        reader = OrcFileReader(write_rows(sample_rows(20)))
        _, full = reader.read_columns()
        _, one = reader.read_columns(["id"])
        assert one < full


class TestStripes:
    def test_small_stripe_budget_multiple_stripes(self):
        data = write_rows(sample_rows(50), row_group_size=5, stripe_bytes=200)
        reader = OrcFileReader(data)
        assert reader.stripe_count > 1
        assert reader.row_count == 50
        assert reader.read_rows() == sample_rows(50)

    def test_default_single_stripe(self):
        reader = OrcFileReader(write_rows(sample_rows(50)))
        assert reader.stripe_count == 1


class TestWriterErrors:
    def test_wrong_arity(self):
        writer = OrcWriter(make_schema())
        with pytest.raises(OrcError):
            writer.write_row((1, "a"))

    def test_type_mismatch(self):
        writer = OrcWriter(make_schema())
        with pytest.raises(Exception):
            writer.write_row(("not-int", "a", 1.0, True))

    def test_int_ok_in_float_column(self):
        writer = OrcWriter(make_schema())
        writer.write_row((1, "a", 2, True))  # int into FLOAT64
        reader = OrcFileReader(writer.finish())
        assert reader.read_rows()[0][2] == 2

    def test_double_finish(self):
        writer = OrcWriter(make_schema())
        writer.finish()
        with pytest.raises(OrcError):
            writer.finish()

    def test_write_after_finish(self):
        writer = OrcWriter(make_schema())
        writer.finish()
        with pytest.raises(OrcError):
            writer.write_row((1, "a", 1.0, True))

    def test_bad_row_group_size(self):
        with pytest.raises(OrcError):
            OrcWriter(make_schema(), row_group_size=0)


class TestCorruption:
    def test_bad_magic(self):
        with pytest.raises(OrcError):
            OrcFileReader(b"NOPE" + b"\x00" * 32)

    def test_truncated_tail(self):
        data = write_rows(sample_rows(3))
        with pytest.raises(OrcError):
            OrcFileReader(data[:-3])

    def test_corrupt_footer_length(self):
        data = bytearray(write_rows(sample_rows(3)))
        data[-5] = 0xFF  # blow up the footer length field
        with pytest.raises(OrcError):
            OrcFileReader(bytes(data))
