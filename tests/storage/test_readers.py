"""Unit tests for the SARG-aware OrcReader."""

import pytest

from repro.storage import (
    BlockFileSystem,
    ComparisonSarg,
    DataType,
    OrcError,
    OrcReader,
    OrcWriter,
    SargOp,
    Schema,
)


def load_file(fs: BlockFileSystem, n=20, row_group_size=5, stripe_bytes=1 << 20):
    schema = Schema.of(("id", DataType.INT64), ("tag", DataType.STRING))
    writer = OrcWriter(schema, row_group_size=row_group_size, stripe_bytes=stripe_bytes)
    writer.write_rows([(i, f"t{i % 3}") for i in range(n)])
    fs.create("/t/part-00000.orc", writer.finish())
    return "/t/part-00000.orc"


class TestPlainRead:
    def test_full_read(self, fs):
        path = load_file(fs)
        result = OrcReader(fs, path).read()
        assert result.rows_read == 20
        assert result.row_groups_read == 4
        assert result.row_groups_skipped == 0

    def test_column_pruning(self, fs):
        path = load_file(fs)
        reader = OrcReader(fs, path, columns=["id"])
        result = reader.read()
        assert set(result.columns) == {"id"}

    def test_read_rows_order(self, fs):
        path = load_file(fs, n=6)
        reader = OrcReader(fs, path, columns=["tag", "id"])
        rows = reader.read_rows()
        assert rows[0] == ("t0", 0)


class TestSargElimination:
    def test_groups_skipped(self, fs):
        path = load_file(fs)  # ids 0..19, groups of 5
        reader = OrcReader(fs, path, sarg=ComparisonSarg("id", SargOp.GE, 10))
        result = reader.read()
        assert result.row_groups_read == 2
        assert result.columns["id"] == list(range(10, 20))

    def test_mask_exposed(self, fs):
        path = load_file(fs)
        reader = OrcReader(fs, path, sarg=ComparisonSarg("id", SargOp.LT, 5))
        assert reader.row_group_mask == [True, False, False, False]

    def test_elimination_saves_bytes(self, fs):
        path = load_file(fs)
        full = OrcReader(fs, path).read()
        some = OrcReader(fs, path, sarg=ComparisonSarg("id", SargOp.GE, 15)).read()
        assert some.bytes_read < full.bytes_read


class TestSharedMask:
    def test_share_and_intersect(self, fs):
        path = load_file(fs)
        reader = OrcReader(fs, path, sarg=ComparisonSarg("id", SargOp.GE, 5))
        # own mask: F T T T ; shared: T T F F -> combined F T F F
        reader.share_row_group_mask([True, True, False, False])
        assert reader.row_group_mask == [False, True, False, False]
        assert reader.read().columns["id"] == list(range(5, 10))

    def test_share_length_mismatch_raises(self, fs):
        path = load_file(fs)
        reader = OrcReader(fs, path)
        reader.share_row_group_mask([True])
        with pytest.raises(OrcError):
            _ = reader.row_group_mask

    def test_can_align_single_stripe(self, fs):
        path = load_file(fs)
        assert OrcReader(fs, path).can_align_row_groups()

    def test_cannot_align_multi_stripe(self, fs):
        path = load_file(fs, n=200, row_group_size=10, stripe_bytes=500)
        reader = OrcReader(fs, path)
        assert reader.stripe_count > 1
        assert not reader.can_align_row_groups()
