"""Integration: every Table II query is answered identically with and
without Maxson, at every cache-budget level."""

import pytest

from repro.core import MaxsonConfig, MaxsonSystem, PredictorConfig
from repro.engine import Session
from repro.storage import BlockFileSystem
from repro.workload import build_queries, load_tables


@pytest.fixture(scope="module")
def env():
    session = Session(fs=BlockFileSystem())
    factories = load_tables(
        session.catalog, rows_per_table=120, days=3, row_group_size=20
    )
    queries = build_queries(factories, metric_threshold=7000)
    system = MaxsonSystem(
        session=session,
        config=MaxsonConfig(predictor=PredictorConfig(model="oracle")),
    )
    for query in queries.values():
        planned = session.compile(query.sql)
        for _ in range(2):
            system.collector.record_planned(0, planned.referenced_json_paths)
    system.current_day = 0
    baselines = {
        qid: sorted(map(repr, system.baseline_sql(q.sql).rows))
        for qid, q in queries.items()
    }
    return system, queries, baselines


QUERY_IDS = [f"Q{i}" for i in range(1, 11)]


class TestFullBudget:
    @pytest.fixture(scope="class", autouse=True)
    def cache_all(self, env):
        system, queries, _ = env
        system.cache_paths_directly(
            system.collector.universe, budget_bytes=1 << 40
        )

    @pytest.mark.parametrize("query_id", QUERY_IDS)
    def test_results_identical(self, env, query_id):
        system, queries, baselines = env
        result = system.sql(queries[query_id].sql)
        assert sorted(map(repr, result.rows)) == baselines[query_id]

    @pytest.mark.parametrize("query_id", QUERY_IDS)
    def test_no_parsing_when_fully_cached(self, env, query_id):
        system, queries, _ = env
        result = system.sql(queries[query_id].sql)
        assert result.metrics.parse_documents == 0


class TestPartialBudget:
    @pytest.fixture(scope="class", autouse=True)
    def cache_half(self, env):
        system, _, _ = env
        total = sum(
            system.scoring.measure(key).estimated_total_bytes
            for key in system.collector.universe
        )
        system.cache_paths_directly(
            system.collector.universe, budget_bytes=total // 2
        )

    @pytest.mark.parametrize("query_id", QUERY_IDS)
    def test_results_identical_under_partial_cache(self, env, query_id):
        system, queries, baselines = env
        result = system.sql(queries[query_id].sql)
        assert sorted(map(repr, result.rows)) == baselines[query_id]


class TestNoCache:
    @pytest.mark.parametrize("query_id", QUERY_IDS)
    def test_results_identical_with_empty_cache(self, env, query_id):
        system, queries, baselines = env
        system.cacher.drop_all()
        result = system.sql(queries[query_id].sql)
        assert sorted(map(repr, result.rows)) == baselines[query_id]
