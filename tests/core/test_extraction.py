"""Tests for the format-dispatching value extractor."""

import pytest

from repro.core.extraction import ValueExtractor, path_format


class TestPathFormat:
    def test_json_paths(self):
        assert path_format("$.a.b") == "json"
        assert path_format("  $.x") == "json"

    def test_xml_paths(self):
        assert path_format("/a/b") == "xml"
        assert path_format(" /a/@id") == "xml"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            path_format("a.b")


class TestDecode:
    def test_json_only(self):
        extractor = ValueExtractor()
        documents = extractor.decode('{"a": 1}', {"json"})
        assert documents == {"json": {"a": 1}}

    def test_xml_only(self):
        extractor = ValueExtractor()
        documents = extractor.decode("<a>1</a>", {"xml"})
        assert documents["xml"].tag == "a"

    def test_both_formats_from_one_text(self):
        extractor = ValueExtractor()
        documents = extractor.decode('{"a": 1}', {"json", "xml"})
        assert documents["json"] == {"a": 1}
        assert documents["xml"] is None  # not valid XML

    def test_non_string_input(self):
        extractor = ValueExtractor()
        assert extractor.decode(None, {"json"}) == {"json": None}
        assert extractor.decode(42, {"xml"}) == {"xml": None}

    def test_malformed_yields_none(self):
        extractor = ValueExtractor()
        assert extractor.decode("{oops", {"json"}) == {"json": None}
        assert extractor.decode("<oops", {"xml"}) == {"xml": None}


class TestEvaluate:
    def test_json_evaluation(self):
        extractor = ValueExtractor()
        documents = extractor.decode('{"a": {"b": 7}}', {"json"})
        assert extractor.evaluate(documents, "$.a.b") == 7

    def test_xml_evaluation(self):
        extractor = ValueExtractor()
        documents = extractor.decode("<a><b>7</b></a>", {"xml"})
        assert extractor.evaluate(documents, "/a/b") == 7

    def test_missing_document_yields_none(self):
        extractor = ValueExtractor()
        assert extractor.evaluate({}, "$.a") is None
        assert extractor.evaluate({"json": None}, "$.a") is None

    def test_extract_one_shot(self):
        extractor = ValueExtractor()
        assert extractor.extract('{"v": 5}', "$.v") == 5
        assert extractor.extract("<r><v>5</v></r>", "/r/v") == 5
        assert extractor.extract("garbage", "$.v") is None

    def test_parse_cost_accounted(self):
        extractor = ValueExtractor()
        extractor.extract('{"v": 1}', "$.v")
        extractor.extract("<r/>", "/r")
        assert extractor.json_parser.stats.documents == 1
        assert extractor.xml_parser.stats.documents == 1
