"""Circuit breaker + graceful degradation of cache reads."""

from repro.core import MaxsonSystem, cache_table_name
from repro.core.resilience import CacheCircuitBreaker, ResilienceStats
from repro.engine import Session
from repro.jsonlib import dumps
from repro.storage import BlockFileSystem, DataType, Schema
from repro.workload import PathKey

KEYS = [PathKey("db", "t", "payload", "$.m")]
SQL = "select id, get_json_object(payload, '$.m') as m from db.t"


def build_system(rows=30) -> MaxsonSystem:
    session = Session(fs=BlockFileSystem())
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("db", "t", schema)
    session.catalog.append_rows(
        "db", "t", [(i, dumps({"m": i})) for i in range(rows)], row_group_size=10
    )
    return MaxsonSystem(session=session)


def corrupt_first_cache_file(system: MaxsonSystem) -> str:
    cache_table = cache_table_name("db", "t")
    from repro.core.cacher import CACHE_DATABASE

    path = system.catalog.table_files(CACHE_DATABASE, cache_table)[0]
    blob = bytearray(system.session.fs.read(path))
    blob[len(blob) // 2] ^= 0xFF
    system.session.fs.delete(path)
    system.session.fs.create(path, bytes(blob))
    return cache_table


class TestCacheCircuitBreaker:
    def test_closed_by_default(self):
        breaker = CacheCircuitBreaker()
        assert breaker.allows("t") is True
        assert breaker.quarantined_tables() == []

    def test_open_after_threshold_failures(self):
        clock = [0.0]
        breaker = CacheCircuitBreaker(
            quarantine_seconds=10.0, failure_threshold=2, clock=lambda: clock[0]
        )
        breaker.record_failure("t")
        assert breaker.allows("t") is True  # below threshold
        breaker.record_failure("t")
        assert breaker.allows("t") is False
        assert breaker.quarantined_tables() == ["t"]

    def test_half_open_after_quarantine_and_close_on_success(self):
        clock = [0.0]
        breaker = CacheCircuitBreaker(
            quarantine_seconds=10.0, clock=lambda: clock[0]
        )
        breaker.record_failure("t")
        assert breaker.allows("t") is False
        clock[0] = 11.0
        # quarantine elapsed: this pass doubles as the re-probe
        assert breaker.allows("t") is True
        assert breaker.snapshot()["half_open"] == ["t"]
        breaker.record_success("t")
        assert breaker.snapshot() == {"quarantined": [], "half_open": []}

    def test_half_open_failure_requarantines(self):
        clock = [0.0]
        breaker = CacheCircuitBreaker(
            quarantine_seconds=10.0, clock=lambda: clock[0]
        )
        breaker.record_failure("t")
        clock[0] = 11.0
        assert breaker.allows("t") is True  # half-open probe
        clock[0] = 12.0
        breaker.record_failure("t")
        assert breaker.allows("t") is False
        clock[0] = 21.0
        assert breaker.allows("t") is False  # new quarantine from t=12
        clock[0] = 23.0
        assert breaker.allows("t") is True


class TestResilienceStats:
    def test_counters(self):
        stats = ResilienceStats()
        stats.add("fallback_queries")
        stats.add("fallback_splits", 3)
        assert stats.get("fallback_queries") == 1
        assert stats.snapshot()["fallback_splits"] == 3
        assert stats.total_degraded_events == 4


class TestGracefulDegradation:
    def test_corrupt_cache_answers_match_baseline(self):
        system = build_system()
        system.cacher.populate(KEYS)
        corrupt_first_cache_file(system)
        degraded = system.sql(SQL)
        baseline = system.baseline_sql(SQL)
        assert sorted(map(str, degraded.rows)) == sorted(
            map(str, baseline.rows)
        )
        assert system.resilience.get("fallback_queries") == 1
        assert system.resilience.get("corruption_events") >= 1

    def test_quarantine_skips_cache_at_plan_time(self):
        system = build_system()
        system.cacher.populate(KEYS)
        cache_table = corrupt_first_cache_file(system)
        system.sql(SQL)  # trips the breaker via the read failure
        assert cache_table in system.breaker.quarantined_tables()
        before = system.resilience.get("fallback_queries")
        result = system.sql(SQL)  # planned as a miss: no combiner involved
        assert system.resilience.get("quarantine_skips") == 1
        assert system.resilience.get("fallback_queries") == before
        assert [r["m"] for r in result.rows] == [r["id"] for r in result.rows]

    def test_reprobe_after_quarantine_recovers(self):
        system = build_system()
        system.config.quarantine_seconds = 0.0
        system.breaker.quarantine_seconds = 0.0
        system.cacher.populate(KEYS)
        cache_table = corrupt_first_cache_file(system)
        system.sql(SQL)  # fallback + breaker opens
        # repair the cache file (rebuild the whole generation)
        system.cacher.populate(KEYS)
        # zero-second quarantine: the next query is the half-open probe,
        # reads the repaired cache successfully and closes the breaker
        result = system.sql(SQL)
        assert [r["m"] for r in result.rows] == [r["id"] for r in result.rows]
        assert system.breaker.snapshot() == {
            "quarantined": [],
            "half_open": [],
        }
        assert cache_table not in system.breaker.quarantined_tables()
