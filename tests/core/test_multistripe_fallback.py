"""The paper only shares skip masks for single-stripe files (§IV-F);
multi-stripe files must fall back to full reads — correctly."""

import pytest

from repro.core import MaxsonSystem
from repro.engine import Session
from repro.jsonlib import dumps
from repro.storage import BlockFileSystem, DataType, Schema
from repro.workload import PathKey


def build_multistripe_system() -> MaxsonSystem:
    """Raw table whose single file holds multiple stripes."""
    session = Session(fs=BlockFileSystem())
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("db", "t", schema)
    rows = [(i, dumps({"m": i, "pad": "x" * 60})) for i in range(400)]
    session.catalog.append_rows(
        "db", "t", rows, row_group_size=20, stripe_bytes=4000
    )
    return MaxsonSystem(session=session)


SQL = (
    "select id, get_json_object(payload, '$.m') as m from db.t "
    "where get_json_object(payload, '$.m') >= 380"
)


class TestMultiStripe:
    def test_raw_file_is_multi_stripe(self):
        system = build_multistripe_system()
        from repro.storage import OrcFileReader

        path = system.catalog.table_files("db", "t")[0]
        reader = OrcFileReader(system.session.fs.read(path))
        assert reader.stripe_count > 1

    def test_results_correct_without_mask_sharing(self):
        system = build_multistripe_system()
        baseline = system.baseline_sql(SQL)
        system.cacher.populate([PathKey("db", "t", "payload", "$.m")])
        result = system.sql(SQL)
        assert result.rows == baseline.rows
        assert [r["m"] for r in result.rows] == list(range(380, 400))
        # no parsing, but also no row-group elimination (fallback)
        assert result.metrics.parse_documents == 0
        assert result.metrics.row_groups_skipped == 0

    def test_cache_only_read_still_works(self):
        system = build_multistripe_system()
        sql = "select get_json_object(payload, '$.m') as m from db.t"
        baseline = system.baseline_sql(sql)
        system.cacher.populate([PathKey("db", "t", "payload", "$.m")])
        result = system.sql(sql)
        assert result.rows == baseline.rows
