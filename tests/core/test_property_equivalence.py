"""Property test: Maxson plan rewriting never changes query results.

For randomly generated queries over a table with randomly chosen cached
path subsets, the rewritten (cache-reading, pushdown-enabled) execution
must produce exactly the rows of the baseline execution. This is the
global correctness contract of Algorithms 1-3 combined.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import MaxsonSystem
from repro.engine import Session
from repro.jsonlib import dumps
from repro.storage import BlockFileSystem, DataType, Schema
from repro.workload import PathKey

PATHS = ["$.a", "$.b", "$.deep.c", "$.s", "$.maybe"]


@pytest.fixture(scope="module")
def system() -> MaxsonSystem:
    session = Session(fs=BlockFileSystem())
    schema = Schema.of(
        ("id", DataType.INT64),
        ("tag", DataType.STRING),
        ("payload", DataType.STRING),
    )
    session.catalog.create_table("db", "t", schema)
    rows = []
    for i in range(120):
        doc = {
            "a": i % 40,
            "b": f"b{i % 6}",
            "deep": {"c": i * 3 % 100},
            "s": (i * 13) % 7,
        }
        if i % 4 == 0:
            doc["maybe"] = i  # sparse field -> NULLs for most rows
        rows.append((i, f"t{i % 3}", dumps(doc)))
    session.catalog.append_rows("db", "t", rows, row_group_size=20)
    return MaxsonSystem(session=session)


def _gjo(path: str) -> str:
    return f"get_json_object(payload, '{path}')"


@st.composite
def queries(draw) -> str:
    select_paths = draw(
        st.lists(st.sampled_from(PATHS), min_size=1, max_size=4, unique=True)
    )
    select = ", ".join(
        f"{_gjo(p)} as v{i}" for i, p in enumerate(select_paths)
    )
    clauses = []
    if draw(st.booleans()):
        path = draw(st.sampled_from(["$.a", "$.deep.c", "$.s", "$.maybe"]))
        op = draw(st.sampled_from([">", ">=", "<", "<=", "="]))
        literal = draw(st.integers(min_value=0, max_value=100))
        clauses.append(f"{_gjo(path)} {op} {literal}")
    if draw(st.booleans()):
        clauses.append(f"tag = 't{draw(st.integers(0, 3))}'")
    where = f" where {' and '.join(clauses)}" if clauses else ""
    suffix = ""
    shape = draw(st.integers(0, 2))
    if shape == 1:
        suffix = f" order by {_gjo(select_paths[0])} desc, id limit 20"
        select = "id, " + select
    elif shape == 2:
        select = (
            f"{_gjo(select_paths[0])} as g, count(*) as n, "
            f"max({_gjo(draw(st.sampled_from(PATHS)))}) as m"
        )
        suffix = f" group by {_gjo(select_paths[0])}"
    return f"select {select} from db.t{where}{suffix}"


@given(
    sql=queries(),
    cached_mask=st.lists(st.booleans(), min_size=len(PATHS), max_size=len(PATHS)),
)
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_maxson_execution_equivalent_to_baseline(system, sql, cached_mask):
    cached_paths = [p for p, keep in zip(PATHS, cached_mask) if keep]
    system.cacher.drop_all()
    if cached_paths:
        system.cacher.populate(
            [PathKey("db", "t", "payload", p) for p in cached_paths]
        )
    baseline = system.baseline_sql(sql)
    rewritten = system.sql(sql)
    assert sorted(map(repr, rewritten.rows)) == sorted(map(repr, baseline.rows))
    # And when everything a query needs is cached, parsing must be zero.
    if set(PATHS) <= set(cached_paths):
        assert rewritten.metrics.parse_documents == 0
