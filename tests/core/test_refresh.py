"""Tests for the incremental cache refresh extension."""

import pytest

from repro.core import CACHE_DATABASE, JsonPathCacher, cache_table_name
from repro.engine import Session
from repro.jsonlib import dumps
from repro.storage import BlockFileSystem, DataType, OrcFileReader, Schema
from repro.workload import PathKey


def make_session() -> Session:
    ticks = iter(float(i) for i in range(1_000_000))
    session = Session(fs=BlockFileSystem(clock=lambda: next(ticks)))
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("db", "t", schema)
    return session


def append_partition(session: Session, start: int, rows: int = 20) -> None:
    batch = [
        (i, dumps({"m": i, "name": f"n{i}"}))
        for i in range(start, start + rows)
    ]
    session.catalog.append_rows("db", "t", batch, row_group_size=5)


def keys() -> list[PathKey]:
    return [
        PathKey("db", "t", "payload", "$.m"),
        PathKey("db", "t", "payload", "$.name"),
    ]


class TestRefresh:
    def test_refresh_appends_only_new_files(self):
        session = make_session()
        append_partition(session, 0)
        cacher = JsonPathCacher(session.catalog)
        cacher.populate(keys())
        append_partition(session, 20)
        report = cacher.refresh(keys())
        # only the new partition (20 rows) was parsed
        assert report.rows_parsed == 20
        cache_files = session.catalog.table_files(
            CACHE_DATABASE, cache_table_name("db", "t")
        )
        assert len(cache_files) == 2

    def test_refreshed_values_aligned(self):
        session = make_session()
        append_partition(session, 0)
        cacher = JsonPathCacher(session.catalog)
        cacher.populate(keys())
        append_partition(session, 20)
        cacher.refresh(keys())
        cache_files = session.catalog.table_files(
            CACHE_DATABASE, cache_table_name("db", "t")
        )
        reader = OrcFileReader(session.fs.read(cache_files[1]))
        columns, _ = reader.read_columns()
        assert columns["payload__m"] == list(range(20, 40))

    def test_refresh_revalidates_entries(self):
        session = make_session()
        append_partition(session, 0)
        cacher = JsonPathCacher(session.catalog)
        cacher.populate(keys())
        append_partition(session, 20)
        raw_mtime = session.catalog.modification_time("db", "t")
        cacher.refresh(keys())
        entry = cacher.registry.lookup(keys()[0])
        assert entry is not None
        assert entry.cache_time > raw_mtime
        assert entry.rows == 40

    def test_refresh_with_changed_keyset_rebuilds(self):
        session = make_session()
        append_partition(session, 0)
        cacher = JsonPathCacher(session.catalog)
        cacher.populate([keys()[0]])
        append_partition(session, 20)
        report = cacher.refresh(keys())  # different key set -> full rebuild
        assert report.rows_parsed == 40

    def test_refresh_without_existing_cache_builds(self):
        session = make_session()
        append_partition(session, 0)
        cacher = JsonPathCacher(session.catalog)
        report = cacher.refresh(keys())
        assert report.rows_parsed == 20

    def test_refresh_noop_when_no_new_files(self):
        session = make_session()
        append_partition(session, 0)
        cacher = JsonPathCacher(session.catalog)
        cacher.populate(keys())
        report = cacher.refresh(keys())
        assert report.rows_parsed == 0
        assert len(
            session.catalog.table_files(
                CACHE_DATABASE, cache_table_name("db", "t")
            )
        ) == 1

    def test_refresh_end_to_end_queries_stay_correct(self):
        from repro.core import MaxsonSystem

        session = make_session()
        append_partition(session, 0)
        system = MaxsonSystem(session=session)
        system.cacher.populate(keys())
        append_partition(session, 20)
        system.cacher.refresh(keys())
        sql = (
            "select get_json_object(payload, '$.m') as m from db.t "
            "where get_json_object(payload, '$.m') >= 30"
        )
        baseline = system.baseline_sql(sql)
        result = system.sql(sql)
        assert result.rows == baseline.rows
        assert result.metrics.parse_documents == 0  # cache valid again
        assert len(result.rows) == 10

    def test_refresh_repairs_invalidated_cache(self):
        """An invalid mark (stale cache) is cleared by refresh, and only
        the new partitions are parsed — not the whole history."""
        from repro.core import MaxsonSystem

        session = make_session()
        append_partition(session, 0)
        system = MaxsonSystem(session=session)
        system.cacher.populate(keys())
        append_partition(session, 20)
        sql = "select get_json_object(payload, '$.m') as m from db.t"
        system.sql(sql)  # marks the cache table invalid
        assert system.registry.invalid_tables()
        report = system.cacher.refresh(keys())
        assert report.rows_parsed == 20  # just the new partition
        assert not system.registry.invalid_tables()
        result = system.sql(sql)
        assert result.metrics.parse_documents == 0
        assert len(result.rows) == 40

    def test_key_order_insensitive(self):
        session = make_session()
        append_partition(session, 0)
        cacher = JsonPathCacher(session.catalog)
        cacher.populate(list(reversed(keys())))
        append_partition(session, 20)
        cacher.refresh(keys())  # different order, same set
        cache_files = session.catalog.table_files(
            CACHE_DATABASE, cache_table_name("db", "t")
        )
        first = OrcFileReader(session.fs.read(cache_files[0]))
        second = OrcFileReader(session.fs.read(cache_files[1]))
        assert first.schema.names == second.schema.names
        columns, _ = second.read_columns()
        assert columns["payload__m"] == list(range(20, 40))
