"""Failed cache builds must leave the previous generation serving.

Satellite coverage: ``run_midnight_cycle`` and ``refresh_cache`` under
injected write faults — the registry keeps pointing at the last intact
generation, failed builds are GC'd and reported, and ``cache_summary``
reflects all of it.
"""

from repro.core import MaxsonConfig, MaxsonSystem, PredictorConfig
from repro.core.cacher import CACHE_DATABASE
from repro.engine import Session
from repro.faults import FaultPolicy, FaultyFileSystem
from repro.jsonlib import dumps
from repro.storage import DataType, Schema
from repro.workload import PathKey

KEYS = [PathKey("db", "t", "payload", "$.m")]
SQL = "select id, get_json_object(payload, '$.m') as m from db.t"


def build_system(rows=30):
    faulty = FaultyFileSystem()
    session = Session(fs=faulty)
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("db", "t", schema)
    session.catalog.append_rows(
        "db", "t", [(i, dumps({"m": i})) for i in range(rows)], row_group_size=10
    )
    system = MaxsonSystem(
        session=session,
        config=MaxsonConfig(predictor=PredictorConfig(model="always")),
    )
    return system, faulty


def cache_write_faults() -> FaultPolicy:
    """Every write under the cache database fails (reads untouched)."""
    return FaultPolicy(
        write_error_rate=1.0,
        error_path_prefix=f"/warehouse/{CACHE_DATABASE}",
    )


class TestMidnightCycleBuildFailure:
    def test_failed_build_keeps_previous_generation(self):
        system, faulty = build_system()
        # day 0 traffic so the predictor has something to propose
        system.sql(SQL)
        good = system.run_midnight_cycle(day=1, history_days=7)
        assert not good.build.failed
        generation = system.generation
        live_tables = set(system.registry.cache_tables())
        assert live_tables

        system.sql(SQL)
        faulty.policy = cache_write_faults()
        failed = system.run_midnight_cycle(day=2, history_days=7)
        faulty.policy = FaultPolicy()
        assert failed.build.failed
        assert "TransientFsError" in failed.build.error
        # the swap never happened: same generation, same tables
        assert system.generation == generation
        assert set(system.registry.cache_tables()) == live_tables
        # the half-built generation was GC'd and its journal entry closed
        assert system.journal.pending() == []
        leftovers = {
            info.name for info in system.catalog.list_tables(CACHE_DATABASE)
        }
        assert leftovers == live_tables
        # queries still run against the intact previous generation
        result = system.sql(SQL)
        assert [r["m"] for r in result.rows] == [r["id"] for r in result.rows]

    def test_cache_summary_reflects_failure(self):
        system, faulty = build_system()
        system.sql(SQL)
        faulty.policy = cache_write_faults()
        system.run_midnight_cycle(day=1, history_days=7)
        faulty.policy = FaultPolicy()
        summary = system.cache_summary()
        assert summary["failed_builds"] == 1
        assert summary["resilience"]["build_failures"] == 1

    def test_failed_generation_suffix_is_reused_on_retry(self):
        system, faulty = build_system()
        system.sql(SQL)
        faulty.policy = cache_write_faults()
        system.run_midnight_cycle(day=1, history_days=7)
        faulty.policy = FaultPolicy()
        # the counter was not bumped by the failure; the retry succeeds
        report = system.run_midnight_cycle(day=2, history_days=7)
        assert not report.build.failed
        assert system.generation == 1
        result = system.sql(SQL)
        assert [r["m"] for r in result.rows] == [r["id"] for r in result.rows]


class TestRefreshFailure:
    def test_failed_refresh_returns_failed_report(self):
        system, faulty = build_system()
        system.cacher.populate(KEYS)
        live_tables = set(system.registry.cache_tables())
        # new raw data arrives, then the fs starts rejecting cache writes
        system.catalog.append_rows(
            "db", "t", [(100 + i, dumps({"m": 100 + i})) for i in range(10)]
        )
        faulty.policy = cache_write_faults()
        report = system.refresh_cache()
        faulty.policy = FaultPolicy()
        assert report.failed
        assert set(system.registry.cache_tables()) == live_tables
        assert system.cache_summary()["resilience"]["build_failures"] == 1
        # degraded but correct: misaligned cache falls back to raw parsing
        result = system.sql(SQL)
        assert sorted(r["m"] for r in result.rows) == sorted(
            list(range(30)) + list(range(100, 110))
        )
