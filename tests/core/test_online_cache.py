"""Unit tests for the online LRU cache and trace replay simulator."""

from repro.core import LruCache, OnlineCacheSimulator
from repro.workload import PathKey, TraceQuery


def key(name: str) -> PathKey:
    return PathKey("db", "t", "c", f"$.{name}")


def query(day: int, names: list[str], seconds: int = 0) -> TraceQuery:
    return TraceQuery(
        day=day,
        seconds=seconds,
        user="u",
        template_id=0,
        kind="daily",
        paths=tuple(key(n) for n in names),
    )


class TestLruCache:
    def test_put_and_hit(self):
        cache = LruCache(100)
        cache.put(key("a"), 40)
        assert cache.touch(key("a"))
        assert not cache.touch(key("b"))

    def test_eviction_lru_order(self):
        cache = LruCache(100)
        cache.put(key("a"), 50)
        cache.put(key("b"), 50)
        cache.touch(key("a"))  # a most recent
        cache.put(key("c"), 50)  # evicts b
        assert key("a") in cache
        assert key("b") not in cache
        assert key("c") in cache
        assert cache.evictions == 1

    def test_oversized_item_rejected(self):
        cache = LruCache(10)
        assert not cache.put(key("a"), 11)
        assert len(cache) == 0

    def test_reinsert_updates_size(self):
        cache = LruCache(100)
        cache.put(key("a"), 30)
        cache.put(key("a"), 60)
        assert cache.used_bytes == 60

    def test_invalidate_all(self):
        cache = LruCache(100)
        cache.put(key("a"), 10)
        cache.invalidate_all()
        assert len(cache) == 0
        assert cache.used_bytes == 0

    def test_zero_capacity(self):
        cache = LruCache(0)
        assert not cache.put(key("a"), 1)


class TestSimulator:
    def test_first_access_always_misses(self):
        sim = OnlineCacheSimulator(capacity_bytes=10**9, default_bytes=1)
        stats = sim.replay([query(0, ["a", "b"])])
        assert stats.hits == 0
        assert stats.misses == 2

    def test_second_access_hits(self):
        sim = OnlineCacheSimulator(capacity_bytes=10**9, default_bytes=1)
        stats = sim.replay([query(0, ["a"]), query(0, ["a"])])
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.hit_ratio == 0.5

    def test_daily_invalidation(self):
        sim = OnlineCacheSimulator(
            capacity_bytes=10**9, default_bytes=1, invalidate_daily=True
        )
        stats = sim.replay([query(0, ["a"]), query(1, ["a"])])
        assert stats.hits == 0  # new day -> cold cache

    def test_no_daily_invalidation(self):
        sim = OnlineCacheSimulator(
            capacity_bytes=10**9, default_bytes=1, invalidate_daily=False
        )
        stats = sim.replay([query(0, ["a"]), query(1, ["a"])])
        assert stats.hits == 1

    def test_capacity_pressure_lowers_hit_ratio(self):
        names = [f"p{i}" for i in range(10)]
        stream = [query(0, names) for _ in range(3)]
        big = OnlineCacheSimulator(
            capacity_bytes=10 * 100, default_bytes=100, invalidate_daily=False
        ).replay(stream)
        small = OnlineCacheSimulator(
            capacity_bytes=3 * 100, default_bytes=100, invalidate_daily=False
        ).replay(stream)
        assert small.hit_ratio < big.hit_ratio

    def test_modelled_time_hits_cheaper(self):
        hit_heavy = OnlineCacheSimulator(
            capacity_bytes=10**9,
            default_bytes=1,
            default_parse_seconds=2.0,
            read_seconds=0.1,
            invalidate_daily=False,
        )
        stats = hit_heavy.replay([query(0, ["a"]), query(0, ["a"])])
        # miss: 0.1 + 2.0; hit: 0.1
        assert abs(stats.modelled_seconds - 2.2) < 1e-9

    def test_per_path_costs_respected(self):
        sim = OnlineCacheSimulator(
            capacity_bytes=10**9,
            path_bytes={key("a"): 5},
            path_parse_seconds={key("a"): 7.0},
            read_seconds=0.0,
        )
        stats = sim.replay([query(0, ["a"])])
        assert stats.modelled_seconds == 7.0
        assert sim.cache.used_bytes == 5

    def test_per_day_hit_ratio(self):
        sim = OnlineCacheSimulator(
            capacity_bytes=10**9, default_bytes=1, invalidate_daily=False
        )
        stats = sim.replay(
            [query(0, ["a"]), query(0, ["a"]), query(1, ["a"])]
        )
        assert stats.per_day_hit_ratio[0] == 0.5
        assert stats.per_day_hit_ratio[1] == 1.0

    def test_spatially_close_queries_gain_nothing(self):
        """The paper's Fig 14 observation: correlated queries arriving
        together each miss on first touch of their distinct paths."""
        stream = [
            query(0, ["a", "b"], seconds=100),
            query(0, ["a", "c"], seconds=101),
        ]
        sim = OnlineCacheSimulator(capacity_bytes=10**9, default_bytes=1)
        stats = sim.replay(stream)
        assert stats.misses == 3  # a, b, c all miss once
        assert stats.hits == 1  # only the repeated 'a'
