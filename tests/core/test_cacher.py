"""Unit tests for the JSONPath Cacher and cache registry."""

import pytest

from repro.core import (
    CACHE_DATABASE,
    CacheEntry,
    CacheRegistry,
    JsonPathCacher,
    cache_field_name,
    cache_table_name,
    mangle_path,
)
from repro.engine import Session
from repro.jsonlib import dumps
from repro.storage import DataType, OrcFileReader, Schema
from repro.workload import PathKey


@pytest.fixture
def loaded_session(session: Session) -> Session:
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("db", "t", schema)
    for part in range(3):  # three files, 20 rows each
        rows = []
        for i in range(20):
            index = part * 20 + i
            doc = {
                "num": index,
                "name": f"n{index}",
                "frac": index / 2,
                "flag": index % 2 == 0,
                "mixed": index if index % 2 else f"s{index}",
                "obj": {"inner": index},
            }
            rows.append((index, dumps(doc)))
        session.catalog.append_rows("db", "t", rows, row_group_size=5)
    return session


def key(path: str) -> PathKey:
    return PathKey("db", "t", "payload", path)


class TestNames:
    def test_mangle(self):
        assert mangle_path("$.a.b[0]") == "a_b_0"
        assert mangle_path("$['x y']") == "x_y"

    def test_cache_table_name(self):
        assert cache_table_name("db", "t") == "db__t"

    def test_cache_field_name(self):
        assert cache_field_name("payload", "$.a.b") == "payload__a_b"


class TestPopulate:
    def test_file_alignment(self, loaded_session):
        cacher = JsonPathCacher(loaded_session.catalog)
        cacher.populate([key("$.num")])
        raw_files = loaded_session.catalog.table_files("db", "t")
        cache_files = loaded_session.catalog.table_files(
            CACHE_DATABASE, cache_table_name("db", "t")
        )
        assert len(cache_files) == len(raw_files) == 3
        for raw_path, cache_path in zip(raw_files, cache_files):
            raw = OrcFileReader(loaded_session.fs.read(raw_path))
            cache = OrcFileReader(loaded_session.fs.read(cache_path))
            assert raw.row_count == cache.row_count

    def test_row_group_alignment(self, loaded_session):
        cacher = JsonPathCacher(loaded_session.catalog)
        cacher.populate([key("$.num")])
        raw = OrcFileReader(
            loaded_session.fs.read(
                loaded_session.catalog.table_files("db", "t")[0]
            )
        )
        cache = OrcFileReader(
            loaded_session.fs.read(
                loaded_session.catalog.table_files(
                    CACHE_DATABASE, cache_table_name("db", "t")
                )[0]
            )
        )
        assert [rg.row_count for rg in raw.row_group_layout()] == [
            rg.row_count for rg in cache.row_group_layout()
        ]

    def test_values_correct_and_in_order(self, loaded_session):
        cacher = JsonPathCacher(loaded_session.catalog)
        cacher.populate([key("$.num"), key("$.name")])
        cache_files = loaded_session.catalog.table_files(
            CACHE_DATABASE, cache_table_name("db", "t")
        )
        reader = OrcFileReader(loaded_session.fs.read(cache_files[1]))
        columns, _ = reader.read_columns()
        assert columns[cache_field_name("payload", "$.num")] == list(range(20, 40))
        assert columns[cache_field_name("payload", "$.name")][0] == "n20"

    def test_typed_columns(self, loaded_session):
        cacher = JsonPathCacher(loaded_session.catalog)
        report = cacher.populate(
            [key("$.num"), key("$.frac"), key("$.flag"), key("$.name"),
             key("$.mixed"), key("$.obj")]
        )
        dtypes = {e.key.path: e.dtype for e in report.entries}
        assert dtypes["$.num"] == DataType.INT64
        assert dtypes["$.frac"] == DataType.FLOAT64
        assert dtypes["$.flag"] == DataType.BOOL
        assert dtypes["$.name"] == DataType.STRING
        assert dtypes["$.mixed"] == DataType.STRING  # int/str mix
        assert dtypes["$.obj"] == DataType.STRING  # JSON-serialised

    def test_structured_value_serialised(self, loaded_session):
        cacher = JsonPathCacher(loaded_session.catalog)
        cacher.populate([key("$.obj")])
        cache_files = loaded_session.catalog.table_files(
            CACHE_DATABASE, cache_table_name("db", "t")
        )
        reader = OrcFileReader(loaded_session.fs.read(cache_files[0]))
        columns, _ = reader.read_columns()
        assert columns[cache_field_name("payload", "$.obj")][3] == '{"inner":3}'

    def test_missing_path_stored_as_null(self, loaded_session):
        cacher = JsonPathCacher(loaded_session.catalog)
        cacher.populate([key("$.ghost")])
        cache_files = loaded_session.catalog.table_files(
            CACHE_DATABASE, cache_table_name("db", "t")
        )
        reader = OrcFileReader(loaded_session.fs.read(cache_files[0]))
        columns, _ = reader.read_columns()
        assert set(columns[cache_field_name("payload", "$.ghost")]) == {None}

    def test_report_counters(self, loaded_session):
        cacher = JsonPathCacher(loaded_session.catalog)
        report = cacher.populate([key("$.num"), key("$.name")])
        assert report.tables_written == 1
        assert report.rows_parsed == 60
        assert report.bytes_written > 0
        assert len(report.entries) == 2
        assert report.build_seconds > 0

    def test_repopulate_replaces(self, loaded_session):
        cacher = JsonPathCacher(loaded_session.catalog)
        cacher.populate([key("$.num")])
        cacher.populate([key("$.name")])  # fresh table, old dropped
        cache_files = loaded_session.catalog.table_files(
            CACHE_DATABASE, cache_table_name("db", "t")
        )
        reader = OrcFileReader(loaded_session.fs.read(cache_files[0]))
        assert reader.schema.names == [cache_field_name("payload", "$.name")]

    def test_drop_all(self, loaded_session):
        cacher = JsonPathCacher(loaded_session.catalog)
        cacher.populate([key("$.num")])
        cacher.drop_all()
        assert cacher.registry.entries() == []
        assert not loaded_session.catalog.table_exists(
            CACHE_DATABASE, cache_table_name("db", "t")
        )

    def test_empty_table_skipped(self, session):
        schema = Schema.of(("payload", DataType.STRING),)
        session.catalog.create_table("db", "empty", schema)
        cacher = JsonPathCacher(session.catalog)
        report = cacher.populate([PathKey("db", "empty", "payload", "$.x")])
        assert report.tables_written == 0


class TestRegistry:
    def _entry(self, cache_table="db__t", path="$.x") -> CacheEntry:
        return CacheEntry(
            key=key(path),
            cache_table=cache_table,
            field_name="payload__x",
            dtype=DataType.INT64,
            cache_time=1.0,
            rows=10,
            bytes_on_disk_share=100,
        )

    def test_register_lookup(self):
        registry = CacheRegistry()
        entry = self._entry()
        registry.register(entry)
        assert registry.lookup(key("$.x")) is entry
        assert registry.lookup(key("$.other")) is None

    def test_invalidation_hides_entries(self):
        registry = CacheRegistry()
        registry.register(self._entry())
        registry.mark_table_invalid("db__t")
        assert registry.lookup(key("$.x")) is None
        assert registry.entries() == []
        assert registry.invalid_tables() == {"db__t"}

    def test_total_bytes(self):
        registry = CacheRegistry()
        registry.register(self._entry(path="$.a"))
        registry.register(self._entry(path="$.b"))
        assert registry.total_bytes() == 200

    def test_clear(self):
        registry = CacheRegistry()
        registry.register(self._entry())
        registry.mark_table_invalid("db__t")
        registry.clear()
        assert registry.entries() == []
        assert registry.invalid_tables() == set()
