"""Unit tests for the Value Combiner's edge cases."""

import pytest

from repro.core import CACHE_DATABASE, MaxsonSystem, cache_table_name
from repro.engine import ExecutionError, Session
from repro.jsonlib import dumps
from repro.storage import BlockFileSystem, DataType, Schema
from repro.workload import PathKey


def build_system(rows=60, row_group_size=10) -> MaxsonSystem:
    session = Session(fs=BlockFileSystem())
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("db", "t", schema)
    batch = [(i, dumps({"m": i, "s": f"v{i}"})) for i in range(rows)]
    session.catalog.append_rows("db", "t", batch, row_group_size=row_group_size)
    return MaxsonSystem(session=session)


KEYS = [PathKey("db", "t", "payload", "$.m"), PathKey("db", "t", "payload", "$.s")]


class TestStitching:
    def test_rows_stitched_in_order(self):
        system = build_system()
        system.cacher.populate(KEYS)
        result = system.sql(
            "select id, get_json_object(payload, '$.m') as m, "
            "get_json_object(payload, '$.s') as s from db.t"
        )
        for row in result.rows:
            assert row["m"] == row["id"]
            assert row["s"] == f"v{row['id']}"

    def test_multiple_files_alignment(self):
        session = Session(fs=BlockFileSystem())
        schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
        session.catalog.create_table("db", "t", schema)
        for part in range(4):
            batch = [
                (part * 10 + i, dumps({"m": part * 10 + i})) for i in range(10)
            ]
            session.catalog.append_rows("db", "t", batch, row_group_size=5)
        system = MaxsonSystem(session=session)
        system.cacher.populate([KEYS[0]])
        result = system.sql(
            "select id, get_json_object(payload, '$.m') as m from db.t"
        )
        assert [r["m"] for r in result.rows] == list(range(40))

    def test_misaligned_file_counts_fall_back(self):
        system = build_system()
        system.cacher.populate(KEYS)
        # sabotage: delete one cache file so counts no longer match
        cache_table = cache_table_name("db", "t")
        cache_files = system.catalog.table_files(CACHE_DATABASE, cache_table)
        system.session.fs.delete(cache_files[0])
        # the raw table now has more files than the cache table
        system.session.catalog.append_rows(
            "db", "t", [(999, dumps({"m": 999}))]
        )
        system.registry.entries()[0]  # registry still advertises the cache
        # bypass validity check by forcing cache_time forward
        from dataclasses import replace

        for entry in list(system.registry.entries()):
            system.registry.register(replace(entry, cache_time=float("inf")))
        # misalignment degrades to raw parsing — correct rows, no error
        result = system.sql(
            "select get_json_object(payload, '$.m') as m from db.t"
        )
        assert sorted(r["m"] for r in result.rows) == sorted(
            list(range(60)) + [999]
        )
        assert system.resilience.get("fallback_queries") == 1
        assert cache_table in system.breaker.quarantined_tables()

    def test_corrupt_cache_file_falls_back(self):
        system = build_system()
        system.cacher.populate(KEYS)
        cache_table = cache_table_name("db", "t")
        cache_files = system.catalog.table_files(CACHE_DATABASE, cache_table)
        blob = bytearray(system.session.fs.read(cache_files[0]))
        blob[len(blob) // 2] ^= 0xFF
        system.session.fs.delete(cache_files[0])
        system.session.fs.create(cache_files[0], bytes(blob))
        result = system.sql(
            "select id, get_json_object(payload, '$.m') as m from db.t"
        )
        assert [r["m"] for r in result.rows] == [r["id"] for r in result.rows]
        assert system.resilience.get("fallback_splits") >= 1

    def test_row_count_mismatch_detected(self):
        system = build_system(rows=30)
        system.cacher.populate(KEYS)
        cache_table = cache_table_name("db", "t")
        cache_files = system.catalog.table_files(CACHE_DATABASE, cache_table)
        # rewrite the cache file with one row missing
        from repro.storage import OrcFileReader, OrcWriter

        reader = OrcFileReader(system.session.fs.read(cache_files[0]))
        rows = reader.read_rows()
        writer = OrcWriter(reader.schema, row_group_size=10)
        writer.write_rows(rows[:-1])
        system.session.fs.delete(cache_files[0])
        system.session.fs.create(cache_files[0], writer.finish())
        from dataclasses import replace

        for entry in list(system.registry.entries()):
            system.registry.register(replace(entry, cache_time=float("inf")))
        # a short cache file is detected by the row-count check and the
        # split degrades to raw parsing — every row still present
        result = system.sql(
            "select id, get_json_object(payload, '$.m') as m from db.t"
        )
        assert [r["m"] for r in result.rows] == [r["id"] for r in result.rows]
        assert len(result.rows) == 30
        assert system.resilience.get("fallback_splits") >= 1


class TestCacheOnlyAndMetrics:
    def test_cache_only_read_has_no_raw_bytes(self):
        system = build_system()
        system.cacher.populate(KEYS)
        result = system.sql(
            "select get_json_object(payload, '$.m') as m from db.t"
        )
        raw_bytes = system.catalog.table_bytes("db", "t")
        assert result.metrics.bytes_read < raw_bytes / 4

    def test_cache_hit_metric_counted(self):
        system = build_system()
        system.cacher.populate(KEYS)
        result = system.sql(
            "select get_json_object(payload, '$.m') as m, "
            "get_json_object(payload, '$.s') as s from db.t"
        )
        assert result.metrics.cache_hits >= 2

    def test_null_values_survive_stitch(self):
        session = Session(fs=BlockFileSystem())
        schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
        session.catalog.create_table("db", "t", schema)
        rows = [
            (0, dumps({"m": 1})),
            (1, dumps({})),  # missing path -> NULL
            (2, None),  # NULL document -> NULL
        ]
        session.catalog.append_rows("db", "t", rows)
        system = MaxsonSystem(session=session)
        system.cacher.populate([KEYS[0]])
        result = system.sql(
            "select id, get_json_object(payload, '$.m') as m from db.t"
        )
        assert [r["m"] for r in result.rows] == [1, None, None]
