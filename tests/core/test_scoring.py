"""Unit tests for the scoring function (A_j, R_j, O_j, Score_j)."""

import pytest

from repro.core import JsonPathCollector, QueryRecord, ScoringFunction
from repro.core.scoring import PathStats, ScoredPath
from repro.engine import Session
from repro.jsonlib import dumps
from repro.storage import DataType, Schema
from repro.workload import PathKey


@pytest.fixture
def scoring_session(session: Session) -> Session:
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("db", "t", schema)
    rows = []
    for i in range(50):
        doc = {"small": i % 10, "big": "x" * 200, "nested": {"v": i}}
        rows.append((i, dumps(doc)))
    session.catalog.append_rows("db", "t", rows, row_group_size=10)
    return session


def key(path: str) -> PathKey:
    return PathKey("db", "t", "payload", path)


class TestMeasure:
    def test_small_vs_big_value_bytes(self, scoring_session):
        scoring = ScoringFunction(scoring_session.catalog, sample_rows=20)
        small = scoring.measure(key("$.small"))
        big = scoring.measure(key("$.big"))
        assert big.avg_value_bytes > small.avg_value_bytes
        assert big.estimated_total_bytes > small.estimated_total_bytes

    def test_acceleration_per_byte_prefers_small_values(self, scoring_session):
        scoring = ScoringFunction(scoring_session.catalog, sample_rows=20)
        small = scoring.measure(key("$.small"))
        big = scoring.measure(key("$.big"))
        # same document parse cost, far fewer bytes -> higher A_j
        assert small.acceleration_per_byte > big.acceleration_per_byte

    def test_missing_table(self, session):
        scoring = ScoringFunction(session.catalog)
        with pytest.raises(Exception):
            scoring.measure(PathKey("db", "ghost", "payload", "$.x"))

    def test_empty_table(self, session):
        schema = Schema.of(("payload", DataType.STRING),)
        session.catalog.create_table("db", "empty", schema)
        scoring = ScoringFunction(session.catalog)
        stats = scoring.measure(PathKey("db", "empty", "payload", "$.x"))
        assert stats.estimated_total_bytes == 0

    def test_measure_cached(self, scoring_session):
        scoring = ScoringFunction(scoring_session.catalog, sample_rows=5)
        first = scoring.measure(key("$.small"))
        second = scoring.measure(key("$.small"))
        assert first is second

    def test_nested_value(self, scoring_session):
        scoring = ScoringFunction(scoring_session.catalog, sample_rows=5)
        stats = scoring.measure(key("$.nested"))
        assert stats.avg_value_bytes > 0


class TestRelevanceOccurrence:
    def test_equation_2(self):
        a, b, c = key("$.a"), key("$.b"), key("$.c")
        mpjp = {a, b}
        records = [
            QueryRecord(0, (a, b)),        # M=2 N=2
            QueryRecord(0, (a, c)),        # M=1 N=2
            QueryRecord(0, (b, c)),        # does not touch a
        ]
        relevance, occurrences = ScoringFunction.relevance_and_occurrence(
            a, mpjp, records
        )
        assert occurrences == 2
        assert relevance == (2 + 1) / (2 + 2)

    def test_no_touching_queries(self):
        a = key("$.a")
        relevance, occurrences = ScoringFunction.relevance_and_occurrence(
            a, {a}, []
        )
        assert (relevance, occurrences) == (0.0, 0)

    def test_fully_cacheable_query_maximises_relevance(self):
        a, b = key("$.a"), key("$.b")
        records = [QueryRecord(0, (a, b))]
        relevance, _ = ScoringFunction.relevance_and_occurrence(
            a, {a, b}, records
        )
        assert relevance == 1.0


class TestScoreAndSelect:
    def _scored(self, score, total_bytes, path="$.x"):
        stats = PathStats(
            key=key(path),
            avg_value_bytes=1.0,
            avg_parse_seconds=1.0,
            estimated_total_bytes=total_bytes,
        )
        return ScoredPath(
            key=key(path), stats=stats, relevance=1.0, occurrences=1, score=score
        )

    def test_score_ordering(self, scoring_session):
        scoring = ScoringFunction(scoring_session.catalog, sample_rows=10)
        a, b = key("$.small"), key("$.big")
        records = [
            QueryRecord(0, (a,)),
            QueryRecord(0, (a,)),
            QueryRecord(0, (a, b)),
        ]
        scored = scoring.score({a, b}, records)
        assert scored[0].key == a  # higher A and O
        assert scored[0].score >= scored[-1].score

    def test_budget_selection_greedy(self):
        scored = [
            self._scored(10.0, 60, "$.a"),
            self._scored(5.0, 60, "$.b"),
            self._scored(1.0, 30, "$.c"),
        ]
        chosen = ScoringFunction.select_within_budget(None, scored, 100)
        # a (60) fits; b (60) does not (40 left); c (30) fits
        assert [c.key.path for c in chosen] == ["$.a", "$.c"]

    def test_budget_zero(self):
        scored = [self._scored(1.0, 10)]
        assert ScoringFunction.select_within_budget(None, scored, 0) == []

    def test_budget_fits_all(self):
        scored = [self._scored(1.0, 10, f"$.p{i}") for i in range(3)]
        chosen = ScoringFunction.select_within_budget(None, scored, 1000)
        assert len(chosen) == 3

    def test_random_selection_respects_budget(self):
        scored = [self._scored(1.0, 40, f"$.p{i}") for i in range(10)]
        chosen = ScoringFunction.random_selection(scored, 100, seed=1)
        assert sum(c.budget_bytes() for c in chosen) <= 100
        assert len(chosen) == 2

    def test_random_selection_deterministic_per_seed(self):
        scored = [self._scored(float(i), 40, f"$.p{i}") for i in range(10)]
        a = ScoringFunction.random_selection(scored, 120, seed=5)
        b = ScoringFunction.random_selection(scored, 120, seed=5)
        assert [x.key for x in a] == [x.key for x in b]
