"""Tests for predicate pushdown onto cache tables (Algorithm 3)."""

import pytest

from repro.core import MaxsonConfig, MaxsonSystem, extract_cache_sarg
from repro.core.cacher import CacheEntry
from repro.core.combiner import CachedFieldRequest
from repro.engine import (
    Between,
    BinaryOp,
    CachedField,
    Column,
    Literal,
    Session,
    UnaryOp,
)
from repro.jsonlib import dumps
from repro.storage import (
    AndSarg,
    BlockFileSystem,
    ComparisonSarg,
    DataType,
    SargOp,
    Schema,
)
from repro.workload import PathKey


def request(env_key="__mx__t__payload__m", field="payload__m"):
    entry = CacheEntry(
        key=PathKey("db", "t", "payload", "$.m"),
        cache_table="db__t",
        field_name=field,
        dtype=DataType.INT64,
        cache_time=0.0,
        rows=10,
        bytes_on_disk_share=1,
    )
    return CachedFieldRequest(entry=entry, env_key=env_key)


def cached(env_key="__mx__t__payload__m"):
    return CachedField("payload", 1, "$.m", env_key)


class TestExtractCacheSarg:
    def test_comparison(self):
        sarg = extract_cache_sarg(
            BinaryOp(">", cached(), Literal(10)), [request()]
        )
        assert sarg == ComparisonSarg("payload__m", SargOp.GT, 10)

    def test_flipped_comparison(self):
        sarg = extract_cache_sarg(
            BinaryOp(">", Literal(10), cached()), [request()]
        )
        assert sarg == ComparisonSarg("payload__m", SargOp.LT, 10)

    def test_between(self):
        sarg = extract_cache_sarg(
            Between(cached(), Literal(1), Literal(5)), [request()]
        )
        assert isinstance(sarg, AndSarg)

    def test_null_tests(self):
        sarg = extract_cache_sarg(UnaryOp("is null", cached()), [request()])
        assert sarg == ComparisonSarg("payload__m", SargOp.IS_NULL)

    def test_conjunction_collects_pushable(self):
        condition = BinaryOp(
            "and",
            BinaryOp(">", cached(), Literal(1)),
            BinaryOp("=", Column("date"), Literal("x")),  # not pushable here
        )
        sarg = extract_cache_sarg(condition, [request()])
        assert sarg == ComparisonSarg("payload__m", SargOp.GT, 1)

    def test_unknown_field_not_pushed(self):
        sarg = extract_cache_sarg(
            BinaryOp(">", cached("__other"), Literal(1)), [request()]
        )
        assert sarg is None

    def test_or_not_pushed(self):
        condition = BinaryOp(
            "or",
            BinaryOp(">", cached(), Literal(1)),
            BinaryOp("<", cached(), Literal(0)),
        )
        assert extract_cache_sarg(condition, [request()]) is None

    def test_null_literal_not_pushed(self):
        sarg = extract_cache_sarg(
            BinaryOp("=", cached(), Literal(None)), [request()]
        )
        assert sarg is None


def build_pushdown_system(rows=200, row_group_size=20):
    session = Session(fs=BlockFileSystem())
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("db", "t", schema)
    batch = []
    for i in range(rows):
        batch.append((i, dumps({"m": i, "other": f"o{i}"})))
    session.catalog.append_rows("db", "t", batch, row_group_size=row_group_size)
    return MaxsonSystem(session=session)


SQL = (
    "select id, get_json_object(payload, '$.m') as m from db.t "
    "where get_json_object(payload, '$.m') >= 180"
)


class TestEndToEndPushdown:
    def test_row_groups_skipped_on_both_readers(self):
        system = build_pushdown_system()
        system.cacher.populate([PathKey("db", "t", "payload", "$.m")])
        result = system.sql(SQL)
        assert [r["m"] for r in result.rows] == list(range(180, 200))
        # 10 groups per reader; ids 0..179 eliminated: 9 skipped per side.
        assert result.metrics.row_groups_skipped == 18

    def test_results_match_baseline(self):
        system = build_pushdown_system()
        baseline = system.baseline_sql(SQL)
        system.cacher.populate([PathKey("db", "t", "payload", "$.m")])
        result = system.sql(SQL)
        assert result.rows == baseline.rows

    def test_input_bytes_reduced(self):
        system = build_pushdown_system()
        baseline = system.baseline_sql(SQL)
        system.cacher.populate([PathKey("db", "t", "payload", "$.m")])
        result = system.sql(SQL)
        assert result.metrics.bytes_read < baseline.metrics.bytes_read / 10

    def test_pushdown_disabled_config(self):
        system = build_pushdown_system()
        system.modifier.enable_pushdown = False
        system.cacher.populate([PathKey("db", "t", "payload", "$.m")])
        result = system.sql(SQL)
        assert [r["m"] for r in result.rows] == list(range(180, 200))
        assert result.metrics.row_groups_skipped == 0

    def test_pushdown_with_raw_sarg_combined(self):
        system = build_pushdown_system()
        sql = (
            "select id, get_json_object(payload, '$.m') as m from db.t "
            "where get_json_object(payload, '$.m') >= 100 and id < 140"
        )
        baseline = system.baseline_sql(sql)
        system.cacher.populate([PathKey("db", "t", "payload", "$.m")])
        result = system.sql(sql)
        assert result.rows == baseline.rows
        # combined mask: only groups with 100 <= values < 140 survive
        assert result.metrics.row_groups_skipped > 10

    def test_no_pushdown_when_predicate_on_uncached_json(self):
        system = build_pushdown_system()
        sql = (
            "select id from db.t "
            "where get_json_object(payload, '$.other') = 'o5'"
        )
        baseline = system.baseline_sql(sql)
        system.cacher.populate([PathKey("db", "t", "payload", "$.m")])
        result = system.sql(sql)
        assert result.rows == baseline.rows
