"""Parallel midnight cache builds (``build_workers > 1``).

Parsing raw files is the dominant cost of a cache build, so the cacher
may fan it out across a thread pool — but cache *writes* stay sequential
in file order, which is what the crash journal and generation-swap
atomicity reason about. These tests pin the contract: a parallel build
produces byte-identical cache tables, serves identical query results,
and fails builds the same way the sequential path does.
"""

from repro.core import MaxsonConfig, MaxsonSystem, PredictorConfig
from repro.core.cacher import CACHE_DATABASE
from repro.engine import Session
from repro.faults import FaultPolicy, FaultyFileSystem, InjectedCrash
from repro.jsonlib import dumps
from repro.storage import BlockFileSystem, DataType, Schema
from repro.workload import PathKey

KEYS = [
    PathKey("db", "t", "payload", "$.m"),
    PathKey("db", "t", "payload", "$.name"),
]
SQL = (
    "select id, get_json_object(payload, '$.m') as m, "
    "get_json_object(payload, '$.name') as n from db.t"
)


def build_system(build_workers: int, fs=None) -> MaxsonSystem:
    session = Session(fs=fs or BlockFileSystem())
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("db", "t", schema)
    for chunk in range(4):  # four raw files -> real fan-out
        session.catalog.append_rows(
            "db",
            "t",
            [
                (i, dumps({"m": i, "name": f"row{i}"}))
                for i in range(chunk * 25, (chunk + 1) * 25)
            ],
            row_group_size=10,
        )
    return MaxsonSystem(
        session=session,
        config=MaxsonConfig(
            predictor=PredictorConfig(model="always"),
            build_workers=build_workers,
        ),
    )


def cache_files(system: MaxsonSystem) -> dict[str, bytes]:
    fs = system.session.fs
    out: dict[str, bytes] = {}
    stack = [f"/warehouse/{CACHE_DATABASE}"]
    while stack:
        directory = stack.pop()
        for status in fs.list_directory(directory):
            if status.is_directory:
                stack.append(status.path)
            else:
                out[status.path] = fs.read(status.path)
    return out


class TestParallelBuild:
    def test_parallel_build_is_byte_identical_to_sequential(self):
        sequential = build_system(build_workers=1)
        parallel = build_system(build_workers=4)
        assert parallel.cacher.build_workers == 4
        sequential.cache_paths_directly(KEYS, budget_bytes=1 << 40)
        parallel.cache_paths_directly(KEYS, budget_bytes=1 << 40)
        assert cache_files(sequential) == cache_files(parallel)

    def test_parallel_build_serves_identical_results(self):
        system = build_system(build_workers=4)
        baseline = system.baseline_sql(SQL)
        system.cache_paths_directly(KEYS, budget_bytes=1 << 40)
        cached = system.sql(SQL)
        assert cached.rows == baseline.rows
        assert cached.metrics.parse_documents == 0
        assert cached.metrics.cache_hits > 0

    def test_parallel_refresh_extends_cache(self):
        system = build_system(build_workers=4)
        system.cache_paths_directly(KEYS, budget_bytes=1 << 40)
        system.session.catalog.append_rows(
            "db",
            "t",
            [(i, dumps({"m": i, "name": f"row{i}"})) for i in range(100, 125)],
            row_group_size=10,
        )
        report = system.refresh_cache()
        assert report.rows_parsed > 0
        result = system.sql(SQL)
        assert len(result.rows) == 125
        assert result.metrics.parse_documents == 0

    def test_write_faults_fail_parallel_builds_cleanly(self):
        faulty = FaultyFileSystem()
        system = build_system(build_workers=4, fs=faulty)
        system.sql(SQL)
        faulty.policy = FaultPolicy(
            write_error_rate=1.0,
            error_path_prefix=f"/warehouse/{CACHE_DATABASE}",
        )
        report = system.run_midnight_cycle(day=1, history_days=7)
        faulty.policy = FaultPolicy()
        assert report.build.failed
        # the failed generation never went live; queries still correct
        assert system.sql(SQL).rows == system.baseline_sql(SQL).rows

    def test_injected_crash_surfaces_from_worker(self):
        faulty = FaultyFileSystem()
        system = build_system(build_workers=4, fs=faulty)
        system.sql(SQL)
        faulty.policy = FaultPolicy(
            crash_after_writes=2,
            crash_path_prefix=f"/warehouse/{CACHE_DATABASE}",
        )
        try:
            system.run_midnight_cycle(day=1, history_days=7)
        except InjectedCrash:
            crashed = True
        else:
            crashed = False
        assert crashed
