"""Crash-safe build journal + orphan-generation recovery."""

import pytest

from repro.core import MaxsonSystem
from repro.core.cacher import CACHE_DATABASE
from repro.core.journal import JOURNAL_PATH, BuildJournal
from repro.engine import Session
from repro.faults import FaultPolicy, FaultyFileSystem, InjectedCrash
from repro.jsonlib import dumps
from repro.storage import BlockFileSystem, DataType, Schema
from repro.workload import PathKey

KEYS = [PathKey("db", "t", "payload", "$.m")]
SQL = "select id, get_json_object(payload, '$.m') as m from db.t"


def build_system(fs=None, rows=30) -> MaxsonSystem:
    session = Session(fs=fs or BlockFileSystem())
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("db", "t", schema)
    # two raw files -> two cache files per build, so a crash on the 2nd
    # cache write dies genuinely mid-build (one file landed, one missing)
    half = rows // 2
    for chunk in ([*range(half)], [*range(half, rows)]):
        session.catalog.append_rows(
            "db",
            "t",
            [(i, dumps({"m": i})) for i in chunk],
            row_group_size=10,
        )
    return MaxsonSystem(session=session)


class TestBuildJournal:
    def test_begin_commit_lifecycle(self, fs):
        journal = BuildJournal(fs)
        journal.begin(1)
        assert journal.pending() == [1]
        journal.commit(1)
        assert journal.pending() == []
        journal.begin(2)
        journal.abort(2)
        assert journal.pending() == []
        assert journal.records() == [
            ("begin", 1),
            ("commit", 1),
            ("begin", 2),
            ("abort", 2),
        ]

    def test_torn_tail_is_ignored(self, fs):
        journal = BuildJournal(fs)
        journal.begin(1)
        journal.commit(1)
        journal.begin(2)
        fs.append(JOURNAL_PATH, b"comm")  # a torn terminal record
        assert journal.pending() == [2]
        assert ("begin", 2) in journal.records()

    def test_write_retries_through_transient_faults(self):
        faulty = FaultyFileSystem()
        journal = BuildJournal(faulty)
        journal.begin(1)
        faulty.policy = FaultPolicy(seed=5, write_error_rate=0.5)
        journal.commit(1)  # retried up to 5 times; 0.5^5 never fired here
        faulty.policy = FaultPolicy()
        assert journal.pending() == []

    def test_exhausted_retries_degrade_to_callback(self):
        failed = []
        faulty = FaultyFileSystem()
        journal = BuildJournal(faulty, on_write_failure=failed.append)
        faulty.policy = FaultPolicy(write_error_rate=1.0)
        journal.begin(1)  # every attempt fails
        assert failed == ["begin 1"]


class TestCrashRecovery:
    def test_crash_mid_build_leaves_orphans_then_recovery_drops_them(self):
        faulty = FaultyFileSystem()
        system = build_system(fs=faulty)
        system.cacher.populate(KEYS)  # generation 0 content (no suffix)
        live_tables = set(system.registry.cache_tables())
        # arm: die on the 2nd write under the cache prefix during the swap
        faulty.policy = FaultPolicy(crash_after_writes=2)
        with pytest.raises(InjectedCrash):
            system._swap_generation(KEYS)
        faulty.policy = FaultPolicy()
        # the crash stranded a half-built __g1 table and a pending journal
        orphaned = {
            info.name
            for info in system.catalog.list_tables(CACHE_DATABASE)
        } - live_tables
        assert any(name.endswith("__g1") for name in orphaned)
        assert system.journal.pending() == [1]
        # registry still points at the intact pre-crash cache
        assert set(system.registry.cache_tables()) == live_tables
        result = system.sql(SQL)
        assert [r["m"] for r in result.rows] == [r["id"] for r in result.rows]
        # restart-time recovery GCs the orphans and closes the journal
        dropped = system.recover_orphan_generations()
        assert sorted(dropped) == sorted(orphaned)
        assert system.journal.pending() == []
        remaining = {
            info.name for info in system.catalog.list_tables(CACHE_DATABASE)
        }
        assert remaining == live_tables
        assert system.resilience.get("recovery_actions") >= len(dropped)

    def test_recovery_is_idempotent_and_quiet_when_clean(self):
        system = build_system()
        system.cacher.populate(KEYS)
        assert system.recover_orphan_generations() == []
        assert system.resilience.get("recovery_actions") == 0

    def test_server_startup_runs_recovery(self):
        from repro.server import MaxsonServer, ServerConfig

        faulty = FaultyFileSystem()
        system = build_system(fs=faulty)
        system.cacher.populate(KEYS)
        faulty.policy = FaultPolicy(crash_after_writes=2)
        with pytest.raises(InjectedCrash):
            system._swap_generation(KEYS)
        faulty.policy = FaultPolicy()
        # "restart": a fresh server over the same (surviving) system state
        with MaxsonServer(system, ServerConfig(max_workers=2)) as server:
            assert server.recovered_tables  # startup GC found the orphans
            assert system.journal.pending() == []
            result = server.execute(SQL)
            assert len(result.rows) == 30
