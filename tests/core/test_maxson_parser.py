"""Integration tests for Algorithm 1 (plan rewriting) and the Value
Combiner, against a live Maxson system over the sale-logs table."""

import pytest

from repro.core import CACHE_DATABASE, MaxsonSystem
from repro.engine import Session
from repro.jsonlib import dumps
from repro.storage import BlockFileSystem, DataType, Schema
from repro.workload import PathKey


def build_system(clock=None) -> MaxsonSystem:
    fs = BlockFileSystem(clock=clock)
    session = Session(fs=fs)
    schema = Schema.of(
        ("mall_id", DataType.STRING),
        ("date", DataType.STRING),
        ("sale_logs", DataType.STRING),
    )
    session.catalog.create_table("mydb", "T", schema)
    for day in range(1, 4):
        rows = []
        for i in range(30):
            index = (day - 1) * 30 + i
            log = {
                "item_id": index % 7,
                "item_name": f"item{index % 7}",
                "turnover": index * 11 % 900,
                "price": index % 30,
            }
            rows.append(("0001", f"2019010{day}", dumps(log)))
        session.catalog.append_rows("mydb", "T", rows, row_group_size=10)
    return MaxsonSystem(session=session)


def cache_paths(system: MaxsonSystem, paths: list[str]):
    keys = [PathKey("mydb", "T", "sale_logs", p) for p in paths]
    system.cacher.populate(keys)


QUERY = (
    "select mall_id, get_json_object(sale_logs, '$.item_id') as item_id, "
    "get_json_object(sale_logs, '$.turnover') as turnover "
    "from mydb.T where date between '20190101' and '20190103'"
)


class TestRewrite:
    def test_hit_replaces_and_results_match(self):
        system = build_system()
        baseline = system.baseline_sql(QUERY)
        cache_paths(system, ["$.item_id", "$.turnover"])
        result = system.sql(QUERY)
        assert result.rows == baseline.rows
        assert system.modifier.last_report.hits == 2
        assert result.metrics.parse_documents == 0  # no JSON parsing at all

    def test_json_column_pruned_on_full_hit(self):
        system = build_system()
        cache_paths(system, ["$.item_id", "$.turnover"])
        system.sql(QUERY)
        pruned = system.modifier.last_report.pruned_columns
        assert "mydb.T.sale_logs" in pruned

    def test_partial_hit_keeps_json_column(self):
        system = build_system()
        cache_paths(system, ["$.item_id"])  # turnover uncached
        baseline = system.baseline_sql(QUERY)
        result = system.sql(QUERY)
        assert result.rows == baseline.rows
        assert system.modifier.last_report.hits == 1
        assert system.modifier.last_report.misses >= 1
        # uncached path still parses
        assert result.metrics.parse_documents > 0

    def test_miss_leaves_plan_untouched(self):
        system = build_system()
        result = system.sql(QUERY)
        assert system.modifier.last_report.hits == 0
        assert result.metrics.parse_documents > 0

    def test_plan_description_shows_maxson_scan(self):
        system = build_system()
        cache_paths(system, ["$.item_id", "$.turnover"])
        text = system.session.explain(QUERY)
        assert "MaxsonScan" in text
        assert "cached=" in text

    def test_aggregation_over_cached_values(self):
        system = build_system()
        sql = (
            "select get_json_object(sale_logs, '$.item_name') as name, "
            "count(*) as n, max(get_json_object(sale_logs, '$.turnover')) as top "
            "from mydb.T group by get_json_object(sale_logs, '$.item_name')"
        )
        baseline = system.baseline_sql(sql)
        cache_paths(system, ["$.item_name", "$.turnover"])
        result = system.sql(sql)
        key = lambda r: r["name"]
        assert sorted(result.rows, key=key) == sorted(baseline.rows, key=key)

    def test_order_by_cached_value(self):
        system = build_system()
        sql = (
            "select get_json_object(sale_logs, '$.turnover') as t "
            "from mydb.T order by get_json_object(sale_logs, '$.turnover') "
            "desc limit 5"
        )
        baseline = system.baseline_sql(sql)
        cache_paths(system, ["$.turnover"])
        result = system.sql(sql)
        assert result.rows == baseline.rows

    def test_self_join_both_sides_cached(self):
        system = build_system()
        sql = (
            "select count(*) as n from mydb.T a join mydb.T b "
            "on get_json_object(a.sale_logs, '$.item_id') = "
            "get_json_object(b.sale_logs, '$.item_id') "
            "where a.date = '20190101' and b.date = '20190102'"
        )
        baseline = system.baseline_sql(sql)
        cache_paths(system, ["$.item_id"])
        result = system.sql(sql)
        assert result.rows == baseline.rows
        assert result.metrics.parse_documents == 0


class TestCacheValidity:
    def test_stale_cache_invalidated(self):
        ticks = iter(float(i) for i in range(1000))
        system = build_system(clock=lambda: next(ticks))
        cache_paths(system, ["$.item_id", "$.turnover"])
        # New data lands after caching -> cache must be invalidated.
        system.session.catalog.append_rows(
            "mydb",
            "T",
            [("0001", "20190104", dumps({"item_id": 1, "turnover": 5}))],
        )
        baseline = system.baseline_sql(QUERY)
        result = system.sql(QUERY)
        assert result.rows == baseline.rows
        assert system.modifier.last_report.hits == 0
        assert system.modifier.last_report.invalidated_tables
        assert result.metrics.parse_documents > 0

    def test_invalid_table_stays_invalid(self):
        ticks = iter(float(i) for i in range(1000))
        system = build_system(clock=lambda: next(ticks))
        cache_paths(system, ["$.item_id"])
        system.session.catalog.append_rows(
            "mydb",
            "T",
            [("0001", "20190104", dumps({"item_id": 1}))],
        )
        system.sql(QUERY)
        system.sql(QUERY)  # second time: registry already marked invalid
        assert system.modifier.last_report.hits == 0

    def test_fresh_cache_after_repopulate(self):
        ticks = iter(float(i) for i in range(1000))
        system = build_system(clock=lambda: next(ticks))
        cache_paths(system, ["$.item_id"])
        system.session.catalog.append_rows(
            "mydb",
            "T",
            [("0001", "20190104", dumps({"item_id": 1, "turnover": 2}))],
        )
        system.sql(QUERY)  # invalidates
        system.cacher.drop_all()
        cache_paths(system, ["$.item_id", "$.turnover"])  # re-cache fresh
        baseline = system.baseline_sql(QUERY)
        result = system.sql(QUERY)
        assert result.rows == baseline.rows
        assert system.modifier.last_report.hits == 2


class TestCacheOnlyRead:
    def test_all_columns_cached_skips_raw_table(self):
        system = build_system()
        sql = (
            "select get_json_object(sale_logs, '$.item_id') as a, "
            "get_json_object(sale_logs, '$.price') as b from mydb.T"
        )
        baseline = system.baseline_sql(sql)
        cache_paths(system, ["$.item_id", "$.price"])
        result = system.sql(sql)
        assert result.rows == baseline.rows
        # cache-only read: far less input than the baseline's raw scan
        assert result.metrics.bytes_read < baseline.metrics.bytes_read / 5
