"""Integration tests for the MaxsonSystem facade (the midnight cycle)."""

import pytest

from repro.core import MaxsonConfig, MaxsonSystem, PredictorConfig
from repro.engine import Session
from repro.jsonlib import dumps
from repro.storage import BlockFileSystem, DataType, Schema
from repro.workload import PathKey


def build_system(budget=10**9, strategy="score", model="oracle") -> MaxsonSystem:
    session = Session(fs=BlockFileSystem())
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("db", "t", schema)
    rows = [
        (i, dumps({"hot": i % 5, "cold": f"c{i}", "big": "x" * 50}))
        for i in range(60)
    ]
    session.catalog.append_rows("db", "t", rows, row_group_size=10)
    config = MaxsonConfig(
        cache_budget_bytes=budget,
        selection_strategy=strategy,
        predictor=PredictorConfig(model=model),
    )
    return MaxsonSystem(session=session, config=config)


HOT_SQL = "select get_json_object(payload, '$.hot') as h from db.t"
COLD_SQL = "select get_json_object(payload, '$.cold') as c from db.t"


class TestDailyCycle:
    def test_oracle_cycle_caches_repeated_paths(self):
        system = build_system()
        # Day 0: hot path queried twice (MPJP), cold once.
        system.sql(HOT_SQL, day=0)
        system.sql(HOT_SQL, day=0)
        system.sql(COLD_SQL, day=0)
        # Oracle predictor needs day-1 ground truth: replay day 1 into the
        # collector before the midnight cycle for day 1.
        system.collector.record_planned(1, [("db", "t", "payload", "$.hot")])
        system.collector.record_planned(1, [("db", "t", "payload", "$.hot")])
        report = system.run_midnight_cycle(day=1)
        cached = {sp.key.path for sp in report.selected}
        assert cached == {"$.hot"}
        assert system.current_day == 1

    def test_queries_after_cycle_hit_cache(self):
        system = build_system()
        system.sql(HOT_SQL, day=0)
        system.sql(HOT_SQL, day=0)
        system.collector.record_planned(1, [("db", "t", "payload", "$.hot")])
        system.collector.record_planned(1, [("db", "t", "payload", "$.hot")])
        system.run_midnight_cycle(day=1)
        result = system.sql(HOT_SQL, day=1)
        assert result.metrics.parse_documents == 0
        assert result.metrics.cache_hits > 0

    def test_cycle_empties_previous_cache(self):
        system = build_system()
        system.cacher.populate([PathKey("db", "t", "payload", "$.cold")])
        system.collector.record_planned(1, [("db", "t", "payload", "$.hot")])
        system.collector.record_planned(1, [("db", "t", "payload", "$.hot")])
        system.run_midnight_cycle(day=1)
        entries = {e.key.path for e in system.registry.entries()}
        assert "$.cold" not in entries

    def test_missing_tables_skipped(self):
        system = build_system()
        ghost = PathKey("nodb", "ghost", "payload", "$.x")
        system.collector.record_query(1, (ghost, ghost))
        report = system.run_midnight_cycle(day=1)
        assert report.skipped_missing_tables == 1


class TestBudgetAndStrategy:
    def test_zero_budget_caches_nothing(self):
        system = build_system(budget=0)
        system.collector.record_planned(1, [("db", "t", "payload", "$.hot")])
        system.collector.record_planned(1, [("db", "t", "payload", "$.hot")])
        report = system.run_midnight_cycle(day=1)
        assert report.selected == []

    def test_tight_budget_prefers_high_score(self):
        system = build_system()
        keys = [
            PathKey("db", "t", "payload", "$.hot"),
            PathKey("db", "t", "payload", "$.big"),
        ]
        # hot is accessed by more queries -> higher O_j; also smaller.
        for _ in range(4):
            system.collector.record_query(0, (keys[0],))
        system.collector.record_query(0, tuple(keys))
        stats_hot = system.scoring.measure(keys[0])
        budget = stats_hot.estimated_total_bytes + 10
        report = system.cache_paths_directly(keys, budget_bytes=budget)
        assert [sp.key.path for sp in report.selected] == ["$.hot"]

    def test_random_strategy_within_budget(self):
        system = build_system(strategy="random")
        keys = [
            PathKey("db", "t", "payload", "$.hot"),
            PathKey("db", "t", "payload", "$.cold"),
            PathKey("db", "t", "payload", "$.big"),
        ]
        for k in keys:
            system.collector.record_query(0, (k, k))
        report = system.cache_paths_directly(keys, budget_bytes=10**9)
        assert len(report.selected) == 3  # everything fits

    def test_cache_summary(self):
        system = build_system()
        system.cache_paths_directly(
            [PathKey("db", "t", "payload", "$.hot")], budget_bytes=10**9
        )
        summary = system.cache_summary()
        assert summary["cached_paths"] == 1
        assert summary["cache_tables"] == 1
        assert summary["cache_bytes"] > 0

    def test_cache_summary_build_metrics(self):
        system = build_system()
        assert system.cache_summary()["build_seconds"] == 0.0
        system.cache_paths_directly(
            [PathKey("db", "t", "payload", "$.hot")], budget_bytes=10**9
        )
        first = system.cache_summary()["build_seconds"]
        assert first > 0
        system.cache_paths_directly(
            [PathKey("db", "t", "payload", "$.cold")], budget_bytes=10**9
        )
        assert system.cache_summary()["build_seconds"] > first  # accumulates


class TestGenerationSwap:
    def test_cycle_increments_generation(self):
        system = build_system()
        assert system.generation == 0
        system.collector.record_planned(1, [("db", "t", "payload", "$.hot")])
        system.collector.record_planned(1, [("db", "t", "payload", "$.hot")])
        system.run_midnight_cycle(day=1)
        assert system.generation == 1
        assert system.cache_summary()["generation"] == 1

    def test_old_generation_tables_dropped(self):
        from repro.core.cacher import CACHE_DATABASE

        system = build_system()
        for day in (1, 2):
            system.collector.record_planned(day, [("db", "t", "payload", "$.hot")])
            system.collector.record_planned(day, [("db", "t", "payload", "$.hot")])
        system.run_midnight_cycle(day=1)
        system.run_midnight_cycle(day=2)
        on_disk = {t.name for t in system.catalog.list_tables(CACHE_DATABASE)}
        assert on_disk == system.registry.cache_tables()
        assert len(on_disk) == 1  # only the live generation remains

    def test_modifier_follows_swapped_registry(self):
        system = build_system()
        system.collector.record_planned(1, [("db", "t", "payload", "$.hot")])
        system.collector.record_planned(1, [("db", "t", "payload", "$.hot")])
        system.run_midnight_cycle(day=1)
        assert system.modifier.registry is system.registry
        assert system.cacher.registry is system.registry


class TestBaselineNesting:
    def test_back_to_back_baselines_restore_modifier(self):
        system = build_system()
        system.cache_paths_directly(
            [PathKey("db", "t", "payload", "$.hot")], budget_bytes=10**9
        )
        assert system.baseline_sql(HOT_SQL).metrics.parse_documents > 0
        system.baseline_sql(COLD_SQL)
        assert system.sql(HOT_SQL).metrics.parse_documents == 0

    def test_overlapping_baselines_keep_modifier_out(self):
        import threading

        system = build_system()
        system.cache_paths_directly(
            [PathKey("db", "t", "payload", "$.hot")], budget_bytes=10**9
        )
        entered = threading.Event()
        release = threading.Event()
        real_sql = system.session.sql

        def slow_sql(sql):
            if "cold" in sql:
                entered.set()
                assert release.wait(10)
            return real_sql(sql)

        system.session.sql = slow_sql
        try:
            outer = threading.Thread(
                target=lambda: system.baseline_sql(COLD_SQL)
            )
            outer.start()
            assert entered.wait(10)
            # nested baseline while the outer one is still executing
            inner = system.baseline_sql(HOT_SQL)
            assert inner.metrics.parse_documents > 0
            release.set()
            outer.join(10)
        finally:
            system.session.sql = real_sql
        # modifier reinstalled exactly once the outermost baseline ends
        assert system.sql(HOT_SQL).metrics.parse_documents == 0


class TestBaselineToggle:
    def test_baseline_sql_ignores_cache(self):
        system = build_system()
        system.cache_paths_directly(
            [PathKey("db", "t", "payload", "$.hot")], budget_bytes=10**9
        )
        baseline = system.baseline_sql(HOT_SQL)
        assert baseline.metrics.parse_documents > 0
        cached = system.sql(HOT_SQL)
        assert cached.metrics.parse_documents == 0
        assert baseline.rows == cached.rows

    def test_modifier_restored_after_baseline(self):
        system = build_system()
        system.cache_paths_directly(
            [PathKey("db", "t", "payload", "$.hot")], budget_bytes=10**9
        )
        system.baseline_sql(HOT_SQL)
        # modifier back in place
        assert system.sql(HOT_SQL).metrics.parse_documents == 0

    def test_for_demo_constructor(self):
        system = MaxsonSystem.for_demo(rows_per_table=30)
        tables = system.catalog.list_tables("prod")
        assert len(tables) == 10
