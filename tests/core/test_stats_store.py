"""Tests for collector persistence (the date-partitioned stats table)."""

import pytest

from repro.core import JsonPathCollector, META_DATABASE, StatsStore
from repro.engine import Session
from repro.workload import PathKey


def key(path: str, table: str = "t") -> PathKey:
    return PathKey("db", table, "payload", path)


@pytest.fixture
def collector() -> JsonPathCollector:
    collector = JsonPathCollector()
    collector.record_query(0, (key("$.a"), key("$.b")))
    collector.record_query(0, (key("$.a"),))
    collector.record_query(1, (key("$.a"), key("$.c", "u")))
    return collector


class TestRoundTrip:
    def test_save_load_counts(self, session, collector):
        store = StatsStore(session.catalog)
        store.save_all(collector)
        loaded = store.load()
        for day in collector.days:
            assert loaded.counts_on(day) == collector.counts_on(day)

    def test_save_load_query_membership(self, session, collector):
        store = StatsStore(session.catalog)
        store.save_all(collector)
        loaded = store.load()
        for day in collector.days:
            original = sorted(r.paths for r in collector.queries_on(day))
            restored = sorted(r.paths for r in loaded.queries_on(day))
            assert restored == original

    def test_mpjp_preserved(self, session, collector):
        store = StatsStore(session.catalog)
        store.save_all(collector)
        loaded = store.load()
        assert loaded.mpjp_on(0) == collector.mpjp_on(0)

    def test_partition_per_day(self, session, collector):
        store = StatsStore(session.catalog)
        store.save_all(collector)
        files = session.catalog.table_files(META_DATABASE, "jsonpath_stats")
        assert len(files) == 2  # one partition per collected day

    def test_verify_detects_consistency(self, session, collector):
        store = StatsStore(session.catalog)
        store.save_all(collector)
        assert store.verify(collector)

    def test_verify_detects_divergence(self, session, collector):
        store = StatsStore(session.catalog)
        store.save_all(collector)
        collector.record_query(0, (key("$.a"),))  # diverge after save
        assert not store.verify(collector)

    def test_incremental_save(self, session):
        collector = JsonPathCollector()
        store = StatsStore(session.catalog)
        collector.record_query(0, (key("$.a"), key("$.a")))
        store.save_day(collector, 0)
        collector.record_query(1, (key("$.b"),))
        store.save_day(collector, 1)
        loaded = store.load()
        assert loaded.count(key("$.a"), 0) == 2
        assert loaded.count(key("$.b"), 1) == 1

    def test_empty_day_writes_nothing(self, session):
        store = StatsStore(session.catalog)
        store.save_day(JsonPathCollector(), 5)
        assert session.catalog.table_files(META_DATABASE, "jsonpath_stats") == []

    def test_two_stores_share_tables(self, session, collector):
        StatsStore(session.catalog).save_all(collector)
        other = StatsStore(session.catalog)  # must not recreate tables
        assert other.load().days == collector.days

    def test_loaded_collector_drives_predictor(self, session, collector):
        from repro.core import JsonPathPredictor, PredictorConfig

        store = StatsStore(session.catalog)
        store.save_all(collector)
        loaded = store.load()
        predictor = JsonPathPredictor(PredictorConfig(model="oracle"))
        assert predictor.predict(loaded, 0) == {key("$.a")}
