"""Tests for MidnightReport and cycle reproducibility."""

import pytest

from repro.core import MaxsonConfig, MaxsonSystem, PredictorConfig
from repro.engine import Session
from repro.jsonlib import dumps
from repro.storage import BlockFileSystem, DataType, Schema


def build_system(seed=0, strategy="score") -> MaxsonSystem:
    session = Session(fs=BlockFileSystem())
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("db", "t", schema)
    rows = [(i, dumps({f"f{j}": i * j for j in range(6)})) for i in range(40)]
    session.catalog.append_rows("db", "t", rows, row_group_size=10)
    system = MaxsonSystem(
        session=session,
        config=MaxsonConfig(
            selection_strategy=strategy,
            random_seed=seed,
            predictor=PredictorConfig(model="oracle"),
        ),
    )
    for j in range(6):
        path = ("db", "t", "payload", f"$.f{j}")
        for _ in range(2):
            system.collector.record_planned(1, [path])
    return system


class TestMidnightReport:
    def test_cached_paths_property(self):
        system = build_system()
        report = system.run_midnight_cycle(day=1)
        assert report.cached_paths == [sp.key for sp in report.selected]
        assert report.day == 1
        assert report.predicted_mpjp == 6

    def test_report_counts_consistent(self):
        system = build_system()
        report = system.run_midnight_cycle(day=1)
        assert report.candidates_scored >= len(report.selected)
        assert report.build.rows_parsed > 0

    def test_cycle_reproducible_across_systems(self):
        a = build_system().run_midnight_cycle(day=1)
        b = build_system().run_midnight_cycle(day=1)
        assert a.cached_paths == b.cached_paths

    def test_random_strategy_seed_reproducible(self):
        a = build_system(seed=7, strategy="random")
        b = build_system(seed=7, strategy="random")
        total = sum(
            a.scoring.measure(k).estimated_total_bytes
            for k in a.collector.universe
        )
        ra = a.cache_paths_directly(a.collector.universe, budget_bytes=total // 2)
        rb = b.cache_paths_directly(b.collector.universe, budget_bytes=total // 2)
        assert ra.cached_paths == rb.cached_paths

    def test_different_random_seed_differs(self):
        a = build_system(seed=1, strategy="random")
        b = build_system(seed=2, strategy="random")
        total = sum(
            a.scoring.measure(k).estimated_total_bytes
            for k in a.collector.universe
        )
        ra = a.cache_paths_directly(a.collector.universe, budget_bytes=total // 3)
        rb = b.cache_paths_directly(b.collector.universe, budget_bytes=total // 3)
        # sets may coincide at tiny scale, but ordering generally differs
        assert ra.predicted_mpjp == rb.predicted_mpjp
