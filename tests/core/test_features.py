"""Unit tests for feature extraction."""

import numpy as np

from repro.core import FeatureConfig, FeatureExtractor, JsonPathCollector
from repro.workload import PathKey


def key(path="$.a"):
    return PathKey("db", "t", "payload", path)


def collector_with(counts: dict[int, int], k=None) -> JsonPathCollector:
    collector = JsonPathCollector()
    k = k or key()
    for day, n in counts.items():
        for _ in range(n):
            collector.record_query(day, (k,))
    return collector


class TestSequenceFor:
    def test_shapes(self):
        extractor = FeatureExtractor(FeatureConfig(window_days=7))
        collector = collector_with({d: 1 for d in range(10)})
        seq, labels = extractor.sequence_for(collector, key(), 9)
        assert seq.shape == (8, extractor.timestep_dim)
        assert labels.shape == (8,)

    def test_counts_in_order(self):
        extractor = FeatureExtractor(FeatureConfig(window_days=3))
        collector = collector_with({5: 2, 6: 1, 7: 3})
        seq, _ = extractor.sequence_for(collector, key(), 8)
        # counts are scaled by /10 for the LSTM's benefit
        assert list(seq[:3, 0]) == [0.2, 0.1, 0.3]

    def test_datediff_descending(self):
        extractor = FeatureExtractor(FeatureConfig(window_days=3))
        collector = collector_with({})
        seq, _ = extractor.sequence_for(collector, key(), 8)
        # normalised to (0, 1]; strictly decreasing toward the target day
        assert list(seq[:3, 2]) == [1.0, 2 / 3, 1 / 3]

    def test_target_step_masked(self):
        extractor = FeatureExtractor(FeatureConfig(window_days=3))
        collector = collector_with({8: 5})
        seq, labels = extractor.sequence_for(collector, key(), 8)
        assert list(seq[-1, :4]) == [-1.0, -1.0, 0.0, -1.0]
        assert labels[-1] == 1  # 5 accesses >= 2 -> MPJP

    def test_labels_match_threshold(self):
        extractor = FeatureExtractor(FeatureConfig(window_days=2, mpjp_threshold=3))
        collector = collector_with({6: 3, 7: 2, 8: 3})
        _, labels = extractor.sequence_for(collector, key(), 8)
        assert list(labels) == [1, 0, 1]

    def test_negative_days_zero(self):
        extractor = FeatureExtractor(FeatureConfig(window_days=7))
        collector = collector_with({0: 4})
        seq, _ = extractor.sequence_for(collector, key(), 2)
        # window covers days -5..1; missing days have count 0
        assert seq[0, 0] == 0.0

    def test_location_block_constant_across_steps(self):
        extractor = FeatureExtractor()
        collector = collector_with({0: 1})
        seq, _ = extractor.sequence_for(collector, key(), 3)
        for row in seq[1:]:
            assert np.array_equal(row[4:], seq[0, 4:])

    def test_different_tables_different_locations(self):
        extractor = FeatureExtractor()
        collector = JsonPathCollector()
        a = PathKey("db", "alpha", "c", "$.x")
        b = PathKey("db", "bravo_table", "c", "$.x")
        collector.record_query(0, (a, b))
        seq_a, _ = extractor.sequence_for(collector, a, 1)
        seq_b, _ = extractor.sequence_for(collector, b, 1)
        assert not np.array_equal(seq_a[0, 4:], seq_b[0, 4:])


class TestDataset:
    def test_rows_per_day_and_key(self):
        extractor = FeatureExtractor(FeatureConfig(window_days=3))
        collector = JsonPathCollector()
        keys = [key("$.a"), key("$.b")]
        collector.record_query(0, tuple(keys))
        dataset = extractor.dataset(collector, [4, 5])
        assert len(dataset.keys) == 4  # 2 keys x 2 days
        assert dataset.flat.shape[0] == 4
        assert dataset.labels.shape == (4,)

    def test_flat_features_order_free(self):
        """Flat view must be invariant to permuting the *older* history
        days (yesterday stays a distinguished feature) — the 'cannot take
        into account date sequences' property."""
        extractor = FeatureExtractor(FeatureConfig(window_days=4))
        c1 = collector_with({4: 3, 5: 0, 6: 0, 7: 1})
        c2 = collector_with({4: 0, 5: 0, 6: 3, 7: 1})
        seq1, _ = extractor.sequence_for(c1, key(), 8)
        seq2, _ = extractor.sequence_for(c2, key(), 8)
        assert np.array_equal(extractor.flatten(seq1), extractor.flatten(seq2))
        assert not np.array_equal(seq1, seq2)  # sequences do differ

    def test_flat_aggregates_values(self):
        extractor = FeatureExtractor(FeatureConfig(window_days=3))
        collector = collector_with({5: 2, 6: 0, 7: 4})
        seq, _ = extractor.sequence_for(collector, key(), 8)
        flat = extractor.flatten(seq)
        assert flat[0] == 4.0  # yesterday count
        assert flat[3] == (2 + 0 + 4) / 3  # mean
        assert flat[4] == 4.0  # max
