"""Unit tests for the JSONPath Collector."""

from repro.core import JsonPathCollector
from repro.workload import PathKey, SyntheticTrace, TraceConfig


def key(path: str, table: str = "t") -> PathKey:
    return PathKey("db", table, "c", path)


class TestRecording:
    def test_record_and_count(self):
        collector = JsonPathCollector()
        collector.record_query(0, (key("$.a"), key("$.b")))
        collector.record_query(0, (key("$.a"),))
        assert collector.count(key("$.a"), 0) == 2
        assert collector.count(key("$.b"), 0) == 1
        assert collector.count(key("$.c"), 0) == 0

    def test_partitioned_by_day(self):
        collector = JsonPathCollector()
        collector.record_query(0, (key("$.a"),))
        collector.record_query(1, (key("$.a"),))
        assert collector.count(key("$.a"), 0) == 1
        assert collector.count(key("$.a"), 1) == 1
        assert collector.days == [0, 1]

    def test_record_planned(self):
        collector = JsonPathCollector()
        collector.record_planned(3, [("db", "t", "c", "$.x")])
        assert collector.count(key("$.x"), 3) == 1

    def test_universe_sorted_unique(self):
        collector = JsonPathCollector()
        collector.record_query(0, (key("$.b"), key("$.a")))
        collector.record_query(1, (key("$.a"),))
        assert collector.universe == [key("$.a"), key("$.b")]

    def test_count_sequence(self):
        collector = JsonPathCollector()
        for day, n in ((0, 1), (1, 3), (3, 2)):
            for _ in range(n):
                collector.record_query(day, (key("$.a"),))
        assert collector.count_sequence(key("$.a"), [0, 1, 2, 3]) == [1, 3, 0, 2]


class TestMpjp:
    def test_mpjp_threshold(self):
        collector = JsonPathCollector()
        collector.record_query(0, (key("$.a"), key("$.b")))
        collector.record_query(0, (key("$.a"),))
        assert collector.mpjp_on(0) == {key("$.a")}
        assert collector.mpjp_label(key("$.a"), 0) == 1
        assert collector.mpjp_label(key("$.b"), 0) == 0

    def test_custom_threshold(self):
        collector = JsonPathCollector()
        for _ in range(3):
            collector.record_query(0, (key("$.a"),))
        assert collector.mpjp_on(0, threshold=4) == set()
        assert collector.mpjp_on(0, threshold=3) == {key("$.a")}


class TestQueriesBetween:
    def test_inclusive_range(self):
        collector = JsonPathCollector()
        for day in range(5):
            collector.record_query(day, (key("$.a"),))
        records = collector.queries_between(1, 3)
        assert [r.day for r in records] == [1, 2, 3]

    def test_queries_on(self):
        collector = JsonPathCollector()
        collector.record_query(2, (key("$.a"),))
        collector.record_query(2, (key("$.b"),))
        assert len(collector.queries_on(2)) == 2
        assert collector.queries_on(9) == []


class TestDerivedStats:
    def test_total_parses(self):
        collector = JsonPathCollector()
        collector.record_query(0, (key("$.a"),))
        collector.record_query(1, (key("$.a"), key("$.b")))
        totals = collector.total_parses()
        assert totals[key("$.a")] == 2
        assert totals[key("$.b")] == 1

    def test_duplicate_parse_fraction(self):
        collector = JsonPathCollector()
        # 3 parses of one path in one day -> 2 redundant of 3
        for _ in range(3):
            collector.record_query(0, (key("$.a"),))
        assert collector.duplicate_parse_fraction() == 2 / 3

    def test_duplicate_fraction_empty(self):
        assert JsonPathCollector().duplicate_parse_fraction() == 0.0

    def test_ingest_trace_cutoff(self):
        trace = SyntheticTrace(TraceConfig(days=6, users=5, tables=3, seed=1))
        collector = JsonPathCollector()
        collector.ingest_trace(trace, up_to_day=3)
        assert max(collector.days) <= 2

    def test_ingest_matches_trace_counts(self):
        trace = SyntheticTrace(TraceConfig(days=5, users=5, tables=3, seed=1))
        collector = JsonPathCollector()
        collector.ingest_trace(trace)
        assert collector.counts_on(2) == trace.daily_path_counts(2)
