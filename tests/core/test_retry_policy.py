"""RetryPolicy: what is retryable, and full-jitter backoff."""

import pytest

from repro.core.resilience import RetryPolicy
from repro.engine import CancelToken, DeadlineExceededError, QueryCancelledError
from repro.engine.errors import ExecutionError
from repro.server import AdmissionTimeout, QueryShedError, QueueFullError
from repro.storage import TransientFsError


class TestRetryability:
    def test_transient_fs_error_is_retryable(self):
        policy = RetryPolicy()
        assert policy.is_retryable(TransientFsError("blip"))
        assert policy.should_retry(TransientFsError("blip"), attempt=0)

    def test_admission_rejections_are_never_retryable(self):
        # Satellite: shed/timeout signals overload; retrying amplifies it.
        policy = RetryPolicy(max_retries=10)
        for exc in (
            QueueFullError("full"),
            AdmissionTimeout("slow"),
            QueryShedError("shed", retry_after_seconds=0.5),
        ):
            assert not policy.is_retryable(exc)
            assert not policy.should_retry(exc, attempt=0)

    def test_cancellations_are_never_retryable(self):
        policy = RetryPolicy(max_retries=10)
        assert not policy.is_retryable(QueryCancelledError("cancelled"))
        assert not policy.is_retryable(DeadlineExceededError("late"))
        assert not policy.is_retryable(ExecutionError("bad plan"))

    def test_cancelled_token_blocks_retry_of_transient_error(self):
        policy = RetryPolicy(max_retries=10)
        token = CancelToken()
        assert policy.is_retryable(TransientFsError("blip"), token)
        token.cancel("drain")
        assert not policy.is_retryable(TransientFsError("blip"), token)

    def test_attempt_budget(self):
        policy = RetryPolicy(max_retries=2)
        exc = TransientFsError("blip")
        assert policy.should_retry(exc, attempt=0)
        assert policy.should_retry(exc, attempt=1)
        assert not policy.should_retry(exc, attempt=2)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_seconds=-0.1)


class TestFullJitterBackoff:
    def test_backoff_within_full_jitter_bounds(self):
        policy = RetryPolicy(backoff_seconds=0.01, seed=3)
        for attempt in range(6):
            ceiling = 0.01 * (2**attempt)
            for _ in range(50):
                delay = policy.backoff_for(attempt)
                assert 0.0 <= delay <= ceiling

    def test_seeded_schedules_replay_identically(self):
        a = RetryPolicy(backoff_seconds=0.01, seed=42)
        b = RetryPolicy(backoff_seconds=0.01, seed=42)
        schedule_a = [a.backoff_for(i) for i in range(8)]
        schedule_b = [b.backoff_for(i) for i in range(8)]
        assert schedule_a == schedule_b

    def test_different_seeds_decorrelate(self):
        a = RetryPolicy(backoff_seconds=0.01, seed=1)
        b = RetryPolicy(backoff_seconds=0.01, seed=2)
        assert [a.backoff_for(i) for i in range(8)] != [
            b.backoff_for(i) for i in range(8)
        ]

    def test_backoff_is_jittered_not_deterministic(self):
        # The pre-PR-7 schedule was exactly base * 2**attempt; full
        # jitter must not reproduce that fixed ladder.
        policy = RetryPolicy(backoff_seconds=0.01, seed=0)
        ladder = [0.01 * (2**i) for i in range(8)]
        assert [policy.backoff_for(i) for i in range(8)] != ladder

    def test_zero_base_means_no_sleep(self):
        policy = RetryPolicy(backoff_seconds=0.0)
        assert policy.backoff_for(5) == 0.0
