"""Tests for the JSONPath Predictor model zoo."""

import numpy as np
import pytest

from repro.core import (
    JsonPathCollector,
    JsonPathPredictor,
    MODEL_NAMES,
    PredictorConfig,
)
from repro.workload import PathKey


def key(name: str) -> PathKey:
    return PathKey("db", "t", "payload", f"$.{name}")


def build_collector(days=20) -> JsonPathCollector:
    """daily: MPJP every day; alternating: period-2 burst; rare: never."""
    collector = JsonPathCollector()
    for day in range(days):
        collector.record_query(day, (key("daily"), key("daily")))
        if day % 4 < 2:
            collector.record_query(day, (key("alt"), key("alt")))
        collector.record_query(day, (key("rare"),))
    return collector


class TestConfig:
    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            JsonPathPredictor(PredictorConfig(model="transformer"))

    def test_all_model_names_construct(self):
        for model in MODEL_NAMES:
            JsonPathPredictor(PredictorConfig(model=model, epochs=1))

    def test_predict_before_fit_raises(self):
        predictor = JsonPathPredictor(PredictorConfig(model="lr"))
        with pytest.raises(RuntimeError):
            predictor.predict(build_collector(), 10)


class TestTrivialModels:
    def test_oracle_matches_ground_truth(self):
        collector = build_collector()
        predictor = JsonPathPredictor(PredictorConfig(model="oracle"))
        prf = predictor.evaluate(collector, [10, 11, 12])
        assert prf.f1 == 1.0

    def test_always_has_full_recall(self):
        collector = build_collector()
        predictor = JsonPathPredictor(PredictorConfig(model="always"))
        prf = predictor.evaluate(collector, [10, 11])
        assert prf.recall == 1.0
        assert prf.precision < 1.0  # 'rare' never actually MPJP

    def test_predicted_set_subset_of_universe(self):
        collector = build_collector()
        predictor = JsonPathPredictor(PredictorConfig(model="always"))
        predicted = predictor.predict(collector, 10)
        assert predicted == set(collector.universe)


class TestLearnedModels:
    @pytest.mark.parametrize("model", ["lr", "svm", "mlp"])
    def test_flat_models_learn_daily(self, model):
        collector = build_collector()
        predictor = JsonPathPredictor(
            PredictorConfig(model=model, window_days=5)
        )
        predictor.fit(collector, list(range(6, 14)))
        predicted = predictor.predict(collector, 15)
        assert key("daily") in predicted
        assert key("rare") not in predicted

    def test_lstm_crf_learns_daily_and_alternation(self):
        collector = build_collector(days=30)
        predictor = JsonPathPredictor(
            PredictorConfig(model="lstm_crf", window_days=5, epochs=25,
                            hidden_size=24, num_layers=1)
        )
        predictor.fit(collector, list(range(6, 24)))
        prf = predictor.evaluate(collector, [24, 25, 26, 27])
        assert prf.f1 > 0.7
        assert key("daily") in predictor.predict(collector, 25)

    def test_restricted_key_universe(self):
        collector = build_collector()
        predictor = JsonPathPredictor(PredictorConfig(model="oracle"))
        keys = [key("daily")]
        universe, labels = predictor.predict_labels(collector, 10, keys)
        assert universe == keys
        assert labels.shape == (1,)

    def test_evaluate_returns_prf(self):
        collector = build_collector()
        predictor = JsonPathPredictor(PredictorConfig(model="lr"))
        predictor.fit(collector, list(range(6, 12)))
        prf = predictor.evaluate(collector, [13])
        assert 0.0 <= prf.precision <= 1.0
        assert 0.0 <= prf.recall <= 1.0
