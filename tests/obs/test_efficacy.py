"""Tests for per-generation cache-efficacy accounting."""

from repro.obs.efficacy import EfficacyAccountant


class FakeCollector:
    """counts_on(day) -> {path_key: parse_count}, keyed off a dict."""

    def __init__(self, by_day):
        self.by_day = by_day

    def counts_on(self, day):
        return dict(self.by_day.get(day, {}))


class TestScoring:
    def test_precision_recall_and_hit_ratios(self):
        accountant = EfficacyAccountant()
        # predicted {a, b}; cached only {a}; realized on day 3: {a, c}.
        accountant.open_generation(
            generation=2, day=3, predicted=["a", "b"], cached=["a"]
        )
        collector = FakeCollector({3: {"a": 5, "b": 1, "c": 3}})
        record = accountant.close_pending(collector, up_to_day=4, threshold=2)
        assert record is not None
        assert record.generation == 2
        assert record.served_days == (3,)
        assert record.predicted_paths == 2
        assert record.cached_paths == 1
        assert record.realized_paths == 2  # a and c (b below threshold)
        assert record.true_positives == 1  # only a
        assert record.precision == 0.5
        assert record.recall == 0.5
        assert record.f1 == 0.5
        assert record.cached_realized == 1
        # count-weighted: cached a intercepts 5 of the 8 realized parses.
        assert record.count_weighted_hit_ratio == 5 / 8

    def test_multi_day_counts_accumulate(self):
        accountant = EfficacyAccountant()
        accountant.open_generation(1, day=1, predicted=["a"], cached=["a"])
        # 'b' never crosses the threshold on any single day.
        collector = FakeCollector({1: {"a": 2, "b": 1}, 2: {"a": 3, "b": 1}})
        record = accountant.close_pending(collector, up_to_day=3, threshold=2)
        assert record.served_days == (1, 2)
        assert record.realized_paths == 1
        assert record.count_weighted_hit_ratio == 1.0

    def test_byte_weighted_ratio_uses_weight_function(self):
        weights = {"a": 100, "c": 300}
        accountant = EfficacyAccountant(byte_weight=weights.__getitem__)
        accountant.open_generation(1, day=1, predicted=["a"], cached=["a"])
        collector = FakeCollector({1: {"a": 2, "c": 2}})
        record = accountant.close_pending(collector, up_to_day=2)
        assert record.byte_weighted_hit_ratio == 100 / 400

    def test_byte_weight_failure_degrades_to_zero(self):
        def weight(key):
            if key == "c":
                raise RuntimeError("sampler lost the file")
            return 100

        accountant = EfficacyAccountant(byte_weight=weight)
        accountant.open_generation(1, day=1, predicted=["a"], cached=["a"])
        collector = FakeCollector({1: {"a": 2, "c": 2}})
        record = accountant.close_pending(collector, up_to_day=2)
        # c's weight degrades to 0, so the cached path holds all bytes.
        assert record.byte_weighted_hit_ratio == 1.0

    def test_no_byte_weight_reports_zero(self):
        accountant = EfficacyAccountant()
        accountant.open_generation(1, day=1, predicted=["a"], cached=["a"])
        record = accountant.close_pending(
            FakeCollector({1: {"a": 2}}), up_to_day=2
        )
        assert record.byte_weighted_hit_ratio == 0.0

    def test_empty_realized_set_is_all_zero_ratios(self):
        accountant = EfficacyAccountant()
        accountant.open_generation(1, day=1, predicted=["a"], cached=["a"])
        record = accountant.close_pending(FakeCollector({}), up_to_day=2)
        assert record.realized_paths == 0
        assert record.precision == 0.0
        assert record.recall == 0.0
        assert record.count_weighted_hit_ratio == 0.0


class TestLifecycle:
    def test_close_without_open_returns_none(self):
        accountant = EfficacyAccountant()
        assert accountant.close_pending(FakeCollector({}), up_to_day=5) is None

    def test_zero_served_days_not_scored(self):
        accountant = EfficacyAccountant()
        accountant.open_generation(1, day=5, predicted=["a"], cached=["a"])
        assert accountant.close_pending(FakeCollector({}), up_to_day=5) is None
        # pending is consumed either way
        assert accountant.close_pending(FakeCollector({}), up_to_day=9) is None

    def test_records_bounded(self):
        accountant = EfficacyAccountant(max_records=3)
        collector = FakeCollector({d: {"a": 2} for d in range(100)})
        for generation in range(6):
            accountant.open_generation(
                generation, day=generation, predicted=["a"], cached=["a"]
            )
            accountant.close_pending(collector, up_to_day=generation + 1)
        assert len(accountant.records) == 3
        assert [r.generation for r in accountant.records] == [3, 4, 5]

    def test_snapshot_and_summary(self):
        accountant = EfficacyAccountant()
        assert accountant.latest() is None
        assert accountant.summary()["generations_scored"] == 0
        accountant.open_generation(1, day=1, predicted=["a"], cached=["a"])
        accountant.close_pending(FakeCollector({1: {"a": 2}}), up_to_day=2)
        snap = accountant.snapshot()
        assert len(snap) == 1
        assert snap[0]["generation"] == 1
        assert snap[0]["served_days"] == [1]
        summary = accountant.summary()
        assert summary["generations_scored"] == 1
        assert summary["mean_precision"] == 1.0
