"""Tests for the metrics registry and its Prometheus exposition."""

import math

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.promlint import validate_text


class TestCounter:
    def test_inc_accumulates(self):
        c = Counter("queries_total", "Queries.")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_negative_rejected(self):
        c = Counter("queries_total", "Queries.")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labelled_series_are_independent(self):
        c = Counter("queries_total", "Queries.", label_names=("tenant",))
        c.inc(tenant="a")
        c.inc(tenant="a")
        c.inc(tenant="b")
        assert c.value(tenant="a") == 2.0
        assert c.value(tenant="b") == 1.0

    def test_wrong_labels_rejected(self):
        c = Counter("queries_total", "Queries.", label_names=("tenant",))
        with pytest.raises(ValueError):
            c.inc(region="eu")

    def test_cardinality_cap_folds_to_other(self):
        c = Counter(
            "queries_total", "Queries.", label_names=("tenant",),
        )
        c.max_label_sets = 2
        c.inc(tenant="a")
        c.inc(tenant="b")
        c.inc(tenant="c")  # over the cap → folded
        c.inc(tenant="d")  # over the cap → folded into the same series
        assert c.value(tenant="a") == 1.0
        samples = {labels: v for _, labels, v in c.samples()}
        assert samples[(("tenant", "other"),)] == 2.0
        # a or b plus other: never more than cap + 1 series
        assert len(samples) <= 3


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("cached_paths", "Paths.")
        g.set(5)
        g.set(3)
        assert g.value() == 3.0

    def test_labelled(self):
        g = Gauge("efficacy", "Precision.", label_names=("generation",))
        g.set(0.75, generation="2")
        assert g.value(generation="2") == 0.75


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        h = Histogram("latency_seconds", "Latency.", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        samples = {
            (name, labels): value for name, labels, value in h.samples()
        }
        assert samples[("latency_seconds_bucket", (("le", "0.1"),))] == 1.0
        assert samples[("latency_seconds_bucket", (("le", "1"),))] == 2.0
        assert samples[("latency_seconds_bucket", (("le", "+Inf"),))] == 3.0
        assert samples[("latency_seconds_count", ())] == 3.0
        assert samples[("latency_seconds_sum", ())] == pytest.approx(5.55)

    def test_boundary_value_counts_in_bucket(self):
        h = Histogram("latency_seconds", "Latency.", buckets=(0.1,))
        h.observe(0.1)
        samples = {
            (name, labels): value for name, labels, value in h.samples()
        }
        assert samples[("latency_seconds_bucket", (("le", "0.1"),))] == 1.0

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram("latency_seconds", "Latency.", buckets=())

    def test_default_ladder_is_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestRegistry:
    def test_namespace_prefix(self):
        registry = MetricsRegistry(namespace="maxson")
        c = registry.counter("queries_total", "Queries.")
        assert c.name == "maxson_queries_total"

    def test_re_registration_returns_same_metric(self):
        registry = MetricsRegistry()
        a = registry.counter("queries_total", "Queries.")
        b = registry.counter("queries_total", "Queries.")
        assert a is b

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("queries_total", "Queries.")
        with pytest.raises(ValueError):
            registry.gauge("queries_total", "Queries.")

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("has space", "Bad.")  # prefix can't fix this
        with pytest.raises(ValueError):
            Counter("1bad", "Bad.")  # unprefixed: leading digit

    def test_exposition_passes_the_linter(self):
        registry = MetricsRegistry()
        c = registry.counter("queries_total", "Queries served.", ("tenant",))
        c.inc(tenant="t0")
        c.inc(3, tenant='quo"te')  # exercise label escaping
        registry.gauge("generation", "Active cache generation.").set(2)
        h = registry.histogram("query_latency_seconds", "Latency.")
        h.observe(0.004)
        h.observe(0.2)
        h.observe(math.pi)
        text = registry.to_prometheus()
        assert validate_text(text) == []

    def test_empty_registry_exposes_empty_text(self):
        registry = MetricsRegistry()
        assert registry.to_prometheus() == ""
        assert validate_text(registry.to_prometheus()) == []

    def test_snapshot_json_safe(self):
        import json

        registry = MetricsRegistry()
        registry.counter("queries_total", "Queries.").inc(4)
        registry.histogram("lat_seconds", "L.", buckets=(1.0,)).observe(0.5)
        snap = json.loads(json.dumps(registry.snapshot()))
        assert snap["maxson_queries_total"]["{}"] == 4.0
        assert snap["maxson_lat_seconds_count"]["{}"] == 1.0
