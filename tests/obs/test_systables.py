"""TelemetryStore: bounded, crash-tolerant system tables over NDJSON.

The store's three contracts (see repro/obs/systables.py):

* byte-budget rotation deletes the oldest sealed segments first (across
  all tables) and publishes occupancy to the cache ledger's reported
  ``telemetry`` tier;
* a torn tail line (crash mid-append) is skipped by the NDJSON reader,
  never failing the scan, and a re-opened store adopts surviving
  segments and keeps numbering past them;
* appends never bump the catalog version, so telemetry writes cannot
  invalidate cached plans.
"""

import json

from repro.engine import Session
from repro.engine.cachebudget import CacheLedger
from repro.obs.systables import SYSTEM_TABLES, TelemetryStore
from repro.storage import BlockFileSystem


def build_session() -> Session:
    return Session(fs=BlockFileSystem())


def fill(store: TelemetryStore, n: int, table: str = "queries", pad: int = 80):
    for i in range(n):
        store.record(
            table,
            {
                "query_id": f"q-{i}",
                "status": "completed",
                "seconds": 0.001 * i,
                "pad": "x" * pad,
            },
        )


class TestRecordAndQuery:
    def test_tables_registered_and_queryable(self):
        session = build_session()
        store = TelemetryStore(session.catalog)
        for name in SYSTEM_TABLES:
            assert session.catalog.table_exists("system", name)
        fill(store, 7)
        result = session.sql(
            "SELECT status, count(*) AS n FROM system.queries GROUP BY status"
        )
        assert result.rows == [{"status": "completed", "n": 7}]

    def test_payload_column_carries_whole_event(self):
        session = build_session()
        store = TelemetryStore(session.catalog)
        store.record("queries", {"query_id": "q-1", "extras": {"rows": 5}})
        result = session.sql(
            "SELECT get_json_object(payload, '$.extras.rows') AS r "
            "FROM system.queries"
        )
        assert result.rows == [{"r": 5}]

    def test_appends_never_bump_catalog_version(self):
        session = build_session()
        store = TelemetryStore(session.catalog)
        version = session.catalog.version
        fill(store, 20)
        assert session.catalog.version == version

    def test_fresh_rows_visible_without_version_bump(self):
        session = build_session()
        store = TelemetryStore(session.catalog)
        fill(store, 3)
        assert len(session.sql("SELECT ts FROM system.queries").rows) == 3
        fill(store, 2)
        assert len(session.sql("SELECT ts FROM system.queries").rows) == 5


class TestRotation:
    def test_budget_bounds_total_bytes(self):
        session = build_session()
        store = TelemetryStore(
            session.catalog, budget_bytes=4096, segment_bytes=512
        )
        fill(store, 200)
        assert store.total_bytes() <= 4096
        assert store.segments_rotated > 0

    def test_oldest_rows_rotate_out_newest_survive(self):
        session = build_session()
        store = TelemetryStore(
            session.catalog, budget_bytes=4096, segment_bytes=512
        )
        fill(store, 200)
        rows = session.sql("SELECT query_id FROM system.queries").rows
        ids = {row["query_id"] for row in rows}
        assert "q-199" in ids  # newest survives
        assert "q-0" not in ids  # oldest rotated out
        assert 0 < len(ids) < 200

    def test_rotation_is_cross_table_oldest_first(self):
        session = build_session()
        store = TelemetryStore(
            session.catalog, budget_bytes=4096, segment_bytes=512
        )
        fill(store, 100, table="queries")
        fill(store, 100, table="spans")
        # The spans rows alone exceed the budget, and every queries
        # segment is older than every spans segment — so rotation must
        # have consumed (almost) all of queries before touching spans,
        # and what survives is the newest spans data.
        queries_left = session.sql("SELECT query_id FROM system.queries").rows
        spans_left = session.sql("SELECT query_id FROM system.spans").rows
        assert len(queries_left) <= 5  # at most the unsealed active tail
        assert spans_left
        assert {row["query_id"] for row in spans_left} >= {"q-99"}

    def test_ledger_reports_telemetry_tier(self):
        session = build_session()
        ledger = session.cache_ledger
        store = TelemetryStore(session.catalog, ledger=ledger)
        fill(store, 10)
        tiers = ledger.to_dict()["tiers"]
        assert tiers.get("telemetry") == store.total_bytes()
        assert tiers["telemetry"] > 0

    def test_reported_tier_not_charged_to_budget(self):
        ledger = CacheLedger(budget=100)
        session = build_session()
        store = TelemetryStore(session.catalog, ledger=ledger)
        fill(store, 50)
        assert store.total_bytes() > 100
        assert ledger.total() == 0  # reported, not budgeted


class TestCrashTolerance:
    def test_torn_tail_line_is_skipped_not_fatal(self):
        session = build_session()
        store = TelemetryStore(session.catalog)
        fill(store, 5)
        state = store._tables["queries"]
        # Simulate a crash mid-append: a torn, unterminated JSON tail.
        session.catalog.fs.append(state.active, b'{"query_id": "to')
        rows = session.sql("SELECT query_id FROM system.queries").rows
        assert len(rows) == 5

    def test_reopened_store_adopts_segments_and_numbering(self):
        session = build_session()
        first = TelemetryStore(session.catalog, segment_bytes=256)
        fill(first, 20)
        reopened = TelemetryStore(session.catalog, segment_bytes=256)
        assert reopened.total_bytes() == first.total_bytes()
        state = reopened._tables["queries"]
        next_index = state.next_index
        assert next_index >= len(state.segments)
        fill(reopened, 20)
        rows = session.sql("SELECT query_id FROM system.queries").rows
        assert len(rows) == 40

    def test_reopened_store_still_rotates_adopted_segments(self):
        session = build_session()
        first = TelemetryStore(
            session.catalog, budget_bytes=1 << 30, segment_bytes=256
        )
        fill(first, 50)
        reopened = TelemetryStore(
            session.catalog, budget_bytes=2048, segment_bytes=256
        )
        fill(reopened, 10)
        assert reopened.total_bytes() <= 2048
        assert reopened.segments_rotated > 0

    def test_failed_append_is_counted_and_swallowed(self):
        session = build_session()
        store = TelemetryStore(session.catalog)

        class Boom:
            def __getattr__(self, name):
                from repro.storage.fs import FsError

                def fail(*args, **kwargs):
                    raise FsError("disk gone")

                return fail

        store.fs = Boom()
        assert store.record("queries", {"query_id": "q-1"}) is False
        assert store.events_dropped == 1


class TestSnapshot:
    def test_snapshot_counts(self):
        session = build_session()
        store = TelemetryStore(session.catalog)
        fill(store, 4)
        store.record("cache_events", {"event": "generation_swap"})
        snap = store.snapshot()
        assert snap["events"]["queries"] == 4
        assert snap["events"]["cache_events"] == 1
        assert snap["bytes"] == store.total_bytes()
        assert snap["segments"] >= 2  # queries + cache_events actives

    def test_record_spans_writes_one_row_per_span(self):
        from repro.obs import Tracer

        session = build_session()
        store = TelemetryStore(session.catalog)
        tracer = Tracer(trace_id="t-1")
        root = tracer.begin("query")
        child = tracer.begin("scan", worker="w-1", backend="thread")
        tracer.end(child)
        tracer.end(root)
        written = store.record_spans(tracer, "q-9", backend="thread")
        assert written == 2
        rows = session.sql(
            "SELECT name, worker, backend FROM system.spans"
        ).rows
        names = {row["name"] for row in rows}
        assert names == {"query", "scan"}
        scan_row = next(r for r in rows if r["name"] == "scan")
        assert scan_row["worker"] == "w-1"
        assert scan_row["backend"] == "thread"
        payload = session.sql(
            "SELECT get_json_object(payload, '$.attributes.worker') AS w "
            "FROM system.spans"
        ).rows
        assert {row["w"] for row in payload} == {None, "w-1"}


def test_store_events_json_round_trips():
    session = build_session()
    store = TelemetryStore(session.catalog)
    store.record("incidents", {"query_id": "q-1", "kind": "slow_query"})
    rows = session.sql("SELECT payload FROM system.incidents").rows
    doc = json.loads(rows[0]["payload"])
    assert doc["kind"] == "slow_query"
    assert "ts" in doc
