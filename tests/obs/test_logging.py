"""Tests for structured JSON logging and the slow-query filter."""

import io
import json

import pytest

from repro.obs.logging import StructuredLogger


def events_in(stream: io.StringIO) -> list[dict]:
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestLog:
    def test_writes_ndjson_with_timestamp(self):
        stream = io.StringIO()
        logger = StructuredLogger(stream=stream, clock=lambda: 12.5)
        logger.log("server_started", generation=1)
        (event,) = events_in(stream)
        assert event == {"ts": 12.5, "event": "server_started", "generation": 1}
        assert logger.snapshot()["events_written"] == 1

    def test_non_json_fields_stringified(self):
        stream = io.StringIO()
        logger = StructuredLogger(stream=stream)
        logger.log("oops", error=ValueError("bad"))
        (event,) = events_in(stream)
        assert event["error"] == "bad"

    def test_no_stream_returns_payload_without_writing(self):
        logger = StructuredLogger()
        payload = logger.log("query", query_id="q-1")
        assert payload["query_id"] == "q-1"
        assert logger.snapshot()["events_written"] == 0

    def test_stream_and_path_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError):
            StructuredLogger(stream=io.StringIO(), path=tmp_path / "x.ndjson")


class TestSlowQueryFilter:
    def test_silent_below_threshold_by_default(self):
        stream = io.StringIO()
        logger = StructuredLogger(stream=stream, slow_query_seconds=1.0)
        assert logger.query("q-1", seconds=0.2) is None
        assert stream.getvalue() == ""
        assert logger.snapshot()["slow_queries"] == 0

    def test_escalates_to_slow_query_event(self):
        stream = io.StringIO()
        logger = StructuredLogger(stream=stream, slow_query_seconds=1.0)
        logger.query("q-1", seconds=2.5, tenant="t0", generation=3, rows=7)
        (event,) = events_in(stream)
        assert event["event"] == "slow_query"
        assert event["query_id"] == "q-1"
        assert event["tenant"] == "t0"
        assert event["generation"] == 3
        assert event["rows"] == 7
        assert logger.snapshot()["slow_queries"] == 1

    def test_threshold_boundary_is_slow(self):
        logger = StructuredLogger(slow_query_seconds=1.0)
        logger.query("q-1", seconds=1.0)
        assert logger.snapshot()["slow_queries"] == 1

    def test_slow_counted_even_without_stream(self):
        logger = StructuredLogger(slow_query_seconds=0.5)
        logger.query("q-1", seconds=0.9)
        assert logger.snapshot()["slow_queries"] == 1
        assert logger.snapshot()["events_written"] == 0

    def test_zero_threshold_disables_slow_detection(self):
        stream = io.StringIO()
        logger = StructuredLogger(stream=stream, slow_query_seconds=0.0)
        assert logger.query("q-1", seconds=100.0) is None
        assert logger.snapshot()["slow_queries"] == 0

    def test_log_all_queries_writes_routine_events(self):
        stream = io.StringIO()
        logger = StructuredLogger(
            stream=stream, slow_query_seconds=1.0, log_all_queries=True
        )
        logger.query("q-1", seconds=0.1)
        logger.query("q-2", seconds=5.0)
        fast, slow = events_in(stream)
        assert fast["event"] == "query"
        assert slow["event"] == "slow_query"


class TestFileMode:
    def test_appends_to_path_and_closes(self, tmp_path):
        path = tmp_path / "logs" / "server.ndjson"
        logger = StructuredLogger(path=path)
        logger.log("server_started")
        logger.log("server_stopped")
        logger.close()
        events = [json.loads(l) for l in path.read_text().splitlines()]
        assert [e["event"] for e in events] == [
            "server_started",
            "server_stopped",
        ]
        # Writes after close degrade silently (payload still returned).
        assert logger.log("late") is not None
        assert len(path.read_text().splitlines()) == 2
