"""EXPLAIN ANALYZE: annotated plans from traced executions."""

import re

from repro.obs import Tracer, render_explain_analyze

SQL = (
    "SELECT get_json_object(sale_logs, '$.item_name') AS item, "
    "get_json_object(sale_logs, '$.sale_count') AS sold "
    "FROM mydb.T WHERE date = '20190101'"
)


def shape_of(report: str) -> list[str]:
    """Operator-tree lines with every measured value blanked out —
    the structural fingerprint that must match across engines."""
    out = []
    for line in report.splitlines():
        stripped = line.lstrip()
        if stripped.startswith(("-> ", "+ ")) or "  [time=" in line:
            out.append(re.sub(r"=[^ \]]+", "=_", line))
    return out


class TestSessionApi:
    def test_report_header_and_stages(self, sales_session):
        report = sales_session.explain_analyze(SQL)
        assert report.startswith("EXPLAIN ANALYZE (mode=batch)")
        assert "query: SELECT" in report
        for stage in ("total:", "plan:", "rewrite:", "execute:"):
            assert stage in report

    def test_operator_annotations_present(self, sales_session):
        report = sales_session.explain_analyze(SQL, execution_mode="row")
        scan_line = next(
            line for line in report.splitlines() if "scan" in line.lower()
        )
        assert "rows=" in scan_line
        assert "docs=" in scan_line or "docs=" in report
        assert "metrics: read=" in report
        assert "parse_fraction=" in report

    def test_row_and_batch_identically_shaped(self, sales_session):
        row = sales_session.explain_analyze(SQL, execution_mode="row")
        batch = sales_session.explain_analyze(SQL, execution_mode="batch")
        row_shape = [l.replace("mode=_", "") for l in shape_of(row)]
        batch_shape = [l.replace("mode=_", "") for l in shape_of(batch)]
        # Same operators, same nesting; only the measured values differ
        # (batch-only sharing counters are blanked before comparing).
        batch_only = r" ?(shared_parse_hits|dup_elim)=_"
        assert [re.sub(batch_only, "", l) for l in row_shape] == [
            re.sub(batch_only, "", l) for l in batch_shape
        ]
        assert len(row_shape) >= 2  # at least scan + project

    def test_results_unchanged_by_tracing(self, sales_session):
        plain = sales_session.sql(SQL)
        traced = sales_session.sql(SQL, tracer=Tracer())
        assert traced.rows == plain.rows
        assert plain.trace is None
        assert traced.trace is not None

    def test_trace_spans_cover_the_stage_tree(self, sales_session):
        result = sales_session.sql(SQL, tracer=Tracer())
        root = result.trace
        assert root.name == "query"
        for stage in ("plan", "rewrite", "execute", "scan", "project"):
            assert root.find(stage) is not None, stage
        scan = root.find("scan")
        assert scan.attributes.get("rows_out") == 40


class TestRenderer:
    def test_renders_bare_operator_subtree(self):
        tracer = Tracer()
        with tracer.span("scan", label="scan: mydb.T") as span:
            span.attributes.update(rows_out=40, parse_documents=40)
        report = render_explain_analyze(tracer.root)
        assert "scan: mydb.T" in report
        assert "rows=40" in report
        assert "docs=40" in report

    def test_empty_trace_degrades_gracefully(self):
        tracer = Tracer()
        with tracer.span("query"):
            pass
        report = render_explain_analyze(tracer.root, sql="SELECT 1")
        assert "(no operator spans recorded)" in report
        assert "query: SELECT 1" in report
