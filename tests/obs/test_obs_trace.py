"""Tests for spans, tracers and the JSONL trace sink."""

import json

from repro.obs.trace import Span, Tracer, TraceSink


def make_clock(step=1.0):
    state = {"now": 0.0}

    def clock():
        state["now"] += step
        return state["now"]

    return clock


class TestTracer:
    def test_nested_spans_form_a_tree(self):
        tracer = Tracer(clock=make_clock())
        root = tracer.begin("query")
        child = tracer.begin("scan")
        tracer.end(child)
        sibling = tracer.begin("project")
        tracer.end(sibling)
        tracer.end(root)
        assert tracer.root is root
        assert [s.name for s in root.children] == ["scan", "project"]
        assert child.parent_id == root.span_id
        assert root.parent_id is None

    def test_wall_seconds_from_clock(self):
        tracer = Tracer(clock=make_clock(step=1.0))
        with tracer.span("query") as span:
            pass
        assert span.wall_seconds == 1.0

    def test_context_manager_closes_on_exception(self):
        tracer = Tracer(clock=make_clock())
        try:
            with tracer.span("query"):
                with tracer.span("scan"):
                    raise RuntimeError("boom")
        except RuntimeError:
            pass
        for span in tracer.spans():
            assert span.ended_seconds >= span.started_seconds > 0

    def test_end_closes_dangling_children(self):
        tracer = Tracer(clock=make_clock())
        root = tracer.begin("query")
        tracer.begin("scan")  # never explicitly ended
        tracer.end(root)
        assert tracer.current is None
        assert all(s.ended_seconds > 0 for s in tracer.spans())

    def test_annotate_targets_innermost(self):
        tracer = Tracer(clock=make_clock())
        with tracer.span("query"):
            with tracer.span("scan") as scan:
                tracer.annotate(rows=7)
        assert scan.attributes["rows"] == 7
        assert "rows" not in tracer.root.attributes

    def test_find_and_find_all(self):
        tracer = Tracer(clock=make_clock())
        with tracer.span("query"):
            with tracer.span("scan"):
                pass
            with tracer.span("scan"):
                pass
        assert tracer.root.find("scan") is tracer.root.children[0]
        assert len(tracer.root.find_all("scan")) == 2
        assert tracer.root.find("missing") is None

    def test_total_sums_attribute_over_subtree(self):
        tracer = Tracer(clock=make_clock())
        with tracer.span("query"):
            with tracer.span("scan", parse_documents=3):
                pass
            with tracer.span("scan", parse_documents=4):
                pass
        assert tracer.root.total("parse_documents") == 7.0

    def test_second_root_attaches_to_first(self):
        tracer = Tracer(clock=make_clock())
        first = tracer.begin("query")
        tracer.end(first)
        second = tracer.begin("query")
        tracer.end(second)
        assert tracer.root is first
        assert second in first.children


class TestTraceSink:
    def test_writes_one_line_per_span_with_metadata(self, tmp_path):
        sink = TraceSink(tmp_path)
        tracer = Tracer(trace_id="q-1", clock=make_clock())
        with tracer.span("query"):
            with tracer.span("scan"):
                pass
        written = sink.write(tracer, query_id="q-1", tenant="t0")
        assert written == 2
        lines = [json.loads(l) for l in sink.path.read_text().splitlines()]
        assert len(lines) == 2
        assert {l["name"] for l in lines} == {"query", "scan"}
        assert all(l["trace_id"] == "q-1" for l in lines)
        assert all(l["tenant"] == "t0" for l in lines)
        parents = {l["span_id"]: l["parent_id"] for l in lines}
        root_id = next(s for s, p in parents.items() if p is None)
        assert all(p == root_id for s, p in parents.items() if p is not None)

    def test_bounded_by_max_spans(self, tmp_path):
        sink = TraceSink(tmp_path, max_spans=3)
        for i in range(3):
            tracer = Tracer(clock=make_clock())
            with tracer.span("query"):
                with tracer.span("scan"):
                    pass
            sink.write(tracer)
        snap = sink.snapshot()
        assert snap["spans_written"] == 3
        assert snap["spans_dropped"] == 3
        assert len(sink.path.read_text().splitlines()) == 3

    def test_empty_tracer_writes_nothing(self, tmp_path):
        sink = TraceSink(tmp_path)
        assert sink.write(Tracer(clock=make_clock())) == 0
        assert not sink.path.exists()


class TestSpanSerialisation:
    def test_to_dict_is_json_safe(self):
        tracer = Tracer(clock=make_clock())
        with tracer.span("query", mode="batch") as span:
            pass
        payload = json.loads(json.dumps(span.to_dict()))
        assert payload["name"] == "query"
        assert payload["attributes"]["mode"] == "batch"
        assert payload["wall_seconds"] > 0
