"""Integration: Maxson caches XML paths through the same machinery.

The paper's conclusion proposes applying the pre-caching technique to
other formats such as XML; these tests verify that ``get_xml_object``
calls flow through the collector, scorer, cacher, plan rewriter, Value
Combiner and predicate pushdown exactly like JSON ones.
"""

import pytest

from repro.core import MaxsonSystem
from repro.engine import Session
from repro.storage import BlockFileSystem, DataType, Schema
from repro.workload import PathKey


def xml_doc(i: int) -> str:
    return (
        f'<event id="{i}" kind="k{i % 5}">'
        f"<metric>{i}</metric><who><user>u{i % 9}</user></who>"
        "</event>"
    )


@pytest.fixture
def xml_system() -> MaxsonSystem:
    session = Session(fs=BlockFileSystem())
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("db", "events", schema)
    rows = [(i, xml_doc(i)) for i in range(200)]
    session.catalog.append_rows("db", "events", rows, row_group_size=20)
    return MaxsonSystem(session=session)


SQL = (
    "select id, get_xml_object(payload, '/event/metric') as m, "
    "get_xml_object(payload, '/event/who/user') as u "
    "from db.events where get_xml_object(payload, '/event/metric') >= 180"
)


class TestUncachedXml:
    def test_query_runs_and_parses(self, xml_system):
        result = xml_system.baseline_sql(SQL)
        assert [r["m"] for r in result.rows] == list(range(180, 200))
        assert result.rows[0]["u"] == "u0"
        assert result.metrics.parse_documents > 0

    def test_xml_paths_collected(self, xml_system):
        planned = xml_system.session.compile(SQL)
        assert ("db", "events", "payload", "/event/metric") in set(
            planned.referenced_json_paths
        )

    def test_attribute_paths(self, xml_system):
        result = xml_system.baseline_sql(
            "select get_xml_object(payload, '/event/@kind') as k, "
            "count(*) as n from db.events "
            "group by get_xml_object(payload, '/event/@kind')"
        )
        assert len(result.rows) == 5
        assert sum(r["n"] for r in result.rows) == 200


class TestCachedXml:
    KEYS = [
        PathKey("db", "events", "payload", "/event/metric"),
        PathKey("db", "events", "payload", "/event/who/user"),
    ]

    def test_results_identical_and_no_parsing(self, xml_system):
        baseline = xml_system.baseline_sql(SQL)
        xml_system.cacher.populate(self.KEYS)
        result = xml_system.sql(SQL)
        assert result.rows == baseline.rows
        assert result.metrics.parse_documents == 0
        assert xml_system.modifier.last_report.hits >= 2

    def test_cached_columns_typed(self, xml_system):
        report = xml_system.cacher.populate(self.KEYS)
        dtypes = {e.key.path: e.dtype for e in report.entries}
        assert dtypes["/event/metric"] == DataType.INT64
        assert dtypes["/event/who/user"] == DataType.STRING

    def test_pushdown_on_cached_xml_value(self, xml_system):
        xml_system.cacher.populate(self.KEYS)
        result = xml_system.sql(SQL)
        assert result.metrics.row_groups_skipped > 0

    def test_mixed_json_xml_cache(self, xml_system):
        # add a JSON column to the same system and cache both formats
        from repro.jsonlib import dumps

        session = xml_system.session
        schema = Schema.of(("id", DataType.INT64), ("doc", DataType.STRING))
        session.catalog.create_table("db", "mixed", schema)
        session.catalog.append_rows(
            "db", "mixed", [(i, dumps({"v": i})) for i in range(50)],
            row_group_size=10,
        )
        keys = self.KEYS + [PathKey("db", "mixed", "doc", "$.v")]
        xml_system.cacher.populate(keys)
        sql = "select get_json_object(doc, '$.v') as v from db.mixed"
        baseline = xml_system.baseline_sql(sql)
        result = xml_system.sql(sql)
        assert result.rows == baseline.rows
        assert result.metrics.parse_documents == 0

    def test_scoring_measures_xml_paths(self, xml_system):
        stats = xml_system.scoring.measure(self.KEYS[0])
        assert stats.avg_value_bytes > 0
        assert stats.estimated_total_bytes > 0

    def test_stale_xml_cache_invalidated(self):
        ticks = iter(float(i) for i in range(1000))
        session = Session(fs=BlockFileSystem(clock=lambda: next(ticks)))
        schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
        session.catalog.create_table("db", "events", schema)
        session.catalog.append_rows(
            "db", "events", [(i, xml_doc(i)) for i in range(30)]
        )
        system = MaxsonSystem(session=session)
        system.cacher.populate(self.KEYS[:1])
        session.catalog.append_rows("db", "events", [(999, xml_doc(999))])
        result = system.sql(
            "select get_xml_object(payload, '/event/metric') as m from db.events"
        )
        assert system.modifier.last_report.hits == 0
        assert len(result.rows) == 31
