"""Unit tests for the XML parser."""

import pytest

from repro.xmllib import XmlParseError, XmlParser, parse_xml


class TestBasics:
    def test_single_element(self):
        root = parse_xml("<a/>")
        assert root.tag == "a"
        assert root.children == []

    def test_text_content(self):
        assert parse_xml("<a>hello</a>").text == "hello"

    def test_attributes(self):
        root = parse_xml('<a x="1" y=\'two\'/>')
        assert root.attributes == {"x": "1", "y": "two"}

    def test_nested_children(self):
        root = parse_xml("<a><b>1</b><c><d/></c><b>2</b></a>")
        assert [child.tag for child in root.children] == ["b", "c", "b"]
        assert root.find("c").children[0].tag == "d"

    def test_find_all(self):
        root = parse_xml("<a><b>1</b><c/><b>2</b></a>")
        assert [el.text for el in root.find_all("b")] == ["1", "2"]
        assert root.find("zzz") is None

    def test_full_text(self):
        root = parse_xml("<a>x<b>y</b>z</a>")
        # own text first, then children, document order for descendants
        assert root.text == "xz"
        assert root.full_text() == "xzy"

    def test_xml_declaration_skipped(self):
        root = parse_xml('<?xml version="1.0" encoding="UTF-8"?><a/>')
        assert root.tag == "a"

    def test_comments_skipped(self):
        root = parse_xml("<!-- before --><a><!-- inside --><b/></a>")
        assert root.find("b") is not None

    def test_cdata(self):
        root = parse_xml("<a><![CDATA[<not & parsed>]]></a>")
        assert root.text == "<not & parsed>"

    def test_entities(self):
        root = parse_xml("<a>&lt;&amp;&gt;&quot;&apos;</a>")
        assert root.text == "<&>\"'"

    def test_numeric_character_references(self):
        assert parse_xml("<a>&#65;&#x42;</a>").text == "AB"

    def test_entity_in_attribute(self):
        assert parse_xml('<a v="&amp;"/>').attributes["v"] == "&"

    def test_whitespace_between_elements_kept_in_text(self):
        root = parse_xml("<a> <b/> </a>")
        assert root.text == "  "


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "<a>",
            "<a></b>",
            "<a><b></a></b>",
            "plain text",
            "<a x=1/>",
            '<a x="1" x="2"/>',
            "<a>&undefined;</a>",
            "<a>&#xzz;</a>",
            "<a/><b/>",
            "<a><!-- unterminated </a>",
            '<a x="unterminated/>',
            "<1bad/>",
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(XmlParseError):
            parse_xml(bad)

    def test_depth_limit(self):
        deep = "<a>" * 50 + "</a>" * 50
        with pytest.raises(XmlParseError):
            XmlParser(max_depth=10).parse(deep)

    def test_error_position(self):
        with pytest.raises(XmlParseError) as err:
            parse_xml("<a></b>")
        assert err.value.position >= 0


class TestStats:
    def test_counters(self):
        parser = XmlParser()
        parser.parse("<a>1</a>")
        parser.parse("<b/>")
        assert parser.stats.documents == 2
        assert parser.stats.bytes_scanned == len("<a>1</a>") + len("<b/>")
        assert parser.stats.seconds > 0

    def test_errors_counted(self):
        parser = XmlParser()
        with pytest.raises(XmlParseError):
            parser.parse("<oops>")
        assert parser.stats.errors == 1
