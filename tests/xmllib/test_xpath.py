"""Unit tests for the XPath-like dialect."""

import pytest

from repro.xmllib import (
    XPathError,
    evaluate_xpath,
    get_xml_object,
    parse_xpath,
    parse_xml,
)

DOC = parse_xml(
    '<order id="42" status="paid">'
    "<item sku='a1'><name>apple</name><qty>3</qty><price>2.5</price></item>"
    "<item sku='b2'><name>pear</name><qty>1</qty><price>4</price></item>"
    "<note>rush </note><note>fragile</note>"
    "</order>"
)


class TestParsePath:
    def test_simple(self):
        path = parse_xpath("/order/item/name")
        assert len(path.steps) == 3
        assert path.leaf == "name"

    def test_attribute_leaf(self):
        assert parse_xpath("/order/@id").leaf == "id"

    def test_index(self):
        path = parse_xpath("/order/item[1]/name")
        assert path.steps[1].index == 1

    def test_memoised(self):
        assert parse_xpath("/a/b") is parse_xpath("/a/b")

    @pytest.mark.parametrize(
        "bad",
        [
            "order/item",
            "/",
            "//a",
            "/a/@",
            "/a/@id/b",
            "/a/text()/b",
            "/a[x]",
            "/a[-1]",
            "/a/b]",
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(XPathError):
            parse_xpath(bad)


class TestEvaluate:
    def test_first_match_default(self):
        assert evaluate_xpath("/order/item/name", DOC) == "apple"

    def test_indexed(self):
        assert evaluate_xpath("/order/item[1]/name", DOC) == "pear"

    def test_attribute(self):
        assert evaluate_xpath("/order/@id", DOC) == 42  # numeric coercion
        assert evaluate_xpath("/order/@status", DOC) == "paid"
        assert evaluate_xpath("/order/item/@sku", DOC) == "a1"

    def test_text_function(self):
        # raw character data is preserved (no stripping)
        assert evaluate_xpath("/order/note/text()", DOC) == "rush "

    def test_numeric_coercion(self):
        assert evaluate_xpath("/order/item/qty", DOC) == 3
        assert evaluate_xpath("/order/item/price", DOC) == 2.5
        assert evaluate_xpath("/order/item[1]/price", DOC) == 4

    def test_missing_paths_yield_none(self):
        assert evaluate_xpath("/order/ghost", DOC) is None
        assert evaluate_xpath("/order/item[9]/name", DOC) is None
        assert evaluate_xpath("/order/@ghost", DOC) is None
        assert evaluate_xpath("/wrongroot/item", DOC) is None

    def test_root_index_zero_ok(self):
        assert evaluate_xpath("/order[0]/@id", DOC) == 42
        assert evaluate_xpath("/order[1]/@id", DOC) is None


class TestGetXmlObject:
    def test_basic(self):
        assert get_xml_object("<a><b>7</b></a>", "/a/b") == 7

    def test_null_contract(self):
        assert get_xml_object(None, "/a/b") is None
        assert get_xml_object("<broken", "/a/b") is None
        assert get_xml_object("<a/>", "/a/ghost") is None

    def test_bad_path_raises(self):
        with pytest.raises(XPathError):
            get_xml_object("<a/>", "no-slash")

    def test_parser_stats_attributed(self):
        from repro.xmllib import XmlParser

        parser = XmlParser()
        get_xml_object("<a>1</a>", "/a", parser=parser)
        assert parser.stats.documents == 1
