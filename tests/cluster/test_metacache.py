"""Coordinator metadata cache: version-vector invalidation semantics."""

from repro.cluster.metacache import MetadataCache

V0 = {"catalog": 1, "generation": 0}
V1 = {"catalog": 2, "generation": 0}
V2 = {"catalog": 2, "generation": 1}


def loader_returning(payload, version):
    calls = []

    def loader():
        calls.append(1)
        return payload, version

    loader.calls = calls
    return loader


class TestLookup:
    def test_first_lookup_misses_then_hits(self):
        cache = MetadataCache()
        loader = loader_returning({"a": 1}, V0)
        assert cache.lookup(0, "schema", "prod.t", loader) == {"a": 1}
        assert cache.lookup(0, "schema", "prod.t", loader) == {"a": 1}
        assert loader.calls == [1]
        assert cache.hits == 1 and cache.misses == 1

    def test_kinds_are_independent_entries(self):
        cache = MetadataCache()
        cache.lookup(0, "schema", "prod.t", loader_returning("s", V0))
        cache.lookup(0, "stripes", "prod.t", loader_returning("x", V0))
        snap = cache.snapshot()
        assert snap["entries"] == 2
        assert snap["misses_by_kind"] == {"schema": 1, "stripes": 1}


class TestInvalidation:
    def test_version_move_drops_only_that_shard(self):
        cache = MetadataCache()
        cache.lookup(0, "schema", "prod.t", loader_returning("a", V0))
        cache.lookup(1, "schema", "prod.t", loader_returning("b", V0))
        # Shard 0 appends: its vector moves, shard 1 untouched.
        cache.observe_version(0, V1)
        reload0 = loader_returning("a2", V1)
        keep1 = loader_returning("unused", V0)
        assert cache.lookup(0, "schema", "prod.t", reload0) == "a2"
        assert cache.lookup(1, "schema", "prod.t", keep1) == "b"
        assert reload0.calls == [1]
        assert keep1.calls == []
        assert cache.invalidations == 1

    def test_generation_swap_invalidates_like_ddl(self):
        cache = MetadataCache()
        cache.lookup(0, "registry", "prod.t", loader_returning("g0", V1))
        cache.observe_version(0, V2)
        reload = loader_returning("g1", V2)
        assert cache.lookup(0, "registry", "prod.t", reload) == "g1"
        assert reload.calls == [1]

    def test_same_version_observation_is_free(self):
        cache = MetadataCache()
        cache.lookup(0, "schema", "prod.t", loader_returning("a", V0))
        assert cache.observe_version(0, dict(V0)) is False
        assert cache.invalidations == 0

    def test_entry_loaded_under_stale_vector_never_hits(self):
        """If the shard's vector moves while a load is in flight, the
        stored entry must not satisfy later lookups."""
        cache = MetadataCache()

        def racing_loader():
            # The shard answers with the *old* vector, but by the time
            # the router stores it another response already reported V1.
            cache.observe_version(0, V1)
            return "stale", V0

        cache.lookup(0, "schema", "prod.t", racing_loader)
        fresh = loader_returning("fresh", V1)
        assert cache.lookup(0, "schema", "prod.t", fresh) == "fresh"
        assert fresh.calls == [1]


class TestHousekeeping:
    def test_forget_shard(self):
        cache = MetadataCache()
        cache.lookup(0, "schema", "prod.t", loader_returning("a", V0))
        cache.forget_shard(0)
        assert cache.snapshot()["entries"] == 0
        reload = loader_returning("a", V0)
        cache.lookup(0, "schema", "prod.t", reload)
        assert reload.calls == [1]

    def test_reset_stats_keeps_entries(self):
        cache = MetadataCache()
        loader = loader_returning("a", V0)
        cache.lookup(0, "schema", "prod.t", loader)
        cache.reset_stats()
        assert cache.snapshot()["entries"] == 1
        assert cache.lookup(0, "schema", "prod.t", loader) == "a"
        assert loader.calls == [1]  # still a hit after reset
        assert cache.hit_rate == 1.0

    def test_hit_rate_zero_when_empty(self):
        assert MetadataCache().hit_rate == 0.0
