"""Cluster integration: differential equivalence, shed propagation,
shard-aware audit, crash supervision, aggregated observability.

The differential suite's contract: a cluster answers **bit-identically**
to a single server over the same deterministic warehouse — same rows, in
the same order — and accounts sheds the same way; sharding may only
change *where* a query runs.
"""

import pytest

from repro.cluster import (
    ClusterRouter,
    ShardCrashError,
    ShardSpec,
    build_shard_server,
)
from repro.cluster.replay import build_replay_workload, replay_cluster
from repro.cluster.rpc import ShardConnectionError
from repro.cluster.shard import spec_queries
from repro.obs.promlint import validate_text
from repro.server.admission import QueryShedError

SPEC = ShardSpec(
    rows_per_table=40,
    days=2,
    server={"max_workers": 4, "system_tables": True},
)


@pytest.fixture(scope="module")
def cluster():
    with ClusterRouter(2, spec=SPEC) as router:
        yield router


@pytest.fixture(scope="module")
def twin():
    """The single-process twin over the identical warehouse."""
    system, server = build_shard_server(SPEC)
    yield system, server
    server.shutdown(wait=False)


@pytest.fixture(scope="module")
def queries():
    return spec_queries(SPEC)


class TestDifferential:
    def test_rows_and_order_bit_identical(self, cluster, twin, queries):
        _, server = twin
        for query in queries.values():
            expected = server.execute(query.sql, tenant="t-diff")
            got = cluster.execute(query.sql, tenant="t-diff")
            assert got["rows"] == expected.rows, query.query_id

    def test_replay_accounting_matches_single_server(
        self, cluster, twin, queries
    ):
        from repro.server.replay import replay

        requests = build_replay_workload(
            queries, days=2, per_day=6, tenants=3, seed=5
        )
        _, server = twin
        single = replay(server, requests)
        clustered = replay_cluster(cluster, requests)
        assert clustered.completed == single.completed == len(requests)
        assert (clustered.failed, clustered.shed) == (
            single.failed,
            single.shed,
        ) == (0, 0)
        assert clustered.crash_failed == 0
        assert sum(clustered.per_shard_completed.values()) == len(requests)

    def test_routing_is_sticky_per_tenant_table(self, cluster):
        sql = "SELECT count(*) AS n FROM prod.t_q3"
        shards = {
            cluster.execute(sql, tenant="t-sticky")["shard"]
            for _ in range(3)
        }
        assert len(shards) == 1

    def test_tenants_spread_across_shards(self, cluster, queries):
        shards = {
            cluster.shard_of(query.sql, tenant=f"tenant-{i:02d}")
            for i in range(8)
            for query in queries.values()
        }
        assert shards == {0, 1}


class TestShedPropagation:
    def test_deadline_shed_keeps_retry_after_and_reason(self, cluster):
        """Satellite #1: the typed shed crosses the router unchanged."""
        sql = "SELECT count(*) AS n FROM prod.t_q2"
        with pytest.raises(QueryShedError) as info:
            cluster.execute(sql, tenant="t-shed", deadline_ms=1e-4)
        assert info.value.retry_after_seconds > 0.0
        assert "deadline" in str(info.value)

    def test_shed_is_counted_not_failed(self, cluster, queries):
        requests = build_replay_workload(
            queries, days=1, per_day=4, tenants=1, seed=9
        )
        report = replay_cluster(cluster, requests, deadline_ms=1e-4)
        assert report.shed == len(requests)
        assert report.failed == 0 and report.completed == 0


class TestShardAwareAudit:
    def test_system_queries_sums_across_shards(self, cluster, queries):
        """Satellite #2: the audit reconciles against *summed* per-shard
        system.queries rows, and the sum equals the per-shard parts."""
        audit = cluster.audit_system_queries()
        assert set(audit["per_shard"]) == {0, 1}
        for status, total in audit["totals"].items():
            assert total == sum(
                by_status.get(status, 0)
                for by_status in audit["per_shard"].values()
            )
        assert audit["total_rows"] == sum(audit["totals"].values())
        assert audit["totals"].get("completed", 0) > 0
        assert audit["totals"].get("shed", 0) > 0  # the shed leg above


class TestMetadataCache:
    def test_hot_path_serves_from_coordinator(self, cluster):
        sql = "SELECT count(*) AS n FROM prod.t_q4"
        cluster.execute(sql, tenant="t-meta")  # warm
        cluster.metacache.reset_stats()
        for _ in range(5):
            cluster.execute(sql, tenant="t-meta")
        snap = cluster.metacache.snapshot()
        assert snap["hits"] == 5 and snap["misses"] == 0

    def test_midnight_swap_invalidates(self, cluster):
        sql = "SELECT count(*) AS n FROM prod.t_q6"
        cluster.execute(sql, tenant="t-gen")  # cache the schema
        before = cluster.metacache.invalidations
        cluster.run_midnight(day=7)
        cluster.execute(sql, tenant="t-gen")
        assert cluster.metacache.invalidations > before


class TestObservability:
    def test_status_aggregates_and_labels_shards(self, cluster):
        status = cluster.status()
        assert status["shards"] == 2
        assert set(status["per_shard"]) == {0, 1}
        assert status["cluster"]["queries_completed"] == sum(
            s["queries_completed"] for s in status["per_shard"].values()
        )
        assert status["cluster"]["queries_shed"] == sum(
            s["queries_shed"] for s in status["per_shard"].values()
        )

    def test_exposition_is_promlint_clean_with_shard_labels(self, cluster):
        text = cluster.metrics_text()
        assert validate_text(text, max_series=4000) == []
        assert 'shard="0"' in text and 'shard="1"' in text
        assert "maxson_metadata_cache_hits_total" in text
        assert "maxson_router_requests_total" in text


class TestCrashSupervision:
    def test_crash_fails_in_flight_then_respawns(self):
        import time

        # Latency-armed reads keep the victim query genuinely in flight
        # when the crash lands.
        spec = ShardSpec(
            rows_per_table=30,
            days=2,
            read_latency_seconds=0.2,
            server={"max_workers": 2},
        )
        with ClusterRouter(1, spec=spec) as router:
            sql = "SELECT count(*) AS n FROM prod.t_q2"
            expected = router.execute(sql, tenant="t0")["rows"]
            pid_before = router._shards[0].pid
            future = router.submit(sql, tenant="t0")
            time.sleep(0.1)  # the execute RPC is on the wire now
            try:
                router._shards[0].conn.call("crash", timeout=5.0)
            except ShardConnectionError:
                pass
            with pytest.raises(ShardCrashError):
                future.result(timeout=30)
            # The supervisor respawns shard 0 in place: same ring, new pid,
            # and the next query answers identically.
            after = router.execute(sql, tenant="t0")
            assert after["rows"] == expected
            assert router._shards[0].pid != pid_before
            assert router._respawns >= 1
            status = router.status()
            assert status["router"]["crash_failed"] >= 1

    def test_respawn_disabled_raises_for_followups(self):
        spec = ShardSpec(rows_per_table=30, days=1, server={"max_workers": 2})
        router = ClusterRouter(1, spec=spec, respawn=False)
        try:
            sql = "SELECT count(*) AS n FROM prod.t_q2"
            router.execute(sql, tenant="t0")
            try:
                router._shards[0].conn.call("crash", timeout=5.0)
            except ShardConnectionError:
                pass
            with pytest.raises(ShardCrashError):
                router.execute(sql, tenant="t0")
        finally:
            router.shutdown()


class TestFaultDifferential:
    def test_transient_faults_keep_answers_identical(self):
        """Fault profile leg: seeded transient read errors inside the
        shards; retries absorb them and rows still match the fault-free
        twin bit for bit."""
        faulty = ShardSpec(
            rows_per_table=30,
            days=1,
            fault_profile="read_error=0.05,seed=3",
            server={"max_workers": 2, "max_query_retries": 8},
        )
        clean = ShardSpec(
            rows_per_table=30, days=1, server={"max_workers": 1}
        )
        system, server = build_shard_server(clean)
        try:
            queries = spec_queries(clean)
            with ClusterRouter(2, spec=faulty) as router:
                for query_id in ("Q1", "Q2", "Q5"):
                    query = queries[query_id]
                    expected = server.execute(query.sql, tenant="t-f")
                    got = router.execute(query.sql, tenant="t-f")
                    assert got["rows"] == expected.rows, query_id
        finally:
            server.shutdown(wait=False)
