"""Consistent-hash ring: stability, minimal movement, determinism."""

from repro.cluster.hashing import HashRing, route_key


def _keys(n: int = 2000) -> list[str]:
    return [
        route_key(f"tenant-{t:02d}", "prod", f"t_q{q}")
        for t in range(n // 10)
        for q in range(1, 11)
    ]


class TestRouteKey:
    def test_distinct_tenants_distinct_keys(self):
        assert route_key("a", "prod", "t") != route_key("b", "prod", "t")

    def test_separator_prevents_ambiguity(self):
        # "ab" + "c.t" must not collide with "a" + "bc.t".
        assert route_key("ab", "c", "t") != route_key("a", "bc", "t")


class TestRingBasics:
    def test_every_key_lands_on_a_member(self):
        ring = HashRing(range(4))
        for key in _keys(200):
            assert ring.node_for(key) in (0, 1, 2, 3)

    def test_single_node_owns_everything(self):
        ring = HashRing([7])
        assert all(ring.node_for(k) == 7 for k in _keys(100))

    def test_distribution_is_roughly_even(self):
        ring = HashRing(range(4), replicas=64)
        counts = {n: 0 for n in range(4)}
        keys = _keys(2000)
        for key in keys:
            counts[ring.node_for(key)] += 1
        # With 64 vnodes/node the max/min spread stays modest.
        assert min(counts.values()) > len(keys) / 4 / 3

    def test_deterministic_across_instances(self):
        a, b = HashRing(range(5)), HashRing(range(5))
        assert a.assignment(_keys(500)) == b.assignment(_keys(500))


class TestRestartStability:
    def test_rebuild_moves_zero_keys(self):
        """A router restart (same shard-id set) reassigns nothing — the
        property that makes crash-respawn invisible to routing."""
        keys = _keys(2000)
        before = HashRing(range(4)).assignment(keys)
        after = HashRing(range(4)).assignment(keys)
        assert before == after

    def test_remove_then_readd_restores_placement(self):
        keys = _keys(1000)
        ring = HashRing(range(4))
        before = ring.assignment(keys)
        ring.remove(2)
        ring.add(2)
        assert ring.assignment(keys) == before


class TestResizeMovement:
    def test_grow_moves_only_the_new_shards_share(self):
        """N -> N+1 moves roughly 1/(N+1) of keys, and every moved key
        moves *to* the new shard (never between survivors)."""
        keys = _keys(4000)
        for n in (2, 4, 8):
            old = HashRing(range(n)).assignment(keys)
            new = HashRing(range(n + 1)).assignment(keys)
            moved = {k for k in keys if old[k] != new[k]}
            assert all(new[k] == n for k in moved)
            fraction = len(moved) / len(keys)
            # Expect ~1/(n+1); allow generous slack for vnode variance.
            assert fraction < 2.5 / (n + 1), (n, fraction)
            assert fraction > 0, n

    def test_shrink_moves_only_the_lost_shards_keys(self):
        keys = _keys(2000)
        big = HashRing(range(5)).assignment(keys)
        ring = HashRing(range(5))
        ring.remove(4)
        small = ring.assignment(keys)
        for key in keys:
            if big[key] != 4:
                assert small[key] == big[key]
