"""RPC framing, multiplexing, and typed error envelopes.

The regression contract of satellite concern #1: a ``QueryShedError``
crossing the router keeps its ``retry_after_seconds`` and message, so a
cluster client backs off exactly like a single-server client.
"""

import socket
import threading

import pytest

from repro.cluster.rpc import (
    MAX_FRAME_BYTES,
    RpcConnection,
    RpcError,
    ShardConnectionError,
    decode_error,
    encode_error,
    recv_frame,
    send_frame,
)
from repro.engine.errors import (
    DeadlineExceededError,
    ExecutionError,
    QueryCancelledError,
)
from repro.server.admission import (
    AdmissionTimeout,
    QueryShedError,
    QueueFullError,
)


class TestFraming:
    def test_round_trip(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, {"op": "ping", "id": 3})
            assert recv_frame(b) == {"op": "ping", "id": 3}
        finally:
            a.close()
            b.close()

    def test_peer_close_raises_connection_error(self):
        a, b = socket.socketpair()
        a.close()
        with pytest.raises(ShardConnectionError):
            recv_frame(b)
        b.close()

    def test_oversized_frame_refused(self):
        a, b = socket.socketpair()
        try:
            import struct

            a.sendall(struct.pack("<I", MAX_FRAME_BYTES + 1))
            with pytest.raises(ShardConnectionError):
                recv_frame(b)
        finally:
            a.close()
            b.close()


class TestErrorEnvelopes:
    def test_query_shed_error_fields_round_trip(self):
        original = QueryShedError(
            "tenant 'x': queue cannot drain in time",
            retry_after_seconds=0.375,
        )
        rebuilt = decode_error(encode_error(original))
        assert isinstance(rebuilt, QueryShedError)
        assert rebuilt.retry_after_seconds == 0.375
        assert str(rebuilt) == str(original)

    def test_shed_reason_text_survives(self):
        for reason in (
            "queue full",
            "admission timed out",
            "memory pressure: shedding cold queries",
        ):
            rebuilt = decode_error(
                encode_error(QueryShedError(reason, retry_after_seconds=1.5))
            )
            assert str(rebuilt) == reason
            assert rebuilt.retry_after_seconds == 1.5

    @pytest.mark.parametrize(
        "exc_type",
        [
            QueueFullError,
            AdmissionTimeout,
            DeadlineExceededError,
            QueryCancelledError,
            ExecutionError,
        ],
    )
    def test_typed_errors_round_trip(self, exc_type):
        rebuilt = decode_error(encode_error(exc_type("boom")))
        assert type(rebuilt) is exc_type
        assert "boom" in str(rebuilt)

    def test_unknown_type_degrades_to_rpc_error(self):
        rebuilt = decode_error({"type": "WeirdError", "message": "m"})
        assert isinstance(rebuilt, RpcError)
        assert "WeirdError" in str(rebuilt)


def _echo_shard(sock: socket.socket, reorder: bool = False) -> None:
    """A fake shard: echoes requests, optionally answering out of order,
    raising a shed error when asked."""
    pending = []
    while True:
        try:
            request = recv_frame(sock)
        except ShardConnectionError:
            return
        if request.get("op") == "shed":
            response = {
                "id": request["id"],
                "ok": False,
                "v": {"catalog": 1, "generation": 0},
                "error": encode_error(
                    QueryShedError("deadline too tight", 0.25)
                ),
            }
        else:
            response = {
                "id": request["id"],
                "ok": True,
                "v": {"catalog": 1, "generation": 0},
                "echo": request.get("value"),
            }
        if reorder:
            pending.append(response)
            if len(pending) < 2:
                continue
            pending.reverse()
            for queued in pending:
                send_frame(sock, queued)
            pending = []
        else:
            send_frame(sock, response)


class TestRpcConnection:
    def test_call_returns_payload(self):
        a, b = socket.socketpair()
        threading.Thread(target=_echo_shard, args=(b,), daemon=True).start()
        conn = RpcConnection(a)
        assert conn.call("echo", value=41)["echo"] == 41
        conn.close()

    def test_out_of_order_responses_reach_their_callers(self):
        a, b = socket.socketpair()
        threading.Thread(
            target=_echo_shard, args=(b, True), daemon=True
        ).start()
        conn = RpcConnection(a)
        results = {}

        def call(value):
            results[value] = conn.call("echo", value=value)["echo"]

        threads = [
            threading.Thread(target=call, args=(v,)) for v in (1, 2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert results == {1: 1, 2: 2}
        conn.close()

    def test_shed_error_raises_typed_with_fields(self):
        a, b = socket.socketpair()
        threading.Thread(target=_echo_shard, args=(b,), daemon=True).start()
        conn = RpcConnection(a)
        with pytest.raises(QueryShedError) as info:
            conn.call("shed")
        assert info.value.retry_after_seconds == 0.25
        conn.close()

    def test_version_observer_sees_every_response(self):
        a, b = socket.socketpair()
        threading.Thread(target=_echo_shard, args=(b,), daemon=True).start()
        conn = RpcConnection(a)
        seen = []
        conn.version_observer = seen.append
        conn.call("echo", value=1)
        conn.call("echo", value=2)
        assert seen == [{"catalog": 1, "generation": 0}] * 2
        conn.close()

    def test_dead_socket_fails_in_flight_calls(self):
        a, b = socket.socketpair()
        conn = RpcConnection(a)
        errors = []

        def call():
            try:
                conn.call("echo", value=1, timeout=10)
            except ShardConnectionError as exc:
                errors.append(exc)

        thread = threading.Thread(target=call)
        thread.start()
        b.close()
        thread.join(timeout=10)
        assert len(errors) == 1
        conn.close()
