"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_analyze_defaults(self):
        args = build_parser().parse_args(["analyze"])
        assert args.days == 42
        assert args.seed == 11

    def test_predict_model_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["predict", "--model", "transformer"])

    def test_demo_args(self):
        args = build_parser().parse_args(["demo", "--query", "Q7", "--rows", "50"])
        assert args.query == "Q7"
        assert args.rows == 50

    def test_replay_serve_defaults(self):
        args = build_parser().parse_args(["replay-serve"])
        assert args.concurrency == 8
        assert args.days == 3
        assert args.model == "always"

    def test_serve_alias(self):
        args = build_parser().parse_args(["serve", "--concurrency", "4"])
        assert args.func.__name__ == "cmd_replay_serve"
        assert args.concurrency == 4


class TestCommands:
    def test_analyze_runs(self, capsys):
        code = main(["analyze", "--days", "12", "--users", "6", "--tables", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "recurring_fraction" in out

    def test_predict_runs_flat_model(self, capsys):
        code = main(
            [
                "predict",
                "--days", "16",
                "--users", "6",
                "--tables", "4",
                "--model", "lr",
                "--window", "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "precision=" in out and "f1=" in out

    def test_demo_runs(self, capsys):
        code = main(["demo", "--query", "Q7", "--rows", "60"])
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "parse  0.0%" in out or "parse 0.0%" in out.replace("  ", " ")

    def test_replay_serve_runs(self, capsys):
        code = main(
            [
                "replay-serve",
                "--concurrency", "4",
                "--days", "2",
                "--per-day", "8",
                "--rows", "60",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Maxson server status" in out
        assert "hit_ratio" in out
        assert "midnight cycles" in out
