"""Unit tests for the Sparser-style raw prefilter."""

from repro.jsonlib import (
    FilterCascade,
    JacksonParser,
    KeyValueFilter,
    SubstringFilter,
)
from repro.jsonlib.jsonpath import evaluate


class TestSubstringFilter:
    def test_match(self):
        assert SubstringFilter("apple").matches('{"fruit": "apple"}')

    def test_no_match(self):
        assert not SubstringFilter("pear").matches('{"fruit": "apple"}')

    def test_describe(self):
        assert "apple" in SubstringFilter("apple").describe()


class TestKeyValueFilter:
    def test_exact_pair(self):
        assert KeyValueFilter("k", "5").matches('{"k": 5}')

    def test_whitespace_tolerated(self):
        assert KeyValueFilter("k", "5").matches('{"k"  :   5}')

    def test_wrong_value(self):
        assert not KeyValueFilter("k", "5").matches('{"k": 6}')

    def test_key_in_string_value_not_fooled(self):
        # '"k"' appears inside a string value without a following colon.
        assert not KeyValueFilter("k", "5").matches('{"other": "\\"k\\" x", "k": 6}')

    def test_second_occurrence_found(self):
        text = '{"k": 1, "nested": {"k": 5}}'
        assert KeyValueFilter("k", "5").matches(text)

    def test_string_value(self):
        assert KeyValueFilter("name", '"bob"').matches('{"name": "bob"}')


class TestConservativeness:
    """A raw filter may over-select but must never drop a true match."""

    def test_never_drops_true_matches(self):
        from repro.workload.nobench import NoBenchGenerator

        generator = NoBenchGenerator()
        parser = JacksonParser()
        cascade = FilterCascade([KeyValueFilter("thousandth", "7")])
        records = [generator.json(i) for i in range(200)]
        for record in records:
            exact = evaluate("$.thousandth", parser.parse(record)) == 7
            if exact:
                assert cascade.matches(record)

    def test_filter_reduces_candidates(self):
        from repro.workload.nobench import NoBenchGenerator

        generator = NoBenchGenerator()
        records = [generator.json(i) for i in range(200)]
        cascade = FilterCascade([KeyValueFilter("thousandth", "7")])
        passed = cascade.filter(records)
        assert 0 < len(passed) < len(records)


class TestCascade:
    def test_conjunction(self):
        cascade = FilterCascade(
            [SubstringFilter("alpha"), SubstringFilter("bravo")]
        )
        assert cascade.matches('{"a": "alpha bravo"}')
        assert not cascade.matches('{"a": "alpha"}')

    def test_calibrate_orders_by_elimination(self):
        # 'rare' eliminates nearly everything; calibration should put a
        # high-elimination filter first.
        records = ['{"common": 1}'] * 50 + ['{"common": 1, "rare": 2}']
        cascade = FilterCascade(
            [SubstringFilter("common"), SubstringFilter("rare")]
        )
        cascade.calibrate(records)
        assert cascade.filters[0] == SubstringFilter("rare")

    def test_calibrate_empty_sample_noop(self):
        cascade = FilterCascade([SubstringFilter("x")])
        cascade.calibrate([])
        assert cascade.filters == [SubstringFilter("x")]

    def test_pass_rate(self):
        cascade = FilterCascade([SubstringFilter("x")])
        assert cascade.pass_rate(['{"x": 1}', '{"y": 1}']) == 0.5
        assert cascade.pass_rate([]) == 1.0

    def test_stats_accumulate(self):
        cascade = FilterCascade([SubstringFilter("x")])
        cascade.matches('{"x": 1}')
        cascade.matches('{"y": 1}')
        assert cascade.stats.documents == 2
        assert cascade.stats.bytes_scanned == 2 * len('{"x": 1}')
