"""Tests for Pikkr-style speculative projection in MisonParser."""

import pytest

from repro.jsonlib import JacksonParser, MisonParser, dumps
from repro.jsonlib.jsonpath import evaluate


class TestSpeculationHits:
    def test_stable_schema_hits(self):
        parser = MisonParser(speculative=True)
        docs = [dumps({"a": i, "b": f"x{i % 3}"}) for i in range(20)]
        for doc in docs:
            parser.project(doc, ["$.b"])
        # first doc builds the speculation, the rest hit (values have the
        # same width so the offset is stable)
        assert parser.speculation_hits >= 15

    def test_hit_values_correct(self):
        parser = MisonParser(speculative=True)
        docs = [dumps({"pad": "qqqq", "v": 1000 + i}) for i in range(10)]
        values = [parser.project(d, ["$.v"])["$.v"] for d in docs]
        assert values == [1000 + i for i in range(10)]
        assert parser.speculation_hits > 0

    def test_nested_member_chain_speculated(self):
        parser = MisonParser(speculative=True)
        docs = [dumps({"outer": {"inner": {"v": 100 + i}}}) for i in range(8)]
        values = [
            parser.project(d, ["$.outer.inner.v"])["$.outer.inner.v"]
            for d in docs
        ]
        assert values == [100 + i for i in range(8)]
        assert parser.speculation_hits > 0

    def test_container_value_speculated(self):
        parser = MisonParser(speculative=True)
        docs = [dumps({"pad": "zz", "obj": {"k": i}}) for i in range(6)]
        values = [parser.project(d, ["$.obj"])["$.obj"] for d in docs]
        assert values == [{"k": i} for i in range(6)]


class TestSpeculationMisses:
    def test_shifted_schema_falls_back_correctly(self):
        parser = MisonParser(speculative=True)
        stable = dumps({"pad": "aaa", "v": 7})
        shifted = dumps({"padding_that_moves_things": "bbbb", "v": 9})
        assert parser.project(stable, ["$.v"])["$.v"] == 7
        assert parser.project(stable, ["$.v"])["$.v"] == 7
        assert parser.project(shifted, ["$.v"])["$.v"] == 9  # miss -> rescan
        assert parser.speculation_misses >= 1

    def test_offset_collision_with_other_key_rejected(self):
        """A different key at the remembered offset must not be decoded."""
        parser = MisonParser(speculative=True)
        a = dumps({"v": 1, "w": 2})
        b = dumps({"w": 3, "v": 4})  # same width, keys swapped
        assert parser.project(a, ["$.v"])["$.v"] == 1
        assert parser.project(b, ["$.v"])["$.v"] == 4

    def test_nested_key_shadowing_not_fooled(self):
        parser = MisonParser(speculative=True)
        a = dumps({"x": {"v": 1}, "v": 2})
        assert parser.project(a, ["$.v"])["$.v"] == 2
        # a doc where the nested "v" lands at the remembered offset but
        # the probe (quote+key+colon bytes) differs in context is re-scanned
        b = dumps({"y": {"v": 9}, "v": 5})
        assert parser.project(b, ["$.v"])["$.v"] == 5

    def test_index_paths_not_speculated(self):
        parser = MisonParser(speculative=True)
        doc = dumps({"arr": [1, 2, 3]})
        parser.project(doc, ["$.arr[1]"])
        assert "$.arr[1]" not in parser._speculation

    def test_disabled_mode_never_records(self):
        parser = MisonParser(speculative=False)
        parser.project(dumps({"a": 1}), ["$.a"])
        assert parser._speculation == {}
        assert parser.speculation_hits == 0


class TestDifferentialAgainstJackson:
    def test_randomised_stream_agreement(self):
        import random

        rng = random.Random(4)
        parser = MisonParser(speculative=True)
        jackson = JacksonParser()
        paths = ["$.a", "$.b.c", "$.d"]
        for i in range(200):
            doc = {"a": rng.randint(0, 9)}
            if rng.random() < 0.8:
                doc["b"] = {"c": "x" * rng.randint(1, 4)}
            if rng.random() < 0.5:
                doc["d"] = [1, 2]
            if rng.random() < 0.3:
                doc["extra"] = "pad" * rng.randint(1, 3)
            text = dumps(doc)
            expected = jackson.parse(text)
            projected = parser.project(text, paths)
            for path in paths:
                assert projected[path] == evaluate(path, expected), (i, path)
