"""Unit tests for JSONPath parsing and get_json_object semantics."""

import pytest

from repro.jsonlib import (
    JsonPathError,
    get_json_object,
    parse_path,
)
from repro.jsonlib.jsonpath import Index, Member, Wildcard, evaluate


class TestParsePath:
    def test_simple_member(self):
        path = parse_path("$.a")
        assert path.steps == (Member("a"),)

    def test_chained_members(self):
        assert parse_path("$.a.b.c").steps == (
            Member("a"),
            Member("b"),
            Member("c"),
        )

    def test_index(self):
        assert parse_path("$.a[3]").steps == (Member("a"), Index(3))

    def test_wildcard(self):
        assert parse_path("$.items[*].price").steps == (
            Member("items"),
            Wildcard(),
            Member("price"),
        )

    def test_bracket_member(self):
        assert parse_path("$['weird key']").steps == (Member("weird key"),)
        assert parse_path('$["k"]').steps == (Member("k"),)

    def test_whitespace_tolerated(self):
        assert parse_path("  $.a  ").steps == (Member("a"),)

    def test_depth_and_leaf(self):
        path = parse_path("$.a.b[0].c")
        assert path.depth == 3
        assert path.leaf == "c"

    def test_leaf_of_index_terminated(self):
        assert parse_path("$.a[0]").leaf == "a"

    def test_hashable_and_cacheable(self):
        assert parse_path("$.x") is parse_path("$.x")  # lru-cached
        {parse_path("$.x"): 1}  # hashable

    @pytest.mark.parametrize(
        "bad",
        [
            "a.b",
            "$",
            "$.",
            "$..a",
            "$.a[",
            "$.a[]",
            "$.a[-1]",
            "$.a[x]",
            "$.a['unterminated]",
            "$x",
            "$.a.[b]",
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(JsonPathError):
            parse_path(bad)


class TestEvaluate:
    DOC = {
        "a": {"b": [10, 20, {"c": "deep"}]},
        "items": [{"price": 1}, {"price": 2}, {"noprice": 3}],
        "nil": None,
        "flag": False,
    }

    def test_member_chain(self):
        assert evaluate("$.a.b", self.DOC) == [10, 20, {"c": "deep"}]

    def test_index(self):
        assert evaluate("$.a.b[1]", self.DOC) == 20

    def test_deep(self):
        assert evaluate("$.a.b[2].c", self.DOC) == "deep"

    def test_wildcard_collects_non_null(self):
        assert evaluate("$.items[*].price", self.DOC) == [1, 2]

    def test_wildcard_on_non_array(self):
        assert evaluate("$.a[*]", self.DOC) is None

    def test_missing_member(self):
        assert evaluate("$.zzz", self.DOC) is None
        assert evaluate("$.a.zzz", self.DOC) is None

    def test_out_of_range_index(self):
        assert evaluate("$.a.b[99]", self.DOC) is None

    def test_member_on_scalar(self):
        assert evaluate("$.flag.x", self.DOC) is None

    def test_null_value_returned(self):
        assert evaluate("$.nil", self.DOC) is None

    def test_false_value_preserved(self):
        assert evaluate("$.flag", self.DOC) is False


class TestGetJsonObject:
    def test_basic(self):
        assert get_json_object('{"a": {"b": 5}}', "$.a.b") == 5

    def test_none_input(self):
        assert get_json_object(None, "$.a") is None

    def test_malformed_json_yields_null(self):
        assert get_json_object("{broken", "$.a") is None

    def test_missing_path_yields_null(self):
        assert get_json_object('{"a": 1}', "$.b") is None

    def test_bad_path_raises(self):
        # Path errors are programming errors, not data errors.
        with pytest.raises(JsonPathError):
            get_json_object('{"a": 1}', "not-a-path")

    def test_parser_stats_attributed(self):
        from repro.jsonlib import JacksonParser

        parser = JacksonParser()
        get_json_object('{"a": 1}', "$.a", parser=parser)
        assert parser.stats.documents == 1
