"""Unit tests for the shared tokenizer."""

import pytest

from repro.jsonlib import JsonParseError
from repro.jsonlib.tokens import Token, TokenType, scan_number, scan_string, tokenize


def kinds(text: str) -> list[TokenType]:
    return [t.type for t in tokenize(text)]


class TestTokenStream:
    def test_structural_tokens(self):
        assert kinds('{"a": [1]}') == [
            TokenType.LBRACE,
            TokenType.STRING,
            TokenType.COLON,
            TokenType.LBRACKET,
            TokenType.NUMBER,
            TokenType.RBRACKET,
            TokenType.RBRACE,
            TokenType.EOF,
        ]

    def test_literals(self):
        assert kinds("true false null") == [
            TokenType.TRUE,
            TokenType.FALSE,
            TokenType.NULL,
            TokenType.EOF,
        ]

    def test_values_attached(self):
        tokens = list(tokenize('"hi" 42 -1.5'))
        assert tokens[0].value == "hi"
        assert tokens[1].value == 42
        assert tokens[2].value == -1.5

    def test_offsets(self):
        tokens = list(tokenize('  {"k": 1}'))
        assert tokens[0].start == 2  # LBRACE after two spaces
        assert tokens[1].start == 3 and tokens[1].end == 6

    def test_whitespace_only(self):
        assert kinds(" \t\n\r") == [TokenType.EOF]

    def test_garbage_raises_with_position(self):
        with pytest.raises(JsonParseError) as err:
            list(tokenize("[1, @]"))
        assert err.value.position == 4


class TestScanString:
    def test_fast_path_no_escapes(self):
        value, end = scan_string('"plain" tail', 0)
        assert value == "plain"
        assert end == 7

    def test_all_simple_escapes(self):
        value, _ = scan_string('"\\"\\\\\\/\\b\\f\\n\\r\\t"', 0)
        assert value == '"\\/\b\f\n\r\t'

    def test_not_a_string(self):
        with pytest.raises(JsonParseError):
            scan_string("123", 0)

    def test_invalid_escape(self):
        with pytest.raises(JsonParseError):
            scan_string('"\\q"', 0)

    def test_truncated_unicode(self):
        with pytest.raises(JsonParseError):
            scan_string('"\\u12"', 0)

    def test_bad_unicode_hex(self):
        with pytest.raises(JsonParseError):
            scan_string('"\\uzzzz"', 0)


class TestScanNumber:
    @pytest.mark.parametrize(
        "text, value",
        [
            ("0", 0),
            ("-0", 0),
            ("10", 10),
            ("-3", -3),
            ("2.5", 2.5),
            ("1e2", 100.0),
            ("1E+2", 100.0),
            ("1.5e-1", 0.15),
        ],
    )
    def test_valid(self, text, value):
        parsed, end = scan_number(text, 0)
        assert parsed == value
        assert end == len(text)

    @pytest.mark.parametrize("bad", ["-", ".", "1.", "1e", "1e+", "+1"])
    def test_invalid(self, bad):
        with pytest.raises(JsonParseError):
            result, end = scan_number(bad, 0)
            if end != len(bad):  # e.g. '1.' stops before the dot
                raise JsonParseError("trailing", end)

    def test_leading_zero_stops(self):
        # '01' scans as 0 then stops; the parser layer rejects trailing '1'.
        value, end = scan_number("01", 0)
        assert value == 0 and end == 1
