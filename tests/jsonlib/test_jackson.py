"""Unit tests for the Jackson-style full parser."""

import math

import pytest

from repro.jsonlib import (
    DepthLimitError,
    JacksonParser,
    JsonParseError,
    dumps,
    parse,
)


class TestScalars:
    def test_integers(self):
        assert parse("0") == 0
        assert parse("-7") == -7
        assert parse("1234567890123456789") == 1234567890123456789

    def test_floats(self):
        assert parse("1.5") == 1.5
        assert parse("-0.25") == -0.25
        assert parse("1e3") == 1000.0
        assert parse("2.5E-2") == 0.025
        assert parse("-1.5e+2") == -150.0

    def test_int_stays_int(self):
        assert isinstance(parse("42"), int)
        assert isinstance(parse("42.0"), float)

    def test_literals(self):
        assert parse("true") is True
        assert parse("false") is False
        assert parse("null") is None

    def test_strings(self):
        assert parse('"hello"') == "hello"
        assert parse('""') == ""
        assert parse('"a\\nb"') == "a\nb"
        assert parse('"tab\\there"') == "tab\there"
        assert parse('"q\\"uote"') == 'q"uote'
        assert parse('"back\\\\slash"') == "back\\slash"

    def test_unicode_escapes(self):
        assert parse('"\\u00e9"') == "é"
        assert parse('"\\u0041"') == "A"

    def test_surrogate_pair(self):
        assert parse('"\\ud83d\\ude00"') == "😀"

    def test_lone_high_surrogate_kept_verbatim(self):
        # A high surrogate not followed by a low one decodes to the raw
        # code point (matching python's chr behaviour).
        value = parse('"\\ud800x"')
        assert value[1] == "x"


class TestContainers:
    def test_empty_object(self):
        assert parse("{}") == {}

    def test_empty_array(self):
        assert parse("[]") == []

    def test_nested(self):
        doc = parse('{"a": [1, {"b": [true, null]}], "c": {"d": 2}}')
        assert doc == {"a": [1, {"b": [True, None]}], "c": {"d": 2}}

    def test_whitespace_everywhere(self):
        assert parse(' { "a" :\n[ 1 ,\t2 ] } ') == {"a": [1, 2]}

    def test_duplicate_keys_last_wins(self):
        assert parse('{"a": 1, "a": 2}') == {"a": 2}


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "{",
            "[",
            '{"a"}',
            '{"a":}',
            '{"a":1,}',
            "[1,]",
            "[1 2]",
            '{"a" 1}',
            "tru",
            "nul",
            '"unterminated',
            "01",  # leading zero then digit
            "1.",
            "1e",
            "-",
            '{"a": 1} extra',
            "[1],",
            '{\'a\': 1}',
        ],
    )
    def test_malformed(self, bad):
        with pytest.raises(JsonParseError):
            JacksonParser().parse(bad)

    def test_error_position_reported(self):
        with pytest.raises(JsonParseError) as err:
            parse("[1, x]")
        assert err.value.position == 4

    def test_depth_limit(self):
        deep = "[" * 200 + "]" * 200
        with pytest.raises(DepthLimitError):
            JacksonParser(max_depth=100).parse(deep)

    def test_depth_limit_allows_shallow(self):
        shallow = "[" * 50 + "]" * 50
        assert JacksonParser(max_depth=100).parse(shallow) is not None


class TestStats:
    def test_counters_accumulate(self):
        parser = JacksonParser()
        parser.parse('{"a": 1}')
        parser.parse("[1, 2, 3]")
        assert parser.stats.documents == 2
        assert parser.stats.bytes_scanned == len('{"a": 1}') + len("[1, 2, 3]")
        assert parser.stats.seconds > 0

    def test_errors_counted(self):
        parser = JacksonParser()
        with pytest.raises(JsonParseError):
            parser.parse("{bad")
        assert parser.stats.errors == 1
        assert parser.stats.documents == 1

    def test_merge_and_reset(self):
        a = JacksonParser()
        b = JacksonParser()
        a.parse("1")
        b.parse("[2]")
        a.stats.merge(b.stats)
        assert a.stats.documents == 2
        a.stats.reset()
        assert a.stats.documents == 0
        assert a.stats.bytes_scanned == 0


class TestDumps:
    def test_round_trip(self):
        doc = {"a": [1, 2.5, True, None, "x"], "b": {"c": "é"}}
        assert parse(dumps(doc)) == doc

    def test_escapes(self):
        assert dumps('a"b') == '"a\\"b"'
        assert dumps("line\nbreak") == '"line\\nbreak"'
        assert dumps("\x01") == '"\\u0001"'

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            dumps(float("nan"))
        with pytest.raises(ValueError):
            dumps(float("inf"))

    def test_rejects_unknown_type(self):
        with pytest.raises(TypeError):
            dumps(object())

    def test_bool_not_int(self):
        assert dumps(True) == "true"
        assert dumps(1) == "1"

    def test_float_round_trip_precision(self):
        value = 0.1 + 0.2
        assert parse(dumps(value)) == value
        assert math.isclose(parse(dumps(math.pi)), math.pi)
