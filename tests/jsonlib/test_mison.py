"""Unit tests for the Mison-style structural-index parser."""

import pytest

from repro.jsonlib import (
    JacksonParser,
    JsonParseError,
    MisonParser,
    build_structural_index,
    dumps,
)


class TestStructuralIndex:
    def test_colon_levels(self):
        index = build_structural_index('{"a": 1, "b": {"c": 2}}')
        assert len(index.colons[0]) == 2  # a, b
        assert len(index.colons[1]) == 1  # c

    def test_spans_match_brackets(self):
        text = '{"a": [1, 2], "b": {}}'
        index = build_structural_index(text)
        assert index.spans[0] == len(text) - 1
        open_bracket = text.index("[")
        assert text[index.spans[open_bracket]] == "]"

    def test_structural_chars_in_strings_ignored(self):
        index = build_structural_index('{"a": "{:}[,]", "b": 1}')
        assert len(index.colons[0]) == 2
        assert len(index.spans) == 1

    def test_escaped_quotes_handled(self):
        index = build_structural_index('{"a": "x\\"y: {", "b": 2}')
        assert len(index.colons[0]) == 2

    def test_unbalanced_raises(self):
        with pytest.raises(JsonParseError):
            build_structural_index('{"a": 1')
        with pytest.raises(JsonParseError):
            build_structural_index('{"a": 1}}')

    def test_unterminated_string_raises(self):
        with pytest.raises(JsonParseError):
            build_structural_index('{"a": "oops')


class TestProjection:
    DOC = (
        '{"x": 1, "s": "hello", "nested": {"deep": {"value": 42}}, '
        '"arr": [10, 20, 30], "objs": [{"v": 1}, {"v": 2}], '
        '"f": 2.5, "t": true, "n": null}'
    )

    def test_scalar_projection(self):
        parser = MisonParser()
        out = parser.project(self.DOC, ["$.x", "$.s", "$.f", "$.t", "$.n"])
        assert out == {"$.x": 1, "$.s": "hello", "$.f": 2.5, "$.t": True, "$.n": None}

    def test_nested_projection(self):
        out = MisonParser().project(self.DOC, ["$.nested.deep.value"])
        assert out["$.nested.deep.value"] == 42

    def test_array_index(self):
        out = MisonParser().project(self.DOC, ["$.arr[0]", "$.arr[2]", "$.arr[9]"])
        assert out["$.arr[0]"] == 10
        assert out["$.arr[2]"] == 30
        assert out["$.arr[9]"] is None

    def test_index_then_member(self):
        out = MisonParser().project(self.DOC, ["$.objs[1].v"])
        assert out["$.objs[1].v"] == 2

    def test_wildcard_fallback(self):
        out = MisonParser().project(self.DOC, ["$.objs[*].v"])
        assert out["$.objs[*].v"] == [1, 2]

    def test_missing_member(self):
        out = MisonParser().project(self.DOC, ["$.zzz", "$.nested.zzz"])
        assert out == {"$.zzz": None, "$.nested.zzz": None}

    def test_container_value(self):
        out = MisonParser().project(self.DOC, ["$.nested.deep"])
        assert out["$.nested.deep"] == {"value": 42}

    def test_malformed_returns_nulls(self):
        parser = MisonParser()
        out = parser.project("{broken", ["$.a"])
        assert out == {"$.a": None}
        assert parser.stats.errors == 1

    def test_member_on_scalar_root(self):
        assert MisonParser().project("42", ["$.a"]) == {"$.a": None}


class TestAgainstJackson:
    """Differential test: Mison projection must agree with full parse."""

    def test_agreement_on_generated_documents(self):
        from repro.workload.nobench import NoBenchGenerator
        from repro.jsonlib.jsonpath import evaluate

        generator = NoBenchGenerator()
        mison = MisonParser()
        jackson = JacksonParser()
        paths = [
            "$.str1",
            "$.num",
            "$.bool",
            "$.nested_obj.num",
            "$.nested_arr[2]",
            "$.thousandth",
            "$.sparse_000",
            "$.dyn2",
        ]
        for i in range(40):
            text = generator.json(i)
            document = jackson.parse(text)
            projected = mison.project(text, paths)
            for path in paths:
                assert projected[path] == evaluate(path, document), (i, path)

    def test_projection_touches_fewer_bytes_than_full_parse(self):
        generator = __import__(
            "repro.workload.nobench", fromlist=["NoBenchGenerator"]
        ).NoBenchGenerator()
        text = generator.json(0)
        mison = MisonParser()
        mison.project(text, ["$.num"])
        # structural scan counts len(text); decoded value bytes are tiny.
        assert mison.stats.bytes_scanned < 2 * len(text)

    def test_full_parse_fallback(self):
        parser = MisonParser()
        assert parser.parse('{"a": [1]}') == {"a": [1]}
        assert parser.stats.documents == 1


class TestWhitespaceRobustness:
    def test_spaced_document(self):
        doc = {"a": {"b": [1, {"c": "x"}]}, "d": 7}
        spaced = dumps(doc).replace(":", " : ").replace(",", " , ")
        out = MisonParser().project(spaced, ["$.a.b[1].c", "$.d"])
        assert out == {"$.a.b[1].c": "x", "$.d": 7}
