"""Property-based tests on the JSON substrate (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jsonlib import (
    JacksonParser,
    MisonParser,
    build_structural_index,
    dumps,
    parse,
)

# A recursive strategy over the JSON value domain our parsers support.
json_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**40), max_value=2**40)
    | st.floats(allow_nan=False, allow_infinity=False, width=64)
    | st.text(max_size=30),
    lambda children: st.lists(children, max_size=5)
    | st.dictionaries(st.text(max_size=12), children, max_size=5),
    max_leaves=20,
)

json_documents = st.dictionaries(
    st.text(min_size=1, max_size=12), json_values, min_size=0, max_size=6
)


@given(json_values)
@settings(max_examples=150, deadline=None)
def test_dumps_parse_round_trip(value):
    assert parse(dumps(value)) == value


@given(json_documents)
@settings(max_examples=100, deadline=None)
def test_structural_index_balanced_on_valid_json(doc):
    text = dumps(doc)
    index = build_structural_index(text)
    # every span must point a '{' or '[' at its matching partner
    for open_pos, close_pos in index.spans.items():
        assert text[open_pos] in "{["
        assert text[close_pos] in "}]"
        assert close_pos > open_pos


@given(
    st.dictionaries(
        st.text(
            alphabet=st.characters(min_codepoint=97, max_codepoint=122),
            min_size=1,
            max_size=8,
        ),
        json_values,
        min_size=1,
        max_size=6,
    )
)
@settings(max_examples=100, deadline=None)
def test_mison_agrees_with_jackson_on_top_level_members(doc):
    text = dumps(doc)
    full = JacksonParser().parse(text)
    mison = MisonParser()
    paths = [f"$.{key}" for key in doc]
    projected = mison.project(text, paths)
    for key in doc:
        assert projected[f"$.{key}"] == full[key]


@given(st.text(max_size=40))
@settings(max_examples=150, deadline=None)
def test_parser_never_hangs_or_crashes_on_garbage(text):
    from repro.jsonlib import JsonParseError

    parser = JacksonParser()
    try:
        parser.parse(text)
    except JsonParseError:
        pass  # rejecting garbage is the expected outcome


@given(st.text(alphabet='{}[]":,0123456789ab \\', max_size=60))
@settings(max_examples=150, deadline=None)
def test_structural_index_never_crashes_on_structural_soup(text):
    from repro.jsonlib import JsonParseError

    try:
        build_structural_index(text)
    except JsonParseError:
        pass
