"""Smoke tests of the public package surface."""

import pytest


class TestRoot:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_lazy_maxson_system(self):
        import repro

        assert repro.MaxsonSystem.__name__ == "MaxsonSystem"

    def test_unknown_attribute(self):
        import repro

        with pytest.raises(AttributeError):
            repro.not_a_thing


class TestAllExports:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.jsonlib",
            "repro.xmllib",
            "repro.storage",
            "repro.engine",
            "repro.ml",
            "repro.workload",
            "repro.core",
            "repro.server",
            "repro.faults",
            "repro.obs",
            "repro.cluster",
        ],
    )
    def test_all_names_resolve(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        for name in module.__all__:
            assert getattr(module, name) is not None, f"{module_name}.{name}"

    def test_no_duplicate_exports(self):
        import importlib

        for module_name in ("repro.jsonlib", "repro.engine", "repro.core"):
            module = importlib.import_module(module_name)
            assert len(module.__all__) == len(set(module.__all__))


class TestDocstrings:
    @pytest.mark.parametrize(
        "module_name",
        [
            "repro",
            "repro.jsonlib.jackson",
            "repro.jsonlib.mison",
            "repro.jsonlib.sparser",
            "repro.jsonlib.jsonpath",
            "repro.xmllib.parser",
            "repro.xmllib.xpath",
            "repro.storage.fs",
            "repro.storage.orc",
            "repro.storage.sargs",
            "repro.engine.sqlparser",
            "repro.engine.planner",
            "repro.engine.physical",
            "repro.engine.functions",
            "repro.engine.rawfilter",
            "repro.ml.lstm",
            "repro.ml.crf",
            "repro.ml.lstm_crf",
            "repro.workload.trace",
            "repro.workload.nobench",
            "repro.core.collector",
            "repro.core.predictor",
            "repro.core.scoring",
            "repro.core.cacher",
            "repro.core.maxson_parser",
            "repro.core.combiner",
            "repro.core.pushdown",
            "repro.core.system",
            "repro.server.admission",
            "repro.server.generation",
            "repro.server.scheduler",
            "repro.server.service",
            "repro.server.status",
            "repro.server.replay",
            "repro.server.config",
            "repro.cluster.hashing",
            "repro.cluster.rpc",
            "repro.cluster.metacache",
            "repro.cluster.shard",
            "repro.cluster.router",
            "repro.cluster.replay",
            "repro.obs.trace",
            "repro.obs.instrument",
            "repro.obs.explain",
            "repro.obs.metrics",
            "repro.obs.promlint",
            "repro.obs.logging",
            "repro.obs.efficacy",
            "repro.cli",
            "repro.reporting",
        ],
    )
    def test_module_documented(self, module_name):
        import importlib

        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 40

    def test_key_classes_documented(self):
        from repro.core import (
            JsonPathCacher,
            JsonPathCollector,
            JsonPathPredictor,
            MaxsonSystem,
            ScoringFunction,
        )
        from repro.engine import Session
        from repro.jsonlib import JacksonParser, MisonParser

        for cls in (
            MaxsonSystem,
            JsonPathCollector,
            JsonPathPredictor,
            ScoringFunction,
            JsonPathCacher,
            Session,
            JacksonParser,
            MisonParser,
        ):
            assert cls.__doc__ and cls.__doc__.strip()
