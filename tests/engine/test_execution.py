"""Integration tests: SQL execution end-to-end on the sale-logs table."""

import pytest

from repro.engine import ExecutionError, PlanError, Session
from repro.storage import DataType, Schema


class TestProjectionAndFilter:
    def test_simple_select(self, sales_session):
        result = sales_session.sql("select mall_id, date from mydb.T limit 3")
        assert len(result.rows) == 3
        assert set(result.rows[0]) == {"mall_id", "date"}

    def test_star(self, sales_session):
        result = sales_session.sql("select * from mydb.T limit 1")
        assert set(result.rows[0]) == {"mall_id", "date", "sale_logs"}

    def test_where_on_scalar_column(self, sales_session):
        result = sales_session.sql(
            "select date from mydb.T where date = '20190102'"
        )
        assert len(result.rows) == 40
        assert all(r["date"] == "20190102" for r in result.rows)

    def test_where_between(self, sales_session):
        result = sales_session.sql(
            "select date from mydb.T where date between '20190101' and '20190102'"
        )
        assert len(result.rows) == 80

    def test_json_extraction(self, sales_session):
        result = sales_session.sql(
            "select get_json_object(sale_logs, '$.item_name') as name "
            "from mydb.T where date = '20190101' limit 5"
        )
        assert all(r["name"].startswith("item") for r in result.rows)

    def test_json_predicate(self, sales_session):
        result = sales_session.sql(
            "select get_json_object(sale_logs, '$.turnover') as t "
            "from mydb.T where get_json_object(sale_logs, '$.turnover') > 900"
        )
        assert result.rows
        assert all(r["t"] > 900 for r in result.rows)

    def test_missing_json_path_is_null_filtered(self, sales_session):
        result = sales_session.sql(
            "select mall_id from mydb.T where get_json_object(sale_logs, '$.ghost') = 1"
        )
        assert result.rows == []

    def test_unknown_table(self, sales_session):
        with pytest.raises(Exception):
            sales_session.sql("select a from mydb.nope")

    def test_unknown_column(self, sales_session):
        with pytest.raises(ExecutionError):
            sales_session.sql("select ghost_column from mydb.T")


class TestAggregation:
    def test_count_star(self, sales_session):
        result = sales_session.sql("select count(*) as n from mydb.T")
        assert result.rows == [{"n": 200}]

    def test_group_by_scalar(self, sales_session):
        result = sales_session.sql(
            "select date, count(*) as n from mydb.T group by date"
        )
        assert len(result.rows) == 5
        assert all(r["n"] == 40 for r in result.rows)

    def test_group_by_json_value(self, sales_session):
        result = sales_session.sql(
            "select get_json_object(sale_logs, '$.item_id') as item, "
            "count(*) as n from mydb.T group by "
            "get_json_object(sale_logs, '$.item_id')"
        )
        assert len(result.rows) == 17
        assert sum(r["n"] for r in result.rows) == 200

    def test_sum_avg_min_max(self, sales_session):
        result = sales_session.sql(
            "select sum(get_json_object(sale_logs, '$.price')) as s, "
            "avg(get_json_object(sale_logs, '$.price')) as a, "
            "min(get_json_object(sale_logs, '$.price')) as lo, "
            "max(get_json_object(sale_logs, '$.price')) as hi "
            "from mydb.T"
        )
        row = result.rows[0]
        assert row["lo"] >= 1 and row["hi"] <= 50
        assert abs(row["a"] - row["s"] / 200) < 1e-9

    def test_count_distinct(self, sales_session):
        result = sales_session.sql(
            "select count(distinct get_json_object(sale_logs, '$.item_id')) as n "
            "from mydb.T"
        )
        assert result.rows == [{"n": 17}]

    def test_count_column_skips_nulls(self, sales_session):
        result = sales_session.sql(
            "select count(get_json_object(sale_logs, '$.ghost')) as n from mydb.T"
        )
        assert result.rows == [{"n": 0}]

    def test_global_aggregate_on_empty_input(self, sales_session):
        result = sales_session.sql(
            "select count(*) as n from mydb.T where date = '29990101'"
        )
        assert result.rows == [{"n": 0}]

    def test_having(self, sales_session):
        result = sales_session.sql(
            "select get_json_object(sale_logs, '$.item_id') as item, count(*) as n "
            "from mydb.T group by get_json_object(sale_logs, '$.item_id') "
            "having count(*) > 11"
        )
        assert all(r["n"] > 11 for r in result.rows)

    def test_arithmetic_over_aggregates(self, sales_session):
        result = sales_session.sql(
            "select sum(get_json_object(sale_logs, '$.price')) / count(*) as mean "
            "from mydb.T"
        )
        assert result.rows[0]["mean"] > 0


class TestSortLimit:
    def test_order_by_projected_alias(self, sales_session):
        result = sales_session.sql(
            "select get_json_object(sale_logs, '$.turnover') as t "
            "from mydb.T order by t desc limit 3"
        )
        values = [r["t"] for r in result.rows]
        assert values == sorted(values, reverse=True)

    def test_order_by_unprojected_expression(self, sales_session):
        # The paper's Fig 1 pattern: ORDER BY an expression over a column
        # that the projection dropped.
        result = sales_session.sql(
            "select mall_id, get_json_object(sale_logs, '$.item_id') as item "
            "from mydb.T where date = '20190101' "
            "order by get_json_object(sale_logs, '$.turnover') limit 1"
        )
        assert len(result.rows) == 1

    def test_order_by_aggregate(self, sales_session):
        result = sales_session.sql(
            "select date, count(*) as n from mydb.T group by date "
            "order by count(*) desc limit 2"
        )
        assert len(result.rows) == 2

    def test_multi_key_sort(self, sales_session):
        result = sales_session.sql(
            "select date, get_json_object(sale_logs, '$.price') as p "
            "from mydb.T order by date desc, p asc limit 50"
        )
        dates = [r["date"] for r in result.rows]
        assert dates == sorted(dates, reverse=True)

    def test_limit_zero(self, sales_session):
        assert sales_session.sql("select mall_id from mydb.T limit 0").rows == []


class TestJoin:
    def test_self_join(self, sales_session):
        result = sales_session.sql(
            "select count(*) as n from mydb.T a join mydb.T b "
            "on get_json_object(a.sale_logs, '$.item_id') = "
            "get_json_object(b.sale_logs, '$.item_id') "
            "where a.date = '20190101' and b.date = '20190102'"
        )
        # 40 rows/day over 17 item ids -> deterministic match count > 0
        assert result.rows[0]["n"] > 0

    def test_join_on_scalar(self, session):
        schema_a = Schema.of(("k", DataType.INT64), ("v", DataType.STRING))
        schema_b = Schema.of(("k", DataType.INT64), ("w", DataType.STRING))
        session.catalog.create_table("db", "a", schema_a)
        session.catalog.create_table("db", "b", schema_b)
        session.catalog.append_rows("db", "a", [(1, "x"), (2, "y"), (3, "z")])
        session.catalog.append_rows("db", "b", [(2, "B2"), (3, "B3"), (4, "B4")])
        result = session.sql(
            "select a.v, b.w from db.a a join db.b b on a.k = b.k order by a.v"
        )
        assert result.rows == [{"v": "y", "w": "B2"}, {"v": "z", "w": "B3"}]

    def test_join_null_keys_never_match(self, session):
        schema = Schema.of(("k", DataType.INT64), ("v", DataType.STRING))
        session.catalog.create_table("db", "n1", schema)
        session.catalog.create_table("db", "n2", schema)
        session.catalog.append_rows("db", "n1", [(None, "x"), (1, "y")])
        session.catalog.append_rows("db", "n2", [(None, "a"), (1, "b")])
        result = session.sql(
            "select count(*) as n from db.n1 a join db.n2 b on a.k = b.k"
        )
        assert result.rows == [{"n": 1}]

    def test_join_requires_equi_condition(self, session):
        schema = Schema.of(("k", DataType.INT64),)
        session.catalog.create_table("db", "j1", schema)
        session.catalog.create_table("db", "j2", schema)
        with pytest.raises(PlanError):
            session.sql("select a.k from db.j1 a join db.j2 b on a.k > b.k")

    def test_join_residual_condition(self, session):
        schema = Schema.of(("k", DataType.INT64), ("v", DataType.INT64))
        session.catalog.create_table("db", "r1", schema)
        session.catalog.create_table("db", "r2", schema)
        session.catalog.append_rows("db", "r1", [(1, 10), (1, 20)])
        session.catalog.append_rows("db", "r2", [(1, 15)])
        result = session.sql(
            "select a.v from db.r1 a join db.r2 b on a.k = b.k and a.v > b.v"
        )
        assert result.rows == [{"v": 20}]


class TestMetrics:
    THREE_PATH_QUERY = (
        "select get_json_object(sale_logs, '$.item_id') as a, "
        "get_json_object(sale_logs, '$.turnover') as b, "
        "get_json_object(sale_logs, '$.price') as c from mydb.T"
    )

    def test_parse_dominates_json_queries(self, sales_session):
        result = sales_session.sql(self.THREE_PATH_QUERY, execution_mode="row")
        # the paper's headline (>= ~80%) is asserted at realistic scale in
        # benchmarks/test_fig3_parse_cost.py; at this tiny table size just
        # require that parsing is a major component and counted exactly.
        assert result.metrics.parse_fraction > 0.3
        assert result.metrics.parse_documents == 600  # 3 calls x 200 rows

    def test_batch_path_shares_parses_across_expressions(self, sales_session):
        result = sales_session.sql(self.THREE_PATH_QUERY, execution_mode="batch")
        # Parse-once sharing: 200 documents parsed once each; the other
        # two extraction calls per row are served from the shared cache
        # and must NOT be re-charged to the parser stats.
        assert result.metrics.parse_documents == 200
        assert result.metrics.shared_parse_hits == 400  # 2 extra calls x 200

    def test_column_pruning_reduces_bytes(self, sales_session):
        wide = sales_session.sql("select * from mydb.T")
        narrow = sales_session.sql("select date from mydb.T")
        assert narrow.metrics.bytes_read < wide.metrics.bytes_read

    def test_sarg_pushdown_on_scalar_column(self, sales_session):
        full = sales_session.sql("select date from mydb.T")
        filtered = sales_session.sql(
            "select date from mydb.T where date = '20190101'"
        )
        assert filtered.metrics.row_groups_skipped > 0
        assert filtered.metrics.bytes_read < full.metrics.bytes_read

    def test_session_metrics_accumulate(self, sales_session):
        sales_session.reset_session_metrics()
        sales_session.sql("select date from mydb.T limit 1")
        sales_session.sql("select date from mydb.T limit 1")
        assert sales_session.session_metrics.rows_output == 2

    def test_explain_produces_plan_text(self, sales_session):
        text = sales_session.explain(
            "select date from mydb.T where date = '20190101'"
        )
        assert "Scan" in text and "Filter" in text
