"""Unit tests for QueryMetrics accounting."""

from repro.engine import QueryMetrics


class TestDerived:
    def test_compute_is_remainder(self):
        m = QueryMetrics(total_seconds=10.0, read_seconds=2.0, parse_seconds=5.0)
        assert m.compute_seconds == 3.0

    def test_compute_floored_at_zero(self):
        m = QueryMetrics(total_seconds=1.0, read_seconds=2.0, parse_seconds=5.0)
        assert m.compute_seconds == 0.0

    def test_parse_fraction(self):
        m = QueryMetrics(total_seconds=10.0, parse_seconds=8.0)
        assert m.parse_fraction == 0.8

    def test_parse_fraction_zero_total(self):
        assert QueryMetrics().parse_fraction == 0.0

    def test_breakdown_keys(self):
        m = QueryMetrics(total_seconds=4.0, read_seconds=1.0, parse_seconds=2.0)
        assert m.breakdown() == {"read": 1.0, "parse": 2.0, "compute": 1.0}


class TestMerge:
    def test_counters_add(self):
        a = QueryMetrics(
            total_seconds=1.0,
            bytes_read=10,
            rows_scanned=5,
            parse_documents=2,
            cache_hits=1,
        )
        b = QueryMetrics(
            total_seconds=2.0,
            bytes_read=20,
            rows_scanned=7,
            parse_documents=3,
            cache_misses=4,
        )
        a.merge(b)
        assert a.total_seconds == 3.0
        assert a.bytes_read == 30
        assert a.rows_scanned == 12
        assert a.parse_documents == 5
        assert a.cache_hits == 1 and a.cache_misses == 4

    def test_extra_merges_by_key(self):
        a = QueryMetrics(extra={"x": 1.0})
        b = QueryMetrics(extra={"x": 2.0, "y": 3.0})
        a.merge(b)
        assert a.extra == {"x": 3.0, "y": 3.0}

    def test_extra_merge_preserves_int_counters(self):
        """Integer counters in ``extra`` must stay ints through merge —
        the old ``.get(key, 0.0)`` default silently floated them."""
        a = QueryMetrics()
        b = QueryMetrics(extra={"generations_built": 2, "ratio": 0.5})
        a.merge(b)
        assert a.extra["generations_built"] == 2
        assert type(a.extra["generations_built"]) is int
        assert type(a.extra["ratio"]) is float
        a.merge(QueryMetrics(extra={"generations_built": 3}))
        assert a.extra["generations_built"] == 5
        assert type(a.extra["generations_built"]) is int

    def test_snapshot_round_trips_extra(self):
        """snapshot() must deep-copy ``extra`` (ints intact, no aliasing)."""
        a = QueryMetrics(extra={"builds": 4, "seconds": 1.25})
        snap = a.snapshot()
        assert snap.extra == {"builds": 4, "seconds": 1.25}
        assert type(snap.extra["builds"]) is int
        snap.extra["builds"] = 99
        assert a.extra["builds"] == 4
        merged = QueryMetrics()
        merged.merge(a)
        merged.merge(a)
        assert merged.extra == {"builds": 8, "seconds": 2.5}
        assert type(merged.extra["builds"]) is int
