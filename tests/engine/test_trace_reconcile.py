"""Differential tests: trace spans must reconcile with QueryMetrics.

The span tree and :class:`~repro.engine.metrics.QueryMetrics` measure the
same execution through two independent channels — per-operator counter
deltas vs. the query-end fold. If they drift apart, one of them is lying;
these tests pin them together on the row path, the batch path, and a
degraded (cache-fallback) execution.
"""

import pytest

from repro.core import MaxsonSystem, cache_table_name
from repro.engine import Session
from repro.jsonlib import dumps
from repro.obs import Tracer
from repro.obs.explain import operator_root
from repro.storage import BlockFileSystem, DataType, Schema
from repro.workload import PathKey

SQL = (
    "SELECT get_json_object(sale_logs, '$.item_name') AS item, "
    "get_json_object(sale_logs, '$.turnover') AS turnover "
    "FROM mydb.T WHERE date < '20190103'"
)

SECONDS = pytest.approx


def top_operator(trace):
    top = operator_root(trace)
    assert top is not None
    return top


def assert_reconciles(result):
    """The outermost operator span's inclusive deltas == final metrics."""
    metrics = result.metrics
    top = top_operator(result.trace)
    attrs = top.attributes

    def counter(name):
        return attrs.get(name, 0)

    # Exact integer counters.
    assert counter("parse_documents") == metrics.parse_documents
    assert counter("parse_bytes") == metrics.parse_bytes
    assert counter("bytes_read") == metrics.bytes_read
    assert counter("rows_scanned") == metrics.rows_scanned
    assert counter("cache_hits") == metrics.cache_hits
    assert counter("cache_misses") == metrics.cache_misses
    assert counter("row_groups_total") == metrics.row_groups_total
    assert counter("row_groups_skipped") == metrics.row_groups_skipped
    # Wall-clock counters: same accumulators, so near-exact.
    assert counter("read_seconds") == SECONDS(
        metrics.read_seconds, rel=0.05, abs=1e-4
    )
    assert counter("parse_seconds") == SECONDS(
        metrics.parse_seconds, rel=0.05, abs=1e-4
    )
    # The query root carries the folded totals verbatim.
    root = result.trace
    assert root.attributes["parse_documents"] == metrics.parse_documents
    assert root.attributes["read_seconds"] == metrics.read_seconds
    assert root.attributes["rows_out"] == len(result.rows)


class TestEngineReconciliation:
    def test_row_path(self, sales_session):
        result = sales_session.sql(SQL, execution_mode="row", tracer=Tracer())
        assert len(result.rows) == 80
        assert_reconciles(result)
        # Row path: every document parsed per extraction call.
        assert result.metrics.shared_parse_hits == 0

    def test_batch_path(self, sales_session):
        result = sales_session.sql(SQL, execution_mode="batch", tracer=Tracer())
        assert len(result.rows) == 80
        assert_reconciles(result)
        top = top_operator(result.trace)
        assert top.attributes.get("shared_parse_hits", 0) == (
            result.metrics.shared_parse_hits
        )
        # Parse-once sharing actually fired (two paths, one document).
        assert result.metrics.shared_parse_hits > 0

    def test_row_and_batch_agree_on_physical_io(self, sales_session):
        row = sales_session.sql(SQL, execution_mode="row", tracer=Tracer())
        batch = sales_session.sql(SQL, execution_mode="batch", tracer=Tracer())
        assert row.metrics.bytes_read == batch.metrics.bytes_read
        row_scan = row.trace.find("scan")
        batch_scan = batch.trace.find("scan")
        assert row_scan.attributes["bytes_read"] == (
            batch_scan.attributes["bytes_read"]
        )
        # Sharing shows up as fewer parses for identical results.
        assert batch.metrics.parse_documents < row.metrics.parse_documents

    def test_scan_span_owns_the_read_time(self, sales_session):
        result = sales_session.sql(SQL, tracer=Tracer())
        scans = result.trace.find_all("scan")
        scanned_read = sum(s.attributes.get("read_seconds", 0) for s in scans)
        assert scanned_read == SECONDS(
            result.metrics.read_seconds, rel=0.05, abs=1e-4
        )


class TestDegradedReconciliation:
    KEYS = [PathKey("db", "t", "payload", "$.m")]
    SQL = "select id, get_json_object(payload, '$.m') as m from db.t"

    def build_system(self, rows=30) -> MaxsonSystem:
        session = Session(fs=BlockFileSystem())
        schema = Schema.of(
            ("id", DataType.INT64), ("payload", DataType.STRING)
        )
        session.catalog.create_table("db", "t", schema)
        session.catalog.append_rows(
            "db",
            "t",
            [(i, dumps({"m": i})) for i in range(rows)],
            row_group_size=10,
        )
        return MaxsonSystem(session=session)

    def corrupt_first_cache_file(self, system: MaxsonSystem) -> None:
        from repro.core.cacher import CACHE_DATABASE

        cache_table = cache_table_name("db", "t")
        path = system.catalog.table_files(CACHE_DATABASE, cache_table)[0]
        blob = bytearray(system.session.fs.read(path))
        blob[len(blob) // 2] ^= 0xFF
        system.session.fs.delete(path)
        system.session.fs.create(path, bytes(blob))

    def test_fallback_spans_tagged_degraded_and_reconcile(self):
        system = self.build_system()
        system.cacher.populate(self.KEYS)
        self.corrupt_first_cache_file(system)
        tracer = Tracer()
        result = system.sql(self.SQL, tracer=tracer)
        assert system.resilience.get("fallback_queries") == 1
        assert [r["m"] for r in result.rows] == list(range(30))
        # The combine span records the degradation...
        combine = result.trace.find("combine")
        assert combine is not None
        assert combine.attributes["degraded"] is True
        assert combine.attributes["fallback_splits"] >= 1
        # ...and the raw re-parse is a tagged child parse span.
        parse = combine.find("parse")
        assert parse is not None
        assert parse.attributes["degraded"] is True
        assert parse.attributes["parse_documents"] > 0
        # Even through the fallback path the channels agree.
        assert_reconciles(result)

    def test_healthy_cached_query_reconciles_with_zero_parses(self):
        system = self.build_system()
        system.cacher.populate(self.KEYS)
        result = system.sql(self.SQL, tracer=Tracer())
        assert result.metrics.parse_documents == 0
        assert result.metrics.cache_hits > 0
        combine = result.trace.find("combine")
        assert combine is not None
        assert combine.attributes.get("degraded", False) is False
        assert_reconciles(result)
