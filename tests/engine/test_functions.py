"""Unit tests for builtin scalar functions."""

import pytest

from repro.engine import EvalContext, Literal, PlanError, SqlSyntaxError
from repro.engine.functions import FunctionCall, is_scalar_function


@pytest.fixture
def ctx():
    return EvalContext()


def call(name, *values):
    return FunctionCall(name, tuple(Literal(v) for v in values))


class TestRegistry:
    def test_known(self):
        assert is_scalar_function("length")
        assert is_scalar_function("COALESCE")
        assert not is_scalar_function("median")

    def test_unknown_function_rejected(self):
        with pytest.raises(PlanError):
            call("median", 1)

    def test_arity_checked(self):
        with pytest.raises(PlanError):
            call("length")
        with pytest.raises(PlanError):
            call("length", "a", "b")
        with pytest.raises(PlanError):
            call("nvl", 1)


class TestStringFunctions:
    def test_length(self, ctx):
        assert call("length", "hello").evaluate({}, ctx) == 5
        assert call("length", 1234).evaluate({}, ctx) == 4

    def test_lower_upper_trim(self, ctx):
        assert call("lower", "AbC").evaluate({}, ctx) == "abc"
        assert call("upper", "AbC").evaluate({}, ctx) == "ABC"
        assert call("trim", "  x ").evaluate({}, ctx) == "x"

    def test_concat(self, ctx):
        assert call("concat", "a", 1, True).evaluate({}, ctx) == "a1true"

    def test_concat_null_propagates(self, ctx):
        assert call("concat", "a", None).evaluate({}, ctx) is None

    def test_substr_positive(self, ctx):
        assert call("substr", "hello", 2).evaluate({}, ctx) == "ello"
        assert call("substr", "hello", 2, 3).evaluate({}, ctx) == "ell"

    def test_substr_negative_start(self, ctx):
        assert call("substr", "hello", -3).evaluate({}, ctx) == "llo"

    def test_substr_zero_length(self, ctx):
        assert call("substr", "hello", 1, 0).evaluate({}, ctx) == ""


class TestNumericAndNulls:
    def test_abs_round(self, ctx):
        assert call("abs", -4).evaluate({}, ctx) == 4
        assert call("round", 2.567, 1).evaluate({}, ctx) == 2.6
        assert call("round", 2.4).evaluate({}, ctx) == 2.0

    def test_null_in_null_out(self, ctx):
        assert call("abs", None).evaluate({}, ctx) is None
        assert call("length", None).evaluate({}, ctx) is None

    def test_coalesce(self, ctx):
        assert call("coalesce", None, None, 3, 4).evaluate({}, ctx) == 3
        assert call("coalesce", None, None).evaluate({}, ctx) is None

    def test_nvl(self, ctx):
        assert call("nvl", None, "fallback").evaluate({}, ctx) == "fallback"
        assert call("nvl", "x", "fallback").evaluate({}, ctx) == "x"

    def test_uncastable_yields_null(self, ctx):
        assert call("abs", "not a number").evaluate({}, ctx) is None


class TestSqlIntegration:
    def test_functions_in_queries(self, sales_session):
        result = sales_session.sql(
            "select upper(get_json_object(sale_logs, '$.item_name')) as n, "
            "length(mall_id) as l from mydb.T limit 1"
        )
        assert result.rows[0]["n"].startswith("ITEM")
        assert result.rows[0]["l"] == 4

    def test_function_in_where(self, sales_session):
        result = sales_session.sql(
            "select count(*) as n from mydb.T "
            "where substr(date, 1, 6) = '201901'"
        )
        assert result.rows == [{"n": 200}]

    def test_coalesce_over_missing_json(self, sales_session):
        result = sales_session.sql(
            "select coalesce(get_json_object(sale_logs, '$.ghost'), 'dflt') "
            "as v from mydb.T limit 1"
        )
        assert result.rows == [{"v": "dflt"}]

    def test_nested_function_calls(self, sales_session):
        result = sales_session.sql(
            "select length(concat(mall_id, date)) as l from mydb.T limit 1"
        )
        assert result.rows == [{"l": 12}]

    def test_unknown_function_is_syntax_error(self, sales_session):
        with pytest.raises(SqlSyntaxError):
            sales_session.sql("select median(mall_id) from mydb.T")

    def test_bad_arity_is_syntax_error(self, sales_session):
        with pytest.raises(SqlSyntaxError):
            sales_session.sql("select length() from mydb.T")

    def test_rewrite_through_functions(self, sales_session):
        """Maxson's tree rewrite must descend through FunctionCall args."""
        from repro.core import MaxsonSystem
        from repro.workload import PathKey

        system = MaxsonSystem(session=sales_session)
        sql = (
            "select upper(get_json_object(sale_logs, '$.item_name')) as n "
            "from mydb.T order by n limit 3"
        )
        baseline = system.baseline_sql(sql)
        system.cacher.populate(
            [PathKey("mydb", "T", "sale_logs", "$.item_name")]
        )
        cached = system.sql(sql)
        assert cached.rows == baseline.rows
        assert cached.metrics.parse_documents == 0
