"""Unit tests for logical-to-physical planning."""

import pytest

from repro.engine import (
    FilterExec,
    HashJoinExec,
    LimitExec,
    PlanError,
    ProjectExec,
    ScanExec,
    Session,
    SortExec,
)
from repro.storage import AndSarg, ComparisonSarg, DataType, Schema


@pytest.fixture
def planner_session(session: Session) -> Session:
    schema = Schema.of(
        ("a", DataType.INT64),
        ("b", DataType.STRING),
        ("c", DataType.FLOAT64),
        ("payload", DataType.STRING),
    )
    session.catalog.create_table("db", "t", schema)
    session.catalog.create_table("db", "u", schema)
    return session


def scan_of(plan):
    node = plan
    while not isinstance(node, ScanExec):
        node = node.children()[0]
    return node


class TestColumnPruning:
    def test_only_referenced_columns_scanned(self, planner_session):
        planned = planner_session.compile("select a from db.t where b = 'x'")
        assert scan_of(planned.physical).columns == ["a", "b"]

    def test_star_reads_everything(self, planner_session):
        planned = planner_session.compile("select * from db.t")
        assert scan_of(planned.physical).columns == ["a", "b", "c", "payload"]

    def test_count_star_reads_one_column(self, planner_session):
        planned = planner_session.compile("select count(*) from db.t")
        assert len(scan_of(planned.physical).columns) == 1

    def test_json_column_required_by_get_json_object(self, planner_session):
        planned = planner_session.compile(
            "select get_json_object(payload, '$.x') from db.t"
        )
        assert scan_of(planned.physical).columns == ["payload"]

    def test_qualified_references_resolve(self, planner_session):
        planned = planner_session.compile(
            "select x.a from db.t x where x.c > 1"
        )
        assert scan_of(planned.physical).columns == ["a", "c"]


class TestSargExtraction:
    def test_equality_pushed(self, planner_session):
        planned = planner_session.compile("select a from db.t where b = 'x'")
        scan = scan_of(planned.physical)
        assert isinstance(scan.sarg, ComparisonSarg)
        assert scan.sarg.column == "b"

    def test_between_pushed_as_range(self, planner_session):
        planned = planner_session.compile(
            "select a from db.t where a between 1 and 9"
        )
        assert isinstance(scan_of(planned.physical).sarg, AndSarg)

    def test_conjunction_pushes_all_sides(self, planner_session):
        planned = planner_session.compile(
            "select a from db.t where a > 1 and b = 'x'"
        )
        sarg = scan_of(planned.physical).sarg
        assert isinstance(sarg, AndSarg)
        assert len(sarg.children) == 2

    def test_expression_predicates_not_pushed(self, planner_session):
        planned = planner_session.compile(
            "select a from db.t where a + 1 > 2"
        )
        assert scan_of(planned.physical).sarg is None

    def test_residual_filter_always_kept(self, planner_session):
        planned = planner_session.compile("select a from db.t where a = 1")
        assert isinstance(planned.physical, ProjectExec)
        assert isinstance(planned.physical.child, FilterExec)

    def test_flipped_literal_side(self, planner_session):
        planned = planner_session.compile("select a from db.t where 5 < a")
        sarg = scan_of(planned.physical).sarg
        assert sarg.column == "a"
        assert sarg.op.value == ">"


class TestSortPlacement:
    def test_sort_on_projected_alias_stays_above(self, planner_session):
        planned = planner_session.compile(
            "select a as x from db.t order by x"
        )
        assert isinstance(planned.physical, SortExec)
        assert isinstance(planned.physical.child, ProjectExec)

    def test_sort_on_projected_expression_rewritten(self, planner_session):
        planned = planner_session.compile(
            "select get_json_object(payload, '$.v') as v from db.t "
            "order by get_json_object(payload, '$.v')"
        )
        assert isinstance(planned.physical, SortExec)
        key = planned.physical.keys[0].expression
        from repro.engine import Column

        assert key == Column("v")

    def test_sort_on_unprojected_column_pushed_below(self, planner_session):
        planned = planner_session.compile("select a from db.t order by c")
        assert isinstance(planned.physical, ProjectExec)
        assert isinstance(planned.physical.child, SortExec)

    def test_limit_outermost(self, planner_session):
        planned = planner_session.compile(
            "select a from db.t order by a limit 5"
        )
        assert isinstance(planned.physical, LimitExec)


class TestJoinPlanning:
    def test_equi_join_becomes_hash_join(self, planner_session):
        planned = planner_session.compile(
            "select x.a from db.t x join db.u y on x.a = y.a"
        )
        node = planned.physical
        while not isinstance(node, HashJoinExec):
            node = node.children()[0]
        assert len(node.left_keys) == 1

    def test_non_equi_only_join_rejected(self, planner_session):
        with pytest.raises(PlanError):
            planner_session.compile(
                "select x.a from db.t x join db.u y on x.a > y.a"
            )

    def test_mixed_condition_splits_residual(self, planner_session):
        planned = planner_session.compile(
            "select x.a from db.t x join db.u y "
            "on x.a = y.a and x.c > y.c"
        )
        node = planned.physical
        while not isinstance(node, HashJoinExec):
            node = node.children()[0]
        assert node.residual is not None


class TestReferencedPaths:
    def test_paths_collected_with_locations(self, planner_session):
        planned = planner_session.compile(
            "select get_json_object(payload, '$.x') from db.t "
            "where get_json_object(payload, '$.y') > 1"
        )
        assert set(planned.referenced_json_paths) == {
            ("db", "t", "payload", "$.x"),
            ("db", "t", "payload", "$.y"),
        }

    def test_alias_qualified_paths(self, planner_session):
        planned = planner_session.compile(
            "select get_json_object(p.payload, '$.x') from db.t p"
        )
        assert planned.referenced_json_paths == [("db", "t", "payload", "$.x")]

    def test_duplicates_deduplicated(self, planner_session):
        planned = planner_session.compile(
            "select get_json_object(payload, '$.x'), "
            "get_json_object(payload, '$.x') from db.t"
        )
        assert len(planned.referenced_json_paths) == 1
