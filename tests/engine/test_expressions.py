"""Unit tests for expression evaluation (SQL three-valued logic etc.)."""

import pytest

from repro.engine import (
    AggregateCall,
    Alias,
    Between,
    BinaryOp,
    CachedField,
    CastExpr,
    Column,
    EvalContext,
    ExecutionError,
    GetJsonObject,
    InList,
    Literal,
    PlanError,
    UnaryOp,
    transform,
    walk,
)


@pytest.fixture
def ctx():
    return EvalContext()


def b(op, left, right):
    return BinaryOp(op, Literal(left), Literal(right))


class TestComparisons:
    def test_basic(self, ctx):
        assert b("=", 1, 1).evaluate({}, ctx) is True
        assert b("!=", 1, 2).evaluate({}, ctx) is True
        assert b("<", 1, 2).evaluate({}, ctx) is True
        assert b(">=", 2, 2).evaluate({}, ctx) is True

    def test_null_propagates(self, ctx):
        assert b("=", None, 1).evaluate({}, ctx) is None
        assert b("<", 1, None).evaluate({}, ctx) is None

    def test_string_number_coercion(self, ctx):
        # get_json_object often yields strings compared to numbers (Hive
        # coerces); mixed comparisons coerce through float.
        assert b(">", "10", 9).evaluate({}, ctx) is True
        assert b("=", "2.5", 2.5).evaluate({}, ctx) is True

    def test_uncoercible_mixed_comparison_is_null(self, ctx):
        assert b(">", "abc", 9).evaluate({}, ctx) is None


class TestLogic:
    def test_and_truth_table(self, ctx):
        assert b("and", True, True).evaluate({}, ctx) is True
        assert b("and", True, False).evaluate({}, ctx) is False
        assert b("and", False, None).evaluate({}, ctx) is False
        assert b("and", True, None).evaluate({}, ctx) is None

    def test_or_truth_table(self, ctx):
        assert b("or", False, True).evaluate({}, ctx) is True
        assert b("or", False, False).evaluate({}, ctx) is False
        assert b("or", True, None).evaluate({}, ctx) is True
        assert b("or", False, None).evaluate({}, ctx) is None

    def test_short_circuit_and(self, ctx):
        # right side would explode if evaluated
        bomb = Column("missing")
        expr = BinaryOp("and", Literal(False), bomb)
        assert expr.evaluate({}, ctx) is False

    def test_not(self, ctx):
        assert UnaryOp("not", Literal(True)).evaluate({}, ctx) is False
        assert UnaryOp("not", Literal(None)).evaluate({}, ctx) is None


class TestArithmetic:
    def test_basic(self, ctx):
        assert b("+", 2, 3).evaluate({}, ctx) == 5
        assert b("-", 2, 3).evaluate({}, ctx) == -1
        assert b("*", 2, 3).evaluate({}, ctx) == 6
        assert b("/", 7, 2).evaluate({}, ctx) == 3.5
        assert b("%", 7, 2).evaluate({}, ctx) == 1

    def test_divide_by_zero_is_null(self, ctx):
        assert b("/", 1, 0).evaluate({}, ctx) is None
        assert b("%", 1, 0).evaluate({}, ctx) is None

    def test_null_propagates(self, ctx):
        assert b("+", None, 1).evaluate({}, ctx) is None

    def test_string_numbers_coerce(self, ctx):
        assert b("+", "2", 3).evaluate({}, ctx) == 5

    def test_string_concat_via_plus(self, ctx):
        assert b("+", "a", "b").evaluate({}, ctx) == "ab"

    def test_neg(self, ctx):
        assert UnaryOp("neg", Literal(5)).evaluate({}, ctx) == -5
        assert UnaryOp("neg", Literal("3")).evaluate({}, ctx) == -3

    def test_unknown_op_rejected(self):
        with pytest.raises(PlanError):
            BinaryOp("**", Literal(1), Literal(2))


class TestMisc:
    def test_column_lookup(self, ctx):
        assert Column("a").evaluate({"a": 7}, ctx) == 7

    def test_column_missing_raises(self, ctx):
        with pytest.raises(ExecutionError):
            Column("a").evaluate({}, ctx)

    def test_alias_passthrough(self, ctx):
        expr = Alias(Literal(1), "one")
        assert expr.evaluate({}, ctx) == 1
        assert expr.output_name() == "one"

    def test_between_inclusive(self, ctx):
        expr = Between(Literal(5), Literal(1), Literal(5))
        assert expr.evaluate({}, ctx) is True

    def test_between_null(self, ctx):
        expr = Between(Literal(None), Literal(1), Literal(5))
        assert expr.evaluate({}, ctx) is None

    def test_in_list(self, ctx):
        expr = InList(Literal(2), (Literal(1), Literal(2)))
        assert expr.evaluate({}, ctx) is True
        expr2 = InList(Literal(9), (Literal(1), Literal(None)))
        assert expr2.evaluate({}, ctx) is None
        expr3 = InList(Literal(9), (Literal(1), Literal(2)))
        assert expr3.evaluate({}, ctx) is False

    def test_cast(self, ctx):
        assert CastExpr(Literal("3"), "int").evaluate({}, ctx) == 3
        assert CastExpr(Literal(3), "string").evaluate({}, ctx) == "3"
        assert CastExpr(Literal("2.5"), "double").evaluate({}, ctx) == 2.5
        assert CastExpr(Literal("x"), "int").evaluate({}, ctx) is None

    def test_is_null_ops(self, ctx):
        assert UnaryOp("is null", Literal(None)).evaluate({}, ctx) is True
        assert UnaryOp("is not null", Literal(1)).evaluate({}, ctx) is True


class TestGetJsonObjectExpr:
    def test_evaluate(self, ctx):
        expr = GetJsonObject(Column("j"), "$.a.b")
        assert expr.evaluate({"j": '{"a": {"b": 9}}'}, ctx) == 9

    def test_null_column(self, ctx):
        expr = GetJsonObject(Column("j"), "$.a")
        assert expr.evaluate({"j": None}, ctx) is None

    def test_malformed_json_null(self, ctx):
        expr = GetJsonObject(Column("j"), "$.a")
        assert expr.evaluate({"j": "{oops"}, ctx) is None

    def test_non_string_column_raises(self, ctx):
        expr = GetJsonObject(Column("j"), "$.a")
        with pytest.raises(ExecutionError):
            expr.evaluate({"j": 42}, ctx)

    def test_invalid_path_rejected_at_construction(self):
        from repro.jsonlib import JsonPathError

        with pytest.raises(JsonPathError):
            GetJsonObject(Column("j"), "nope")

    def test_output_name(self):
        expr = GetJsonObject(Column("sale_logs"), "$.turnover")
        assert expr.output_name() == "sale_logs_turnover"

    def test_parse_cost_charged_to_context(self, ctx):
        expr = GetJsonObject(Column("j"), "$.a")
        expr.evaluate({"j": '{"a": 1}'}, ctx)
        expr.evaluate({"j": '{"a": 1}'}, ctx)
        # each call parses independently — the duplicate-parsing the
        # paper's cache removes
        assert ctx.parser.stats.documents == 2


class TestCachedField:
    def test_reads_env_key(self, ctx):
        expr = CachedField("payload", 1, "$.x", "__mx__t__payload__x")
        assert expr.evaluate({"__mx__t__payload__x": 5}, ctx) == 5

    def test_missing_env_key_raises(self, ctx):
        expr = CachedField("payload", 1, "$.x", "k")
        with pytest.raises(ExecutionError):
            expr.evaluate({}, ctx)


class TestTreeUtilities:
    def test_walk(self):
        expr = BinaryOp("+", Column("a"), Literal(1))
        nodes = list(walk(expr))
        assert expr in nodes and Column("a") in nodes and Literal(1) in nodes

    def test_transform_replaces(self):
        expr = BinaryOp("+", Column("a"), Column("b"))

        def repl(node):
            if node == Column("a"):
                return Literal(10)
            return None

        out = transform(expr, repl)
        assert out.left == Literal(10)
        assert out.right == Column("b")
        # original untouched (frozen dataclasses)
        assert expr.left == Column("a")

    def test_aggregate_cannot_evaluate_rowwise(self, ctx):
        agg = AggregateCall("sum", Column("a"))
        with pytest.raises(ExecutionError):
            agg.evaluate({"a": 1}, ctx)

    def test_aggregate_validation(self):
        with pytest.raises(PlanError):
            AggregateCall("median", Column("a"))
        with pytest.raises(PlanError):
            AggregateCall("sum", None)
