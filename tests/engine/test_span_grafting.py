"""Span-tree grafting stays well-formed when splits die.

Worker-recorded subtrees (thread- or process-local tracers) are grafted
into the coordinator's span tree with fresh span ids. A worker crash,
a failing split or a mid-split cancellation must never leave the tree
malformed: every span id unique, every ``parent_id`` resolvable, one
root — because ``system.spans`` rows and EXPLAIN ANALYZE both
reconstruct the tree from those ids.
"""

import os

import pytest

from repro.engine import DeadlineExceededError, Session
from repro.engine.errors import ExecutionError
from repro.faults import FaultPolicy, FaultyFileSystem
from repro.jsonlib import dumps
from repro.obs import Tracer
from repro.storage import BlockFileSystem, DataType, Schema
from repro.storage.fs import FsError

SQL = "select get_json_object(payload, '$.a') as a from db.t"
WORKERS = 2


def build_session(fs=None, backend="thread") -> Session:
    session = Session(fs=fs or BlockFileSystem())
    session.scan_workers = WORKERS
    session.worker_backend = backend
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("db", "t", schema)
    for day in range(6):
        rows = [
            (i, dumps({"a": i % 7, "b": f"x{i}"}))
            for i in range(day * 20, day * 20 + 20)
        ]
        session.catalog.append_rows("db", "t", rows, row_group_size=10)
    return session


def assert_well_formed(tracer: Tracer) -> list:
    """One root, unique span ids, every parent_id resolvable."""
    spans = tracer.spans()
    assert spans, "trace recorded no spans"
    ids = [span.span_id for span in spans]
    assert len(ids) == len(set(ids)), f"duplicate span ids: {sorted(ids)}"
    id_set = set(ids)
    roots = [span for span in spans if span.parent_id is None]
    assert len(roots) == 1, f"expected one root, got {len(roots)}"
    for span in spans:
        if span.parent_id is not None:
            assert span.parent_id in id_set, (
                f"orphan span {span.span_id} ({span.name}): "
                f"parent {span.parent_id} not in tree"
            )
    return spans


class TestFailingSplit:
    def test_thread_tree_well_formed_when_splits_error(self):
        fs = FaultyFileSystem()
        session = build_session(fs=fs)
        assert session.sql(SQL).rows  # warm, fault-free baseline
        fs.policy = FaultPolicy(seed=3, read_error_rate=0.5)
        saw_error = False
        for _ in range(6):
            tracer = Tracer()
            try:
                session.sql(SQL, tracer=tracer)
            except FsError:
                saw_error = True
            assert_well_formed(tracer)
        assert saw_error, "fault profile never fired; test proves nothing"

    def test_completed_splits_still_grafted_on_error(self):
        """The error path folds finished workers' subtrees before
        raising, so a partially-failed query still explains itself."""
        fs = FaultyFileSystem()
        session = build_session(fs=fs)
        assert session.sql(SQL).rows
        fs.policy = FaultPolicy(seed=5, read_error_rate=0.3)
        for _ in range(8):
            tracer = Tracer()
            try:
                session.sql(SQL, tracer=tracer)
            except FsError:
                spans = assert_well_formed(tracer)
                if any(span.name == "split" for span in spans):
                    return  # at least one grafted worker subtree survived
        pytest.skip("no run mixed completed and failed splits")


class TestMidSplitCancellation:
    def test_deadline_mid_query_leaves_tree_well_formed(self):
        fs = FaultyFileSystem()
        session = build_session(fs=fs)
        assert session.sql(SQL).rows
        fs.policy = FaultPolicy(read_latency_seconds=0.02)
        tracer = Tracer()
        with pytest.raises(DeadlineExceededError):
            session.sql(SQL, tracer=tracer, deadline_ms=15)
        spans = assert_well_formed(tracer)
        assert any(span.name == "query" for span in spans)

    def test_process_backend_deadline_tree_well_formed(self):
        fs = FaultyFileSystem()
        session = build_session(fs=fs, backend="process")
        try:
            assert session.sql(SQL).rows
            fs.policy = FaultPolicy(read_latency_seconds=0.03)
            tracer = Tracer()
            with pytest.raises(DeadlineExceededError):
                session.sql(SQL, tracer=tracer, deadline_ms=20)
            assert_well_formed(tracer)
        finally:
            session.close_worker_pools()


class TestWorkerCrash:
    def test_killed_worker_tree_well_formed_then_recovers(self):
        session = build_session(backend="process")
        try:
            before = session.sql(SQL)
            assert before.rows
            os.kill(session._proc_pool._handles[0].process.pid, 9)
            tracer = Tracer()
            with pytest.raises(ExecutionError, match="died mid-split"):
                session.sql(SQL, tracer=tracer)
            assert_well_formed(tracer)
            # The pool respawned; the next traced query grafts complete
            # worker subtrees with process attribution.
            tracer = Tracer()
            after = session.sql(SQL, tracer=tracer)
            assert after.rows == before.rows
            spans = assert_well_formed(tracer)
            splits = [span for span in spans if span.name == "split"]
            assert splits
            assert all(
                span.attributes.get("backend") == "process"
                and str(span.attributes.get("worker", "")).startswith("pid-")
                for span in splits
            )
        finally:
            session.close_worker_pools()

    def test_thread_and_process_shapes_match_after_crash(self):
        """A crash must not perturb the grafted tree shape of later
        queries: the recovered process pool still mirrors threads."""

        def shape(span):
            return (
                span.name,
                sorted(shape(child) for child in span.children),
            )

        thread_session = build_session(backend="thread")
        thread_tracer = Tracer()
        thread_session.sql(SQL, tracer=thread_tracer)

        session = build_session(backend="process")
        try:
            session.sql(SQL)
            os.kill(session._proc_pool._handles[0].process.pid, 9)
            with pytest.raises(ExecutionError):
                session.sql(SQL)
            process_tracer = Tracer()
            session.sql(SQL, tracer=process_tracer)
            assert shape(process_tracer.root) == shape(thread_tracer.root)
        finally:
            session.close_worker_pools()
