"""Unit tests for the vectorized execution building blocks.

Covers :class:`~repro.engine.batch.ColumnBatch`,
:class:`~repro.engine.batch.BatchCompiler` (memoised CSE, per-batch
result cache, extraction accounting), the parse-once
:class:`~repro.jsonlib.doccache.DocumentCache`, and the session-level
execution-mode plumbing.
"""

import pytest

from repro.engine import ExecutionError, Session
from repro.engine.batch import BatchCompiler, ColumnBatch
from repro.engine.expressions import (
    BinaryOp,
    Column,
    EvalContext,
    GetJsonObject,
    Literal,
)
from repro.engine.metrics import QueryMetrics
from repro.jsonlib import INVALID, DocumentCache, JacksonParser, JsonParseError


class TestColumnBatch:
    def test_from_rows_roundtrip(self):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        batch = ColumnBatch.from_rows(rows)
        assert batch.names == ("a", "b")
        assert batch.column("a") == [1, 2]
        assert batch.to_rows() == rows
        assert len(batch) == 2

    def test_empty_rows_keep_explicit_names(self):
        batch = ColumnBatch.from_rows([], names=["a", "b"])
        assert batch.names == ("a", "b")
        assert batch.column("a") == []
        assert batch.to_rows() == []

    def test_missing_column_matches_row_path_error(self):
        batch = ColumnBatch.from_rows([{"a": 1}])
        with pytest.raises(ExecutionError, match="not found in row"):
            batch.column("ghost")

    def test_take_preserves_order_and_aliasing(self):
        shared = [10, 20, 30]
        batch = ColumnBatch(
            ("x", "t.x"), {"x": shared, "t.x": shared}, 3
        )
        taken = batch.take([2, 0])
        assert taken.column("x") == [30, 10]
        # Aliased input columns stay aliased — one copy, two names.
        assert taken.columns["x"] is taken.columns["t.x"]

    def test_rows_are_cached_views(self):
        batch = ColumnBatch.from_rows([{"a": 1}, {"a": 2}])
        assert batch.rows() is batch.rows()

    def test_zero_column_rows(self):
        batch = ColumnBatch((), {}, 3)
        assert batch.rows() == [{}, {}, {}]


class TestDocumentCache:
    def test_hit_miss_accounting(self):
        parser = JacksonParser()
        cache = DocumentCache(parser, JsonParseError)
        a = cache.document('{"k": 1}')
        b = cache.document('{"k": 1}')
        assert a is b
        assert cache.misses == 1
        assert cache.hits == 1
        assert parser.stats.documents == 1

    def test_failed_parse_cached_once(self):
        parser = JacksonParser()
        cache = DocumentCache(parser, JsonParseError)
        assert cache.document("not json {") is INVALID
        assert cache.document("not json {") is INVALID
        assert cache.misses == 1 and cache.hits == 1

    def test_eviction_bounds_memory(self):
        cache = DocumentCache(JacksonParser(), JsonParseError, max_entries=2)
        for i in range(5):
            cache.document('{"k": %d}' % i)
        assert len(cache) <= 2


class TestBatchCompiler:
    def _extraction(self):
        return GetJsonObject(Column("logs"), "$.price")

    def test_equal_expressions_compile_to_one_node(self):
        compiler = BatchCompiler(EvalContext())
        first = compiler.compile(self._extraction())
        second = compiler.compile(self._extraction())
        assert first is second

    def test_duplicate_evaluation_served_from_cache_and_counted(self):
        metrics = QueryMetrics()
        context = EvalContext()
        compiler = BatchCompiler(context, metrics=metrics)
        node = compiler.compile(self._extraction())
        batch = ColumnBatch.from_rows(
            [{"logs": '{"price": 5}'}, {"logs": '{"price": 7}'}]
        )
        assert node.evaluate(batch) == [5, 7]
        assert metrics.duplicate_extractions_eliminated == 0
        assert node.evaluate(batch) == [5, 7]
        assert metrics.duplicate_extractions_eliminated == 2
        # The re-served evaluation must not have re-parsed anything.
        assert context.parser.stats.documents == 2

    def test_logic_short_circuit_skips_decided_rows(self):
        # Right side divides by the column; rows decided by the left
        # operand must never evaluate it (parity with the interpreter).
        left = BinaryOp("<", Column("n"), Literal(10))
        right = BinaryOp(">", BinaryOp("/", Literal(100), Column("n")), Literal(0))
        expr = BinaryOp("and", left, right)
        compiler = BatchCompiler(EvalContext())
        batch = ColumnBatch.from_rows([{"n": 50}, {"n": 4}, {"n": 2}])
        assert compiler.compile(expr).evaluate(batch) == [False, True, True]

    def test_unknown_nodes_fall_back_to_interpreter(self):
        class Opaque(Literal):
            pass

        compiler = BatchCompiler(EvalContext())
        node = compiler.compile(Opaque(41))
        batch = ColumnBatch.from_rows([{"a": 0}])
        assert node.evaluate(batch) == [41]


class TestExecutionModePlumbing:
    def test_invalid_session_mode_rejected(self, fs):
        with pytest.raises(ValueError):
            Session(fs=fs, execution_mode="turbo")

    def test_invalid_per_call_mode_rejected(self, sales_session):
        with pytest.raises(ValueError):
            sales_session.sql("select mall_id from mydb.T", execution_mode="x")

    def test_per_call_override_forces_row_path(self, sales_session):
        # Two *distinct* paths on one column: CSE cannot collapse them,
        # so batch mode must share the parsed document instead.
        sql = (
            "select get_json_object(sale_logs, '$.price') as p, "
            "get_json_object(sale_logs, '$.turnover') as t from mydb.T"
        )
        batch = sales_session.sql(sql)
        row = sales_session.sql(sql, execution_mode="row")
        assert batch.rows == row.rows
        assert batch.metrics.shared_parse_hits > 0
        assert row.metrics.shared_parse_hits == 0

    def test_planner_counts_duplicate_extractions(self, sales_session):
        planned = sales_session.compile(
            "select get_json_object(sale_logs, '$.price') as p from mydb.T "
            "where get_json_object(sale_logs, '$.price') > 0 "
            "and get_json_object(sale_logs, '$.turnover') > 0"
        )
        assert planned.duplicate_extractions == 1

    def test_cse_counter_surfaces_in_query_metrics(self, sales_session):
        result = sales_session.sql(
            "select get_json_object(sale_logs, '$.price') as p from mydb.T "
            "where get_json_object(sale_logs, '$.price') > 0"
        )
        assert result.metrics.duplicate_extractions_eliminated > 0
        assert "duplicate_extractions_eliminated" in result.metrics.to_dict()
