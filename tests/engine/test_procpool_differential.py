"""Thread-vs-process-vs-serial differentials for the morsel backends.

The process pool (:mod:`repro.engine.procpool`) must be invisible in
every observable output: identical rows (including order), identical
count-valued metrics, identical cache/resilience accounting — at any
worker count, on both execution modes, under deterministic fault
injection, and across cancellation. These tests assert that strong
form, plus the shared-memory lifecycle invariants (no segment survives
completion, failure, cancellation or a worker crash; orphans of dead
coordinators are reaped at startup).
"""

import glob
import os
import subprocess
import sys
import threading
import time

import pytest

from repro.engine import (
    CancelToken,
    DeadlineExceededError,
    QueryCancelledError,
    Session,
)
from repro.engine.batch import ColumnBatch
from repro.engine.cachebudget import CacheLedger
from repro.engine.errors import ExecutionError
from repro.engine.procpool import (
    SHM_PREFIX,
    decode_batch,
    encode_batch,
    reap_orphan_segments,
)
from repro.faults import CACHE_PATH_PREFIX, FaultPolicy, FaultyFileSystem
from repro.jsonlib import dumps
from repro.server.watchdog import MemoryWatchdog
from repro.storage import BlockFileSystem, DataType, Schema

from test_parallel_differential import (
    COUNT_METRICS,
    MAXSON_QUERIES,
    QUERIES,
    build_system,
    summary_view,
)

#: Process workers in tests: enough for real cross-process interleaving,
#: small enough that spawn cost stays negligible.
WORKERS = 2


def roundtrip(batch: ColumnBatch) -> ColumnBatch:
    return decode_batch(memoryview(encode_batch(batch)))


class TestFramingRoundtrip:
    """encode_batch/decode_batch must be lossless for every lane type."""

    def test_int64_with_nulls(self):
        batch = ColumnBatch(["a"], {"a": [1, None, -5, 2**62, None]}, 5)
        assert roundtrip(batch).columns["a"] == [1, None, -5, 2**62, None]

    def test_float64_bit_exact(self):
        values = [0.1, -1e300, None, float("inf"), 2.5]
        out = roundtrip(ColumnBatch(["f"], {"f": values}, 5)).columns["f"]
        assert out == values  # bit round-trip, not text formatting

    def test_nan_survives(self):
        out = roundtrip(
            ColumnBatch(["f"], {"f": [float("nan"), 1.0]}, 2)
        ).columns["f"]
        assert out[0] != out[0] and out[1] == 1.0

    def test_bools_with_nulls(self):
        values = [True, None, False, True]
        assert (
            roundtrip(ColumnBatch(["b"], {"b": values}, 4)).columns["b"]
            == values
        )

    def test_strings_unicode_and_nulls(self):
        values = ["", "héllo", None, "日本語", "x" * 1000]
        assert (
            roundtrip(ColumnBatch(["s"], {"s": values}, 5)).columns["s"]
            == values
        )

    def test_all_null_column(self):
        assert roundtrip(
            ColumnBatch(["z"], {"z": [None, None]}, 2)
        ).columns["z"] == [None, None]

    def test_mixed_types_fall_back_to_json(self):
        values = [1, "two", None, [3, 4], {"k": 5}]
        assert (
            roundtrip(ColumnBatch(["m"], {"m": values}, 5)).columns["m"]
            == values
        )

    def test_oversized_int_falls_back_to_json(self):
        values = [2**70, None, 1]
        assert (
            roundtrip(ColumnBatch(["i"], {"i": values}, 3)).columns["i"]
            == values
        )

    def test_empty_batch(self):
        out = roundtrip(ColumnBatch(["a", "b"], {"a": [], "b": []}, 0))
        assert out.length == 0 and list(out.names) == ["a", "b"]

    def test_aliased_columns_share_one_list(self):
        shared = [1, 2, 3]
        batch = ColumnBatch(["x", "y"], {"x": shared, "y": shared}, 3)
        out = roundtrip(batch)
        # _concat_batches dedups by list identity; aliasing must survive.
        assert out.columns["x"] is out.columns["y"]
        assert out.columns["x"] == shared


def assert_count_metric_parity(serial, other, sql):
    for name in COUNT_METRICS:
        assert getattr(serial.metrics, name) == getattr(
            other.metrics, name
        ), (sql, name)


class TestProcessBackendParity:
    """Serial vs thread(4) vs process(2): rows, order and counters."""

    def test_plain_engine_differential(self, sales_session):
        expected = {}
        sales_session.scan_workers = 1
        for mode in ("batch", "row"):
            for sql in QUERIES:
                expected[(mode, sql)] = sales_session.sql(
                    sql, execution_mode=mode
                )
        try:
            for backend, workers in (("thread", 4), ("process", WORKERS)):
                sales_session.worker_backend = backend
                sales_session.scan_workers = workers
                for mode in ("batch", "row"):
                    for sql in QUERIES:
                        got = sales_session.sql(sql, execution_mode=mode)
                        want = expected[(mode, sql)]
                        assert got.rows == want.rows, (backend, mode, sql)
                        assert_count_metric_parity(want, got, sql)
        finally:
            sales_session.close_worker_pools()
        assert not glob.glob(f"/dev/shm/{SHM_PREFIX}_{os.getpid()}_*")

    def test_maxson_combiner_differential(self):
        serial = build_system(scan_workers=1)
        threads = build_system(scan_workers=4, worker_backend="thread")
        procs = build_system(scan_workers=WORKERS, worker_backend="process")
        try:
            for sql in MAXSON_QUERIES:
                s = serial.sql(sql)
                t = threads.sql(sql)
                p = procs.sql(sql)
                assert s.rows == t.rows == p.rows, sql
                assert_count_metric_parity(s, p, sql)
                assert p.metrics.cache_hits > 0
            assert summary_view(serial) == summary_view(procs)
            assert summary_view(threads) == summary_view(procs)
            assert (
                serial.resilience.snapshot() == procs.resilience.snapshot()
            )
        finally:
            procs.session.close_worker_pools()
            threads.session.close_worker_pools()

    def test_process_transport_metrics_recorded(self):
        system = build_system(scan_workers=WORKERS, worker_backend="process")
        try:
            result = system.sql(MAXSON_QUERIES[0])
            assert result.metrics.extra.get("shm_bytes", 0) > 0
            assert result.metrics.extra.get("proc_dispatch_seconds", 0) >= 0
        finally:
            system.session.close_worker_pools()


class TestFaultMatrixParity:
    """Seeded fault profiles degrade identically on every backend."""

    def run_triple(self, policy: FaultPolicy):
        outputs = {}
        for backend, workers in (
            ("thread", 1),
            ("thread", 4),
            ("process", WORKERS),
        ):
            faulty = FaultyFileSystem()
            system = build_system(
                fs=faulty, scan_workers=workers, worker_backend=backend
            )
            faulty.policy = policy
            try:
                rows = [system.sql(sql).rows for sql in MAXSON_QUERIES]
            finally:
                system.session.close_worker_pools()
            outputs[(backend, workers)] = (rows, system)
        (serial_rows, serial) = outputs[("thread", 1)]
        for key, (rows, system) in outputs.items():
            assert rows == serial_rows, key
            assert summary_view(system) == summary_view(serial), key
            assert (
                system.resilience.snapshot() == serial.resilience.snapshot()
            ), key
        return serial

    def test_all_cache_reads_corrupt(self):
        serial = self.run_triple(FaultPolicy(corrupt_rate=1.0, seed=3))
        assert serial.resilience.snapshot()["fallback_splits"] > 0

    def test_cache_prefix_read_errors(self):
        serial = self.run_triple(
            FaultPolicy(
                read_error_rate=1.0,
                seed=7,
                error_path_prefix=CACHE_PATH_PREFIX,
            )
        )
        assert serial.resilience.snapshot()["fallback_queries"] > 0


SQL = "select get_json_object(payload, '$.a') as a from db.t"


def build_latency_session(read_latency: float = 0.0) -> Session:
    """A 6-split process-backed session; the latency policy arms before
    the first query, so the warm worker snapshot replicates it (policy
    changes inside one catalog version are deliberately not re-shipped).
    """
    fs = FaultyFileSystem()
    session = Session(fs=fs)
    session.scan_workers = WORKERS
    session.worker_backend = "process"
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("db", "t", schema)
    for day in range(6):
        data = [
            (i, dumps({"a": i % 7, "b": f"x{i}"}))
            for i in range(day * 20, day * 20 + 20)
        ]
        session.catalog.append_rows("db", "t", data, row_group_size=10)
    if read_latency:
        fs.policy = FaultPolicy(read_latency_seconds=read_latency)
    return session


def assert_no_live_segments(session: Session) -> None:
    pool = session._proc_pool
    assert pool is not None and pool._live_segments == {}
    # Only the cancel-flag slab remains on disk for this coordinator.
    mine = glob.glob(f"/dev/shm/{SHM_PREFIX}_{os.getpid()}_*")
    assert all("_flags_" in name for name in mine), mine


class TestCancellationMidSplit:
    def test_cancel_mid_split_leaves_nothing_behind(self):
        session = build_latency_session(read_latency=0.03)
        session.configure_result_cache(True)
        try:
            warm = session.sql(SQL)
            assert warm.rows
            session.invalidate_result_cache()
            token = CancelToken()
            errors = []

            def run():
                try:
                    session.sql(SQL, cancel_token=token)
                except QueryCancelledError as exc:
                    errors.append(exc)

            thread = threading.Thread(target=run)
            thread.start()
            time.sleep(0.08)  # splits are mid-read in the workers now
            token.cancel("test cancel")
            thread.join(timeout=30)
            assert not thread.is_alive()
            assert errors, "cancelled query must raise"
            # No partial admission, no orphaned segments, pool healthy.
            assert session.result_cache_stats()["entries"] == 0
            assert_no_live_segments(session)
            assert session.sql(SQL).rows == warm.rows
            assert_no_live_segments(session)
        finally:
            session.close_worker_pools()

    def test_deadline_enforced_through_workers(self):
        session = build_latency_session(read_latency=0.05)
        try:
            warm = session.sql(SQL)  # spawn + snapshot outside the deadline
            with pytest.raises(DeadlineExceededError):
                session.sql(SQL, deadline_ms=60.0)
            assert_no_live_segments(session)
            assert session.sql(SQL).rows == warm.rows
        finally:
            session.close_worker_pools()


class TestWorkerCrash:
    def test_killed_worker_fails_query_then_pool_recovers(self):
        session = build_latency_session()
        try:
            before = session.sql(SQL)
            pool = session._proc_pool
            os.kill(pool._handles[0].process.pid, 9)
            with pytest.raises(ExecutionError, match="died mid-split"):
                session.sql(SQL)
            assert_no_live_segments(session)
            # The pool respawned the dead worker; service continues.
            assert session.sql(SQL).rows == before.rows
            assert_no_live_segments(session)
        finally:
            session.close_worker_pools()

    def test_respawn_sweeps_dead_workers_unreported_segments(self):
        """A worker that wrote its result segment but died before
        replying must not orphan the segment until the next server
        start: the respawn path sweeps that worker's leftovers."""
        from multiprocessing import shared_memory

        session = build_latency_session()
        try:
            session.sql(SQL)  # spawn the pool
            pool = session._proc_pool
            victim = pool._handles[0]
            pid = victim.process.pid
            leaked = shared_memory.SharedMemory(
                name=f"{pool._shm_prefix}{pid}_deadbeef",
                create=True,
                size=64,
            )
            leaked.close()
            # An adopted (tracked) segment must survive the sweep.
            kept = shared_memory.SharedMemory(
                name=f"{pool._shm_prefix}{pid}_keepme",
                create=True,
                size=64,
            )
            pool._track_segment(kept.name, 64)
            try:
                os.kill(pid, 9)
                with pytest.raises(ExecutionError, match="died mid-split"):
                    session.sql(SQL)
                assert not os.path.exists(f"/dev/shm/{leaked.name}")
                assert os.path.exists(f"/dev/shm/{kept.name}")
            finally:
                pool._untrack_segment(kept.name)
                kept.close()
                try:
                    kept.unlink()
                except FileNotFoundError:
                    pass
            assert_no_live_segments(session)
        finally:
            session.close_worker_pools()

    def test_closed_pool_rejects_dispatch_cleanly(self):
        """close() must not leave in-flight dispatch racing a torn-down
        handle list: post-close dispatch fails with a clean error
        instead of IndexError or a resurrected worker."""
        session = build_latency_session()
        try:
            session.sql(SQL)
            pool = session._proc_pool
            pool.close()
            with pytest.raises(ExecutionError, match="pool is closed"):
                pool._run_unit(b"", "batch", None, 0, None)
            assert pool._handles == []
        finally:
            session.close_worker_pools()


class TestOrphanReaper:
    def orphan_segment(self) -> str:
        """A segment created (and leaked) by a now-dead process."""
        code = (
            "from multiprocessing import shared_memory, resource_tracker\n"
            "import os, uuid\n"
            "name = f'{0}_{{os.getpid()}}_orphan{{uuid.uuid4().hex[:6]}}'\n"
            "seg = shared_memory.SharedMemory(name=name, create=True, size=64)\n"
            "resource_tracker.unregister(seg._name, 'shared_memory')\n"
            "seg.close()\n"
            "print(name)\n"
        ).format(SHM_PREFIX)
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True
        )
        assert out.returncode == 0, out.stderr
        return out.stdout.strip()

    def test_dead_coordinator_segments_reaped(self):
        name = self.orphan_segment()
        assert os.path.exists(f"/dev/shm/{name}")
        assert reap_orphan_segments() >= 1
        assert not os.path.exists(f"/dev/shm/{name}")

    def test_live_coordinator_segments_kept(self):
        from multiprocessing import shared_memory

        seg = shared_memory.SharedMemory(
            name=f"{SHM_PREFIX}_{os.getpid()}_keepme", create=True, size=64
        )
        try:
            reap_orphan_segments()
            assert os.path.exists(f"/dev/shm/{seg.name}")
        finally:
            seg.close()
            seg.unlink()

    def test_server_startup_runs_the_reaper(self):
        from repro.server import MaxsonServer, ServerConfig

        name = self.orphan_segment()
        assert os.path.exists(f"/dev/shm/{name}")
        with MaxsonServer(config=ServerConfig(max_workers=1)) as server:
            assert server.reaped_shm_segments >= 1
            assert server.status().worker_backend == "thread"
        assert not os.path.exists(f"/dev/shm/{name}")


class _StubSession:
    """Duck-typed session for watchdog accounting tests."""

    def __init__(self):
        self.cache_ledger = CacheLedger(budget=None)
        self.shm = 0
        self.shrink_targets = []

    def live_shm_bytes(self) -> int:
        return self.shm

    def shrink_caches_to(self, target: int) -> int:
        self.shrink_targets.append(target)
        return 0


class TestWatchdogShmAccounting:
    def test_shm_bytes_count_toward_soft_limit(self):
        session = _StubSession()
        watchdog = MemoryWatchdog(session, soft_limit_bytes=1_000)
        assert watchdog.check() is False
        session.shm = 2_000  # SHM alone breaches the limit
        assert watchdog.check() is True
        assert watchdog.snapshot()["shm_bytes"] == 2_000
        # Cache tiers must shrink into the room SHM leaves (none here).
        assert session.shrink_targets == [0]

    def test_shm_plus_ledger_pressure(self):
        session = _StubSession()
        session.cache_ledger.set_tier("result", 600)
        session.shm = 600
        watchdog = MemoryWatchdog(session, soft_limit_bytes=1_000)
        assert watchdog.check() is True  # 1200 > 1000, nothing shrinkable
        assert session.shrink_targets == [300]  # 900 headroom - 600 shm
        session.shm = 0
        assert watchdog.check() is False  # pressure drains with the SHM


class TestSharedExpressionAnalysis:
    def test_forks_share_the_analysis_memo(self):
        session = Session(fs=BlockFileSystem())
        state = session._make_state()
        fork = state.fork()
        assert fork.expression_analysis is state.expression_analysis
        assert (
            state.batch_compiler().analysis is state.expression_analysis
        )
        assert fork.batch_compiler().analysis is state.expression_analysis

    def test_extraction_counts_memoized(self):
        from repro.engine.batch import ExpressionAnalysis
        from repro.engine.expressions import BinaryOp, Column, GetJsonObject

        one = GetJsonObject(Column("payload"), "$.a")
        expr = BinaryOp("=", one, GetJsonObject(Column("payload"), "$.b"))
        analysis = ExpressionAnalysis()
        assert analysis.extraction_count(expr) == 2
        assert analysis.extraction_count(expr) == 2
        assert analysis.extraction_count(one) == 1
        assert len(analysis._extractions) == 2
