"""Unit tests for physical-operator internals (sort order, accumulators,
hashable grouping keys)."""

import pytest

from repro.engine import (
    Column,
    EvalContext,
    ExecutionError,
    Literal,
    SortKey,
)
from repro.engine.physical import (
    ExecState,
    LimitExec,
    PhysicalPlan,
    SortExec,
    _Accumulator,
    _hashable,
    _sort_token,
)


class _Rows(PhysicalPlan):
    """Leaf operator feeding fixed rows into an operator under test."""

    def __init__(self, rows):
        self.rows = rows

    def execute(self, state):
        return list(self.rows)

    def output_names(self):
        return set(self.rows[0]) if self.rows else set()


def _state():
    return ExecState(catalog=None, context=EvalContext())


class TestSortToken:
    def test_nulls_sort_first(self):
        values = [3, None, 1]
        ordered = sorted(values, key=_sort_token)
        assert ordered == [None, 1, 3]

    def test_mixed_numbers(self):
        assert sorted([2, 1.5, 3], key=_sort_token) == [1.5, 2, 3]

    def test_strings_after_numbers(self):
        ordered = sorted(["b", 10, "a", 2], key=_sort_token)
        assert ordered == [2, 10, "a", "b"]

    def test_bools_before_numbers(self):
        ordered = sorted([1, True, False, 0], key=_sort_token)
        assert ordered[:2] == [True, False] or ordered[:2] == [False, True]


class TestSortExec:
    def test_stable_multi_key(self):
        rows = [
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 1, "b": "x"},
        ]
        sort = SortExec(
            _Rows(rows),
            [SortKey(Column("a")), SortKey(Column("b"), ascending=False)],
        )
        out = sort.execute(_state())
        assert out == [
            {"a": 1, "b": "y"},
            {"a": 1, "b": "x"},
            {"a": 2, "b": "x"},
        ]

    def test_descending(self):
        rows = [{"a": i} for i in (2, 3, 1)]
        sort = SortExec(_Rows(rows), [SortKey(Column("a"), ascending=False)])
        assert [r["a"] for r in sort.execute(_state())] == [3, 2, 1]

    def test_nulls_first_ascending(self):
        rows = [{"a": 2}, {"a": None}, {"a": 1}]
        sort = SortExec(_Rows(rows), [SortKey(Column("a"))])
        assert [r["a"] for r in sort.execute(_state())] == [None, 1, 2]


class TestLimitExec:
    def test_truncates(self):
        rows = [{"a": i} for i in range(10)]
        assert len(LimitExec(_Rows(rows), 3).execute(_state())) == 3

    def test_larger_than_input(self):
        rows = [{"a": 1}]
        assert len(LimitExec(_Rows(rows), 99).execute(_state())) == 1


class TestAccumulator:
    def test_count_ignores_nulls(self):
        acc = _Accumulator("count", distinct=False)
        for v in (1, None, 2):
            acc.add(v)
        assert acc.result() == 2

    def test_sum_and_avg(self):
        acc = _Accumulator("sum", distinct=False)
        for v in (1, 2, 3):
            acc.add(v)
        assert acc.result() == 6
        avg = _Accumulator("avg", distinct=False)
        for v in (1, 2, "3"):
            avg.add(v)  # numeric strings coerce
        assert avg.result() == 2.0

    def test_empty_aggregates_null_except_count(self):
        assert _Accumulator("count", False).result() == 0
        for func in ("sum", "avg", "min", "max"):
            assert _Accumulator(func, False).result() is None

    def test_min_max_mixed_with_nulls(self):
        lo = _Accumulator("min", False)
        hi = _Accumulator("max", False)
        for v in (5, None, 2, 9):
            lo.add(v)
            hi.add(v)
        assert lo.result() == 2
        assert hi.result() == 9

    def test_distinct(self):
        acc = _Accumulator("count", distinct=True)
        for v in (1, 1, 2, 2, 2):
            acc.add(v)
        assert acc.result() == 2

    def test_sum_non_numeric_raises(self):
        acc = _Accumulator("sum", False)
        with pytest.raises(ExecutionError):
            acc.add("not-a-number")


class TestHashable:
    def test_scalars_pass_through(self):
        assert _hashable(5) == 5
        assert _hashable("x") == "x"
        assert _hashable(None) is None

    def test_containers_serialised(self):
        key = _hashable({"a": [1, 2]})
        assert isinstance(key, str)
        {key: 1}  # usable as a dict key

    def test_equal_containers_same_key(self):
        assert _hashable([1, {"a": 2}]) == _hashable([1, {"a": 2}])
