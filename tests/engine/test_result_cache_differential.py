"""Result-cache-on vs -off differentials: caching must change nothing.

The strongest correctness statement for the result cache is that it is
invisible in the answers: an identical query stream against identical
data returns bit-identical rows (values *and* order) whether results
are served from cache or re-executed — across the row and batch
execution paths, morsel parallelism, and deterministic fault profiles
(where degraded answers are never admitted, so the cached stream can
never go stale-by-fault either).
"""

import pytest

from repro.core import MaxsonConfig, MaxsonSystem, PredictorConfig
from repro.engine import Session
from repro.faults import CACHE_PATH_PREFIX, FaultPolicy, FaultyFileSystem
from repro.jsonlib import dumps
from repro.storage import BlockFileSystem, DataType, Schema
from repro.workload import PathKey

#: A recurring trace: every statement runs twice, several statements are
#: semantic recurrences of earlier ones (recased, realiased, reordered
#: predicates, ORDER BY over a cached prefix).
TRACE = [
    "select mall_id, date from mydb.T",
    "SELECT  mall_id , date FROM mydb.T",
    "select mall_id as m, date as d from mydb.T",
    "select * from mydb.T limit 7",
    "select date from mydb.T where date = '20190102'",
    "select date from mydb.T where '20190102' = date",
    "select get_json_object(sale_logs, '$.item_name') as name from mydb.T",
    "select get_json_object(sale_logs, '$.turnover') as t from mydb.T "
    "where get_json_object(sale_logs, '$.turnover') > 900",
    "select count(*) as n from mydb.T",
    "select date, count(*) as n from mydb.T group by date",
    "select mall_id, date from mydb.T order by date desc limit 5",
    "select count(*) as n from mydb.T where date = '29990101'",
]


def run_trace(session: Session, mode: str) -> list:
    out = []
    for _ in range(2):  # the second pass recurs entirely
        for sql in TRACE:
            out.append(session.sql(sql, execution_mode=mode).rows)
    return out


class TestSessionDifferential:
    @pytest.mark.parametrize("mode", ["batch", "row"])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_on_off_rows_identical(self, sales_session, mode, workers):
        sales_session.scan_workers = workers
        baseline = run_trace(sales_session, mode)
        cached = Session(
            fs=sales_session.fs,
            catalog=sales_session.catalog,
            result_cache_enabled=True,
        )
        cached.scan_workers = workers
        served = run_trace(cached, mode)
        assert served == baseline  # values and order, every statement
        stats = cached.result_cache_stats()
        assert stats["hits"] > 0  # the cache actually served recurrences

    def test_modes_share_entries(self, sales_session):
        """Execution mode is absent from the key: a batch-produced
        result serves the row-mode recurrence, identically."""
        cached = Session(
            fs=sales_session.fs,
            catalog=sales_session.catalog,
            result_cache_enabled=True,
        )
        sql = "select mall_id, date from mydb.T where date = '20190103'"
        batch = cached.sql(sql, execution_mode="batch")
        row = cached.sql(sql, execution_mode="row")
        assert row.rows == batch.rows
        assert row.metrics.extra.get("result_cache_hits") == 1
        assert sales_session.sql(sql, execution_mode="row").rows == row.rows


def build_system(fs=None, result_cache=False, scan_workers=1):
    session = Session(
        fs=fs or BlockFileSystem(), result_cache_enabled=result_cache
    )
    session.scan_workers = scan_workers
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("db", "t", schema)
    for day in range(6):
        rows = [
            (
                day * 20 + i,
                dumps(
                    {
                        "hot": (day * 20 + i) % 5,
                        "warm": f"w{(day * 20 + i) % 3}",
                    }
                ),
            )
            for i in range(20)
        ]
        session.catalog.append_rows("db", "t", rows, row_group_size=10)
    system = MaxsonSystem(
        session=session,
        config=MaxsonConfig(predictor=PredictorConfig(model="oracle")),
    )
    system.cache_paths_directly(
        [PathKey("db", "t", "payload", "$.hot")], budget_bytes=1 << 40
    )
    return system


MAXSON_TRACE = [
    "select get_json_object(payload, '$.hot') as h from db.t",
    "SELECT get_json_object(payload, '$.hot') AS hh FROM db.t",
    "select id from db.t where get_json_object(payload, '$.warm') = 'w1'",
    "select get_json_object(payload, '$.warm') as w, count(*) as n "
    "from db.t group by get_json_object(payload, '$.warm')",
    "select id, get_json_object(payload, '$.hot') as h from db.t "
    "order by id desc limit 9",
]


class TestMaxsonDifferential:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_on_off_identical_through_cached_scans(self, workers):
        baseline = build_system(result_cache=False, scan_workers=workers)
        cached = build_system(result_cache=True, scan_workers=workers)
        for _ in range(2):
            for sql in MAXSON_TRACE:
                assert cached.sql(sql).rows == baseline.sql(sql).rows, sql
        stats = cached.session.result_cache_stats()
        assert stats["hits"] > 0

    @pytest.mark.parametrize(
        "policy",
        [
            FaultPolicy(corrupt_rate=1.0, seed=3),
            FaultPolicy(
                read_error_rate=1.0, seed=7, error_path_prefix=CACHE_PATH_PREFIX
            ),
        ],
        ids=["corrupt-cache-reads", "cache-read-errors"],
    )
    def test_on_off_identical_under_faults(self, policy):
        results = {}
        for result_cache in (False, True):
            faulty = FaultyFileSystem()
            system = build_system(fs=faulty, result_cache=result_cache)
            faulty.policy = policy
            rows = []
            for _ in range(2):
                rows.extend(system.sql(sql).rows for sql in MAXSON_TRACE)
            results[result_cache] = (rows, system)
        (baseline_rows, _), (cached_rows, cached) = results[False], results[True]
        assert cached_rows == baseline_rows
        # degraded executions were excluded from admission...
        assert cached.resilience.snapshot()["fallback_splits"] > 0
        stats = cached.session.result_cache_stats()
        degraded = [
            sql
            for sql in MAXSON_TRACE
            if "get_json_object(payload, '$.hot')" in sql
        ]
        assert degraded  # the profile really targets cached reads
        # ...so anything served from the cache came from a clean run
        assert stats["admissions"] + stats["rejections"] <= 2 * len(MAXSON_TRACE)
