"""Serial vs parallel differentials: morsel workers must change nothing.

``scan_workers=1`` runs the exact morsel code inline, so a 4-worker run
differs only in which thread executes each split. These tests assert
the strong form of that claim: identical rows (including order) and
identical count-valued metrics for every query family, on both
execution modes, with the Value Combiner stitching cached columns, and
under deterministic fault injection (where per-split fallback decisions
must stay split-local regardless of which worker hits them).
"""

import pytest

from repro.core import MaxsonConfig, MaxsonSystem, PredictorConfig
from repro.engine import Session
from repro.faults import CACHE_PATH_PREFIX, FaultPolicy, FaultyFileSystem
from repro.jsonlib import dumps
from repro.storage import BlockFileSystem, DataType, Schema
from repro.workload import PathKey

#: Metrics that must be bit-identical serial vs parallel (timing fields
#: are excluded — wall/read seconds legitimately differ).
COUNT_METRICS = (
    "rows_scanned",
    "rows_output",
    "bytes_read",
    "row_groups_total",
    "row_groups_skipped",
    "parse_documents",
    "parse_bytes",
    "cache_hits",
    "cache_misses",
    "shared_parse_hits",
    "duplicate_extractions_eliminated",
    "doc_cache_evictions",
)

QUERIES = [
    "select mall_id, date from mydb.T",
    "select * from mydb.T limit 7",
    "select date from mydb.T where date = '20190102'",
    "select get_json_object(sale_logs, '$.item_name') as name from mydb.T",
    "select get_json_object(sale_logs, '$.turnover') as t from mydb.T "
    "where get_json_object(sale_logs, '$.turnover') > 900",
    "select count(*) as n from mydb.T",
    "select date, count(*) as n from mydb.T group by date",
    "select get_json_object(sale_logs, '$.item_id') as item, "
    "sum(get_json_object(sale_logs, '$.price')) as s, "
    "avg(get_json_object(sale_logs, '$.turnover')) as a "
    "from mydb.T group by get_json_object(sale_logs, '$.item_id') "
    "having count(*) > 11",
    "select count(distinct get_json_object(sale_logs, '$.item_id')) as n "
    "from mydb.T",
    "select min(get_json_object(sale_logs, '$.price')) as lo, "
    "max(get_json_object(sale_logs, '$.price')) as hi from mydb.T",
    "select count(*) as n from mydb.T where date = '29990101'",
    "select get_json_object(sale_logs, '$.item_id') as item, "
    "get_json_object(sale_logs, '$.price') as p from mydb.T "
    "order by get_json_object(sale_logs, '$.price') desc, "
    "get_json_object(sale_logs, '$.item_id') limit 12",
    "select count(*) as n from mydb.T a join mydb.T b "
    "on get_json_object(a.sale_logs, '$.item_id') = "
    "get_json_object(b.sale_logs, '$.item_id') "
    "where a.date = '20190101' and b.date = '20190102'",
]


def assert_metric_parity(serial, parallel, sql):
    s, p = serial.metrics, parallel.metrics
    for name in COUNT_METRICS:
        assert getattr(s, name) == getattr(p, name), (sql, name)


class TestSerialParallelParity:
    """Same session, same query, 1 vs 4 workers: rows and counters."""

    @pytest.mark.parametrize("mode", ["batch", "row"])
    @pytest.mark.parametrize("sql", QUERIES)
    def test_rows_and_metrics_identical(self, sales_session, sql, mode):
        sales_session.scan_workers = 1
        serial = sales_session.sql(sql, execution_mode=mode)
        sales_session.scan_workers = 4
        parallel = sales_session.sql(sql, execution_mode=mode)
        assert serial.rows == parallel.rows  # including order
        assert_metric_parity(serial, parallel, sql)


def build_system(fs=None, scan_workers: int = 1, worker_backend: str = "thread"):
    """One cached Maxson system over a 6-split table."""
    session = Session(fs=fs or BlockFileSystem())
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("db", "t", schema)
    for day in range(6):
        rows = [
            (
                day * 20 + i,
                dumps(
                    {
                        "hot": (day * 20 + i) % 5,
                        "warm": f"w{(day * 20 + i) % 3}",
                        "cold": (day * 20 + i) * 7,
                    }
                ),
            )
            for i in range(20)
        ]
        session.catalog.append_rows("db", "t", rows, row_group_size=10)
    system = MaxsonSystem(
        session=session,
        config=MaxsonConfig(
            predictor=PredictorConfig(model="oracle"),
            scan_workers=scan_workers,
            worker_backend=worker_backend,
        ),
    )
    system.cache_paths_directly(
        [
            PathKey("db", "t", "payload", "$.hot"),
            PathKey("db", "t", "payload", "$.warm"),
        ],
        budget_bytes=1 << 40,
    )
    return system


MAXSON_QUERIES = [
    "select get_json_object(payload, '$.hot') as h from db.t",
    "select get_json_object(payload, '$.hot') as h, "
    "get_json_object(payload, '$.cold') as c from db.t",
    "select id from db.t where get_json_object(payload, '$.warm') = 'w1'",
    "select get_json_object(payload, '$.warm') as w, count(*) as n "
    "from db.t group by get_json_object(payload, '$.warm')",
]

#: cache_summary keys that legitimately differ between two systems
#: (timings and the knob under test itself).
SUMMARY_EXCLUDE = {
    "build_seconds",
    "scan_workers",
    "worker_backend",
    "plan_cache",
}


def summary_view(system):
    return {
        k: v
        for k, v in system.cache_summary().items()
        if k not in SUMMARY_EXCLUDE
    }


class TestMaxsonParallelParity:
    def test_combiner_stitching_identical(self):
        system = build_system()
        for sql in MAXSON_QUERIES:
            system.session.scan_workers = 1
            serial = system.sql(sql)
            system.session.scan_workers = 4
            parallel = system.sql(sql)
            assert serial.rows == parallel.rows, sql
            assert_metric_parity(serial, parallel, sql)
            assert parallel.metrics.cache_hits > 0

    def test_cache_summary_identical_across_worker_counts(self):
        """Two independently built systems, identical query sequence,
        differing only in worker count: the whole efficacy/resilience
        accounting must agree."""
        serial = build_system(scan_workers=1)
        parallel = build_system(scan_workers=4)
        for sql in MAXSON_QUERIES:
            assert serial.sql(sql).rows == parallel.sql(sql).rows, sql
        assert summary_view(serial) == summary_view(parallel)
        assert (
            serial.resilience.snapshot() == parallel.resilience.snapshot()
        )


class TestFaultParallelParity:
    """Deterministic fault profiles: degraded identically, never divergent."""

    def run_pair(self, policy: FaultPolicy):
        results = {}
        for workers in (1, 4):
            faulty = FaultyFileSystem()
            system = build_system(fs=faulty, scan_workers=workers)
            faulty.policy = policy
            rows = [system.sql(sql).rows for sql in MAXSON_QUERIES]
            results[workers] = (rows, system)
        (serial_rows, serial), (parallel_rows, parallel) = (
            results[1],
            results[4],
        )
        assert serial_rows == parallel_rows
        assert summary_view(serial) == summary_view(parallel)
        assert (
            serial.resilience.snapshot() == parallel.resilience.snapshot()
        )
        return serial

    def test_all_cache_reads_corrupt(self):
        system = self.run_pair(FaultPolicy(corrupt_rate=1.0, seed=3))
        assert system.resilience.snapshot()["fallback_splits"] > 0

    def test_cache_prefix_read_errors(self):
        system = self.run_pair(
            FaultPolicy(
                read_error_rate=1.0, seed=7, error_path_prefix=CACHE_PATH_PREFIX
            )
        )
        assert system.resilience.snapshot()["fallback_queries"] > 0
