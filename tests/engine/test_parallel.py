"""Unit tests for the morsel scheduler (repro.engine.parallel).

The differential suite proves serial == parallel end to end; these
tests pin the pieces individually — what parallelize_plan absorbs into
a pipeline, what it leaves alone, edge cases around empty inputs, and
the per-split observability contract.
"""

import pytest

from repro.engine import (
    AggregateExec,
    FilterExec,
    LimitExec,
    MorselAggregateExec,
    MorselPipelineExec,
    ScanExec,
    Session,
    SortExec,
    parallelize_plan,
)
from repro.engine.rawfilter import SparserPlanModifier, SparserPrefilterExec
from repro.obs.trace import Tracer
from repro.storage import DataType, Schema


@pytest.fixture
def multi(session: Session) -> Session:
    schema = Schema.of(("a", DataType.INT64), ("b", DataType.STRING))
    session.catalog.create_table("db", "m", schema)
    for day in range(4):
        session.catalog.append_rows(
            "db", "m", [(day * 10 + i, f"s{i % 3}") for i in range(10)]
        )
    return session


def plan_for(session, sql):
    planned = session.compile(sql)
    return parallelize_plan(planned.physical)


class TestParallelizePlan:
    def test_scan_becomes_pipeline(self, multi):
        plan = plan_for(multi, "select a from db.m")
        assert isinstance(plan, MorselPipelineExec)
        assert isinstance(plan.scan, ScanExec)
        assert plan.projections is not None

    def test_filter_and_project_absorbed(self, multi):
        plan = plan_for(multi, "select a from db.m where b = 's1'")
        assert isinstance(plan, MorselPipelineExec)
        assert plan.condition is not None
        assert not isinstance(plan.scan, (FilterExec, MorselPipelineExec))

    def test_aggregate_lowered_to_partials(self, multi):
        plan = plan_for(
            multi, "select b, count(*) as n from db.m group by b"
        )
        assert isinstance(plan, MorselAggregateExec)
        assert isinstance(plan.pipeline, MorselPipelineExec)

    def test_sort_and_limit_stay_above(self, multi):
        plan = plan_for(multi, "select a from db.m order by a desc limit 3")
        assert isinstance(plan, LimitExec)
        assert isinstance(plan.child, SortExec)
        assert isinstance(plan.child.child, MorselPipelineExec)

    def test_aggregate_over_sort_not_lowered(self, multi):
        # an AggregateExec whose child is not a bare pipeline keeps the
        # classic operator (partials need per-split row streams)
        plan = plan_for(
            multi,
            "select b, count(*) as n from db.m group by b "
            "having count(*) > 100",
        )
        # HAVING compiles to a filter above the aggregate
        assert isinstance(plan, FilterExec)
        assert isinstance(plan.child, (MorselAggregateExec, AggregateExec))

    def test_prefilter_absorbed_and_repointed(self, multi):
        multi.add_plan_modifier(SparserPlanModifier(json_columns={"b"}))
        planned = multi.compile(
            "select a from db.m where get_json_object(b, '$.k') = 'v'"
        )
        state = multi._make_state()
        for modifier in multi._plan_modifiers:
            planned.physical = modifier.modify(planned, state)
        plan = parallelize_plan(planned.physical)
        assert isinstance(plan, MorselPipelineExec)
        assert isinstance(plan.prefilter, SparserPrefilterExec)
        # the absorbed prefilter's child is the real scan, so describe()
        # still renders the full chain
        assert plan.prefilter.child is plan.scan
        text = plan.describe()
        assert "SparserPrefilter" in text and "Scan db.m" in text


class TestEdgeCases:
    def test_empty_table(self, session):
        schema = Schema.of(("a", DataType.INT64))
        session.catalog.create_table("db", "empty", schema)
        for workers in (1, 4):
            session.scan_workers = workers
            assert session.sql("select a from db.empty").rows == []
            agg = session.sql("select count(*) as n from db.empty")
            assert agg.rows == [{"n": 0}]

    def test_single_split(self, session):
        schema = Schema.of(("a", DataType.INT64))
        session.catalog.create_table("db", "one", schema)
        session.catalog.append_rows("db", "one", [(1,), (2,)])
        session.scan_workers = 4
        result = session.sql("select a from db.one")
        assert result.rows == [{"a": 1}, {"a": 2}]

    def test_scan_workers_validated(self):
        from repro.storage import BlockFileSystem

        with pytest.raises(ValueError):
            Session(fs=BlockFileSystem(), scan_workers=0)
        with pytest.raises(ValueError):
            Session(fs=BlockFileSystem(), plan_cache_entries=-1)


class TestObservability:
    def test_parallel_traced_queries_emit_split_spans(self, multi):
        multi.scan_workers = 4
        tracer = Tracer()
        multi.sql("select a from db.m where b = 's1'", tracer=tracer)
        splits = [s for s in tracer.spans() if s.name == "split"]
        assert len(splits) == 4  # one per daily file
        # the rows attribute is each split's post-filter output
        assert sum(int(s.attributes["rows"]) for s in splits) == 12

    def test_serial_traced_queries_keep_operator_spans(self, multi):
        multi.scan_workers = 1
        tracer = Tracer()
        multi.sql("select a from db.m where b = 's1'", tracer=tracer)
        names = {s.name for s in tracer.spans()}
        assert "scan" in names and "split" not in names
