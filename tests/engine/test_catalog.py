"""Unit tests for the catalog."""

import pytest

from repro.engine import CatalogError, Session
from repro.engine.catalog import Catalog
from repro.storage import BlockFileSystem, DataType, Schema


@pytest.fixture
def catalog() -> Catalog:
    return Catalog(BlockFileSystem())


SCHEMA = Schema.of(("id", DataType.INT64), ("name", DataType.STRING))


class TestDdl:
    def test_create_and_get(self, catalog):
        info = catalog.create_table("db", "t", SCHEMA)
        assert info.qualified_name == "db.t"
        assert catalog.get_table("db", "t") is info
        assert info.location == "/warehouse/db/t"

    def test_create_duplicate(self, catalog):
        catalog.create_table("db", "t", SCHEMA)
        with pytest.raises(CatalogError):
            catalog.create_table("db", "t", SCHEMA)

    def test_get_missing(self, catalog):
        with pytest.raises(CatalogError):
            catalog.get_table("db", "ghost")

    def test_exists(self, catalog):
        assert not catalog.table_exists("db", "t")
        catalog.create_table("db", "t", SCHEMA)
        assert catalog.table_exists("db", "t")

    def test_list_tables(self, catalog):
        catalog.create_table("b", "t2", SCHEMA)
        catalog.create_table("a", "t1", SCHEMA)
        names = [t.qualified_name for t in catalog.list_tables()]
        assert names == ["a.t1", "b.t2"]
        assert [t.name for t in catalog.list_tables("a")] == ["t1"]

    def test_drop_table_removes_data(self, catalog):
        catalog.create_table("db", "t", SCHEMA)
        catalog.append_rows("db", "t", [(1, "a")])
        catalog.drop_table("db", "t")
        assert not catalog.table_exists("db", "t")
        assert not catalog.fs.exists("/warehouse/db/t")

    def test_drop_missing(self, catalog):
        with pytest.raises(CatalogError):
            catalog.drop_table("db", "ghost")

    def test_properties_stored(self, catalog):
        info = catalog.create_table("db", "t", SCHEMA, {"format": "orc"})
        assert info.properties["format"] == "orc"


class TestData:
    def test_append_creates_sequential_files(self, catalog):
        catalog.create_table("db", "t", SCHEMA)
        first = catalog.append_rows("db", "t", [(1, "a")])
        second = catalog.append_rows("db", "t", [(2, "b")])
        assert first.endswith("part-00000.orc")
        assert second.endswith("part-00001.orc")
        assert catalog.table_files("db", "t") == [first, second]

    def test_empty_table_has_no_files(self, catalog):
        catalog.create_table("db", "t", SCHEMA)
        assert catalog.table_files("db", "t") == []
        assert catalog.modification_time("db", "t") == 0.0
        assert catalog.table_bytes("db", "t") == 0

    def test_modification_time_advances(self):
        ticks = iter(float(i) for i in range(100))
        catalog = Catalog(BlockFileSystem(clock=lambda: next(ticks)))
        catalog.create_table("db", "t", SCHEMA)
        catalog.append_rows("db", "t", [(1, "a")])
        t1 = catalog.modification_time("db", "t")
        catalog.append_rows("db", "t", [(2, "b")])
        assert catalog.modification_time("db", "t") > t1

    def test_table_bytes(self, catalog):
        catalog.create_table("db", "t", SCHEMA)
        catalog.append_rows("db", "t", [(i, "x" * 10) for i in range(20)])
        assert catalog.table_bytes("db", "t") > 0

    def test_row_group_size_forwarded(self, catalog):
        from repro.storage import OrcFileReader

        catalog.create_table("db", "t", SCHEMA)
        path = catalog.append_rows(
            "db", "t", [(i, "x") for i in range(10)], row_group_size=3
        )
        reader = OrcFileReader(catalog.fs.read(path))
        assert [rg.row_count for rg in reader.row_group_layout()] == [3, 3, 3, 1]

    def test_append_validates_schema(self, catalog):
        catalog.create_table("db", "t", SCHEMA)
        with pytest.raises(Exception):
            catalog.append_rows("db", "t", [("not-an-int", "a")])
