"""CancelToken semantics + deadline enforcement through the session."""

import threading

import pytest

from repro.engine import (
    CancelToken,
    DeadlineExceededError,
    QueryCancelledError,
    Session,
)
from repro.engine.errors import ExecutionError
from repro.jsonlib import dumps
from repro.storage import BlockFileSystem, DataType, Schema

SQL = "select get_json_object(payload, '$.a') as a from db.t"


class FakeClock:
    """A manually-advanced monotonic clock."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def build_session(rows: int = 40) -> Session:
    session = Session(fs=BlockFileSystem())
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("db", "t", schema)
    data = [(i, dumps({"a": i % 7, "b": f"x{i}"})) for i in range(rows)]
    session.catalog.append_rows("db", "t", data, row_group_size=10)
    return session


class TestCancelToken:
    def test_fresh_token_passes_checks(self):
        token = CancelToken()
        token.check()
        token.check()
        assert token.checks == 2
        assert not token.cancelled
        assert token.remaining_seconds() is None

    def test_manual_cancel_raises_with_reason(self):
        token = CancelToken()
        token.cancel("operator request")
        assert token.cancelled
        with pytest.raises(QueryCancelledError, match="operator request"):
            token.check()

    def test_deadline_raises_deadline_exceeded(self):
        clock = FakeClock()
        token = CancelToken(deadline_seconds=5.0, clock=clock)
        token.check()
        clock.advance(5.0)
        assert token.deadline_exceeded
        with pytest.raises(DeadlineExceededError):
            token.check()

    def test_deadline_exceeded_is_a_cancellation_not_execution_error(self):
        # The combiner's degraded-fallback handler catches ExecutionError;
        # a deadline must never be absorbed into a fallback.
        assert issubclass(DeadlineExceededError, QueryCancelledError)
        assert not issubclass(QueryCancelledError, ExecutionError)

    def test_with_deadline_ms(self):
        clock = FakeClock()
        token = CancelToken.with_deadline_ms(250.0, clock=clock)
        assert token.remaining_seconds() == pytest.approx(0.25)
        assert CancelToken.with_deadline_ms(None).deadline is None

    def test_tighten_deadline_earliest_wins(self):
        clock = FakeClock()
        token = CancelToken(deadline_seconds=10.0, clock=clock)
        token.tighten_deadline(2.0)
        assert token.remaining_seconds() == pytest.approx(2.0)
        token.tighten_deadline(8.0)  # later than current: no-op
        assert token.remaining_seconds() == pytest.approx(2.0)

    def test_cancel_is_thread_visible(self):
        token = CancelToken()
        seen = threading.Event()

        def worker():
            while not token.cancelled:
                pass
            seen.set()

        t = threading.Thread(target=worker)
        t.start()
        token.cancel()
        t.join(timeout=5)
        assert seen.is_set()


class TestSessionDeadlines:
    def test_pre_cancelled_token_never_executes(self):
        session = build_session()
        token = CancelToken()
        token.cancel("gone")
        with pytest.raises(QueryCancelledError):
            session.sql(SQL, cancel_token=token)

    def test_expired_deadline_raises_not_partial(self):
        session = build_session()
        with pytest.raises(DeadlineExceededError):
            session.sql(SQL, deadline_ms=0.0)

    def test_expired_deadline_never_served_from_result_cache(self):
        # An expired query must fail even when the answer is sitting in
        # the result cache — a deadline is a contract, not a hint.
        session = build_session()
        session.configure_result_cache(True)
        session.sql(SQL)
        session.sql(SQL)  # second run makes it a cached recurrence
        assert session.probable_result_cache_hit(SQL)
        with pytest.raises(DeadlineExceededError):
            session.sql(SQL, deadline_ms=0.0)

    def test_generous_deadline_does_not_change_rows(self):
        session = build_session()
        plain = session.sql(SQL)
        bounded = session.sql(SQL, deadline_ms=60_000.0)
        assert bounded.rows == plain.rows

    def test_cancelled_query_leaves_no_result_cache_entry(self):
        session = build_session()
        session.configure_result_cache(True)
        token = CancelToken()
        token.cancel("mid-flight")
        with pytest.raises(QueryCancelledError):
            session.sql(SQL, cancel_token=token)
        assert session.result_cache_stats()["entries"] == 0
        assert not session.probable_result_cache_hit(SQL)

    def test_deadline_respected_under_parallel_scan(self):
        session = build_session(rows=200)
        session.scan_workers = 4
        with pytest.raises(DeadlineExceededError):
            session.sql(SQL, deadline_ms=0.0)
        # Workers are reclaimed: the same session still answers.
        assert session.sql(SQL).rows


class TestShrinkCaches:
    def test_shrink_releases_result_then_plan_bytes(self):
        session = build_session()
        session.configure_result_cache(True)
        session.sql(SQL)
        session.sql(SQL)
        before = session.cache_ledger.total()
        assert before > 0
        released = session.shrink_caches_to(0)
        assert released > 0
        assert session.cache_ledger.tier_bytes("result") == 0
        assert session.cache_ledger.tier_bytes("plan") == 0
