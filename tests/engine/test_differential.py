"""Differential tests: the batch path must be row-identical, always.

Every query family the engine supports runs through both execution
paths — the vectorized batch compiler and the per-row interpreter — and
must produce exactly the same rows in the same order. The same property
is then asserted on the Maxson-modified plan (Value Combiner stitching
cached columns) and under PR-2 fault profiles, where batch-mode scans
must still fall back split-by-split and degrade rather than diverge.
"""

import pytest

from repro.core import MaxsonConfig, MaxsonSystem, PredictorConfig
from repro.engine import Session
from repro.faults import FaultPolicy, FaultyFileSystem
from repro.jsonlib import dumps
from repro.storage import BlockFileSystem, DataType, Schema
from repro.workload import PathKey

#: The parity matrix: one query per engine feature family.
QUERIES = [
    "select mall_id, date from mydb.T",
    "select * from mydb.T limit 7",
    "select date from mydb.T where date = '20190102'",
    "select date from mydb.T where date between '20190101' and '20190102'",
    "select mall_id from mydb.T where date in ('20190101', '20190103')",
    "select get_json_object(sale_logs, '$.item_name') as name from mydb.T",
    "select get_json_object(sale_logs, '$.turnover') as t from mydb.T "
    "where get_json_object(sale_logs, '$.turnover') > 900",
    "select mall_id from mydb.T "
    "where get_json_object(sale_logs, '$.ghost') = 1",
    "select get_json_object(sale_logs, '$.price') * 2 + 1 as p from mydb.T "
    "where not (get_json_object(sale_logs, '$.price') < 10)",
    "select cast(get_json_object(sale_logs, '$.item_id') as string) as s "
    "from mydb.T limit 9",
    "select get_json_object(sale_logs, '$.price') as p from mydb.T "
    "where get_json_object(sale_logs, '$.price') > 10 "
    "and get_json_object(sale_logs, '$.turnover') > 100 "
    "or get_json_object(sale_logs, '$.item_id') = 3",
    "select count(*) as n from mydb.T",
    "select date, count(*) as n from mydb.T group by date",
    "select get_json_object(sale_logs, '$.item_id') as item, "
    "sum(get_json_object(sale_logs, '$.price')) as s, "
    "avg(get_json_object(sale_logs, '$.turnover')) as a "
    "from mydb.T group by get_json_object(sale_logs, '$.item_id') "
    "having count(*) > 11",
    "select count(distinct get_json_object(sale_logs, '$.item_id')) as n "
    "from mydb.T",
    "select count(*) as n from mydb.T where date = '29990101'",
    "select get_json_object(sale_logs, '$.item_id') as item, "
    "get_json_object(sale_logs, '$.price') as p from mydb.T "
    "order by get_json_object(sale_logs, '$.price') desc, "
    "get_json_object(sale_logs, '$.item_id') limit 12",
    "select count(*) as n from mydb.T a join mydb.T b "
    "on get_json_object(a.sale_logs, '$.item_id') = "
    "get_json_object(b.sale_logs, '$.item_id') "
    "where a.date = '20190101' and b.date = '20190102'",
]


class TestRowBatchParity:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_batch_rows_identical_to_row_interpreter(self, sales_session, sql):
        batch = sales_session.sql(sql, execution_mode="batch")
        row = sales_session.sql(sql, execution_mode="row")
        assert batch.rows == row.rows

    def test_join_and_null_keys_parity(self, session):
        schema = Schema.of(("k", DataType.INT64), ("v", DataType.STRING))
        session.catalog.create_table("db", "n1", schema)
        session.catalog.create_table("db", "n2", schema)
        session.catalog.append_rows("db", "n1", [(None, "x"), (1, "y"), (2, "z")])
        session.catalog.append_rows("db", "n2", [(None, "a"), (1, "b"), (3, "c")])
        sql = (
            "select a.v, b.v from db.n1 a join db.n2 b on a.k = b.k "
            "order by a.v"
        )
        assert (
            session.sql(sql, execution_mode="batch").rows
            == session.sql(sql, execution_mode="row").rows
        )


def build_cached_system(fs=None) -> tuple[MaxsonSystem, list[str]]:
    """A system with a Fig-1-style table and both JSONPaths pre-cached."""
    session = Session(fs=fs or BlockFileSystem())
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("db", "t", schema)
    rows = [
        (i, dumps({"hot": i % 5, "warm": f"w{i % 3}", "cold": i * 7}))
        for i in range(60)
    ]
    session.catalog.append_rows("db", "t", rows, row_group_size=10)
    system = MaxsonSystem(
        session=session,
        config=MaxsonConfig(predictor=PredictorConfig(model="oracle")),
    )
    system.cache_paths_directly(
        [
            PathKey("db", "t", "payload", "$.hot"),
            PathKey("db", "t", "payload", "$.warm"),
        ],
        budget_bytes=1 << 40,
    )
    queries = [
        # pure cached projection (cache-only read path)
        "select get_json_object(payload, '$.hot') as h from db.t",
        # cached + uncached path on the same column (stitch + raw parse)
        "select get_json_object(payload, '$.hot') as h, "
        "get_json_object(payload, '$.cold') as c from db.t",
        # cached path in a predicate, scalar column projected
        "select id from db.t where get_json_object(payload, '$.warm') = 'w1'",
        # aggregation over a cached path
        "select get_json_object(payload, '$.warm') as w, count(*) as n "
        "from db.t group by get_json_object(payload, '$.warm')",
    ]
    return system, queries


def run_both_modes(system: MaxsonSystem, sql: str):
    system.session.execution_mode = "batch"
    batch = system.sql(sql)
    system.session.execution_mode = "row"
    row = system.sql(sql)
    system.session.execution_mode = "batch"
    return batch, row


class TestMaxsonParity:
    def test_value_combiner_identical_across_paths(self):
        system, queries = build_cached_system()
        for sql in queries:
            baseline = system.baseline_sql(sql)
            batch, row = run_both_modes(system, sql)
            assert batch.rows == row.rows == baseline.rows, sql
            assert batch.metrics.cache_hits > 0

    def test_batch_cached_query_parses_nothing(self):
        system, queries = build_cached_system()
        system.session.execution_mode = "batch"
        result = system.sql(queries[0])
        assert result.metrics.parse_documents == 0
        assert result.metrics.cache_hits > 0


class TestFaultDifferential:
    """Batch scans under PR-2 fault profiles: degraded, never divergent."""

    def test_corrupt_cache_falls_back_per_split_in_batch_mode(self):
        faulty = FaultyFileSystem()
        system, queries = build_cached_system(fs=faulty)
        baselines = [system.baseline_sql(sql).rows for sql in queries]
        # Every cache read corrupt from here on; raw files stay intact.
        faulty.policy = FaultPolicy(corrupt_rate=1.0, seed=3)
        for sql, expected in zip(queries, baselines):
            batch, row = run_both_modes(system, sql)
            assert batch.rows == row.rows == expected, sql
        assert system.resilience.snapshot()["fallback_splits"] > 0
        assert system.resilience.snapshot()["corruption_events"] > 0

    def test_flaky_cache_reads_still_row_identical(self):
        faulty = FaultyFileSystem()
        system, queries = build_cached_system(fs=faulty)
        baselines = [system.baseline_sql(sql).rows for sql in queries]
        from repro.faults import CACHE_PATH_PREFIX

        faulty.policy = FaultPolicy(
            read_error_rate=0.5, seed=11, error_path_prefix=CACHE_PATH_PREFIX
        )
        for sql, expected in zip(queries, baselines):
            batch, row = run_both_modes(system, sql)
            assert batch.rows == row.rows == expected, sql
