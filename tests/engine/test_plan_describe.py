"""Tests for plan tree rendering (EXPLAIN output)."""

import pytest

from repro.engine import Session, parse_sql
from repro.storage import DataType, Schema


@pytest.fixture
def describe_session(session: Session) -> Session:
    schema = Schema.of(
        ("a", DataType.INT64),
        ("b", DataType.STRING),
        ("payload", DataType.STRING),
    )
    session.catalog.create_table("db", "t", schema)
    session.catalog.create_table("db", "u", schema)
    return session


class TestLogicalDescribe:
    def test_full_query_tree(self):
        plan = parse_sql(
            "select a, count(*) as n from db.t where b = 'x' "
            "group by a order by n desc limit 5"
        )
        text = plan.describe()
        lines = text.splitlines()
        assert lines[0].startswith("Limit 5")
        assert "Sort" in text
        assert "Aggregate" in text
        assert "Filter (b = 'x')" in text
        assert "Scan db.t" in text
        # indentation deepens down the tree
        assert lines[1].startswith("  ")

    def test_join_tree(self):
        plan = parse_sql("select x.a from db.t x join db.u y on x.a = y.a")
        text = plan.describe()
        assert "Join on (x.a = y.a)" in text
        assert "Scan db.t AS x" in text
        assert "Scan db.u AS y" in text


class TestPhysicalDescribe:
    def test_explain_shows_pruned_columns_and_sarg(self, describe_session):
        text = describe_session.explain(
            "select a from db.t where b = 'x' and a > 3"
        )
        assert "cols=['a', 'b']" in text
        assert "sarg=" in text

    def test_explain_aggregate(self, describe_session):
        text = describe_session.explain(
            "select b, sum(a) from db.t group by b"
        )
        assert "Aggregate keys=[b]" in text

    def test_explain_hash_join(self, describe_session):
        text = describe_session.explain(
            "select x.a from db.t x join db.u y on x.a = y.a and x.b > y.b"
        )
        assert "HashJoin [x.a=y.a]" in text
        assert "residual=" in text

    def test_explain_sparser_prefilter_label(self, describe_session):
        from repro.engine.rawfilter import SparserPlanModifier

        describe_session.add_plan_modifier(SparserPlanModifier())
        text = describe_session.explain(
            "select a from db.t "
            "where get_json_object(payload, '$.k') = 'v'"
        )
        assert "SparserPrefilter payload" in text
        assert "kv(" in text

    def test_maxson_scan_label_lists_cached_fields(self, describe_session):
        from repro.core import MaxsonSystem
        from repro.jsonlib import dumps
        from repro.workload import PathKey

        describe_session.catalog.append_rows(
            "db", "t", [(1, "x", dumps({"k": 1}))]
        )
        system = MaxsonSystem(session=describe_session)
        system.cacher.populate([PathKey("db", "t", "payload", "$.k")])
        text = describe_session.explain(
            "select get_json_object(payload, '$.k') as k from db.t"
        )
        assert "MaxsonScan db.t" in text
        assert "payload__k" in text
