"""Unit tests for the SQL parser."""

import pytest

from repro.engine import (
    AggregateCall,
    Alias,
    Between,
    BinaryOp,
    CastExpr,
    Column,
    GetJsonObject,
    InList,
    Literal,
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    SqlSyntaxError,
    UnaryOp,
    parse_sql,
)


class TestBasicSelect:
    def test_select_columns(self):
        plan = parse_sql("select a, b from db.t")
        assert isinstance(plan, LogicalProject)
        assert [e.sql() for e in plan.expressions] == ["a", "b"]
        scan = plan.child
        assert isinstance(scan, LogicalScan)
        assert (scan.database, scan.table) == ("db", "t")

    def test_default_database(self):
        plan = parse_sql("select a from t")
        assert plan.child.database == "default"

    def test_alias_with_as(self):
        plan = parse_sql("select a as x from db.t")
        expr = plan.expressions[0]
        assert isinstance(expr, Alias)
        assert expr.name == "x"

    def test_implicit_alias(self):
        plan = parse_sql("select a x from db.t")
        assert plan.expressions[0].output_name() == "x"

    def test_star(self):
        from repro.engine.sqlparser import Star

        plan = parse_sql("select * from db.t")
        assert isinstance(plan.expressions[0], Star)

    def test_table_alias(self):
        plan = parse_sql("select a from db.t as z")
        assert plan.child.alias == "z"
        plan2 = parse_sql("select a from db.t z")
        assert plan2.child.alias == "z"

    def test_case_insensitive_keywords(self):
        plan = parse_sql("SELECT a FROM db.t WHERE a > 1")
        assert isinstance(plan, LogicalProject)
        assert isinstance(plan.child, LogicalFilter)

    def test_comments_stripped(self):
        plan = parse_sql("select a -- trailing comment\nfrom db.t")
        assert isinstance(plan, LogicalProject)


class TestExpressions:
    def _where(self, condition: str):
        plan = parse_sql(f"select a from db.t where {condition}")
        return plan.child.condition

    def test_comparisons(self):
        for op in ("=", "!=", "<", "<=", ">", ">="):
            expr = self._where(f"a {op} 1")
            assert isinstance(expr, BinaryOp)
            assert expr.op == op

    def test_ne_alias(self):
        assert self._where("a <> 1").op == "!="

    def test_precedence_and_or(self):
        expr = self._where("a = 1 or b = 2 and c = 3")
        assert expr.op == "or"
        assert expr.right.op == "and"

    def test_arithmetic_precedence(self):
        expr = self._where("a + b * 2 = 7")
        assert expr.left.op == "+"
        assert expr.left.right.op == "*"

    def test_parentheses(self):
        expr = self._where("(a = 1 or b = 2) and c = 3")
        assert expr.op == "and"
        assert expr.left.op == "or"

    def test_between(self):
        expr = self._where("a between 1 and 5")
        assert isinstance(expr, Between)

    def test_in_list(self):
        expr = self._where("a in (1, 2, 3)")
        assert isinstance(expr, InList)
        assert len(expr.options) == 3

    def test_is_null(self):
        assert self._where("a is null").op == "is null"
        assert self._where("a is not null").op == "is not null"

    def test_not(self):
        expr = self._where("not a = 1")
        assert isinstance(expr, UnaryOp)
        assert expr.op == "not"

    def test_unary_minus(self):
        expr = self._where("a = -5")
        assert isinstance(expr.right, UnaryOp)

    def test_string_literal_with_escaped_quote(self):
        expr = self._where("a = 'it''s'")
        assert expr.right == Literal("it's")

    def test_null_true_false_literals(self):
        assert self._where("a = null").right == Literal(None)
        assert self._where("a = true").right == Literal(True)
        assert self._where("a = false").right == Literal(False)

    def test_cast(self):
        expr = self._where("cast(a as int) = 1")
        assert isinstance(expr.left, CastExpr)
        assert expr.left.target == "int"

    def test_get_json_object(self):
        expr = self._where("get_json_object(payload, '$.x') = 1")
        assert isinstance(expr.left, GetJsonObject)
        assert expr.left.path == "$.x"

    def test_get_json_object_requires_literal_path(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("select get_json_object(payload, col) from db.t")

    def test_qualified_column(self):
        expr = self._where("a.x = 1")
        assert expr.left == Column("a.x")

    def test_numbers(self):
        assert self._where("a = 1.5").right == Literal(1.5)
        assert self._where("a = 1e3").right == Literal(1000.0)


class TestAggregatesAndClauses:
    def test_group_by(self):
        plan = parse_sql("select a, count(*) from db.t group by a")
        assert isinstance(plan, LogicalAggregate)
        assert len(plan.group_keys) == 1

    def test_aggregate_without_group_by(self):
        plan = parse_sql("select count(*) from db.t")
        assert isinstance(plan, LogicalAggregate)
        assert plan.group_keys == []

    def test_aggregate_functions(self):
        plan = parse_sql(
            "select count(a), sum(a), avg(a), min(a), max(a) from db.t"
        )
        funcs = [e.func for e in plan.output]
        assert funcs == ["count", "sum", "avg", "min", "max"]

    def test_count_distinct(self):
        plan = parse_sql("select count(distinct a) from db.t")
        agg = plan.output[0]
        assert isinstance(agg, AggregateCall) and agg.distinct

    def test_star_only_for_count(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("select sum(*) from db.t")

    def test_having(self):
        plan = parse_sql(
            "select a, count(*) as c from db.t group by a having count(*) > 2"
        )
        assert isinstance(plan, LogicalFilter)
        assert isinstance(plan.child, LogicalAggregate)

    def test_having_without_aggregate_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("select a from db.t having a > 1")

    def test_order_by_limit(self):
        plan = parse_sql("select a from db.t order by a desc, b limit 10")
        assert isinstance(plan, LogicalLimit)
        assert plan.count == 10
        sort = plan.child
        assert isinstance(sort, LogicalSort)
        assert [k.ascending for k in sort.keys] == [False, True]

    def test_limit_requires_integer(self):
        with pytest.raises(SqlSyntaxError):
            parse_sql("select a from db.t limit 1.5")

    def test_min_max_as_plain_functions_need_parens(self):
        # 'min' used as a column name is fine when not followed by '('.
        plan = parse_sql("select min from db.t")
        assert plan.expressions[0] == Column("min")


class TestJoins:
    def test_join_on(self):
        plan = parse_sql(
            "select a.x from db.t a join db.u b on a.k = b.k where a.x > 1"
        )
        join = plan.child.child
        assert isinstance(join, LogicalJoin)
        assert join.left.alias == "a"
        assert join.right.alias == "b"

    def test_inner_join_keyword(self):
        plan = parse_sql("select x from db.t a inner join db.u b on a.k = b.k")
        assert isinstance(plan.child, LogicalJoin)

    def test_multi_join(self):
        plan = parse_sql(
            "select x from db.t a join db.u b on a.k = b.k "
            "join db.v c on b.k = c.k"
        )
        outer = plan.child
        assert isinstance(outer, LogicalJoin)
        assert isinstance(outer.left, LogicalJoin)


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "select",
            "select from db.t",
            "select a",
            "select a from",
            "select a from db.",
            "select a from db.t where",
            "select a from db.t group a",
            "select a from db.t order a",
            "select a from db.t limit",
            "select a from db.t extra garbage",
            "select a from db.t join db.u",
            "select cast(a as blob) from db.t",
            "select a from db.t where a in ()",
            "select a from db.t where 'unterminated",
            "select a from db.t where a @ 1",
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(SqlSyntaxError):
            parse_sql(bad)
