"""Semantic result cache: canonicalization, admission, invalidation.

The result cache answers a recurring statement from stored rows, so the
dangerous directions are *wrong rows* (a canonicalization collision
between semantically different statements) and *stale rows* (a key that
survives a change that affected the answer). These tests pin the
canonicalizer's equivalence rules, the benefit-based admission and the
unified byte budget, and then walk the full invalidation matrix:
catalog DDL/append, cache-generation swaps, circuit-breaker epoch
transitions, and fault-degraded executions (which must never be
admitted at all).
"""

import pytest

from repro.core import MaxsonConfig, MaxsonSystem, PredictorConfig
from repro.engine import BUDGETED_TIERS, CacheLedger, ResultCache, Session
from repro.engine.resultcache import canonicalize
from repro.faults import FaultPolicy, FaultyFileSystem
from repro.jsonlib import dumps
from repro.storage import BlockFileSystem, DataType, Schema
from repro.workload import PathKey


@pytest.fixture
def rc_session() -> Session:
    session = Session(fs=BlockFileSystem(), result_cache_enabled=True)
    schema = Schema.of(
        ("a", DataType.INT64), ("b", DataType.STRING), ("c", DataType.INT64)
    )
    session.catalog.create_table("db", "t", schema)
    session.catalog.append_rows(
        "db", "t", [(i, f"s{i % 3}", i * 2) for i in range(12)]
    )
    return session


def canon(session: Session, sql: str):
    statement = canonicalize(sql, session.planner)
    assert statement is not None, sql
    return statement


# ----------------------------------------------------------------------
# canonicalization rules
# ----------------------------------------------------------------------
class TestCanonicalization:
    def test_keyword_case_and_whitespace_fold(self, rc_session):
        a = canon(rc_session, "select a from db.t where b = 'x'")
        b = canon(rc_session, "SELECT  a\nFROM db.t  WHERE b = 'x'")
        assert (a.text, a.params) == (b.text, b.params)

    def test_identifier_case_folds(self, rc_session):
        a = canon(rc_session, "select a from db.t")
        b = canon(rc_session, "select A from DB.T")
        assert (a.text, a.params) == (b.text, b.params)

    def test_output_alias_is_not_identity(self, rc_session):
        a = canon(rc_session, "select a as x from db.t")
        b = canon(rc_session, "select a as y from db.t")
        assert (a.text, a.params) == (b.text, b.params)
        assert a.output_names == ("x",) and b.output_names == ("y",)

    def test_table_alias_is_positional(self, rc_session):
        a = canon(rc_session, "select u.a from db.t u where u.c > 3")
        b = canon(rc_session, "select v.a from db.t v where v.c > 3")
        assert (a.text, a.params) == (b.text, b.params)

    def test_predicate_order_is_commutative(self, rc_session):
        a = canon(rc_session, "select a from db.t where a > 1 and b = 'x'")
        b = canon(rc_session, "select a from db.t where b = 'x' and a > 1")
        assert (a.text, a.params) == (b.text, b.params)

    def test_equality_operands_are_commutative(self, rc_session):
        a = canon(rc_session, "select a from db.t where b = 'x'")
        b = canon(rc_session, "select a from db.t where 'x' = b")
        assert (a.text, a.params) == (b.text, b.params)

    def test_in_list_order_is_commutative(self, rc_session):
        a = canon(rc_session, "select a from db.t where b in ('x', 'y')")
        b = canon(rc_session, "select a from db.t where b in ('y', 'x')")
        assert (a.text, a.params) == (b.text, b.params)

    def test_literals_bind_into_params(self, rc_session):
        a = canon(rc_session, "select a from db.t where a > 1")
        b = canon(rc_session, "select a from db.t where a > 5")
        assert a.text == b.text  # same template = shared recurrence
        assert a.params != b.params  # different answer = different key

    def test_numeric_type_kept_distinct_in_params(self, rc_session):
        # 1 and 1.0 hash equal in Python; as projected values they are
        # different answers, so the vectors must differ.
        a = canon(rc_session, "select a, 1 as k from db.t")
        b = canon(rc_session, "select a, 1.0 as k from db.t")
        assert a.text == b.text
        assert a.params != b.params

    def test_sort_suffix_is_positional(self, rc_session):
        a = canon(rc_session, "select a as x from db.t order by x limit 3")
        b = canon(rc_session, "select a as y from db.t order by y limit 3")
        assert (a.text, a.params) == (b.text, b.params)
        assert a.prefix_text is not None and not a.is_bare_prefix
        assert a.suffix_sort == (("x", True),) and a.suffix_limit == 3

    def test_bare_projection_is_its_own_prefix(self, rc_session):
        a = canon(rc_session, "select a, c from db.t where a > 2")
        assert a.is_bare_prefix
        suffixed = canon(
            rc_session, "select a, c from db.t where a > 2 order by c desc"
        )
        assert suffixed.prefix_text == a.text

    def test_star_is_not_remappable(self, rc_session):
        a = canon(rc_session, "select * from db.t")
        assert a.output_names is None
        assert "__names__" in a.params

    def test_duplicate_names_are_not_remappable(self, rc_session):
        a = canon(rc_session, "select a as x, c as x from db.t")
        assert a.output_names is None

    def test_different_statements_do_not_collide(self, rc_session):
        pairs = [
            ("select a from db.t", "select c from db.t"),
            ("select a from db.t where a > 1", "select a from db.t where a < 1"),
            ("select a from db.t", "select a from db.t order by a"),
            ("select a from db.t limit 3", "select a from db.t limit 4"),
            (
                "select a from db.t where a > 1 or b = 'x'",
                "select a from db.t where a > 1 and b = 'x'",
            ),
        ]
        for left, right in pairs:
            a, b = canon(rc_session, left), canon(rc_session, right)
            assert (a.text, a.params) != (b.text, b.params), (left, right)


# ----------------------------------------------------------------------
# hit / miss / remap mechanics through the session
# ----------------------------------------------------------------------
class TestResultCacheServing:
    def test_recurrence_is_served_from_cache(self, rc_session):
        first = rc_session.sql("select a from db.t where a > 4")
        again = rc_session.sql("SELECT  A  FROM db.t  WHERE a > 4")
        assert again.rows == first.rows
        stats = rc_session.result_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert first.metrics.extra.get("result_cache_misses") == 1
        assert again.metrics.extra.get("result_cache_hits") == 1

    def test_hit_rows_carry_the_recurrence_aliases(self, rc_session):
        rc_session.sql("select a as x from db.t where a > 9")
        renamed = rc_session.sql("select a as y from db.t where a > 9")
        assert renamed.rows == [{"y": 10}, {"y": 11}]
        assert rc_session.result_cache_stats()["hits"] == 1

    def test_intermediate_prefix_serves_sorted_suffix(self, rc_session):
        prefix = rc_session.sql("select a, c from db.t where a > 6")
        suffixed = rc_session.sql(
            "select a, c from db.t where a > 6 order by c desc limit 3"
        )
        from repro.obs.trace import Tracer

        # a traced run always executes for real: the ground truth
        expected = rc_session.sql(
            "select a, c from db.t where a > 6 order by c desc limit 3",
            tracer=Tracer(),
        )
        assert suffixed.rows == expected.rows
        assert len(prefix.rows) > len(suffixed.rows)
        stats = rc_session.result_cache_stats()
        assert stats["intermediate_hits"] == 1

    def test_star_statement_round_trips_verbatim(self, rc_session):
        first = rc_session.sql("select * from db.t limit 5")
        again = rc_session.sql("select * from db.t limit 5")
        assert again.rows == first.rows
        assert rc_session.result_cache_stats()["hits"] == 1

    def test_disabled_by_default(self, session):
        schema = Schema.of(("a", DataType.INT64))
        session.catalog.create_table("db", "t", schema)
        session.catalog.append_rows("db", "t", [(1,), (2,)])
        session.sql("select a from db.t")
        session.sql("select a from db.t")
        stats = session.result_cache_stats()
        assert stats["hits"] == 0 and stats["capacity"] == 0

    def test_traced_queries_never_serve_from_cache(self, rc_session):
        from repro.obs.trace import Tracer

        rc_session.sql("select a from db.t")
        traced = rc_session.sql("select a from db.t", tracer=Tracer())
        assert "result_cache_hits" not in traced.metrics.extra
        assert traced.metrics.rows_scanned > 0  # really executed
        spans = [s.name for s in traced.trace.walk()]
        assert "result_cache" in spans and "result_cache_admission" in spans

    def test_different_literals_do_not_cross_serve(self, rc_session):
        low = rc_session.sql("select a from db.t where a > 9")
        high = rc_session.sql("select a from db.t where a > 10")
        assert low.rows != high.rows
        assert rc_session.result_cache_stats()["hits"] == 0


# ----------------------------------------------------------------------
# benefit-based admission under the unified byte budget
# ----------------------------------------------------------------------
def fixed_canonical(tag: str, names=("v",)):
    from repro.engine import CanonicalStatement

    return CanonicalStatement(text=tag, params=(), output_names=tuple(names))


class TestAdmission:
    def test_budget_caps_all_tiers_together(self):
        ledger = CacheLedger(budget=4000)
        cache = ResultCache(ledger)
        ledger.charge("plan", 3000)  # another tier owns most of it
        rows = [{"v": "x" * 50} for _ in range(20)]  # > 1000 bytes
        admitted = cache.admit(
            ("big",), fixed_canonical("big"), rows, cost_seconds=1.0
        )
        assert admitted is False
        assert cache.stats()["rejections"] == 1
        assert ledger.total() <= 4000

    def test_higher_benefit_evicts_lower(self):
        ledger = CacheLedger(budget=6000)
        cache = ResultCache(ledger)
        rows = [{"v": "x" * 40} for _ in range(20)]
        assert cache.admit(
            ("cold",), fixed_canonical("cold"), rows, cost_seconds=0.001
        )
        for _ in range(5):  # hot template recurs
            cache.note_recurrence("hot")
        assert cache.admit(
            ("hot",), fixed_canonical("hot"), rows, cost_seconds=0.1
        )
        stats = cache.stats()
        assert stats["evictions"] == 1 and stats["entries"] == 1
        assert cache.fetch(("hot",), fixed_canonical("hot")) is not None
        assert ledger.total() <= 6000

    def test_lower_benefit_is_rejected_not_swapped(self):
        ledger = CacheLedger(budget=6000)
        cache = ResultCache(ledger)
        rows = [{"v": "x" * 40} for _ in range(20)]
        for _ in range(5):
            cache.note_recurrence("hot")
        assert cache.admit(
            ("hot",), fixed_canonical("hot"), rows, cost_seconds=0.1
        )
        assert not cache.admit(
            ("cold",), fixed_canonical("cold"), rows, cost_seconds=0.001
        )
        stats = cache.stats()
        assert stats["rejections"] == 1 and stats["evictions"] == 0
        assert cache.fetch(("hot",), fixed_canonical("hot")) is not None

    def test_clear_releases_ledger_bytes(self):
        ledger = CacheLedger(budget=1 << 20)
        cache = ResultCache(ledger)
        cache.admit(
            ("k",), fixed_canonical("k"), [{"v": 1}], cost_seconds=0.1
        )
        assert ledger.tier_bytes("result") > 0
        cache.clear()
        assert ledger.tier_bytes("result") == 0
        assert cache.stats()["invalidations"] == 1

    def test_session_tiers_stay_within_budget(self):
        budget = 64 * 1024
        session = Session(
            fs=BlockFileSystem(),
            result_cache_enabled=True,
            cache_budget_bytes=budget,
        )
        schema = Schema.of(("a", DataType.INT64), ("b", DataType.STRING))
        session.catalog.create_table("db", "t", schema)
        session.catalog.append_rows(
            "db", "t", [(i, "x" * 40) for i in range(60)]
        )
        for i in range(30):
            session.sql(f"select a, b from db.t where a > {i}")
        ledger = session.cache_ledger
        assert ledger.total() <= budget
        for tier in BUDGETED_TIERS:
            assert ledger.tier_bytes(tier) >= 0
        assert ledger.tier_bytes("result") > 0  # something was admitted


# ----------------------------------------------------------------------
# invalidation matrix
# ----------------------------------------------------------------------
def cached_result_system(fs=None):
    """A Maxson system with JSONPath caching *and* the result cache on."""
    session = Session(fs=fs or BlockFileSystem(), result_cache_enabled=True)
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("db", "t", schema)
    rows = [(i, dumps({"hot": i % 5, "cold": i * 7})) for i in range(40)]
    session.catalog.append_rows("db", "t", rows, row_group_size=10)
    system = MaxsonSystem(
        session=session,
        config=MaxsonConfig(predictor=PredictorConfig(model="oracle")),
    )
    keys = [PathKey("db", "t", "payload", "$.hot")]
    system.cache_paths_directly(keys, budget_bytes=1 << 40)
    return system, keys


HOT_SQL = "select get_json_object(payload, '$.hot') as h from db.t"


class TestInvalidationMatrix:
    def test_generation_swap_invalidates(self):
        system, keys = cached_result_system()
        first = system.sql(HOT_SQL)
        hit = system.sql(HOT_SQL)
        assert hit.metrics.extra.get("result_cache_hits") == 1
        system.cache_paths_directly(keys, budget_bytes=1 << 40)  # swap
        assert system.session.result_cache_stats()["entries"] == 0
        after = system.sql(HOT_SQL)
        assert "result_cache_hits" not in after.metrics.extra
        assert after.rows == first.rows
        assert after.metrics.cache_hits > 0  # new generation served it

    def test_ddl_changes_key(self, rc_session):
        rc_session.sql("select a from db.t")
        rc_session.catalog.create_table(
            "db", "u", Schema.of(("a", DataType.INT64))
        )
        after = rc_session.sql("select a from db.t")
        assert "result_cache_hits" not in after.metrics.extra
        assert rc_session.result_cache_stats()["hits"] == 0

    def test_append_rows_changes_key(self, rc_session):
        before = rc_session.sql("select count(*) as n from db.t")
        rc_session.catalog.append_rows("db", "t", [(99, "s0", 0)])
        after = rc_session.sql("select count(*) as n from db.t")
        assert rc_session.result_cache_stats()["hits"] == 0
        assert after.rows[0]["n"] == before.rows[0]["n"] + 1

    def test_breaker_epoch_transitions_change_key(self):
        """open → half-open → closed each bump the breaker epoch; a
        result cached under any earlier epoch must re-execute."""
        system, _ = cached_result_system()
        table = next(iter(system.registry.cache_tables()))
        baseline = system.sql(HOT_SQL)
        assert system.sql(HOT_SQL).metrics.extra.get("result_cache_hits") == 1
        breaker = system.breaker
        epochs = [breaker.epoch]
        breaker.record_failure(table)  # closed -> open
        epochs.append(breaker.epoch)
        open_run = system.sql(HOT_SQL)
        assert "result_cache_hits" not in open_run.metrics.extra
        assert open_run.rows == baseline.rows
        breaker.quarantine_seconds = 0.0
        assert breaker.allows(table)  # open -> half-open (re-probe)
        epochs.append(breaker.epoch)
        half_open_run = system.sql(HOT_SQL)
        assert "result_cache_hits" not in half_open_run.metrics.extra
        assert half_open_run.rows == baseline.rows
        breaker.record_success(table)  # half-open -> closed
        epochs.append(breaker.epoch)
        closed_run = system.sql(HOT_SQL)
        assert "result_cache_hits" not in closed_run.metrics.extra
        assert closed_run.rows == baseline.rows
        assert len(set(epochs)) == len(epochs)  # every transition bumped
        # and the closed-epoch key now recurs normally
        assert system.sql(HOT_SQL).metrics.extra.get("result_cache_hits") == 1

    def test_degraded_answer_is_never_admitted(self):
        """Corrupt cache reads degrade splits to raw parsing; a degraded
        answer must not enter the result cache even though its rows
        happen to be correct."""
        faulty = FaultyFileSystem()
        system, _ = cached_result_system(fs=faulty)
        faulty.policy = FaultPolicy(corrupt_rate=1.0, seed=3)
        degraded = system.sql(HOT_SQL)
        assert degraded.metrics.extra.get("degraded_splits", 0) > 0
        assert "result_cache_admissions" not in degraded.metrics.extra
        assert system.session.result_cache_stats()["admissions"] == 0
        assert system.session.result_cache_stats()["entries"] == 0
        # the faults cleared: the healthy re-run is admitted again
        faulty.policy = FaultPolicy()
        healthy = system.sql(HOT_SQL)
        assert healthy.metrics.extra.get("degraded_splits", 0) == 0
        assert system.session.result_cache_stats()["admissions"] >= 0

    def test_explicit_invalidate(self, rc_session):
        rc_session.sql("select a from db.t")
        assert rc_session.result_cache_stats()["entries"] == 1
        rc_session.invalidate_result_cache()
        stats = rc_session.result_cache_stats()
        assert stats["entries"] == 0 and stats["invalidations"] == 1

    def test_cache_summary_reports_result_cache_and_ledger(self):
        system, _ = cached_result_system()
        system.sql(HOT_SQL)
        system.sql(HOT_SQL)
        summary = system.cache_summary()
        assert summary["result_cache"]["hits"] == 1
        ledger = summary["cache_ledger"]
        assert ledger["tiers"]["result"] > 0
        assert ledger["tiers"]["jsonpath"] > 0  # reported, not budgeted
        assert ledger["total_bytes"] >= ledger["tiers"]["result"]
