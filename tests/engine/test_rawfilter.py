"""Tests for the Sparser raw-prefilter plan modifier."""

import pytest

from repro.engine import Session
from repro.engine.rawfilter import (
    SparserPlanModifier,
    SparserPrefilterExec,
    derive_cascade,
)
from repro.engine.sqlparser import parse_sql
from repro.jsonlib import dumps
from repro.storage import BlockFileSystem, DataType, Schema


@pytest.fixture
def sparser_session() -> Session:
    session = Session(fs=BlockFileSystem())
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("db", "t", schema)
    rows = []
    for i in range(300):
        doc = {"kind": f"k{i % 30}", "nested": {"flag": i % 2 == 0}, "v": i}
        rows.append((i, dumps(doc)))
    session.catalog.append_rows("db", "t", rows, row_group_size=50)
    session.add_plan_modifier(SparserPlanModifier())
    return session


def _condition(sql_where: str):
    plan = parse_sql(f"select id from db.t where {sql_where}")
    return plan.child.condition


class TestDeriveCascade:
    def test_string_equality(self):
        derived = derive_cascade(
            _condition("get_json_object(payload, '$.kind') = 'k7'"),
            {"payload"},
        )
        assert derived is not None
        column, cascade = derived
        assert column == "payload"
        assert cascade.filters[0].key == "kind"
        assert cascade.filters[0].value == '"k7"'

    def test_int_equality(self):
        derived = derive_cascade(
            _condition("get_json_object(payload, '$.v') = 12"), {"payload"}
        )
        assert derived is not None
        assert derived[1].filters[0].value == "12"

    def test_bool_equality(self):
        derived = derive_cascade(
            _condition("get_json_object(payload, '$.nested.flag') = true"),
            {"payload"},
        )
        assert derived is not None
        assert derived[1].filters[0].key == "flag"

    def test_float_not_probed(self):
        derived = derive_cascade(
            _condition("get_json_object(payload, '$.v') = 1.5"), {"payload"}
        )
        assert derived is None

    def test_inequality_not_probed(self):
        derived = derive_cascade(
            _condition("get_json_object(payload, '$.v') > 5"), {"payload"}
        )
        assert derived is None

    def test_index_paths_not_probed(self):
        derived = derive_cascade(
            _condition("get_json_object(payload, '$.arr[0]') = 1"), {"payload"}
        )
        assert derived is None

    def test_unknown_column_ignored(self):
        derived = derive_cascade(
            _condition("get_json_object(payload, '$.v') = 1"), {"other"}
        )
        assert derived is None

    def test_conjunction_collects_multiple_probes(self):
        derived = derive_cascade(
            _condition(
                "get_json_object(payload, '$.kind') = 'k1' "
                "and get_json_object(payload, '$.v') = 31"
            ),
            {"payload"},
        )
        assert derived is not None
        assert len(derived[1].filters) == 2


class TestEndToEnd:
    SQL = (
        "select id from db.t "
        "where get_json_object(payload, '$.kind') = 'k7'"
    )

    def test_results_match_unmodified_engine(self, sparser_session):
        with_prefilter = sparser_session.sql(self.SQL)
        modifier = sparser_session._plan_modifiers[0]
        sparser_session.remove_plan_modifier(modifier)
        try:
            plain = sparser_session.sql(self.SQL)
        finally:
            sparser_session.add_plan_modifier(modifier)
        assert with_prefilter.rows == plain.rows
        assert len(with_prefilter.rows) == 10

    def test_prefilter_reduces_parsing(self, sparser_session):
        result = sparser_session.sql(self.SQL)
        # only the ~10 surviving records (plus calibration) are parsed,
        # not all 300
        assert result.metrics.parse_documents < 100
        assert result.metrics.extra["sparser_rows_dropped"] > 200

    def test_plan_shows_prefilter(self, sparser_session):
        text = sparser_session.explain(self.SQL)
        assert "SparserPrefilter" in text

    def test_non_probeable_query_unmodified(self, sparser_session):
        text = sparser_session.explain(
            "select id from db.t where get_json_object(payload, '$.v') > 100"
        )
        assert "SparserPrefilter" not in text

    def test_composes_with_maxson(self):
        from repro.core import MaxsonSystem
        from repro.workload import PathKey

        session = Session(fs=BlockFileSystem())
        schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
        session.catalog.create_table("db", "t", schema)
        rows = [(i, dumps({"kind": f"k{i % 30}", "v": i})) for i in range(100)]
        session.catalog.append_rows("db", "t", rows, row_group_size=20)
        system = MaxsonSystem(session=session)
        session.add_plan_modifier(SparserPlanModifier())

        sql = "select id from db.t where get_json_object(payload, '$.kind') = 'k3'"
        uncached = system.sql(sql)
        system.cacher.populate([PathKey("db", "t", "payload", "$.kind")])
        cached = system.sql(sql)
        assert cached.rows == uncached.rows
        # cached scan has no JSON column -> sparser skipped, no parsing
        assert cached.metrics.parse_documents == 0
