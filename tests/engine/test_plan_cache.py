"""Plan cache: recurring statements reuse their compiled plan, safely.

The cache is keyed on (SQL fingerprint, catalog version, modifier
tokens), so the dangerous direction is *staleness*: a cached plan must
stop matching the moment anything that influenced planning changes — a
DDL statement, appended data, a cache-generation swap, a registry
repair. These tests pin each invalidation edge, plus the LRU mechanics
and the bypass rules (tracing, unkeyed modifiers, capacity 0).
"""

import pytest

from repro.core import MaxsonConfig, MaxsonSystem, PredictorConfig
from repro.engine import Session, plan_fingerprint
from repro.jsonlib import dumps
from repro.obs.trace import Tracer
from repro.storage import BlockFileSystem, DataType, Schema
from repro.workload import PathKey


@pytest.fixture
def tiny(session: Session) -> Session:
    schema = Schema.of(("a", DataType.INT64), ("b", DataType.STRING))
    session.catalog.create_table("db", "t", schema)
    session.catalog.append_rows("db", "t", [(i, f"s{i % 3}") for i in range(12)])
    return session


class TestFingerprint:
    def test_whitespace_insensitive(self):
        assert plan_fingerprint("select  a\nfrom db.t") == plan_fingerprint(
            "select a from db.t"
        )

    def test_quoted_literals_keep_their_spacing(self):
        a = plan_fingerprint("select a from db.t where b = 'x  y'")
        b = plan_fingerprint("select a from db.t where b = 'x y'")
        assert a != b

    def test_case_folds_outside_literals(self):
        # keywords and identifiers fold (the planner resolves
        # identifiers case-insensitively, SparkSQL-style)...
        assert plan_fingerprint("SELECT A FROM db.t") == plan_fingerprint(
            "select a from db.t"
        )

    def test_case_inside_literals_is_data(self):
        # ...but string literals are data and keep their case
        assert plan_fingerprint(
            "select a from db.t where b = 'X'"
        ) != plan_fingerprint("select a from db.t where b = 'x'")

    def test_recased_statement_hits_plan_cache(self, tiny):
        tiny.sql("select a from db.t")
        tiny.sql("SELECT A FROM DB.T")
        stats = tiny.plan_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1


class TestPlanCacheHits:
    def test_repeat_statement_hits(self, tiny):
        first = tiny.sql("select a from db.t")
        second = tiny.sql("select a   from db.t")  # same fingerprint
        stats = tiny.plan_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert first.metrics.extra.get("plan_cache_misses") == 1
        assert second.metrics.extra.get("plan_cache_hits") == 1
        assert first.rows == second.rows

    def test_distinct_statements_miss(self, tiny):
        tiny.sql("select a from db.t")
        tiny.sql("select b from db.t")
        assert tiny.plan_cache_stats()["misses"] == 2

    def test_lru_eviction_at_capacity(self, tiny):
        tiny.configure_plan_cache(2)
        tiny.sql("select a from db.t")
        tiny.sql("select b from db.t")
        tiny.sql("select a, b from db.t")  # evicts "select a from db.t"
        stats = tiny.plan_cache_stats()
        assert stats["entries"] == 2 and stats["evictions"] == 1
        tiny.sql("select a from db.t")  # recompiles
        assert tiny.plan_cache_stats()["misses"] == 4

    def test_capacity_zero_disables(self, tiny):
        tiny.configure_plan_cache(0)
        tiny.sql("select a from db.t")
        tiny.sql("select a from db.t")
        stats = tiny.plan_cache_stats()
        assert stats == {
            "entries": 0,
            "capacity": 0,
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "invalidations": 0,
        }

    def test_traced_queries_bypass(self, tiny):
        tiny.sql("select a from db.t", tracer=Tracer())
        stats = tiny.plan_cache_stats()
        assert stats["hits"] == 0 and stats["misses"] == 0
        # and a traced run never consumes a previously cached plan
        tiny.sql("select a from db.t")
        traced = tiny.sql("select a from db.t", tracer=Tracer())
        assert "plan_cache_hits" not in traced.metrics.extra

    def test_unkeyed_modifier_bypasses(self, tiny):
        class Tagger:  # no plan_cache_token(): may rewrite differently
            def modify(self, planned, state):
                return planned.physical

        tiny.add_plan_modifier(Tagger())
        tiny.sql("select a from db.t")
        tiny.sql("select a from db.t")
        stats = tiny.plan_cache_stats()
        assert stats["hits"] == 0 and stats["misses"] == 0


class TestPlanCacheInvalidation:
    def test_append_rows_changes_key(self, tiny):
        before = tiny.sql("select count(*) as n from db.t")
        tiny.catalog.append_rows("db", "t", [(99, "s0")])
        after = tiny.sql("select count(*) as n from db.t")
        assert tiny.plan_cache_stats()["hits"] == 0
        assert after.rows[0]["n"] == before.rows[0]["n"] + 1

    def test_ddl_changes_key(self, tiny):
        tiny.sql("select a from db.t")
        schema = Schema.of(("a", DataType.INT64))
        tiny.catalog.create_table("db", "u", schema)
        tiny.sql("select a from db.t")
        assert tiny.plan_cache_stats()["hits"] == 0

    def test_explicit_invalidate_clears_entries(self, tiny):
        tiny.sql("select a from db.t")
        assert tiny.plan_cache_stats()["entries"] == 1
        tiny.invalidate_plan_cache()
        stats = tiny.plan_cache_stats()
        assert stats["entries"] == 0 and stats["invalidations"] == 1

    def test_reconfigure_resets(self, tiny):
        tiny.sql("select a from db.t")
        tiny.configure_plan_cache(8)
        stats = tiny.plan_cache_stats()
        assert stats["entries"] == 0 and stats["capacity"] == 8


def _cached_system(fs=None):
    session = Session(fs=fs or BlockFileSystem())
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("db", "t", schema)
    rows = [(i, dumps({"hot": i % 5, "cold": i * 7})) for i in range(40)]
    session.catalog.append_rows("db", "t", rows, row_group_size=10)
    system = MaxsonSystem(
        session=session,
        config=MaxsonConfig(predictor=PredictorConfig(model="oracle")),
    )
    keys = [PathKey("db", "t", "payload", "$.hot")]
    system.cache_paths_directly(keys, budget_bytes=1 << 40)
    return system, keys


class TestMaxsonStaleness:
    SQL = "select get_json_object(payload, '$.hot') as h from db.t"

    def test_generation_swap_invalidates(self):
        """A plan cached against generation N references __g{N} cache
        tables; after a swap it must recompile, never fall back."""
        system, keys = _cached_system()
        first = system.sql(self.SQL)
        assert first.metrics.cache_hits > 0
        hit = system.sql(self.SQL)
        assert hit.metrics.extra.get("plan_cache_hits") == 1
        system.cache_paths_directly(keys, budget_bytes=1 << 40)  # swap
        after = system.sql(self.SQL)
        assert after.rows == first.rows
        # the stale plan never touched the retired table: no degraded
        # read, and the new generation served the cached column
        assert system.resilience.snapshot()["fallback_queries"] == 0
        assert after.metrics.cache_hits > 0

    def test_registry_repair_invalidates(self):
        """Refresh repairs an invalidated cache table in place; the plan
        compiled while the table was invalid must not be replayed."""
        system, keys = _cached_system()
        system.sql(self.SQL)
        system.session.catalog.append_rows(
            "db", "t", [(100, dumps({"hot": 1, "cold": 2}))]
        )
        stale = system.sql(self.SQL)  # marks cache invalid, parses raw
        assert stale.metrics.parse_documents > 0
        system.cacher.refresh(keys)
        repaired = system.sql(self.SQL)
        assert repaired.metrics.parse_documents == 0
        assert repaired.metrics.cache_hits > 0

    def test_plan_cache_stats_in_cache_summary(self):
        system, _ = _cached_system()
        system.sql(self.SQL)
        system.sql(self.SQL)
        summary = system.cache_summary()
        assert summary["plan_cache"]["hits"] >= 1
        assert summary["scan_workers"] == 1
