"""Unit tests for the Session entry point."""

import pytest

from repro.engine import Session
from repro.storage import DataType, Schema


@pytest.fixture
def tiny_session(session: Session) -> Session:
    schema = Schema.of(("a", DataType.INT64), ("b", DataType.STRING))
    session.catalog.create_table("db", "t", schema)
    session.catalog.append_rows("db", "t", [(1, "x"), (2, "y"), (3, "x")])
    return session


class TestQueryResult:
    def test_len_and_iter(self, tiny_session):
        result = tiny_session.sql("select a from db.t")
        assert len(result) == 3
        assert [row["a"] for row in result] == [1, 2, 3]

    def test_column_accessor(self, tiny_session):
        result = tiny_session.sql("select b from db.t")
        assert result.column("b") == ["x", "y", "x"]

    def test_first(self, tiny_session):
        result = tiny_session.sql("select a from db.t order by a desc")
        assert result.first() == {"a": 3}
        empty = tiny_session.sql("select a from db.t where a > 99")
        assert empty.first() is None


class TestPlanModifiers:
    class _Tagger:
        def __init__(self):
            self.calls = 0

        def modify(self, planned, state):
            self.calls += 1
            return planned.physical

    def test_modifier_invoked_per_query(self, tiny_session):
        tagger = self._Tagger()
        tiny_session.add_plan_modifier(tagger)
        tiny_session.sql("select a from db.t")
        tiny_session.sql("select a from db.t")
        assert tagger.calls == 2

    def test_modifier_removed(self, tiny_session):
        tagger = self._Tagger()
        tiny_session.add_plan_modifier(tagger)
        tiny_session.remove_plan_modifier(tagger)
        tiny_session.sql("select a from db.t")
        assert tagger.calls == 0

    def test_remove_is_idempotent(self, tiny_session):
        tagger = self._Tagger()
        tiny_session.add_plan_modifier(tagger)
        tiny_session.remove_plan_modifier(tagger)
        tiny_session.remove_plan_modifier(tagger)  # no ValueError
        tiny_session.remove_plan_modifier(self._Tagger())  # never added
        tiny_session.sql("select a from db.t")
        assert tagger.calls == 0

    def test_add_is_idempotent(self, tiny_session):
        tagger = self._Tagger()
        tiny_session.add_plan_modifier(tagger)
        tiny_session.add_plan_modifier(tagger)  # registered once
        tiny_session.sql("select a from db.t")
        assert tagger.calls == 1

    def test_modifiers_run_in_order(self, tiny_session):
        order = []

        class Probe:
            def __init__(self, name):
                self.name = name

            def modify(self, planned, state):
                order.append(self.name)
                return planned.physical

        tiny_session.add_plan_modifier(Probe("first"))
        tiny_session.add_plan_modifier(Probe("second"))
        tiny_session.sql("select a from db.t")
        assert order == ["first", "second"]


class TestMetricsPlumbing:
    def test_plan_seconds_recorded(self, tiny_session):
        result = tiny_session.sql("select a from db.t")
        assert result.metrics.plan_seconds > 0

    def test_rows_output(self, tiny_session):
        result = tiny_session.sql("select a from db.t where a >= 2")
        assert result.metrics.rows_output == 2

    def test_compile_does_not_execute(self, tiny_session):
        planned = tiny_session.compile("select a from db.t")
        assert planned.physical is not None
        assert tiny_session.session_metrics.rows_output == 0
