"""Unit tests for LR, SVM and MLP on synthetic separable data."""

import numpy as np
import pytest

from repro.ml import LinearSVM, LogisticRegression, MLPClassifier, accuracy


def linearly_separable(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 2))
    y = (X[:, 0] + 2 * X[:, 1] > 0).astype(int)
    return X, y


def xor_data(n=400, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1, 1, size=(n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
    return X, y


class TestLogisticRegression:
    def test_learns_separable(self):
        X, y = linearly_separable()
        model = LogisticRegression(max_iterations=300).fit(X, y)
        assert accuracy(y, model.predict(X)) > 0.95

    def test_probabilities_bounded(self):
        X, y = linearly_separable()
        probs = LogisticRegression(max_iterations=100).fit(X, y).predict_proba(X)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_loss_decreases(self):
        X, y = linearly_separable()
        model = LogisticRegression(max_iterations=60).fit(X, y)
        assert model.loss_history_[-1] < model.loss_history_[0]

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LogisticRegression().predict(np.zeros((1, 2)))

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((3, 2)), np.zeros(4))

    def test_balanced_class_weight_raises_recall(self):
        rng = np.random.default_rng(1)
        # 95:5 imbalance with overlapping classes
        X0 = rng.normal(0, 1, size=(190, 2))
        X1 = rng.normal(1.0, 1, size=(10, 2))
        X = np.vstack([X0, X1])
        y = np.array([0] * 190 + [1] * 10)
        plain = LogisticRegression(max_iterations=200).fit(X, y)
        balanced = LogisticRegression(
            max_iterations=200, class_weight="balanced"
        ).fit(X, y)
        assert balanced.predict(X).sum() >= plain.predict(X).sum()

    def test_deterministic_given_seed(self):
        X, y = linearly_separable()
        a = LogisticRegression(max_iterations=50, seed=5).fit(X, y)
        b = LogisticRegression(max_iterations=50, seed=5).fit(X, y)
        assert np.allclose(a.weights_, b.weights_)


class TestLinearSVM:
    def test_learns_separable(self):
        X, y = linearly_separable()
        model = LinearSVM(max_iter=300).fit(X, y)
        assert accuracy(y, model.predict(X)) > 0.95

    def test_decision_function_sign(self):
        X, y = linearly_separable()
        model = LinearSVM(max_iter=300).fit(X, y)
        scores = model.decision_function(X)
        assert np.array_equal((scores >= 0).astype(int), model.predict(X))

    def test_loss_decreases(self):
        X, y = linearly_separable()
        model = LinearSVM(max_iter=60).fit(X, y)
        assert model.loss_history_[-1] < model.loss_history_[0]

    def test_cannot_fit_xor(self):
        X, y = xor_data()
        model = LinearSVM(max_iter=300).fit(X, y)
        assert accuracy(y, model.predict(X)) < 0.75  # linear limit

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LinearSVM().predict(np.zeros((1, 2)))


class TestMLP:
    def test_learns_separable(self):
        X, y = linearly_separable()
        model = MLPClassifier(hidden_layer_sizes=(16,), max_iter=300).fit(X, y)
        assert accuracy(y, model.predict(X)) > 0.95

    def test_learns_xor_unlike_linear_models(self):
        X, y = xor_data()
        model = MLPClassifier(
            hidden_layer_sizes=(32, 16), max_iter=500, learning_rate=2e-2
        ).fit(X, y)
        assert accuracy(y, model.predict(X)) > 0.9

    def test_paper_architecture_accepted(self):
        X, y = linearly_separable(60)
        model = MLPClassifier(hidden_layer_sizes=(50, 10, 2), max_iter=50).fit(X, y)
        # (input->50->10->2->2): 4 weight matrices
        assert len(model.weights_) == 4

    def test_probabilities_sum_to_one(self):
        X, y = linearly_separable()
        probs = MLPClassifier(max_iter=50).fit(X, y).predict_proba(X)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            MLPClassifier().predict(np.zeros((1, 2)))

    def test_loss_decreases(self):
        X, y = linearly_separable()
        model = MLPClassifier(max_iter=80).fit(X, y)
        assert model.loss_history_[-1] < model.loss_history_[0]
