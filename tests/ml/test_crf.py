"""Unit tests for the linear-chain CRF: exact inference and gradients."""

import itertools

import numpy as np
import pytest

from repro.ml import LinearChainCRF


def brute_force_log_z(crf: LinearChainCRF, emissions: np.ndarray) -> float:
    """Enumerate every label sequence; the gold standard for tiny T."""
    T, L = emissions.shape
    scores = []
    for labels in itertools.product(range(L), repeat=T):
        scores.append(crf.sequence_score(emissions, np.array(labels)))
    peak = max(scores)
    return peak + np.log(sum(np.exp(s - peak) for s in scores))


@pytest.fixture
def crf():
    return LinearChainCRF(num_labels=2, seed=42)


@pytest.fixture
def emissions():
    rng = np.random.default_rng(0)
    return rng.normal(size=(5, 2))


class TestExactInference:
    def test_partition_matches_brute_force(self, crf, emissions):
        assert crf.log_partition(emissions) == pytest.approx(
            brute_force_log_z(crf, emissions), abs=1e-9
        )

    def test_viterbi_matches_brute_force(self, crf, emissions):
        best_brute = max(
            itertools.product(range(2), repeat=5),
            key=lambda labels: crf.sequence_score(emissions, np.array(labels)),
        )
        assert tuple(crf.decode(emissions)) == best_brute

    def test_log_likelihood_is_normalised(self, crf, emissions):
        total = 0.0
        for labels in itertools.product(range(2), repeat=5):
            total += np.exp(crf.log_likelihood(emissions, np.array(labels)))
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_marginals_sum_to_one(self, crf, emissions):
        marginals = crf.marginals(emissions)
        assert np.allclose(marginals.sum(axis=1), 1.0)

    def test_marginals_match_brute_force(self, crf, emissions):
        marginals = crf.marginals(emissions)
        brute = np.zeros_like(marginals)
        for labels in itertools.product(range(2), repeat=5):
            p = np.exp(crf.log_likelihood(emissions, np.array(labels)))
            for t, label in enumerate(labels):
                brute[t, label] += p
        assert np.allclose(marginals, brute, atol=1e-9)

    def test_single_timestep(self, crf):
        emissions = np.array([[1.0, -1.0]])
        assert crf.decode(emissions).tolist() in ([0], [1])
        assert crf.log_partition(emissions) == pytest.approx(
            brute_force_log_z(crf, emissions)
        )


class TestGradients:
    def test_emission_gradient_numerically(self, crf, emissions):
        labels = np.array([0, 1, 1, 0, 1])
        _, d_emissions, _ = crf.gradients(emissions, labels)
        eps = 1e-6
        for t in range(emissions.shape[0]):
            for l in range(2):
                emissions[t, l] += eps
                up = -crf.log_likelihood(emissions, labels)
                emissions[t, l] -= 2 * eps
                down = -crf.log_likelihood(emissions, labels)
                emissions[t, l] += eps
                numeric = (up - down) / (2 * eps)
                assert d_emissions[t, l] == pytest.approx(numeric, abs=1e-6)

    def test_transition_gradient_numerically(self, crf, emissions):
        labels = np.array([1, 0, 1, 1, 0])
        _, _, (d_trans, d_start, d_end) = crf.gradients(emissions, labels)
        eps = 1e-6
        for i in range(2):
            for j in range(2):
                crf.transitions[i, j] += eps
                up = -crf.log_likelihood(emissions, labels)
                crf.transitions[i, j] -= 2 * eps
                down = -crf.log_likelihood(emissions, labels)
                crf.transitions[i, j] += eps
                assert d_trans[i, j] == pytest.approx(
                    (up - down) / (2 * eps), abs=1e-6
                )

    def test_start_end_gradients_numerically(self, crf, emissions):
        labels = np.array([0, 0, 1, 0, 1])
        _, _, (_, d_start, d_end) = crf.gradients(emissions, labels)
        eps = 1e-6
        for vec, grad in ((crf.start, d_start), (crf.end, d_end)):
            for l in range(2):
                vec[l] += eps
                up = -crf.log_likelihood(emissions, labels)
                vec[l] -= 2 * eps
                down = -crf.log_likelihood(emissions, labels)
                vec[l] += eps
                assert grad[l] == pytest.approx((up - down) / (2 * eps), abs=1e-6)

    def test_nll_nonnegative_at_uniform(self):
        crf = LinearChainCRF(num_labels=2, all_possible_transitions=False)
        emissions = np.zeros((4, 2))
        nll, _, _ = crf.gradients(emissions, np.array([0, 1, 0, 1]))
        assert nll == pytest.approx(4 * np.log(2))

    def test_disabled_transitions_zero_grads(self, emissions):
        crf = LinearChainCRF(num_labels=2, all_possible_transitions=False)
        _, _, (d_trans, d_start, d_end) = crf.gradients(
            emissions, np.array([0, 1, 0, 1, 0])
        )
        assert not d_trans.any() and not d_start.any() and not d_end.any()


class TestTransitionLearning:
    def test_crf_learns_label_persistence(self):
        """Sequences where labels persist: transitions should favour
        staying after training on the gradient direction."""
        crf = LinearChainCRF(num_labels=2, seed=0)
        rng = np.random.default_rng(3)
        emissions = rng.normal(scale=0.1, size=(6, 2))
        labels = np.array([1, 1, 1, 0, 0, 0])
        for _ in range(200):
            _, _, (d_trans, d_start, d_end) = crf.gradients(emissions, labels)
            crf.transitions -= 0.1 * d_trans
            crf.start -= 0.1 * d_start
            crf.end -= 0.1 * d_end
        assert crf.transitions[1, 1] > crf.transitions[1, 0]
        assert crf.transitions[0, 0] > crf.transitions[0, 1]
