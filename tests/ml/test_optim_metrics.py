"""Unit tests for optimisers, metrics, and preprocessing."""

import numpy as np
import pytest

from repro.ml import (
    SGD,
    Adam,
    PRF,
    StandardScaler,
    accuracy,
    clip_gradients,
    confusion_counts,
    one_hot,
    precision_recall_f1,
    train_val_test_split,
)


class TestMetrics:
    def test_perfect(self):
        prf = precision_recall_f1([1, 0, 1], [1, 0, 1])
        assert prf == PRF(1.0, 1.0, 1.0)

    def test_counts(self):
        tp, fp, fn, tn = confusion_counts(
            np.array([1, 1, 0, 0]), np.array([1, 0, 1, 0])
        )
        assert (tp, fp, fn, tn) == (1, 1, 1, 1)

    def test_zero_division_convention(self):
        prf = precision_recall_f1([0, 0], [0, 0])
        assert prf == PRF(0.0, 0.0, 0.0)

    def test_precision_recall(self):
        # 2 predicted positives, 1 correct; 2 actual positives.
        prf = precision_recall_f1([1, 1, 0, 0], [1, 0, 1, 0])
        assert prf.precision == 0.5
        assert prf.recall == 0.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            precision_recall_f1([1, 0], [1])

    def test_accuracy(self):
        assert accuracy([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)
        assert accuracy([], []) == 0.0

    def test_as_row_rounding(self):
        row = PRF(0.12345, 0.9, 0.5).as_row()
        assert row["precision"] == 0.123


class TestOptimisers:
    def test_sgd_minimises_quadratic(self):
        w = np.array([5.0])
        opt = SGD(learning_rate=0.1)
        for _ in range(100):
            opt.step([w], [2 * w])  # d/dw w^2
        assert abs(w[0]) < 1e-3

    def test_sgd_momentum(self):
        w = np.array([5.0])
        opt = SGD(learning_rate=0.05, momentum=0.9)
        for _ in range(200):
            opt.step([w], [2 * w])
        # underdamped but converging
        assert abs(w[0]) < 0.1

    def test_adam_minimises_quadratic(self):
        w = np.array([5.0, -3.0])
        opt = Adam(learning_rate=0.2)
        for _ in range(200):
            opt.step([w], [2 * w])
        assert np.all(np.abs(w) < 1e-2)

    def test_weight_decay_shrinks(self):
        w = np.array([1.0])
        opt = SGD(learning_rate=0.1, weight_decay=1.0)
        opt.step([w], [np.array([0.0])])
        assert w[0] < 1.0

    def test_updates_in_place(self):
        w = np.array([1.0])
        ref = w
        Adam().step([w], [np.array([1.0])])
        assert ref is w

    def test_clip_gradients(self):
        grads = [np.array([3.0, 4.0])]  # norm 5
        norm = clip_gradients(grads, 1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(grads[0]) == pytest.approx(1.0)

    def test_clip_noop_under_limit(self):
        grads = [np.array([0.3])]
        clip_gradients(grads, 1.0)
        assert grads[0][0] == pytest.approx(0.3)


class TestPreprocessing:
    def test_scaler(self):
        X = np.array([[1.0, 10.0], [3.0, 10.0]])
        scaled = StandardScaler().fit_transform(X)
        assert np.allclose(scaled.mean(axis=0), 0.0)
        # constant column passes through zero-centred, not NaN
        assert np.all(np.isfinite(scaled))

    def test_scaler_before_fit(self):
        with pytest.raises(RuntimeError):
            StandardScaler().transform(np.zeros((2, 2)))

    def test_split_fractions(self):
        tr, va, te = train_val_test_split(100, 0.7, 0.2, seed=1)
        assert len(tr) == 70 and len(va) == 20 and len(te) == 10
        assert len(set(tr) | set(va) | set(te)) == 100

    def test_split_deterministic(self):
        a = train_val_test_split(50, seed=3)
        b = train_val_test_split(50, seed=3)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    def test_split_invalid(self):
        with pytest.raises(ValueError):
            train_val_test_split(10, train=0.9, val=0.2)

    def test_one_hot(self):
        out = one_hot(np.array([0, 2, 5]), 3)
        assert out.shape == (3, 3)
        assert out[0, 0] == 1 and out[1, 2] == 1
        assert out[2].sum() == 0  # out of range -> all zeros
