"""Unit tests for the batched LSTM and the sequence classifiers."""

import numpy as np
import pytest

from repro.ml import LSTMCRFTagger, LSTMSequenceClassifier, precision_recall_f1
from repro.ml.lstm import LSTMLayer, LSTMTagger


class TestLSTMLayer:
    def test_forward_shapes(self):
        rng = np.random.default_rng(0)
        layer = LSTMLayer(3, 5, rng)
        out = layer.forward(rng.normal(size=(4, 7, 3)))
        assert out.shape == (4, 7, 5)

    def test_hidden_bounded(self):
        rng = np.random.default_rng(0)
        layer = LSTMLayer(3, 5, rng)
        out = layer.forward(rng.normal(size=(2, 9, 3)) * 10)
        assert np.all(np.abs(out) <= 1.0)  # o * tanh(c) in (-1, 1)

    def test_backward_before_forward(self):
        layer = LSTMLayer(2, 3, np.random.default_rng(0))
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2, 3)))

    def test_gradient_check(self):
        """Numeric gradient check of the full BPTT pass."""
        rng = np.random.default_rng(1)
        layer = LSTMLayer(2, 3, rng)
        x = rng.normal(size=(2, 4, 2))
        target = rng.normal(size=(2, 4, 3))

        def loss_of():
            out = layer.forward(x)
            return 0.5 * float(np.sum((out - target) ** 2))

        out = layer.forward(x)
        d_x, grads = layer.backward(out - target)
        eps = 1e-6
        for param, grad in zip(layer.params, grads):
            flat = param.ravel()
            flat_grad = grad.ravel()
            for idx in range(0, flat.size, max(1, flat.size // 7)):
                flat[idx] += eps
                up = loss_of()
                flat[idx] -= 2 * eps
                down = loss_of()
                flat[idx] += eps
                numeric = (up - down) / (2 * eps)
                assert flat_grad[idx] == pytest.approx(numeric, abs=1e-4)
        # input gradient too
        x_flat = x.ravel()
        for idx in range(0, x_flat.size, max(1, x_flat.size // 5)):
            x_flat[idx] += eps
            up = loss_of()
            x_flat[idx] -= 2 * eps
            down = loss_of()
            x_flat[idx] += eps
            assert d_x.ravel()[idx] == pytest.approx(
                (up - down) / (2 * eps), abs=1e-4
            )


class TestTagger:
    def test_single_sequence_api(self):
        tagger = LSTMTagger(input_size=3, hidden_size=4, num_layers=2)
        logits = tagger.forward(np.zeros((6, 3)))
        assert logits.shape == (6, 2)

    def test_batched_api(self):
        tagger = LSTMTagger(input_size=3, hidden_size=4, num_layers=1)
        logits = tagger.forward(np.zeros((5, 6, 3)))
        assert logits.shape == (5, 6, 2)

    def test_param_count(self):
        tagger = LSTMTagger(input_size=3, hidden_size=4, num_layers=2)
        assert len(tagger.params) == 2 * 3 + 2  # per-layer (wx, wh, b) + head

    def test_backward_matches_param_order(self):
        tagger = LSTMTagger(input_size=2, hidden_size=3, num_layers=1)
        logits = tagger.forward(np.zeros((2, 4, 2)))
        grads = tagger.backward(np.ones_like(logits))
        assert len(grads) == len(tagger.params)
        for g, p in zip(grads, tagger.params):
            assert g.shape == p.shape


def _persistence_task(n, seed=0, T=8):
    """Label = 1 iff recent counts are high; last step count masked."""
    rng = np.random.default_rng(seed)
    seqs, labs = [], []
    for _ in range(n):
        hot = rng.random() < 0.5
        counts = rng.poisson(4 if hot else 0.3, size=T).astype(float)
        x = np.stack(
            [counts, np.log1p(counts), np.arange(T, 0, -1, dtype=float)], axis=1
        )
        y = (np.ones(T, dtype=int) if hot else np.zeros(T, dtype=int))
        x[-1, :] = [-1.0, -1.0, 0.0]
        seqs.append(x)
        labs.append(y)
    return seqs, labs


class TestSequenceClassifiers:
    def test_lstm_learns_persistence(self):
        seqs, labs = _persistence_task(300, seed=2)
        model = LSTMSequenceClassifier(
            input_size=3, hidden_size=16, num_layers=1, epochs=8, seed=0
        )
        model.fit(seqs[:250], labs[:250])
        true = np.array([l[-1] for l in labs[250:]])
        prf = precision_recall_f1(true, model.predict_last(seqs[250:]))
        assert prf.f1 > 0.9

    def test_lstm_crf_learns_persistence(self):
        seqs, labs = _persistence_task(300, seed=2)
        model = LSTMCRFTagger(
            input_size=3, hidden_size=16, num_layers=1, epochs=8, seed=0
        )
        model.fit(seqs[:250], labs[:250])
        true = np.array([l[-1] for l in labs[250:]])
        prf = precision_recall_f1(true, model.predict_last(seqs[250:]))
        assert prf.f1 > 0.9

    def test_loss_decreases(self):
        seqs, labs = _persistence_task(100)
        model = LSTMSequenceClassifier(
            input_size=3, hidden_size=8, num_layers=1, epochs=5
        )
        model.fit(seqs, labs)
        assert model.loss_history_[-1] < model.loss_history_[0]

    def test_crf_loss_decreases(self):
        seqs, labs = _persistence_task(100)
        model = LSTMCRFTagger(input_size=3, hidden_size=8, num_layers=1, epochs=5)
        model.fit(seqs, labs)
        assert model.loss_history_[-1] < model.loss_history_[0]

    def test_empty_fit_noop(self):
        model = LSTMSequenceClassifier(input_size=3)
        model.fit([], [])
        assert model.predict_last([]).size == 0

    def test_length_mismatch(self):
        model = LSTMSequenceClassifier(input_size=3)
        with pytest.raises(ValueError):
            model.fit([np.zeros((2, 3))], [])

    def test_predict_sequence_shape(self):
        seqs, labs = _persistence_task(30)
        model = LSTMSequenceClassifier(
            input_size=3, hidden_size=8, num_layers=1, epochs=2
        )
        model.fit(seqs, labs)
        out = model.predict_sequence(seqs[0])
        assert out.shape == (8,)
        assert set(np.unique(out)) <= {0, 1}

    def test_deterministic_given_seed(self):
        seqs, labs = _persistence_task(50)
        a = LSTMSequenceClassifier(input_size=3, hidden_size=8, num_layers=1, epochs=2, seed=9)
        b = LSTMSequenceClassifier(input_size=3, hidden_size=8, num_layers=1, epochs=2, seed=9)
        a.fit(seqs, labs)
        b.fit(seqs, labs)
        assert np.array_equal(a.predict_last(seqs), b.predict_last(seqs))
