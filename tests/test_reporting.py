"""Tests for the benchmark-results reporting module."""

import json

import pytest

from repro.reporting import load_results, main, render_report


@pytest.fixture
def results_dir(tmp_path):
    (tmp_path / "fig11_summary.json").write_text(
        json.dumps({"no_cache": {"total_seconds": 45.2}, "score/400GB": {"total_seconds": 0.4}})
    )
    (tmp_path / "fig11_score_100GB.json").write_text(json.dumps({"total_seconds": 12.3}))
    (tmp_path / "table3_summary.json").write_text(
        json.dumps({"rows": {"lr": {"f1": 0.795}}})
    )
    (tmp_path / "misc.json").write_text(json.dumps({"x": [1, 2, 3]}))
    return tmp_path


class TestLoadResults:
    def test_loads_all(self, results_dir):
        results = load_results(results_dir)
        assert set(results) == {
            "fig11_summary",
            "fig11_score_100GB",
            "table3_summary",
            "misc",
        }

    def test_empty_dir(self, tmp_path):
        assert load_results(tmp_path) == {}

    def test_corrupt_file_skipped_with_warning(self, tmp_path, capsys):
        """One corrupt file must not block reporting on healthy ones."""
        (tmp_path / "bad.json").write_text("{not json")
        (tmp_path / "good.json").write_text(json.dumps({"ok": 1}))
        results = load_results(tmp_path)
        assert set(results) == {"good"}
        assert results["good"] == {"ok": 1}
        err = capsys.readouterr().err
        assert "skipping corrupt result file" in err
        assert "bad.json" in err

    def test_all_corrupt_yields_empty(self, tmp_path, capsys):
        (tmp_path / "bad.json").write_text("[truncated")
        assert load_results(tmp_path) == {}
        assert "bad.json" in capsys.readouterr().err


class TestRenderReport:
    def test_sections_present(self, results_dir):
        report = render_report(load_results(results_dir))
        assert "# Benchmark results" in report
        assert "Fig 11" in report
        assert "Table III" in report

    def test_summary_rendered_as_table(self, results_dir):
        report = render_report(load_results(results_dir))
        assert "| no_cache.total_seconds | 45.2 |" in report
        assert "| rows.lr.f1 | 0.795 |" in report

    def test_detail_files_listed_not_expanded(self, results_dir):
        report = render_report(load_results(results_dir))
        assert "`fig11_score_100GB`" in report
        assert "12.3" not in report  # details not expanded

    def test_short_lists_inlined(self, results_dir):
        report = render_report(load_results(results_dir))
        assert "1, 2, 3" in report

    def test_long_lists_summarised(self, tmp_path):
        (tmp_path / "fig2_update_times.json").write_text(
            json.dumps({"histogram": list(range(24))})
        )
        report = render_report(load_results(tmp_path))
        assert "[24 values]" in report


class TestMain:
    def test_renders_directory(self, results_dir, capsys):
        assert main([str(results_dir)]) == 0
        assert "# Benchmark results" in capsys.readouterr().out

    def test_missing_directory(self, tmp_path, capsys):
        assert main([str(tmp_path)]) == 1

    def test_real_results_render(self, capsys):
        """The actual benchmark output directory must render cleanly."""
        from pathlib import Path

        directory = Path(__file__).parent.parent / "benchmarks" / "results"
        if not directory.exists() or not any(directory.glob("*.json")):
            pytest.skip("no benchmark results present")
        assert main([str(directory)]) == 0
