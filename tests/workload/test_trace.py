"""Unit tests for the synthetic trace generator — the published trace
statistics are the contract."""

import numpy as np
import pytest

from repro.workload import PathKey, SyntheticTrace, TraceConfig


@pytest.fixture(scope="module")
def trace() -> SyntheticTrace:
    return SyntheticTrace(TraceConfig(days=45, users=25, tables=15, seed=3))


class TestShape:
    def test_deterministic(self):
        a = SyntheticTrace(TraceConfig(days=10, users=5, tables=4, seed=9))
        b = SyntheticTrace(TraceConfig(days=10, users=5, tables=4, seed=9))
        assert a.queries == b.queries
        assert a.updates == b.updates

    def test_different_seeds_differ(self):
        a = SyntheticTrace(TraceConfig(days=10, users=5, tables=4, seed=1))
        b = SyntheticTrace(TraceConfig(days=10, users=5, tables=4, seed=2))
        assert a.queries != b.queries

    def test_queries_day_ordered(self, trace):
        days = [q.day for q in trace.queries]
        assert days == sorted(days)

    def test_within_day_time_ordered(self, trace):
        for day in (5, 20):
            seconds = [q.seconds for q in trace.queries_on_day(day)]
            assert seconds == sorted(seconds)

    def test_paths_belong_to_universe(self, trace):
        universe = set(trace.path_universe)
        for query in trace.queries[:500]:
            assert set(query.paths) <= universe

    def test_update_one_per_table_per_day(self, trace):
        day0 = [u for u in trace.updates if u.day == 0]
        assert len(day0) == trace.config.tables


class TestPublishedStatistics:
    def test_recurring_fraction_near_82_percent(self, trace):
        # paper §II-D1: 82% of queries are recurring
        assert 0.70 <= trace.recurring_fraction() <= 0.92

    def test_traffic_concentration(self, trace):
        # paper §II-D2: 89% of traffic on 27% of paths; accept the same
        # heavy-skew regime
        assert trace.traffic_concentration(0.27) > 0.6

    def test_updates_peak_midday_rare_midnight(self, trace):
        # paper Fig 2
        hist = trace.update_hour_histogram()
        assert hist[0] + hist[1] < hist[11] + hist[12] + hist[13]
        assert int(np.argmax(hist)) in range(9, 16)

    def test_recurrence_kind_mix(self, trace):
        # The paper's shares are of *query volume*: ~71% daily, ~17% weekly.
        recurring = [q for q in trace.queries if q.recurring]
        daily = sum(1 for q in recurring if q.kind.startswith("daily"))
        weekly = sum(1 for q in recurring if q.kind == "weekly")
        assert daily / len(recurring) > 0.5
        assert 0.05 <= weekly / len(recurring) <= 0.35

    def test_duplicate_parsing_dominates(self, trace):
        from repro.core import JsonPathCollector

        collector = JsonPathCollector()
        collector.ingest_trace(trace)
        # the paper reports 89% of traffic is repetitive; the synthetic
        # trace must at least be majority-redundant
        assert collector.duplicate_parse_fraction() > 0.5


class TestAccessors:
    def test_daily_path_counts_matches_queries(self, trace):
        day = 10
        counts = trace.daily_path_counts(day)
        manual = {}
        for q in trace.queries_on_day(day):
            for p in q.paths:
                manual[p] = manual.get(p, 0) + 1
        assert dict(counts) == manual

    def test_path_count_matrix_shape(self, trace):
        paths, matrix = trace.path_count_matrix()
        assert matrix.shape == (trace.config.days, len(paths))
        assert matrix.sum() == sum(len(q.paths) for q in trace.queries)

    def test_mpjp_labels_threshold(self, trace):
        day = 12
        labels = trace.mpjp_labels(day, threshold=2)
        counts = trace.daily_path_counts(day)
        for key, label in labels.items():
            assert label == int(counts.get(key, 0) >= 2)

    def test_queries_per_path_counts_queries_once(self, trace):
        counts = trace.queries_per_path()
        some_key = trace.queries[0].paths[0]
        manual = sum(1 for q in trace.queries if some_key in q.paths)
        assert counts[some_key] == manual

    def test_weekly_templates_fire_weekly(self, trace):
        weekly = [t for t in trace.templates if t.kind == "weekly"]
        if not weekly:
            pytest.skip("no weekly templates in this seed")
        template = weekly[0]
        fired_days = [
            q.day
            for q in trace.queries
            if q.template_id == template.template_id
        ]
        assert all(d % 7 == template.weekday for d in fired_days)

    def test_burst_templates_respect_phase(self, trace):
        bursty = [t for t in trace.templates if t.burst_period]
        if not bursty:
            pytest.skip("no burst templates in this seed")
        template = bursty[0]
        fired = {
            q.day for q in trace.queries if q.template_id == template.template_id
        }
        for day in fired:
            phase = (day - template.start_day) % (2 * template.burst_period)
            assert phase < template.burst_period

    def test_pathkey_ordering_and_hash(self):
        a = PathKey("db", "t", "c", "$.a")
        b = PathKey("db", "t", "c", "$.b")
        assert a < b
        assert len({a, b, PathKey("db", "t", "c", "$.a")}) == 2
