"""Property tests: trace invariants hold across seeds and scales."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import SyntheticTrace, TraceConfig


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    days=st.integers(min_value=8, max_value=24),
    users=st.integers(min_value=3, max_value=12),
    tables=st.integers(min_value=2, max_value=8),
)
@settings(max_examples=15, deadline=None)
def test_trace_structural_invariants(seed, days, users, tables):
    trace = SyntheticTrace(
        TraceConfig(days=days, users=users, tables=tables, seed=seed)
    )
    universe = set(trace.path_universe)
    assert len(universe) == len(trace.path_universe)  # no duplicates

    last_day = -1
    for query in trace.queries:
        # chronological, in-range, with valid path sets
        assert 0 <= query.day < days
        assert query.day >= last_day
        last_day = query.day
        assert 0 <= query.seconds < 86400
        assert query.paths  # never empty
        assert len(set(query.paths)) == len(query.paths)
        assert set(query.paths) <= universe
        if query.kind == "adhoc":
            assert query.template_id == -1
        else:
            assert query.template_id >= 0

    # exactly one update per table per day
    seen = {(u.day, u.table) for u in trace.updates}
    assert len(seen) == len(trace.updates) == days * tables

    # every weekly firing lands on its template's weekday
    by_id = {t.template_id: t for t in trace.templates}
    for query in trace.queries:
        if query.kind == "weekly":
            assert query.day % 7 == by_id[query.template_id].weekday


@given(seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=10, deadline=None)
def test_trace_statistics_stay_in_published_regime(seed):
    trace = SyntheticTrace(TraceConfig(days=30, users=15, tables=10, seed=seed))
    if not trace.queries:
        return
    # recurring share near the paper's 82% for any seed
    assert 0.6 <= trace.recurring_fraction() <= 0.95
    # popularity always heavy-tailed
    assert trace.traffic_concentration(0.27) >= 0.5


@given(seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=8, deadline=None)
def test_mpjp_labels_consistent_with_counts(seed):
    trace = SyntheticTrace(TraceConfig(days=12, users=8, tables=5, seed=seed))
    day = 6
    counts = trace.daily_path_counts(day)
    labels = trace.mpjp_labels(day)
    for key, label in labels.items():
        assert label == (1 if counts.get(key, 0) >= 2 else 0)
