"""Unit tests for NoBench documents, Table II tables, and the queries."""

import pytest

from repro.jsonlib import JacksonParser
from repro.workload import (
    TABLE_SPECS,
    DocumentFactory,
    NoBenchConfig,
    NoBenchGenerator,
)


class TestNoBench:
    def test_deterministic(self):
        g = NoBenchGenerator()
        assert g.json(5) == NoBenchGenerator().json(5)

    def test_valid_json(self):
        g = NoBenchGenerator()
        parser = JacksonParser()
        for i in range(30):
            parser.parse(g.json(i))

    def test_fixed_attributes_present(self):
        doc = NoBenchGenerator().document(0)
        for key in ("str1", "str2", "num", "bool", "thousandth", "dyn1",
                    "dyn2", "nested_obj", "nested_arr"):
            assert key in doc

    def test_dynamic_typing(self):
        g = NoBenchGenerator()
        assert isinstance(g.document(0)["dyn1"], int)
        assert isinstance(g.document(1)["dyn1"], str)
        assert isinstance(g.document(0)["dyn2"], dict)
        assert isinstance(g.document(1)["dyn2"], int)

    def test_sparse_keys_rotate(self):
        g = NoBenchGenerator()
        keys0 = {k for k in g.document(0) if k.startswith("sparse_")}
        keys1 = {k for k in g.document(1) if k.startswith("sparse_")}
        assert len(keys0) == g.config.sparse_keys_per_doc
        assert keys0 != keys1

    def test_thousandth_cycles(self):
        g = NoBenchGenerator()
        assert g.document(1234)["thousandth"] == 234

    def test_config_respected(self):
        g = NoBenchGenerator(NoBenchConfig(sparse_keys_per_doc=3, nested_arr_length=2))
        doc = g.document(0)
        assert len([k for k in doc if k.startswith("sparse_")]) == 3
        assert len(doc["nested_arr"]) == 2

    def test_json_rows(self):
        rows = list(NoBenchGenerator().json_rows(3, start=10))
        assert [r[0] for r in rows] == [10, 11, 12]


class TestTableSpecs:
    def test_all_ten_present(self):
        assert [s.query_id for s in TABLE_SPECS] == [f"Q{i}" for i in range(1, 11)]

    def test_paper_values(self):
        by_id = {s.query_id: s for s in TABLE_SPECS}
        assert by_id["Q6"].path_count == 29
        assert by_id["Q9"].avg_json_bytes == 21459
        assert by_id["Q4"].nesting_level == 4
        assert by_id["Q2"].selective and by_id["Q9"].selective


@pytest.mark.parametrize("spec", TABLE_SPECS, ids=lambda s: s.query_id)
class TestDocumentFactory:
    def test_property_count(self, spec):
        factory = DocumentFactory(spec)
        doc = factory.document(0)

        def count_scalars(node):
            total = 0
            for key, value in node.items():
                if isinstance(value, dict):
                    total += count_scalars(value)
                else:
                    total += 1
            return total

        assert count_scalars(doc) == spec.property_count

    def test_nesting_level(self, spec):
        factory = DocumentFactory(spec)
        doc = factory.document(0)

        def depth(node):
            if not isinstance(node, dict):
                return 0
            return 1 + max((depth(v) for v in node.values()), default=0)

        assert depth(doc) == spec.nesting_level

    def test_query_path_count(self, spec):
        factory = DocumentFactory(spec)
        assert len(factory.query_paths()) == spec.path_count

    def test_average_size_near_target(self, spec):
        factory = DocumentFactory(spec)
        average = factory.average_size(sample=10)
        assert 0.6 * spec.avg_json_bytes <= average <= 1.25 * spec.avg_json_bytes

    def test_query_paths_resolve(self, spec):
        from repro.jsonlib.jsonpath import evaluate

        factory = DocumentFactory(spec)
        doc = factory.document(3)
        for path in factory.query_paths():
            assert evaluate(path, doc) is not None

    def test_documents_valid_json(self, spec):
        factory = DocumentFactory(spec)
        parser = JacksonParser()
        for i in range(3):
            assert parser.parse(factory.json(i)) == factory.document(i)


class TestQueryBuilders:
    def test_path_footprint_matches_table2(self, session):
        from repro.workload import build_queries, load_tables

        factories = load_tables(session.catalog, rows_per_table=30, days=1)
        queries = build_queries(factories)
        for spec in TABLE_SPECS:
            q = queries[spec.query_id]
            assert len(set(q.paths)) == len(q.paths)
            assert len(q.paths) == spec.path_count, spec.query_id

    def test_queries_compile_and_reference_their_paths(self, session):
        from repro.workload import build_queries, load_tables

        factories = load_tables(session.catalog, rows_per_table=30, days=1)
        queries = build_queries(factories)
        for q in queries.values():
            planned = session.compile(q.sql)
            referenced = {ref[3] for ref in planned.referenced_json_paths}
            assert referenced == set(q.paths), q.query_id

    def test_numeric_category_paths_disjoint(self):
        factory = DocumentFactory(TABLE_SPECS[1])
        numeric = set(factory.numeric_query_paths())
        category = set(factory.category_query_paths())
        assert not numeric & category

    def test_metric_scale_spreads_values(self):
        from repro.jsonlib.jsonpath import evaluate

        spec = TABLE_SPECS[8]  # Q9
        factory = DocumentFactory(spec, metric_scale=100)
        path = factory.numeric_query_paths()[0]
        values = [evaluate(path, factory.document(i)) for i in range(100)]
        assert max(values) > 5000  # spreads across the range
