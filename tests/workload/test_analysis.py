"""Tests for the workload analysis module."""

import pytest

from repro.workload import SyntheticTrace, TraceConfig, analyze, format_report


@pytest.fixture(scope="module")
def report():
    return analyze(SyntheticTrace(TraceConfig(days=35, users=20, tables=12, seed=2)))


class TestAnalyze:
    def test_totals(self, report):
        assert report.total_queries > 0
        assert report.total_paths > 0
        assert report.days == 35

    def test_recurring_near_paper(self, report):
        assert 0.7 <= report.recurring_fraction <= 0.92

    def test_kind_shares_sum_to_one(self, report):
        total = (
            report.daily_fraction_of_recurring
            + report.weekly_fraction_of_recurring
            + report.multiday_window_fraction_of_recurring
        )
        assert abs(total - 1.0) < 1e-9

    def test_weekly_share_near_paper(self, report):
        assert 0.05 <= report.weekly_fraction_of_recurring <= 0.35

    def test_duplicate_fraction_matches_collector(self, report):
        from repro.core import JsonPathCollector

        trace = SyntheticTrace(TraceConfig(days=35, users=20, tables=12, seed=2))
        collector = JsonPathCollector()
        collector.ingest_trace(trace)
        assert report.duplicate_parse_fraction == pytest.approx(
            collector.duplicate_parse_fraction()
        )

    def test_histogram_covers_24_hours(self, report):
        assert len(report.update_histogram) == 24
        assert report.peak_update_hour in range(24)

    def test_paper_deltas_structure(self, report):
        deltas = report.paper_deltas()
        assert "traffic_share_top_27pct" in deltas
        measured, paper = deltas["recurring_fraction"]
        assert paper == 0.82

    def test_format_report_renders(self, report):
        text = format_report(report)
        assert "recurring_fraction" in text
        assert "measured" in text
        assert str(report.days) in text
