"""Repository-level consistency checks."""

from pathlib import Path

import pytest

ROOT = Path(__file__).parent.parent


class TestVersionConsistency:
    def test_pyproject_matches_package(self):
        import repro

        pyproject = (ROOT / "pyproject.toml").read_text()
        assert f'version = "{repro.__version__}"' in pyproject


class TestDocumentationFiles:
    @pytest.mark.parametrize("name", ["README.md", "DESIGN.md", "EXPERIMENTS.md"])
    def test_required_docs_exist(self, name):
        path = ROOT / name
        assert path.exists()
        assert len(path.read_text()) > 1000

    def test_design_covers_every_figure_and_table(self):
        design = (ROOT / "DESIGN.md").read_text().lower()
        for artefact in (
            "fig2", "fig3", "fig4", "tab3", "tab4",
            "fig11", "tab5", "fig12", "fig13", "fig14", "fig15",
        ):
            assert artefact in design, artefact

    def test_experiments_covers_every_figure_and_table(self):
        experiments = (ROOT / "EXPERIMENTS.md").read_text()
        for artefact in (
            "Fig 2", "Fig 3", "Fig 4", "Table III", "Table IV",
            "Fig 11", "Table V", "Fig 12", "Fig 13", "Fig 14", "Fig 15",
        ):
            assert artefact in experiments, artefact


class TestBenchmarkCoverage:
    def test_one_bench_per_artefact(self):
        benches = {p.name for p in (ROOT / "benchmarks").glob("test_*.py")}
        for required in (
            "test_fig2_update_times.py",
            "test_fig3_parse_cost.py",
            "test_fig4_path_popularity.py",
            "test_table3_models.py",
            "test_table4_windows.py",
            "test_fig11_cache_budget.py",
            "test_table5_cached_paths.py",
            "test_fig12_breakdown.py",
            "test_fig13_plan_time.py",
            "test_fig14_online_lru.py",
            "test_fig15_parsers.py",
        ):
            assert required in benches, required


class TestExamples:
    def test_at_least_three_runnable_examples(self):
        examples = list((ROOT / "examples").glob("*.py"))
        assert len(examples) >= 3
        assert (ROOT / "examples" / "quickstart.py").exists()

    def test_examples_have_main_guard_and_docstring(self):
        for path in (ROOT / "examples").glob("*.py"):
            text = path.read_text()
            assert '__name__ == "__main__"' in text, path.name
            assert text.startswith('"""'), path.name
