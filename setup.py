"""Setuptools shim.

Allows legacy editable installs (``pip install -e . --no-use-pep517``) in
offline environments that lack the ``wheel`` package required by PEP 660
editable builds. All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
