"""Ablation: Sparser-style raw prefiltering on a selective query.

Not a figure in the paper's evaluation, but the paper positions Sparser
as the other major approach to parse-cost reduction (filter before you
parse). This bench measures how much a raw-byte prefilter helps a highly
selective equality query, and how the gain compares to Maxson's caching
of the same path.
"""

import pytest

from repro.engine import Session
from repro.engine.rawfilter import SparserPlanModifier
from repro.jsonlib import dumps
from repro.storage import BlockFileSystem, DataType, Schema

from .conftest import once, save_result

ROWS = 4000
SQL = (
    "select id from sp.events "
    "where get_json_object(payload, '$.kind') = 'k117'"
)


@pytest.fixture(scope="module")
def sparser_session() -> Session:
    session = Session(fs=BlockFileSystem())
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("sp", "events", schema)
    rows = []
    for i in range(ROWS):
        doc = {
            "kind": f"k{i % 200}",
            "body": "x" * 300,
            "meta": {"v": i, "flag": i % 2 == 0},
        }
        rows.append((i, dumps(doc)))
    session.catalog.append_rows("sp", "events", rows, row_group_size=500)
    return session


def test_ablation_sparser_prefilter(benchmark, sparser_session):
    plain = sparser_session.sql(SQL)

    modifier = SparserPlanModifier()
    sparser_session.add_plan_modifier(modifier)
    try:
        filtered = once(benchmark, lambda: sparser_session.sql(SQL))
    finally:
        sparser_session.remove_plan_modifier(modifier)

    assert filtered.rows == plain.rows
    payload = {
        "selectivity": len(plain.rows) / ROWS,
        "plain": {
            "seconds": plain.metrics.total_seconds,
            "parse_documents": plain.metrics.parse_documents,
        },
        "sparser": {
            "seconds": filtered.metrics.total_seconds,
            "parse_documents": filtered.metrics.parse_documents,
            "rows_dropped_preparse": filtered.metrics.extra.get(
                "sparser_rows_dropped", 0
            ),
        },
        "claim": "raw prefiltering avoids parsing non-matching records on "
        "highly selective predicates",
    }
    save_result("ablation_sparser", payload)
    assert filtered.metrics.parse_documents < plain.metrics.parse_documents / 5
    assert filtered.metrics.total_seconds < plain.metrics.total_seconds
