"""Overload chaos bench: 2× sustainable QPS with deadlines armed.

Calibrates the server's sustainable throughput on a slow-split (latency
spike) fault profile, then offers the same workload at twice that rate
with a per-request deadline. The acceptance gates — also enforced by the
CI chaos job — are:

* **shed-rate < 50%**: deadline-aware admission sheds the excess load,
  not the majority of it;
* **zero wrong or partial answers**: every completed result matches the
  fault-free baseline bit-for-bit; shed and timed-out requests raise and
  return nothing;
* **p99 of completed queries ≤ deadline + slack**: the deadline actually
  bounds served latency instead of merely annotating it.

The series rolls into ``BENCH_pr7.json``.
"""

from __future__ import annotations

import time

from repro.core import MaxsonConfig, MaxsonSystem, PredictorConfig
from repro.engine import DeadlineExceededError, QueryCancelledError, Session
from repro.faults import FaultPolicy, FaultyFileSystem
from repro.server import AdmissionError, MaxsonServer, ServerConfig
from repro.server.status import percentile
from repro.workload import build_queries, load_tables

from .conftest import once, save_result

DEADLINE_SECONDS = 0.3
#: Unwind allowance on top of the deadline: one injected latency spike
#: (the largest atomic step between cooperative checks) plus scheduler
#: noise on a loaded CI box.
SLACK_SECONDS = 0.5
CALIBRATION_REQUESTS = 32
OVERLOAD_REQUESTS = 64


def build_stack():
    faulty = FaultyFileSystem()
    session = Session(fs=faulty)
    system = MaxsonSystem(
        session=session,
        config=MaxsonConfig(predictor=PredictorConfig(model="always")),
    )
    factories = load_tables(system.catalog, rows_per_table=60, days=2)
    queries = build_queries(factories)
    # Tail-latency chaos: a quarter of reads stall 10ms.
    faulty.policy = FaultPolicy(
        seed=17, latency_spike_rate=0.25, latency_spike_seconds=0.01
    )
    return system, queries


def server_config() -> ServerConfig:
    # Pool wider than the tenant slots so overload actually queues at
    # admission (where deadline-aware shedding lives) instead of hiding
    # in the executor's unbounded backlog.
    return ServerConfig(
        max_workers=16,
        per_tenant_limit=1,
        queue_capacity=6,
        admission_timeout_seconds=1.0,
        retry_backoff_seconds=0.0,
        max_query_retries=8,
    )


def _workload(queries, n):
    ranked = list(queries.values())
    return [ranked[i % len(ranked)] for i in range(n)]


def test_overload_chaos(benchmark):
    system, queries = build_stack()

    def run():
        with MaxsonServer(system, server_config()) as server:
            # ---- calibration: sustainable QPS, no deadlines ----------
            # Sustainable QPS: end-to-end completion rate of a closed
            # burst through the same config. The measurement includes
            # the burst's own queueing, so it reads *conservative* —
            # which is the right bias here: at exactly 2× true capacity
            # the theoretical shed floor is 50%, and the <50% gate
            # would be unfalsifiably on the boundary.
            calibration = _workload(queries, CALIBRATION_REQUESTS)
            started = time.perf_counter()
            futures = [
                server.submit(q.sql, tenant=f"t-{i % 2}")
                for i, q in enumerate(calibration)
            ]
            calibrated = 0
            for future in futures:
                try:
                    future.result()
                    calibrated += 1
                except AdmissionError:
                    pass  # the calibration burst overflowed the queue
            sustainable_qps = max(calibrated, 1) / (
                time.perf_counter() - started
            )

            # ---- overload: 2× sustainable offered rate, deadlines on -
            offered_qps = 2.0 * sustainable_qps
            interarrival = 1.0 / offered_qps
            overload = _workload(queries, OVERLOAD_REQUESTS)
            outcomes = {"completed": 0, "shed": 0, "deadline": 0, "other": 0}
            latencies: list[float] = []
            results: list[tuple[str, object]] = []
            pending = []
            for i, query in enumerate(overload):
                pending.append(
                    (
                        query.sql,
                        server.submit(
                            query.sql,
                            tenant=f"t-{i % 2}",
                            deadline_ms=DEADLINE_SECONDS * 1000,
                        ),
                    )
                )
                time.sleep(interarrival)
            for sql, future in pending:
                try:
                    result = future.result()
                except AdmissionError:
                    outcomes["shed"] += 1
                except DeadlineExceededError:
                    outcomes["deadline"] += 1
                except QueryCancelledError:
                    outcomes["other"] += 1
                else:
                    outcomes["completed"] += 1
                    latencies.append(result.metrics.total_seconds)
                    results.append((sql, result))

            # ---- verification: completed answers are exactly right ---
            baselines: dict[str, list[str]] = {}
            mismatched = 0
            for sql, result in results:
                if sql not in baselines:
                    baselines[sql] = sorted(
                        map(str, server.system.baseline_sql(sql).rows)
                    )
                if sorted(map(str, result.rows)) != baselines[sql]:
                    mismatched += 1
            status = server.status()
        return sustainable_qps, offered_qps, outcomes, latencies, mismatched, status

    sustainable_qps, offered_qps, outcomes, latencies, mismatched, status = (
        once(benchmark, run)
    )

    latencies.sort()
    shed_rate = (outcomes["shed"] + outcomes["deadline"]) / OVERLOAD_REQUESTS
    p99 = percentile(latencies, 0.99)
    payload = {
        "sustainable_qps": sustainable_qps,
        "offered_qps": offered_qps,
        "deadline_seconds": DEADLINE_SECONDS,
        "slack_seconds": SLACK_SECONDS,
        "requests": OVERLOAD_REQUESTS,
        "outcomes": outcomes,
        "shed_rate": shed_rate,
        "completed_p50_seconds": percentile(latencies, 0.50),
        "completed_p99_seconds": p99,
        "mismatched": mismatched,
        "shed_breakdown": dict(status.shed_breakdown),
        "latency_spikes_injected": int(
            system.session.fs.policy.counters.latency_spikes
        ),
        "gates": {
            "shed_rate_lt_50pct": shed_rate < 0.5,
            "zero_wrong_answers": mismatched == 0,
            "p99_within_deadline_plus_slack": p99
            <= DEADLINE_SECONDS + SLACK_SECONDS,
        },
    }
    save_result("overload_chaos", payload)

    # The gates themselves.
    assert mismatched == 0, "an overloaded query returned wrong rows"
    assert shed_rate < 0.5, f"shed rate {shed_rate:.1%} exceeds 50%"
    assert p99 <= DEADLINE_SECONDS + SLACK_SECONDS
    assert outcomes["completed"] > 0
    assert (
        outcomes["completed"]
        + outcomes["shed"]
        + outcomes["deadline"]
        + outcomes["other"]
        == OVERLOAD_REQUESTS
    )
