"""Ablation: predicate pushdown onto the cache table, on vs off.

Isolates the §IV-F optimisation on the two selective queries (Q2, Q9):
with pushdown off, both readers decode every row group; with it on, the
cache reader's SARG eliminates row groups and shares the skip mask with
the primary reader.
"""

import pytest

from .conftest import once, save_result

_rows: dict[str, dict] = {}


@pytest.mark.parametrize("query_id", ["Q2", "Q9"])
def test_ablation_pushdown(benchmark, env, query_id):
    env.cache_with_budget(env.total_candidate_bytes(), "score")
    sql = env.queries[query_id].sql
    modifier = env.system.modifier

    modifier.enable_pushdown = False
    try:
        off = env.system.sql(sql)
    finally:
        modifier.enable_pushdown = True

    on = once(benchmark, lambda: env.system.sql(sql))
    assert sorted(map(str, on.rows)) == sorted(map(str, off.rows))

    entry = {
        "pushdown_off": {
            "bytes_read": off.metrics.bytes_read,
            "row_groups_skipped": off.metrics.row_groups_skipped,
            "seconds": off.metrics.total_seconds,
        },
        "pushdown_on": {
            "bytes_read": on.metrics.bytes_read,
            "row_groups_skipped": on.metrics.row_groups_skipped,
            "seconds": on.metrics.total_seconds,
        },
    }
    _rows[query_id] = entry
    save_result(f"ablation_pushdown_{query_id}", entry)

    assert on.metrics.row_groups_skipped > 0
    assert off.metrics.row_groups_skipped == 0
    assert on.metrics.bytes_read < off.metrics.bytes_read

    if len(_rows) == 2:
        save_result("ablation_pushdown_summary", _rows)
