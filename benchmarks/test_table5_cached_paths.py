"""Table V: number of cached JSONPaths per query under each budget.

The paper reports, per budget (100..400GB), how many of each query's
JSONPaths the scoring function chose to cache, observing that (a) 400GB
fits every MPJP, (b) the function tends to cache *all* of a query's
MPJPs together (the relevance term), and (c) it favours queries with high
acceleration-per-byte (Q10's paths cached already at 100GB).
"""

import pytest

from .conftest import once, save_result

BUDGET_POINTS = {"100GB": 0.25, "200GB": 0.50, "300GB": 0.75, "400GB": 1.00}

_table: dict[str, dict[str, int]] = {}


@pytest.mark.parametrize("point", list(BUDGET_POINTS))
def test_table5_budget(benchmark, env, point):
    budget = int(env.total_candidate_bytes() * BUDGET_POINTS[point])

    report = once(benchmark, lambda: env.cache_with_budget(budget, "score"))
    cached = {sp.key for sp in report.selected}
    row: dict[str, int] = {}
    for query_id, query in env.queries.items():
        from repro.workload import PathKey

        keys = {
            PathKey(query.database, query.table, query.column, path)
            for path in query.paths
        }
        row[query_id] = len(keys & cached)
    _table[point] = row
    save_result(f"table5_{point}", {"budget_bytes": budget, "cached_per_query": row})

    if len(_table) == len(BUDGET_POINTS):
        totals = {
            qid: len(env.queries[qid].paths) for qid in env.queries
        }
        save_result(
            "table5_summary",
            {"cached_per_query": _table, "paths_per_query": totals},
        )
        # 400GB fits everything (the paper's saturation point).
        assert all(
            _table["400GB"][qid] == totals[qid] for qid in totals
        )
        # Budgets are monotone: more budget never caches fewer paths overall.
        order = ["100GB", "200GB", "300GB", "400GB"]
        sums = [sum(_table[p].values()) for p in order]
        assert sums == sorted(sums)
