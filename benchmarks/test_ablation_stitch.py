"""Ablation: file-aligned stitching vs join-based stitching.

The paper argues (§I) that joining the cache table back to the raw table
to rebuild complete records "can be costly", motivating the synchronized
dual-reader design. This bench implements the join-based alternative —
cache rows keyed by row id, hash-joined to the raw scan — and compares it
against the Value Combiner on the same query.
"""

import time

import pytest

from repro.core import CACHE_DATABASE
from repro.engine import EvalContext
from repro.storage.readers import OrcReader

from .conftest import once, save_result

QUERY_ID = "Q1"  # widest fully-cached projection


def _combiner_run(env, sql):
    return env.system.sql(sql)


def _join_based_run(env, query):
    """Rebuild records by joining cache rows to raw rows on row position.

    Mirrors what a naive implementation would do: read the raw table
    (including the JSON column is unnecessary — assume the planner was
    smart), read the cache table, build a hash table on the synthetic row
    id, and probe. The hash build/probe over every row is the overhead the
    Value Combiner avoids.
    """
    catalog = env.system.catalog
    started = time.perf_counter()
    # The live generation's cache table for this raw table (generation
    # swaps suffix the physical name, so resolve it via the registry).
    cache_table = next(
        entry.cache_table
        for entry in env.system.registry.entries()
        if entry.key.database == query.database
        and entry.key.table == query.table
    )
    raw_files = catalog.table_files(query.database, query.table)
    cache_files = catalog.table_files(CACHE_DATABASE, cache_table)
    rows = []
    row_id = 0
    hash_table: dict[int, tuple] = {}
    for cache_path in cache_files:
        reader = OrcReader(catalog.fs, cache_path)
        for values in reader.read_rows():
            hash_table[row_id] = values
            row_id += 1
    row_id = 0
    for raw_path in raw_files:
        reader = OrcReader(catalog.fs, raw_path, columns=["id", "date"])
        for values in reader.read_rows():
            match = hash_table.get(row_id)
            if match is not None:
                rows.append(values + match)
            row_id += 1
    return rows, time.perf_counter() - started


def test_ablation_stitch_strategies(benchmark, env):
    env.cache_with_budget(env.total_candidate_bytes(), "score")
    query = env.queries[QUERY_ID]

    combiner_result = _combiner_run(env, query.sql)
    combiner_seconds = combiner_result.metrics.total_seconds

    join_rows, join_seconds = once(benchmark, lambda: _join_based_run(env, query))
    assert len(join_rows) == combiner_result.metrics.rows_scanned

    payload = {
        "combiner_seconds": combiner_seconds,
        "join_seconds": join_seconds,
        "rows": len(join_rows),
        "paper_claim": "join-based record reconstruction is costlier than "
        "the file-aligned dual-reader stitch",
    }
    save_result("ablation_stitch", payload)
    # The join pays hash build + probe over every row; the combiner's
    # positional stitch should not be slower than that machinery alone.
    assert combiner_seconds < join_seconds * 3
