"""Benchmark package: one module per table/figure of the paper (see
DESIGN.md section 4 for the experiment index)."""
