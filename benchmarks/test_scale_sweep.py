"""Scale sweep: does Maxson's advantage survive growing data volumes?

Not a paper figure, but the obvious threat to external validity of a
laptop-scale reproduction: maybe caching only wins at toy sizes. This
bench loads one representative table (Q2's shape) at increasing row
counts and reports the Maxson speedup at each size; it should be stable
or growing, because both the parse cost avoided and the cache read cost
scale linearly while pushdown savings grow with row-group counts.
"""

import pytest

from repro.core import MaxsonSystem
from repro.engine import Session
from repro.storage import BlockFileSystem
from repro.workload import build_queries, load_tables
from repro.workload.tables import TABLE_SPECS

from .conftest import once, save_result

SIZES = (300, 900, 2700)

_speedups: dict[int, float] = {}


def _build(rows: int):
    session = Session(fs=BlockFileSystem())
    spec = next(s for s in TABLE_SPECS if s.query_id == "Q2")
    factories = load_tables(
        session.catalog,
        rows_per_table=rows,
        days=3,
        row_group_size=100,
        specs=[spec],
    )
    queries = build_queries(factories)
    system = MaxsonSystem(session=session)
    return system, queries["Q2"]


@pytest.mark.parametrize("rows", SIZES)
def test_scale_sweep(benchmark, rows):
    system, query = _build(rows)
    from repro.workload import PathKey

    keys = [
        PathKey(query.database, query.table, query.column, path)
        for path in query.paths
    ]

    def run():
        baseline = system.baseline_sql(query.sql)
        system.cacher.drop_all()
        system.cacher.populate(keys)
        cached = system.sql(query.sql)
        assert sorted(map(str, cached.rows)) == sorted(map(str, baseline.rows))
        return baseline.metrics.total_seconds, cached.metrics.total_seconds

    base_s, cached_s = once(benchmark, run)
    speedup = base_s / max(cached_s, 1e-9)
    _speedups[rows] = speedup
    save_result(
        f"scale_sweep_{rows}",
        {"rows": rows, "baseline_seconds": base_s, "maxson_seconds": cached_s,
         "speedup": speedup},
    )
    assert speedup > 2.0

    if len(_speedups) == len(SIZES):
        save_result("scale_sweep_summary", {"speedups": _speedups})
        # the advantage must not collapse with scale
        assert _speedups[SIZES[-1]] > 0.5 * _speedups[SIZES[0]]
