"""Scale sweep: does Maxson's advantage survive growing data volumes?

Not a paper figure, but the obvious threat to external validity of a
laptop-scale reproduction: maybe caching only wins at toy sizes. This
bench loads one representative table (Q2's shape) at increasing row
counts and reports the Maxson speedup at each size; it should be stable
or growing, because both the parse cost avoided and the cache read cost
scale linearly while pushdown savings grow with row-group counts.
"""

import time

import pytest

from repro.core import MaxsonSystem
from repro.engine import Session
from repro.storage import BlockFileSystem
from repro.workload import build_queries, load_tables
from repro.workload.tables import TABLE_SPECS

from .conftest import once, save_result

SIZES = (300, 900, 2700)

_speedups: dict[int, float] = {}


def _build(rows: int):
    session = Session(fs=BlockFileSystem())
    spec = next(s for s in TABLE_SPECS if s.query_id == "Q2")
    factories = load_tables(
        session.catalog,
        rows_per_table=rows,
        days=3,
        row_group_size=100,
        specs=[spec],
    )
    queries = build_queries(factories)
    system = MaxsonSystem(session=session)
    return system, queries["Q2"]


@pytest.mark.parametrize("rows", SIZES)
def test_scale_sweep(benchmark, rows):
    system, query = _build(rows)
    from repro.workload import PathKey

    keys = [
        PathKey(query.database, query.table, query.column, path)
        for path in query.paths
    ]

    def run():
        baseline = system.baseline_sql(query.sql)
        system.cacher.drop_all()
        system.cacher.populate(keys)
        cached = system.sql(query.sql)
        assert sorted(map(str, cached.rows)) == sorted(map(str, baseline.rows))
        return baseline.metrics.total_seconds, cached.metrics.total_seconds

    base_s, cached_s = once(benchmark, run)
    speedup = base_s / max(cached_s, 1e-9)
    _speedups[rows] = speedup
    save_result(
        f"scale_sweep_{rows}",
        {"rows": rows, "baseline_seconds": base_s, "maxson_seconds": cached_s,
         "speedup": speedup},
    )
    assert speedup > 2.0

    if len(_speedups) == len(SIZES):
        save_result("scale_sweep_summary", {"speedups": _speedups})
        # the advantage must not collapse with scale
        assert _speedups[SIZES[-1]] > 0.5 * _speedups[SIZES[0]]


# ----------------------------------------------------------------------
# PR-5: morsel-driven split parallelism + recurring-query plan cache
# ----------------------------------------------------------------------

#: Per-read latency that makes the simulator I/O-bound the way a real
#: raw-data scan is: with 8 daily splits the serial path pays 8 sleeps
#: back to back while 4 morsel workers overlap them (the sleep happens
#: outside the fs lock, so the GIL does not serialise it).
_SCAN_LATENCY_SECONDS = 0.02
_SCAN_DAYS = 8


def _timed(session, sql):
    start = time.perf_counter()
    result = session.sql(sql)
    return result, time.perf_counter() - start


def test_worker_scale(benchmark):
    """A multi-split scan-heavy query must run >= 2x faster with 4 morsel
    workers than with 1 (the acceptance bar for split parallelism)."""
    session = Session(
        fs=BlockFileSystem(read_latency_seconds=_SCAN_LATENCY_SECONDS)
    )
    spec = next(s for s in TABLE_SPECS if s.query_id == "Q2")
    factories = load_tables(
        session.catalog,
        rows_per_table=64,
        days=_SCAN_DAYS,
        row_group_size=32,
        specs=[spec],
    )
    query = build_queries(factories)["Q2"]

    def run():
        session.scan_workers = 1
        session.sql(query.sql)  # warm the plan cache + page the files
        serial_result, serial_s = _timed(session, query.sql)
        session.scan_workers = 4
        session.sql(query.sql)
        parallel_result, parallel_s = _timed(session, query.sql)
        assert serial_result.rows == parallel_result.rows
        return serial_s, parallel_s

    serial_s, parallel_s = once(benchmark, run)
    speedup = serial_s / max(parallel_s, 1e-9)
    save_result(
        "worker_scale",
        {
            "splits": _SCAN_DAYS,
            "read_latency_seconds": _SCAN_LATENCY_SECONDS,
            "serial_seconds": serial_s,
            "parallel_seconds": parallel_s,
            "scan_workers": 4,
            "speedup": speedup,
        },
    )
    assert speedup >= 2.0


def test_worker_scale_process(benchmark):
    """The process backend must clear the same >= 2x bar over serial on
    the same multi-split scan: workers sleep on reads in separate
    processes, so split overlap survives without thread-level tricks."""
    session = Session(
        fs=BlockFileSystem(read_latency_seconds=_SCAN_LATENCY_SECONDS)
    )
    session.worker_backend = "process"
    spec = next(s for s in TABLE_SPECS if s.query_id == "Q2")
    factories = load_tables(
        session.catalog,
        rows_per_table=64,
        days=_SCAN_DAYS,
        row_group_size=32,
        specs=[spec],
    )
    query = build_queries(factories)["Q2"]

    def run():
        session.scan_workers = 1
        session.sql(query.sql)  # warm the plan cache + page the files
        serial_result, serial_s = _timed(session, query.sql)
        session.scan_workers = 4
        session.sql(query.sql)  # spawn + snapshot the pool, untimed
        parallel_result, parallel_s = _timed(session, query.sql)
        assert serial_result.rows == parallel_result.rows
        return serial_s, parallel_s

    try:
        serial_s, parallel_s = once(benchmark, run)
    finally:
        session.close_worker_pools()
    speedup = serial_s / max(parallel_s, 1e-9)
    save_result(
        "worker_scale_process",
        {
            "splits": _SCAN_DAYS,
            "read_latency_seconds": _SCAN_LATENCY_SECONDS,
            "serial_seconds": serial_s,
            "parallel_seconds": parallel_s,
            "scan_workers": 4,
            "worker_backend": "process",
            "speedup": speedup,
        },
    )
    assert speedup >= 2.0


def test_plan_cache_replay(benchmark):
    """A replayed recurring trace must hit the plan cache (>0 hit rate),
    and hits must skip recompilation entirely."""
    session = Session(fs=BlockFileSystem())
    specs = [s for s in TABLE_SPECS if s.query_id in ("Q1", "Q2", "Q9")]
    factories = load_tables(
        session.catalog, rows_per_table=60, days=3, specs=specs
    )
    queries = build_queries(factories)
    trace = [q.sql for q in queries.values()] * 5  # each query recurs 5x

    def run():
        for sql in trace:
            session.sql(sql)
        return session.plan_cache_stats()

    stats = once(benchmark, run)
    lookups = stats["hits"] + stats["misses"]
    hit_rate = stats["hits"] / max(lookups, 1)
    save_result(
        "plan_cache_replay",
        {
            "queries": len(trace),
            "distinct": len(queries),
            "hits": stats["hits"],
            "misses": stats["misses"],
            "hit_rate": hit_rate,
        },
    )
    assert stats["hits"] > 0
    assert hit_rate > 0.0
    # every distinct statement compiles once; every recurrence hits
    assert stats["misses"] == len(queries)
