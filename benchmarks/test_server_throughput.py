"""Server throughput: queries/sec and latency percentiles vs concurrency.

Drives the concurrent :class:`~repro.server.MaxsonServer` with the ten
Table II queries at client concurrency 1, 4 and 8 over a warmed cache
(the steady state between midnight cycles) and records queries/sec plus
p50/p95 latency per level. The paper's deployment serves "hundreds of
machines"; this regenerates the single-process shape of that curve —
throughput should rise with concurrency until the engine saturates.
"""

from __future__ import annotations

import time

from repro.server import MaxsonServer, ServerConfig
from repro.server.status import percentile

from .conftest import once, save_bench_pr3, save_result

CONCURRENCY_LEVELS = (1, 4, 8)
REQUESTS_PER_LEVEL = 48


def _run_level(env, concurrency: int) -> dict[str, float]:
    server = MaxsonServer(
        env.system,
        ServerConfig(
            max_workers=concurrency,
            per_tenant_limit=concurrency,
            queue_capacity=4 * REQUESTS_PER_LEVEL,
            admission_timeout_seconds=120.0,
        ),
    )
    queries = list(env.queries.values())
    started = time.perf_counter()
    futures = [
        server.submit(
            queries[i % len(queries)].sql, tenant=f"tenant-{i % 4}"
        )
        for i in range(REQUESTS_PER_LEVEL)
    ]
    latencies = []
    parse_documents = 0
    for future in futures:
        result = future.result()
        latencies.append(result.metrics.total_seconds)
        parse_documents += result.metrics.parse_documents
    wall = time.perf_counter() - started
    server.shutdown()
    latencies.sort()
    return {
        "concurrency": concurrency,
        "requests": REQUESTS_PER_LEVEL,
        "wall_seconds": wall,
        "qps": REQUESTS_PER_LEVEL / wall,
        "p50_seconds": percentile(latencies, 0.50),
        "p95_seconds": percentile(latencies, 0.95),
        "max_seconds": latencies[-1],
        "parse_documents": parse_documents,
        "execution_mode": env.system.session.execution_mode,
    }


def test_server_throughput(benchmark, env):
    env.cache_with_budget(env.total_candidate_bytes(), "score")

    def run_all_levels():
        batch_levels = [_run_level(env, c) for c in CONCURRENCY_LEVELS]
        # Same workload through the row interpreter at peak concurrency:
        # the apples-to-apples denominator for the batch engine's gain.
        env.system.session.execution_mode = "row"
        try:
            row_level = _run_level(env, CONCURRENCY_LEVELS[-1])
        finally:
            env.system.session.execution_mode = "batch"
        return batch_levels, row_level

    levels, row_level = once(benchmark, run_all_levels)
    payload = {
        "levels": levels,
        "row_engine": row_level,
        "speedup_vs_row": levels[-1]["qps"] / row_level["qps"],
        "paper_claim": "Maxson serves concurrent clients from shared "
        "cache tables; throughput scales with client concurrency until "
        "the engine saturates",
    }
    save_result("server_throughput", payload)
    save_bench_pr3(
        "server_throughput",
        {
            "batch_qps_by_concurrency": {
                str(level["concurrency"]): level["qps"] for level in levels
            },
            "batch_parse_documents": levels[-1]["parse_documents"],
            "row_engine_qps": row_level["qps"],
            "row_parse_documents": row_level["parse_documents"],
            "speedup_vs_row": payload["speedup_vs_row"],
        },
    )
    for level in levels:
        assert level["qps"] > 0
        assert level["p95_seconds"] >= level["p50_seconds"]
    # concurrency must help at least somewhat over serial dispatch
    serial = levels[0]["qps"]
    best = max(level["qps"] for level in levels[1:])
    assert best > serial * 0.8
