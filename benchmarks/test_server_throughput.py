"""Server throughput: queries/sec and latency percentiles vs concurrency.

Drives the concurrent :class:`~repro.server.MaxsonServer` with the ten
Table II queries at client concurrency 1, 4 and 8 over a warmed cache
(the steady state between midnight cycles) and records queries/sec plus
p50/p95 latency per level. The paper's deployment serves "hundreds of
machines"; this regenerates the single-process shape of that curve —
throughput should rise with concurrency until the engine saturates.
"""

from __future__ import annotations

import time

from repro.core import MaxsonConfig, MaxsonSystem, PredictorConfig
from repro.engine import Session
from repro.server import MaxsonServer, ServerConfig
from repro.server.status import percentile
from repro.storage import BlockFileSystem
from repro.workload import build_queries, load_tables
from repro.workload.tables import TABLE_SPECS

from .conftest import once, save_bench_pr3, save_bench_pr8, save_result

CONCURRENCY_LEVELS = (1, 4, 8)
REQUESTS_PER_LEVEL = 48


def _run_level(env, concurrency: int) -> dict[str, float]:
    server = MaxsonServer(
        env.system,
        ServerConfig(
            max_workers=concurrency,
            per_tenant_limit=concurrency,
            queue_capacity=4 * REQUESTS_PER_LEVEL,
            admission_timeout_seconds=120.0,
        ),
    )
    queries = list(env.queries.values())
    started = time.perf_counter()
    futures = [
        server.submit(
            queries[i % len(queries)].sql, tenant=f"tenant-{i % 4}"
        )
        for i in range(REQUESTS_PER_LEVEL)
    ]
    latencies = []
    parse_documents = 0
    for future in futures:
        result = future.result()
        latencies.append(result.metrics.total_seconds)
        parse_documents += result.metrics.parse_documents
    wall = time.perf_counter() - started
    server.shutdown()
    latencies.sort()
    return {
        "concurrency": concurrency,
        "requests": REQUESTS_PER_LEVEL,
        "wall_seconds": wall,
        "qps": REQUESTS_PER_LEVEL / wall,
        "p50_seconds": percentile(latencies, 0.50),
        "p95_seconds": percentile(latencies, 0.95),
        "max_seconds": latencies[-1],
        "parse_documents": parse_documents,
        "execution_mode": env.system.session.execution_mode,
    }


def test_server_throughput(benchmark, env):
    env.cache_with_budget(env.total_candidate_bytes(), "score")

    def run_all_levels():
        batch_levels = [_run_level(env, c) for c in CONCURRENCY_LEVELS]
        # Same workload through the row interpreter at peak concurrency:
        # the apples-to-apples denominator for the batch engine's gain.
        env.system.session.execution_mode = "row"
        try:
            row_level = _run_level(env, CONCURRENCY_LEVELS[-1])
        finally:
            env.system.session.execution_mode = "batch"
        return batch_levels, row_level

    levels, row_level = once(benchmark, run_all_levels)
    payload = {
        "levels": levels,
        "row_engine": row_level,
        "speedup_vs_row": levels[-1]["qps"] / row_level["qps"],
        "paper_claim": "Maxson serves concurrent clients from shared "
        "cache tables; throughput scales with client concurrency until "
        "the engine saturates",
    }
    save_result("server_throughput", payload)
    save_bench_pr3(
        "server_throughput",
        {
            "batch_qps_by_concurrency": {
                str(level["concurrency"]): level["qps"] for level in levels
            },
            "batch_parse_documents": levels[-1]["parse_documents"],
            "row_engine_qps": row_level["qps"],
            "row_parse_documents": row_level["parse_documents"],
            "speedup_vs_row": payload["speedup_vs_row"],
        },
    )
    for level in levels:
        assert level["qps"] > 0
        assert level["p95_seconds"] >= level["p50_seconds"]
    # concurrency must help at least somewhat over serial dispatch
    serial = levels[0]["qps"]
    best = max(level["qps"] for level in levels[1:])
    assert best > serial * 0.8


# ---------------------------------------------------------------------------
# Backend x concurrency sweep: the thread pool vs the process pool.
#
# The shared ``env`` workload is CPU-bound JSON parsing, which a single
# CPU cannot scale no matter the backend; what the process backend buys
# is overlap of *stall time* (I/O waits) across splits while the
# coordinator keeps planning and merging. A ``BlockFileSystem`` read
# latency models that stall: each of the query's two daily splits
# sleeps on its reads inside a worker, so queries pipeline through the
# pool and throughput keeps climbing from concurrency 1 to 8.

SWEEP_BACKENDS = ("thread", "process")
SWEEP_LEVELS = (1, 4, 8)
SWEEP_REQUESTS = 24
SWEEP_POOL_WORKERS = 12
SWEEP_READ_LATENCY = 0.03
SWEEP_DAYS = 2


def _build_sweep_system(backend: str):
    """A one-table Q2 system over a latency-armed filesystem."""
    session = Session(
        fs=BlockFileSystem(read_latency_seconds=SWEEP_READ_LATENCY)
    )
    spec = next(s for s in TABLE_SPECS if s.query_id == "Q2")
    factories = load_tables(
        session.catalog,
        rows_per_table=64,
        days=SWEEP_DAYS,
        row_group_size=32,
        specs=[spec],
    )
    queries = build_queries(factories)
    system = MaxsonSystem(
        session=session,
        config=MaxsonConfig(
            predictor=PredictorConfig(model="oracle"),
            scan_workers=SWEEP_POOL_WORKERS,
            worker_backend=backend,
        ),
    )
    return system, queries["Q2"].sql


def _sweep_backend(backend: str) -> dict[str, dict]:
    system, sql = _build_sweep_system(backend)
    # Warm outside the timed region: spawning SWEEP_POOL_WORKERS
    # processes and shipping each its catalog snapshot is a one-time
    # cost; one query per worker rotates the whole pool warm.
    for _ in range(SWEEP_POOL_WORKERS):
        system.session.sql(sql)
    levels: dict[str, dict] = {}
    servers = []
    try:
        for concurrency in SWEEP_LEVELS:
            server = MaxsonServer(
                system,
                ServerConfig(
                    max_workers=concurrency,
                    per_tenant_limit=concurrency,
                    queue_capacity=4 * SWEEP_REQUESTS,
                    admission_timeout_seconds=120.0,
                ),
            )
            # Shutdown is deferred to the end of the sweep: it closes
            # the session's worker pools, and paying a pool respawn
            # inside the next level's timed region would be unfair.
            servers.append(server)
            started = time.perf_counter()
            futures = [
                server.submit(sql, tenant=f"tenant-{i % 4}")
                for i in range(SWEEP_REQUESTS)
            ]
            latencies = sorted(
                f.result().metrics.total_seconds for f in futures
            )
            wall = time.perf_counter() - started
            levels[str(concurrency)] = {
                "qps": SWEEP_REQUESTS / wall,
                "p50_seconds": percentile(latencies, 0.50),
                "p95_seconds": percentile(latencies, 0.95),
            }
    finally:
        for server in servers:
            server.shutdown()
    return levels


def test_backend_concurrency_sweep(benchmark):
    def run_sweep():
        return {backend: _sweep_backend(backend) for backend in SWEEP_BACKENDS}

    sweep = once(benchmark, run_sweep)
    proc = sweep["process"]
    payload = {
        "read_latency_seconds": SWEEP_READ_LATENCY,
        "pool_workers": SWEEP_POOL_WORKERS,
        "splits_per_query": SWEEP_DAYS,
        "requests_per_level": SWEEP_REQUESTS,
        "qps": {
            backend: {c: round(lv["qps"], 2) for c, lv in levels.items()}
            for backend, levels in sweep.items()
        },
        "levels": sweep,
        "process_scaling_8_vs_1": proc["8"]["qps"] / proc["1"]["qps"],
        "process_scaling_8_vs_4": proc["8"]["qps"] / proc["4"]["qps"],
        "paper_claim": "the serving tier scales with client concurrency; "
        "the process backend must keep that property without the GIL's "
        "help on CPU-bound coordinators",
    }
    save_result("backend_concurrency_sweep", payload)
    save_bench_pr8("backend_concurrency_sweep_gate", {
        "process_qps_by_concurrency": payload["qps"]["process"],
        "thread_qps_by_concurrency": payload["qps"]["thread"],
        "process_scaling_8_vs_1": payload["process_scaling_8_vs_1"],
        "process_scaling_8_vs_4": payload["process_scaling_8_vs_4"],
        "gate": "process@8 >= 1.5x process@1 and process@8 > process@4",
    })
    # The PR gate: the process backend keeps scaling up to concurrency 8.
    assert proc["8"]["qps"] >= 1.5 * proc["1"]["qps"]
    assert proc["8"]["qps"] > proc["4"]["qps"]
