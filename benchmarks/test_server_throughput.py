"""Server throughput: queries/sec and latency percentiles vs concurrency.

Drives the concurrent :class:`~repro.server.MaxsonServer` with the ten
Table II queries at client concurrency 1, 4 and 8 over a warmed cache
(the steady state between midnight cycles) and records queries/sec plus
p50/p95 latency per level. The paper's deployment serves "hundreds of
machines"; this regenerates the single-process shape of that curve —
throughput should rise with concurrency until the engine saturates.
"""

from __future__ import annotations

import time

from repro.server import MaxsonServer, ServerConfig
from repro.server.status import percentile

from .conftest import once, save_result

CONCURRENCY_LEVELS = (1, 4, 8)
REQUESTS_PER_LEVEL = 48


def _run_level(env, concurrency: int) -> dict[str, float]:
    server = MaxsonServer(
        env.system,
        ServerConfig(
            max_workers=concurrency,
            per_tenant_limit=concurrency,
            queue_capacity=4 * REQUESTS_PER_LEVEL,
            admission_timeout_seconds=120.0,
        ),
    )
    queries = list(env.queries.values())
    started = time.perf_counter()
    futures = [
        server.submit(
            queries[i % len(queries)].sql, tenant=f"tenant-{i % 4}"
        )
        for i in range(REQUESTS_PER_LEVEL)
    ]
    latencies = []
    for future in futures:
        result = future.result()
        latencies.append(result.metrics.total_seconds)
    wall = time.perf_counter() - started
    server.shutdown()
    latencies.sort()
    return {
        "concurrency": concurrency,
        "requests": REQUESTS_PER_LEVEL,
        "wall_seconds": wall,
        "qps": REQUESTS_PER_LEVEL / wall,
        "p50_seconds": percentile(latencies, 0.50),
        "p95_seconds": percentile(latencies, 0.95),
        "max_seconds": latencies[-1],
    }


def test_server_throughput(benchmark, env):
    env.cache_with_budget(env.total_candidate_bytes(), "score")

    def run_all_levels():
        return [_run_level(env, c) for c in CONCURRENCY_LEVELS]

    levels = once(benchmark, run_all_levels)
    payload = {
        "levels": levels,
        "paper_claim": "Maxson serves concurrent clients from shared "
        "cache tables; throughput scales with client concurrency until "
        "the engine saturates",
    }
    save_result("server_throughput", payload)
    for level in levels:
        assert level["qps"] > 0
        assert level["p95_seconds"] >= level["p50_seconds"]
    # concurrency must help at least somewhat over serial dispatch
    serial = levels[0]["qps"]
    best = max(level["qps"] for level in levels[1:])
    assert best > serial * 0.8
