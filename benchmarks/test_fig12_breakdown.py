"""Fig 12: Q2 and Q9 time breakdown (read/parse/compute) and input size.

The paper breaks the two predicate-pushdown queries into Read, Parse and
Compute and shows (a) Maxson eliminates the Parse bar entirely, and
(b) Maxson's input size is far smaller than Spark's because the JSON
predicates are pushed down onto the cache table's row groups.
"""

import pytest

from .conftest import once, save_result

_rows: dict[str, dict] = {}


@pytest.mark.parametrize("query_id", ["Q2", "Q9"])
def test_fig12_breakdown(benchmark, env, query_id):
    sql = env.queries[query_id].sql
    env.drop_cache()
    baseline = env.system.baseline_sql(sql)
    env.cache_with_budget(env.total_candidate_bytes(), "score")

    result = once(benchmark, lambda: env.system.sql(sql))
    assert sorted(map(str, result.rows)) == sorted(map(str, baseline.rows))
    entry = {
        "spark": {
            "breakdown": baseline.metrics.breakdown(),
            "input_bytes": baseline.metrics.bytes_read,
            "parse_documents": baseline.metrics.parse_documents,
        },
        "maxson": {
            "breakdown": result.metrics.breakdown(),
            "input_bytes": result.metrics.bytes_read,
            "parse_documents": result.metrics.parse_documents,
            "row_groups_skipped": result.metrics.row_groups_skipped,
            "row_groups_total": result.metrics.row_groups_total,
        },
    }
    _rows[query_id] = entry
    save_result(f"fig12_{query_id}", entry)

    # Shape: no parsing at all under Maxson; much smaller input.
    assert result.metrics.parse_documents == 0
    assert result.metrics.parse_seconds == 0.0
    assert result.metrics.bytes_read < baseline.metrics.bytes_read / 5
    assert result.metrics.row_groups_skipped > 0

    if len(_rows) == 2:
        save_result(
            "fig12_summary",
            {
                **_rows,
                "paper_claims": [
                    "Maxson eliminates the Parse component",
                    "predicate pushdown shrinks Maxson's input size",
                ],
            },
        )
