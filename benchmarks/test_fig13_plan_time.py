"""Fig 13: physical-plan generation time, SparkSQL vs Maxson.

The paper measures the overhead the MaxsonParser adds to plan generation
(on average ~0.4s on a JVM cluster) and observes it grows with the number
of JSONPaths in the query but stays negligible vs execution time. This
bench times planning (parse + plan + Maxson rewrite) per query for both
engines.
"""

import time

import pytest

from .conftest import once, save_result

_rows: dict[str, dict] = {}


def _plan_seconds(env, sql: str, with_maxson: bool, repeats: int = 20) -> float:
    session = env.system.session
    modifier = env.system.modifier
    if not with_maxson:
        session.remove_plan_modifier(modifier)
    try:
        started = time.perf_counter()
        for _ in range(repeats):
            planned, state, _ = session._prepare(sql)
        return (time.perf_counter() - started) / repeats
    finally:
        if not with_maxson:
            session.add_plan_modifier(modifier)


@pytest.mark.parametrize("query_id", [f"Q{i}" for i in range(1, 11)])
def test_fig13_plan_generation(benchmark, env, query_id):
    env.cache_with_budget(env.total_candidate_bytes(), "score")
    sql = env.queries[query_id].sql

    spark_seconds = _plan_seconds(env, sql, with_maxson=False)
    maxson_seconds = once(
        benchmark, lambda: _plan_seconds(env, sql, with_maxson=True)
    )
    exec_seconds = env.system.sql(sql).metrics.total_seconds
    entry = {
        "paths_in_query": len(env.queries[query_id].paths),
        "spark_plan_seconds": spark_seconds,
        "maxson_plan_seconds": maxson_seconds,
        "overhead_seconds": maxson_seconds - spark_seconds,
        "execution_seconds": exec_seconds,
    }
    _rows[query_id] = entry
    save_result(f"fig13_{query_id}", entry)

    if len(_rows) == 10:
        save_result(
            "fig13_summary",
            {
                **_rows,
                "paper_claims": [
                    "Maxson planning slightly slower than SparkSQL",
                    "overhead grows with the query's JSONPath count",
                    "overhead negligible vs job execution time",
                ],
            },
        )
        # Overhead should be small relative to execution for the heavy
        # queries (the paper's point).
        heavy = max(_rows.values(), key=lambda r: r["execution_seconds"])
        assert heavy["overhead_seconds"] < heavy["execution_seconds"]
