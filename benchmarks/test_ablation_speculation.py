"""Ablation: Pikkr-style speculative parsing, stable vs varying schema.

Fig 15's discussion hinges on Mison's behaviour depending on schema
stability: "especially in Q6 where the JSON pattern has little change"
it excels, while datasets "when the JSON schema varies significantly"
erode the advantage. This bench isolates the mechanism: projection cost
with speculation on vs off, over a schema-stable stream (all documents
identical shape) and a schema-varying stream (field widths and presence
shuffle per document).
"""

import random
import time

import pytest

from repro.jsonlib import JacksonParser, MisonParser, dumps

from .conftest import once, save_result

DOCS = 1500
PATHS = ["$.a", "$.metrics.latency", "$.tag"]


def stable_docs():
    return [
        dumps({"a": 1000 + i % 10, "metrics": {"latency": 5, "qps": 7},
               "tag": "t0", "pad": "x" * 40})
        for i in range(DOCS)
    ]


def varying_docs():
    rng = random.Random(5)
    out = []
    for i in range(DOCS):
        doc = {"a": rng.randint(0, 10 ** rng.randint(1, 8))}
        if rng.random() < 0.7:
            doc["extra"] = "y" * rng.randint(1, 60)
        doc["metrics"] = {"latency": rng.randint(0, 999)}
        if rng.random() < 0.5:
            doc["metrics"]["qps"] = rng.randint(0, 99)
        doc["tag"] = f"t{rng.randint(0, 9)}"
        out.append(dumps(doc))
    return out


def _project_all(parser, docs):
    started = time.perf_counter()
    for doc in docs:
        parser.project(doc, PATHS)
    return time.perf_counter() - started


def _jackson_all(docs):
    from repro.jsonlib.jsonpath import evaluate

    parser = JacksonParser()
    started = time.perf_counter()
    for doc in docs:
        document = parser.parse(doc)
        for path in PATHS:
            evaluate(path, document)
    return time.perf_counter() - started


@pytest.mark.parametrize("schema", ["stable", "varying"])
def test_ablation_speculation(benchmark, schema):
    docs = stable_docs() if schema == "stable" else varying_docs()

    def run():
        speculative = MisonParser(speculative=True)
        plain = MisonParser(speculative=False)
        spec_seconds = _project_all(speculative, docs)
        plain_seconds = _project_all(plain, docs)
        jackson_seconds = _jackson_all(docs)
        return speculative, spec_seconds, plain_seconds, jackson_seconds

    speculative, spec_s, plain_s, jackson_s = once(benchmark, run)
    hits = speculative.speculation_hits
    misses = speculative.speculation_misses
    payload = {
        "schema": schema,
        "speculative_seconds": spec_s,
        "structural_index_seconds": plain_s,
        "jackson_seconds": jackson_s,
        "speculation_hit_rate": hits / max(hits + misses, 1),
        "claim": "speculation collapses projection cost on schema-stable "
        "data; varying schemas fall back to the structural scan",
    }
    save_result(f"ablation_speculation_{schema}", payload)
    # NOTE: with small documents and several paths per call, the pure-
    # Python structural scan does not beat a full parse (it does at the
    # Fig 15 document sizes); the speculation claim is about the *hit*
    # fast path, which skips both.
    if schema == "stable":
        assert payload["speculation_hit_rate"] > 0.9
        assert spec_s < plain_s  # hits skip the structural scan
        assert spec_s < jackson_s  # and beat full parsing outright
    else:
        # varying schema: hit rate collapses; correctness maintained by
        # the structural-index fallback (asserted in unit tests).
        assert payload["speculation_hit_rate"] < 0.9
        assert spec_s < plain_s * 1.5  # fallback keeps overhead bounded
