"""Observability overhead: tracing off must cost (near) nothing.

The obs design makes the disabled path *structurally* identical to the
pre-observability engine: instrumentation is a plan rewrite applied only
when a query carries a tracer, so an untraced query executes the exact
operator objects PR 3 shipped. This bench pins that contract three ways:

1. structurally — an untraced plan contains no ``TracedExec`` wrapper
   and the result carries no trace;
2. by measurement — two interleaved best-of-N runs of the same untraced
   workload agree within the 3% budget the acceptance criterion allows
   (the untraced path *is* the baseline, so any gap is pure noise);
3. by regression — the PR 3 acceptance numbers still hold with the obs
   code present: one parse per row on the batch path and a >= 2x
   end-to-end speedup over the row interpreter.

It also measures (and records, without gating) what tracing costs when
it is *on*.
"""

from __future__ import annotations

import time

import pytest

from repro.engine import Session
from repro.jsonlib import dumps
from repro.obs import Tracer
from repro.obs.instrument import TracedExec
from repro.storage import BlockFileSystem, DataType, Schema

from .conftest import once, save_result

N_ROWS = 2000
PATHS = ("$.item_id", "$.item_name", "$.sale_count", "$.turnover", "$.price")
SQL = (
    "select "
    + ", ".join(
        f"get_json_object(logs, '{path}') as c{i}"
        for i, path in enumerate(PATHS)
    )
    + " from db.events"
)
REPEATS = 7
OVERHEAD_BUDGET = 1.03  # the acceptance criterion's < 3%


def build_session() -> Session:
    session = Session(fs=BlockFileSystem())
    schema = Schema.of(("id", DataType.INT64), ("logs", DataType.STRING))
    session.catalog.create_table("db", "events", schema)
    rows = [
        (
            i,
            dumps(
                {
                    "item_id": i % 97,
                    "item_name": f"item-{i}",
                    "sale_count": (i * 3) % 100,
                    "turnover": (i * 7) % 10_000,
                    "price": (i % 50) + 1,
                    "detail": {"k": i, "pad": "x" * 80},
                }
            ),
        )
        for i in range(N_ROWS)
    ]
    session.catalog.append_rows("db", "events", rows, row_group_size=200)
    return session


def best_of(session: Session, repeats: int = REPEATS, tracer_factory=None):
    """Best wall seconds over ``repeats`` runs of the bench query."""
    best = float("inf")
    for _ in range(repeats):
        tracer = tracer_factory() if tracer_factory is not None else None
        started = time.perf_counter()
        result = session.sql(SQL, tracer=tracer)
        best = min(best, time.perf_counter() - started)
        assert len(result.rows) == N_ROWS
    return best


def interleaved_aa(session: Session, repeats: int = REPEATS):
    """Best-of-N for two *interleaved* A/A series, so clock drift and
    cache warming hit both sides equally instead of biasing one."""
    best = [float("inf"), float("inf")]
    for i in range(2 * repeats):
        started = time.perf_counter()
        result = session.sql(SQL)
        best[i % 2] = min(best[i % 2], time.perf_counter() - started)
        assert len(result.rows) == N_ROWS
    return best


def test_tracing_off_is_structurally_free():
    session = build_session()
    planned, _state, _mode = session._prepare(SQL)
    nodes = [planned.physical]
    seen = []
    while nodes:
        node = nodes.pop()
        seen.append(node)
        nodes.extend(node.children())
    assert not any(isinstance(node, TracedExec) for node in seen)
    assert session.sql(SQL).trace is None


def test_tracing_off_overhead(benchmark):
    session = build_session()
    best_of(session, repeats=2)  # warm the page cache / code paths

    first, second = once(benchmark, lambda: interleaved_aa(session))
    traced = best_of(session, tracer_factory=Tracer)

    aa_ratio = max(first, second) / min(first, second)
    traced_ratio = traced / min(first, second)
    payload = {
        "untraced_best_seconds_a": first,
        "untraced_best_seconds_b": second,
        "aa_noise_ratio": aa_ratio,
        "traced_best_seconds": traced,
        "tracing_on_overhead_ratio": traced_ratio,
        "overhead_budget": OVERHEAD_BUDGET,
        "contract": (
            "untraced plans contain no instrumentation nodes, so the "
            "disabled path is the PR 3 execution path; the A/A ratio "
            "bounds measurement noise inside the 3% budget"
        ),
    }
    save_result("obs_overhead_summary", payload)
    assert aa_ratio <= OVERHEAD_BUDGET, payload
    # Tracing *on* is allowed to cost something, but a blowup here means
    # the per-operator snapshots regressed badly.
    assert traced_ratio <= 2.0, payload


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_system_tables_overhead(benchmark, backend):
    """The telemetry store enabled (traced off) must cost < 3% per query.

    One server, system tables on, same untraced workload — interleaved
    A/B where B detaches the store between iterations, so every query
    pays identical admission/caching/scan costs and the only delta is
    the per-outcome NDJSON append. The result cache is disabled so the
    repeat queries do real work; a cached hit would shrink the
    denominator to microseconds and gate on noise.
    """
    from repro.core import MaxsonConfig, MaxsonSystem, PredictorConfig
    from repro.server import MaxsonServer, ServerConfig

    session = build_session()
    session.scan_workers = 2
    session.worker_backend = backend
    system = MaxsonSystem(
        session=session,
        config=MaxsonConfig(predictor=PredictorConfig(model="always")),
    )
    config = ServerConfig(
        max_workers=2, system_tables=True, result_cache=False
    )
    server = MaxsonServer(system, config)
    try:
        store = server.telemetry
        assert store is not None
        for _ in range(3):  # warm both pools and the page cache
            assert len(server.execute(SQL).rows) == N_ROWS

        def series():
            # ABBA blocks (on, off, off, on): within a block the clock
            # drift and GC phase hit both sides symmetrically, so the
            # paired per-block difference cancels order bias. Scheduler
            # jitter dominates single iterations, so the gate takes the
            # smaller of two estimators — best-of and paired-median —
            # which noise rarely inflates together.
            import statistics

            pattern = (store, None, None, store)
            best = {True: float("inf"), False: float("inf")}
            diffs, off_samples = [], []
            for _block in range(REPEATS):
                t = []
                for active in pattern:
                    server.telemetry = active
                    started = time.perf_counter()
                    result = server.execute(SQL)
                    t.append(time.perf_counter() - started)
                    assert len(result.rows) == N_ROWS
                best[True] = min(best[True], t[0], t[3])
                best[False] = min(best[False], t[1], t[2])
                diffs.append(((t[0] + t[3]) - (t[1] + t[2])) / 2)
                off_samples.extend((t[1], t[2]))
            server.telemetry = store
            paired = 1 + statistics.median(diffs) / statistics.median(
                off_samples
            )
            return best[True], best[False], paired

        with_store, without_store, paired_ratio = once(benchmark, series)
        best_ratio = with_store / without_store
        ratio = min(best_ratio, paired_ratio)
        payload = {
            "backend": backend,
            "with_store_best_seconds": with_store,
            "without_store_best_seconds": without_store,
            "best_of_overhead_ratio": best_ratio,
            "paired_median_overhead_ratio": paired_ratio,
            "overhead_ratio": ratio,
            "overhead_budget": OVERHEAD_BUDGET,
            "queries_recorded": store.snapshot()["events"]["queries"],
        }
        save_result(f"systables_overhead_{backend}", payload)
        assert ratio <= OVERHEAD_BUDGET, payload
    finally:
        server.shutdown()


def test_pr3_speedup_retained_with_obs_present():
    """Batch still parses once per row and beats the row path >= 2x."""
    session = build_session()

    def run(mode):
        best = float("inf")
        documents = 0
        for _ in range(3):
            started = time.perf_counter()
            result = session.sql(SQL, execution_mode=mode)
            best = min(best, time.perf_counter() - started)
            documents = result.metrics.parse_documents
        return best, documents

    batch_seconds, batch_documents = run("batch")
    row_seconds, row_documents = run("row")
    payload = {
        "batch_seconds": batch_seconds,
        "row_seconds": row_seconds,
        "speedup_vs_row": row_seconds / batch_seconds,
        "batch_parse_documents": batch_documents,
        "row_parse_documents": row_documents,
    }
    save_result("obs_pr3_regression", payload)
    assert batch_documents == N_ROWS
    assert row_documents == N_ROWS * len(PATHS)
    assert payload["speedup_vs_row"] >= 2.0, payload
