"""Duplicate-path microbenchmark: parse-once sharing vs re-parsing.

The paper's §II pathology in its purest form: one query extracts five
*distinct* JSONPaths from the same string column, with no cache built.
The row interpreter parses every document once per extraction (five
parses per row); the vectorized batch path shares one parsed document
per row across all five extractions. This bench pins the acceptance
criteria for the batch engine — exactly one parse per row and at least
a 2x end-to-end speedup on this workload — and records the series in
``BENCH_pr3.json``.
"""

from __future__ import annotations

from repro.engine import Session
from repro.jsonlib import dumps
from repro.storage import BlockFileSystem, DataType, Schema

from .conftest import once, save_bench_pr3, save_result

N_ROWS = 2000
PATHS = ("$.item_id", "$.item_name", "$.sale_count", "$.turnover", "$.price")
SQL = (
    "select "
    + ", ".join(
        f"get_json_object(logs, '{path}') as c{i}"
        for i, path in enumerate(PATHS)
    )
    + " from db.events"
)
REPEATS = 3


def build_session() -> Session:
    session = Session(fs=BlockFileSystem())
    schema = Schema.of(("id", DataType.INT64), ("logs", DataType.STRING))
    session.catalog.create_table("db", "events", schema)
    rows = [
        (
            i,
            dumps(
                {
                    "item_id": i % 97,
                    "item_name": f"item-{i}",
                    "sale_count": (i * 3) % 100,
                    "turnover": (i * 7) % 10_000,
                    "price": (i % 50) + 1,
                    "detail": {"k": i, "pad": "x" * 80},
                }
            ),
        )
        for i in range(N_ROWS)
    ]
    session.catalog.append_rows("db", "events", rows, row_group_size=200)
    return session


def measure(session: Session, mode: str) -> tuple[float, int, list]:
    """Best-of-N wall seconds, parse count and rows for one mode."""
    best = float("inf")
    parses = 0
    rows: list = []
    for _ in range(REPEATS):
        result = session.sql(SQL, execution_mode=mode)
        best = min(best, result.metrics.total_seconds)
        parses = result.metrics.parse_documents
        rows = result.rows
    return best, parses, rows


def test_duplicate_path_microbench(benchmark):
    session = build_session()

    def run():
        row_seconds, row_parses, row_rows = measure(session, "row")
        batch_seconds, batch_parses, batch_rows = measure(session, "batch")
        assert batch_rows == row_rows
        return {
            "rows": N_ROWS,
            "paths": len(PATHS),
            "row_seconds": row_seconds,
            "row_parse_documents": row_parses,
            "row_qps": 1.0 / row_seconds,
            "batch_seconds": batch_seconds,
            "batch_parse_documents": batch_parses,
            "batch_qps": 1.0 / batch_seconds,
            "speedup_vs_row": row_seconds / batch_seconds,
        }

    payload = once(benchmark, run)
    payload["paper_claim"] = (
        "duplicate JSONPath extraction re-parses the same document once "
        "per call; sharing one parse per row removes the duplication "
        "even before any cache is built"
    )
    save_result("duplicate_paths", payload)
    save_bench_pr3("duplicate_path_microbench", payload)

    # Acceptance: exactly one parse per row on the batch path, the full
    # five per row on the row path, and >= 2x end-to-end speedup.
    assert payload["batch_parse_documents"] == N_ROWS
    assert payload["row_parse_documents"] == N_ROWS * len(PATHS)
    assert payload["speedup_vs_row"] >= 2.0
