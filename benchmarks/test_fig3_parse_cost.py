"""Fig 3: parsing vs query-processing cost on NoBench.

The paper's §II-C motivation: three common query shapes over NoBench JSON
— Q1 a simple SELECT of two attributes, Q2 a COUNT with GROUP BY, Q3 a
self-equijoin — all spend >= ~80% of their time parsing JSON.
"""

import pytest

from repro.engine import Session
from repro.storage import BlockFileSystem, DataType, Schema
from repro.workload import NoBenchGenerator

from .conftest import once, save_result

ROWS = 3000


@pytest.fixture(scope="module")
def nobench_session() -> Session:
    session = Session(fs=BlockFileSystem())
    schema = Schema.of(("id", DataType.INT64), ("doc", DataType.STRING))
    session.catalog.create_table("nb", "docs", schema)
    generator = NoBenchGenerator()
    session.catalog.append_rows(
        "nb", "docs", list(generator.json_rows(ROWS)), row_group_size=500
    )
    return session


NOBENCH_QUERIES = {
    "Q1_select": (
        "select get_json_object(doc, '$.str1') as s, "
        "get_json_object(doc, '$.num') as n from nb.docs"
    ),
    "Q2_groupby_count": (
        "select get_json_object(doc, '$.nested_obj.str') as g, count(*) as c "
        "from nb.docs group by get_json_object(doc, '$.nested_obj.str')"
    ),
    "Q3_self_join": (
        "select count(*) as c from nb.docs a join nb.docs b "
        "on get_json_object(a.doc, '$.thousandth') = "
        "get_json_object(b.doc, '$.thousandth') "
        "where a.id < 1000 and b.id >= 2000"
    ),
}


@pytest.mark.parametrize("name", list(NOBENCH_QUERIES))
def test_fig3_parse_dominates(benchmark, nobench_session, name):
    result = once(benchmark, lambda: nobench_session.sql(NOBENCH_QUERIES[name]))
    m = result.metrics
    payload = {
        "query": name,
        "total_seconds": m.total_seconds,
        "breakdown": m.breakdown(),
        "parse_fraction": m.parse_fraction,
        "paper_claim": ">= 80% of execution time spent parsing JSON",
    }
    save_result(f"fig3_{name}", payload)
    # The reproduction target: parsing dominates (paper reports >= 80%;
    # accept the same regime with headroom for the simulator's cheaper I/O).
    assert m.parse_fraction >= 0.6
