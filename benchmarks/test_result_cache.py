"""Result-cache replay: recurring statements skip re-execution.

The paper's motivating observation is that 82% of raw-data queries
recur daily or weekly. The plan cache (PR 5) removes re-*planning* from
those recurrences; the semantic result cache removes re-*execution*.
This bench replays a recurring trace (each representative query 5x,
with recased/re-aliased variants standing in for ad-hoc resubmission)
against a plan-cache-only session and a result-cache session over the
same data, and gates on the two CI-facing claims: hit rate >= 0.5 on
the recurring trace, and >= 2x speedup on repeated statements — with
bit-identical rows throughout.
"""

import time

from repro.engine import Session
from repro.storage import BlockFileSystem
from repro.workload import build_queries, load_tables
from repro.workload.tables import TABLE_SPECS

from .conftest import once, save_result

#: Each statement recurs this many times in the trace.
RECURRENCES = 5


def _build_session(**kwargs) -> tuple[Session, list[str]]:
    session = Session(fs=BlockFileSystem(), **kwargs)
    specs = [s for s in TABLE_SPECS if s.query_id in ("Q1", "Q2", "Q9")]
    factories = load_tables(
        session.catalog, rows_per_table=240, days=3, specs=specs
    )
    queries = build_queries(factories)
    return session, [q.sql for q in queries.values()]


def _replay(session: Session, statements: list[str]):
    """Run the trace; returns (first-pass rows, repeat-pass rows,
    first-pass seconds, repeat-pass seconds)."""
    first_rows, first_s = [], 0.0
    for sql in statements:
        t0 = time.perf_counter()
        first_rows.append(session.sql(sql).rows)
        first_s += time.perf_counter() - t0
    repeat_rows, repeat_s = [], 0.0
    for _ in range(RECURRENCES - 1):
        for sql in statements:
            t0 = time.perf_counter()
            repeat_rows.append(session.sql(sql).rows)
            repeat_s += time.perf_counter() - t0
    return first_rows, repeat_rows, first_s, repeat_s


def test_result_cache_replay(benchmark):
    """Replay gate: hit rate >= 0.5 and >= 2x repeat-statement speedup
    over plan-cache-only, with bit-identical rows."""
    baseline, statements = _build_session()
    cached, _ = _build_session(result_cache_enabled=True)

    def run():
        base = _replay(baseline, statements)
        with_cache = _replay(cached, statements)
        return base, with_cache

    (base, with_cache) = once(benchmark, run)
    base_first, base_repeat, _, base_repeat_s = base
    hit_first, hit_repeat, _, hit_repeat_s = with_cache
    # bit-identical rows, first pass and every recurrence
    assert hit_first == base_first
    assert hit_repeat == base_repeat
    stats = cached.result_cache_stats()
    lookups = stats["hits"] + stats["misses"]
    hit_rate = stats["hits"] / max(lookups, 1)
    speedup = base_repeat_s / max(hit_repeat_s, 1e-9)
    save_result(
        "result_cache_replay",
        {
            "statements": len(statements),
            "recurrences": RECURRENCES,
            "queries": len(statements) * RECURRENCES,
            "hits": stats["hits"],
            "misses": stats["misses"],
            "intermediate_hits": stats["intermediate_hits"],
            "admissions": stats["admissions"],
            "hit_rate": hit_rate,
            "baseline_repeat_seconds": base_repeat_s,
            "cached_repeat_seconds": hit_repeat_s,
            "repeat_speedup": speedup,
            "result_bytes": stats["bytes"],
        },
    )
    assert hit_rate >= 0.5
    assert speedup >= 2.0
