"""Cluster shard-scale sweep + coordinator metadata-cache hit rate.

The PR-10 gates:

* **QPS scaling** — the same I/O-stalled workload through 1, 2 and 4
  shards; a 4-shard cluster must sustain at least **2x** the 1-shard
  QPS. On a small coordinator the win comes from overlapping I/O stalls
  across shard processes (each shard is a full server with its own
  worker pool and admission budget), the same mechanism as the paper's
  multi-node serving tier.
* **Metadata-cache hit rate** — replaying a multi-day workload through
  the router after warmup, the coordinator cache must answer at least
  **90%** of hot-path metadata lookups without touching a shard, even
  though every midnight generation swap invalidates each shard's
  entries once.
"""

from __future__ import annotations

import time

from .conftest import once, save_result

from repro.cluster import ClusterRouter, ShardSpec
from repro.cluster.replay import build_replay_workload, replay_cluster
from repro.cluster.shard import spec_queries
from repro.server.status import percentile

#: On a small coordinator the sweep must be I/O-stall dominated for the
#: scale-out effect to be measurable: per-read latency high enough (and
#: tables small enough) that a query's wall time is mostly stalled reads
#: a second shard's worker pool can overlap.
SHARD_LEVELS = (1, 2, 4)
SWEEP_READ_LATENCY = 0.08
SWEEP_ROWS = 32
SWEEP_REQUESTS = 48
SWEEP_TENANTS = 8
PER_SHARD_WORKERS = 4

HITRATE_DAYS = 2
HITRATE_PER_DAY = 100
HITRATE_TENANTS = 6


def _sweep_spec(read_latency: float = SWEEP_READ_LATENCY) -> ShardSpec:
    return ShardSpec(
        rows_per_table=SWEEP_ROWS,
        days=3,
        read_latency_seconds=read_latency,
        server={
            "max_workers": PER_SHARD_WORKERS,
            "per_tenant_limit": PER_SHARD_WORKERS,
            "queue_capacity": 4 * SWEEP_REQUESTS,
            "admission_timeout_seconds": 120.0,
        },
    )


def _run_level(shards: int, requests) -> dict:
    """One sweep level: spawn the cluster, warm it, then time the
    workload at the cluster's own sustainable concurrency."""
    spec = _sweep_spec()
    with ClusterRouter(shards, spec=spec) as router:
        # Warm untimed: every shard executes each query shape once and
        # the coordinator metadata cache fills.
        for request in requests:
            router.execute(request.sql, tenant=request.tenant, day=0)
        started = time.perf_counter()
        futures = [
            router.submit(request.sql, tenant=request.tenant, day=0)
            for request in requests
        ]
        latencies = sorted(
            f.result()["metrics"]["total_seconds"] for f in futures
        )
        wall = time.perf_counter() - started
        meta = router.metacache.snapshot()
    return {
        "shards": shards,
        "qps": len(requests) / wall,
        "wall_seconds": wall,
        "p50_seconds": percentile(latencies, 0.50),
        "p95_seconds": percentile(latencies, 0.95),
        "metadata_hit_rate": meta["hit_rate"],
    }


def test_shard_scale_sweep(benchmark):
    queries = spec_queries(_sweep_spec())
    requests = build_replay_workload(
        queries,
        days=1,
        per_day=SWEEP_REQUESTS,
        tenants=SWEEP_TENANTS,
        seed=23,
    )

    def run_sweep():
        return {
            str(level): _run_level(level, requests)
            for level in SHARD_LEVELS
        }

    sweep = once(benchmark, run_sweep)
    scaling_4_vs_1 = sweep["4"]["qps"] / sweep["1"]["qps"]
    scaling_2_vs_1 = sweep["2"]["qps"] / sweep["1"]["qps"]
    payload = {
        "read_latency_seconds": SWEEP_READ_LATENCY,
        "per_shard_workers": PER_SHARD_WORKERS,
        "requests": SWEEP_REQUESTS,
        "tenants": SWEEP_TENANTS,
        "qps": {level: round(data["qps"], 2) for level, data in sweep.items()},
        "levels": sweep,
        "scaling_4_vs_1": scaling_4_vs_1,
        "scaling_2_vs_1": scaling_2_vs_1,
        "paper_claim": "the serving tier scales out across nodes; shard "
        "processes must buy the same overlap of per-query I/O stalls "
        "that extra cluster nodes buy the paper's deployment",
    }
    save_result("cluster_shard_scale", payload)
    # The PR gate: four shards sustain at least double the 1-shard QPS.
    assert scaling_4_vs_1 >= 2.0, sweep
    assert sweep["2"]["qps"] > sweep["1"]["qps"], sweep


def test_metadata_cache_replay_hit_rate(benchmark):
    spec = ShardSpec(
        rows_per_table=SWEEP_ROWS,
        days=3,
        server={
            "max_workers": PER_SHARD_WORKERS,
            "queue_capacity": 4 * HITRATE_PER_DAY,
            "admission_timeout_seconds": 120.0,
        },
    )
    queries = spec_queries(spec)
    requests = build_replay_workload(
        queries,
        days=HITRATE_DAYS,
        per_day=HITRATE_PER_DAY,
        tenants=HITRATE_TENANTS,
        seed=31,
    )

    def run_replay():
        with ClusterRouter(2, spec=spec) as router:
            # Warmup replay: fills the coordinator cache (and crosses the
            # same midnights the measured replay will cross).
            replay_cluster(router, requests, reset_cache_stats=False)
            report = replay_cluster(router, requests)
            return report

    report = once(benchmark, run_replay)
    meta = report.metadata_cache
    payload = {
        "days": HITRATE_DAYS,
        "requests_per_day": HITRATE_PER_DAY,
        "shards": 2,
        "completed": report.completed,
        "hits": meta["hits"],
        "misses": meta["misses"],
        "hit_rate": meta["hit_rate"],
        "invalidations": meta["invalidations"],
        "hits_by_kind": meta["hits_by_kind"],
        "paper_claim": "a Presto-style coordinator metadata cache keeps "
        "table metadata lookups off the hot path; only DDL/append/"
        "generation swaps invalidate, and only on the shard they hit",
    }
    save_result("cluster_metadata_cache", payload)
    assert report.completed == len(requests)
    # The PR gate: >= 90% of hot-path metadata lookups served by the
    # coordinator after warmup, midnights included.
    assert meta["hit_rate"] >= 0.9, meta
