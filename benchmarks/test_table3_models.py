"""Table III: predictor comparison — LR vs SVM vs MLP vs LSTM+CRF.

The paper's finding: models that cannot exploit the date *sequence*
(LR, SVM, MLP over order-free aggregates) lose recall on temporally
structured MPJPs (weekly reports, bursty pipelines), while the LSTM+CRF
hybrid keeps both precision and recall high. The reproduction target is
that ordering, not the absolute F1 values (which depend on the trace's
irreducible noise).
"""

import pytest

from repro.core import JsonPathCollector, JsonPathPredictor, PredictorConfig

from .conftest import once, save_result

TRAIN_DAYS = list(range(10, 34))
EVAL_DAYS = list(range(34, 40))

MODELS = ("lr", "svm", "mlp", "lstm_crf")


@pytest.fixture(scope="module")
def collector(trace) -> JsonPathCollector:
    collector = JsonPathCollector()
    collector.ingest_trace(trace)
    return collector


_scores: dict[str, dict] = {}


@pytest.mark.parametrize("model", MODELS)
def test_table3_model(benchmark, collector, model):
    def run():
        predictor = JsonPathPredictor(
            PredictorConfig(model=model, window_days=7, epochs=15)
        )
        predictor.fit(collector, TRAIN_DAYS)
        return predictor.evaluate(collector, EVAL_DAYS)

    prf = once(benchmark, run)
    _scores[model] = prf.as_row()
    save_result(f"table3_{model}", {"model": model, **prf.as_row()})
    assert prf.f1 > 0.5  # sanity floor

    if len(_scores) == len(MODELS):
        save_result(
            "table3_summary",
            {
                "rows": _scores,
                "paper": {
                    "lr": {"precision": 1.0, "recall": 0.397, "f1": 0.568},
                    "svm": {"precision": 1.0, "recall": 0.559, "f1": 0.717},
                    "mlp": {"precision": 0.994, "recall": 0.694, "f1": 0.817},
                    "lstm_crf": {"precision": 0.985, "recall": 0.912, "f1": 0.947},
                },
                "reproduction_target": "LSTM+CRF best F1; flat models "
                "recall-limited",
            },
        )
        # The headline ordering: the sequence model matches or beats every
        # flat model on F1 (loose tolerance — the trace has seed noise).
        flat_best = max(_scores[m]["f1"] for m in ("lr", "svm", "mlp"))
        assert _scores["lstm_crf"]["f1"] >= flat_best - 0.02
