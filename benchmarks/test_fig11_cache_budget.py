"""Fig 11: total execution time of the ten queries vs cache budget.

The paper caches under budgets of 100/200/300/400 GB and compares the
scoring-function selection against random selection and no caching.
Findings reproduced here: (a) larger budgets shorten total time, (b) the
scoring strategy beats random at every non-saturated budget, (c) at the
budget that fits every MPJP the two selections converge.

Budgets scale to the simulator: the '400GB' point is the byte size of all
candidate MPJP values; 100/200/300 GB map to 25/50/75%.
"""

import pytest

from .conftest import once, save_result

BUDGET_POINTS = {"100GB": 0.25, "200GB": 0.50, "300GB": 0.75, "400GB": 1.00}

_series: dict[str, dict] = {}


def _total_seconds(results) -> float:
    return sum(r.metrics.total_seconds for r in results.values())


def test_fig11_no_cache(benchmark, env):
    env.drop_cache()
    results = once(benchmark, lambda: env.run_all(use_maxson=False))
    _series["no_cache"] = {"total_seconds": _total_seconds(results)}
    save_result("fig11_no_cache", _series["no_cache"])


@pytest.mark.parametrize("point", list(BUDGET_POINTS))
@pytest.mark.parametrize("strategy", ["score", "random"])
def test_fig11_budget(benchmark, env, point, strategy):
    budget = int(env.total_candidate_bytes() * BUDGET_POINTS[point])
    report = env.cache_with_budget(budget, strategy=strategy)

    results = once(benchmark, lambda: env.run_all(use_maxson=True))
    total = _total_seconds(results)
    entry = {
        "budget_bytes": budget,
        "cached_paths": len(report.selected),
        "cache_build_seconds": report.build.build_seconds,
        "total_seconds": total,
        "per_query_seconds": {
            qid: r.metrics.total_seconds for qid, r in results.items()
        },
    }
    _series[f"{strategy}/{point}"] = entry
    save_result(f"fig11_{strategy}_{point}", entry)

    if len(_series) == 1 + 2 * len(BUDGET_POINTS):
        save_result(
            "fig11_summary",
            {
                **_series,
                "paper_claims": [
                    "larger cache -> shorter total time",
                    "scoring beats random under constrained budgets",
                    "at full budget the strategies converge",
                    "overall speedup 1.5-6.5x vs no cache",
                ],
            },
        )
        # Shape assertions.
        no_cache = _series["no_cache"]["total_seconds"]
        full = _series["score/400GB"]["total_seconds"]
        assert full < no_cache  # caching wins overall
        assert (
            _series["score/100GB"]["total_seconds"]
            <= _series["random/100GB"]["total_seconds"] * 1.15
        )
        # monotone-ish improvement with budget for the scoring strategy
        assert (
            _series["score/400GB"]["total_seconds"]
            <= _series["score/100GB"]["total_seconds"] * 1.05
        )
