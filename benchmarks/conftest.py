"""Shared environment for the paper-reproduction benchmarks.

Every bench regenerates one table or figure of the paper's evaluation
(§II motivation + §V). Because the substrate is a single-process simulator
rather than a 22-node cluster, absolute numbers differ from the paper;
the *shape* of each result (who wins, by roughly what factor, where the
crossovers fall) is the reproduction target. Each bench writes its series
to ``benchmarks/results/<name>.json`` so EXPERIMENTS.md can cite them.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import MaxsonConfig, MaxsonSystem, PredictorConfig
from repro.engine import Session
from repro.storage import BlockFileSystem
from repro.workload import (
    SyntheticTrace,
    TraceConfig,
    build_queries,
    load_tables,
)

RESULTS_DIR = Path(__file__).parent / "results"

#: Machine-readable summary of the PR-3 execution-model benches
#: (vectorized batch path vs the row interpreter). Sections are written
#: read-modify-write so the microbenchmark and the server bench can each
#: contribute independently of run order.
BENCH_PR3_PATH = Path(__file__).parent.parent / "BENCH_pr3.json"

#: PR-5 summary (parallel split execution + plan cache). Unlike the
#: per-PR files before it, every bench that goes through
#: :func:`save_result` contributes its section here automatically, so
#: the roll-up is complete no matter which subset of benches ran.
BENCH_PR5_PATH = Path(__file__).parent.parent / "BENCH_pr5.json"

#: PR-6 summary (semantic result cache + unified cache byte budget).
BENCH_PR6_PATH = Path(__file__).parent.parent / "BENCH_pr6.json"

#: PR-7 summary (deadlines, cooperative cancellation, overload
#: protection).
BENCH_PR7_PATH = Path(__file__).parent.parent / "BENCH_pr7.json"

#: PR-8 summary (process-pool morsel backend + shared-memory batch
#: transport).
BENCH_PR8_PATH = Path(__file__).parent.parent / "BENCH_pr8.json"

#: PR-10 summary (multi-process cluster: consistent-hash router +
#: coordinator metadata cache). The current roll-up target of
#: :func:`save_result`.
BENCH_PR10_PATH = Path(__file__).parent.parent / "BENCH_pr10.json"

#: Scale knobs: the paper uses 20M rows/table on 22 nodes; the simulator
#: uses this many rows per Table II table (split over 3 daily files).
ROWS_PER_TABLE = 900
ROW_GROUP_SIZE = 100
METRIC_THRESHOLD = 9000  # Q2/Q9 predicate selectivity (~top decile)


def _merge_bench(path: Path, section: str, payload: dict) -> Path:
    """Read-modify-write one section of a roll-up JSON file, so benches
    contribute independently of run order (and of which subset ran)."""
    data: dict = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError:
            data = {}
    data[section] = payload
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def save_result(name: str, payload: dict) -> Path:
    """Persist one bench's series for EXPERIMENTS.md.

    Every series is also merged into ``BENCH_pr10.json`` at the repo
    root (and into ``BENCH_pr7.json`` / ``BENCH_pr8.json``, which older
    CI jobs still read) — previously each PR's roll-up had to be fed by
    hand-picked benches, which silently dropped any bench that forgot
    to call the per-PR saver.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    _merge_bench(BENCH_PR7_PATH, name, payload)
    _merge_bench(BENCH_PR8_PATH, name, payload)
    _merge_bench(BENCH_PR10_PATH, name, payload)
    return path


def save_bench_pr3(section: str, payload: dict) -> Path:
    """Merge one section into the BENCH_pr3.json summary at the repo root."""
    return _merge_bench(BENCH_PR3_PATH, section, payload)


def save_bench_pr5(section: str, payload: dict) -> Path:
    """Merge one section into the BENCH_pr5.json summary at the repo root."""
    return _merge_bench(BENCH_PR5_PATH, section, payload)


def save_bench_pr8(section: str, payload: dict) -> Path:
    """Merge one section into the BENCH_pr8.json summary at the repo root."""
    return _merge_bench(BENCH_PR8_PATH, section, payload)


class BenchEnv:
    """Table II tables + the ten representative queries + a Maxson system."""

    def __init__(self) -> None:
        self.session = Session(fs=BlockFileSystem())
        self.factories = load_tables(
            self.session.catalog,
            rows_per_table=ROWS_PER_TABLE,
            days=3,
            row_group_size=ROW_GROUP_SIZE,
        )
        self.queries = build_queries(
            self.factories, metric_threshold=METRIC_THRESHOLD
        )
        self.system = MaxsonSystem(
            session=self.session,
            config=MaxsonConfig(predictor=PredictorConfig(model="oracle")),
        )
        self._record_history()
        self.candidates = self.system.collector.universe
        self.records = self.system.collector.queries_between(0, 2)

    def _record_history(self) -> None:
        """Three days of history: each query fires twice per day (the
        spatial correlation that makes every queried path an MPJP)."""
        for query in self.queries.values():
            planned = self.session.compile(query.sql)
            for day in range(3):
                for _ in range(2):
                    self.system.collector.record_planned(
                        day, planned.referenced_json_paths
                    )
        self.system.current_day = 2

    # ------------------------------------------------------------------
    def total_candidate_bytes(self) -> int:
        """Bytes needed to cache every candidate MPJP (the '400GB' point)."""
        return sum(
            self.system.scoring.measure(key).estimated_total_bytes
            for key in self.candidates
        )

    def cache_with_budget(self, budget_bytes: int, strategy: str = "score"):
        """(Re)populate the cache under a byte budget."""
        return self.system.cache_paths_directly(
            self.candidates,
            budget_bytes=budget_bytes,
            strategy=strategy,
            records=self.records,
        )

    def drop_cache(self) -> None:
        self.system.cacher.drop_all()

    def run_all(self, use_maxson: bool) -> dict[str, object]:
        """Execute the ten queries; returns per-query metrics."""
        out: dict[str, object] = {}
        for query_id, query in self.queries.items():
            if use_maxson:
                result = self.system.sql(query.sql)
            else:
                result = self.system.baseline_sql(query.sql)
            out[query_id] = result
        return out


@pytest.fixture(scope="session")
def env() -> BenchEnv:
    return BenchEnv()


@pytest.fixture(scope="session")
def trace() -> SyntheticTrace:
    """The synthetic five-month-style trace used by the workload and
    predictor benches (scaled to stay minutes-fast)."""
    return SyntheticTrace(
        TraceConfig(days=42, users=24, tables=14, seed=11, burst_fraction=0.5)
    )


def once(benchmark, fn):
    """Run an expensive scenario exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
