"""Fig 15: per-query time — Spark+Jackson, Spark+Mison, Maxson, Maxson+Mison.

The paper's final comparison: does caching still matter given a fast
structural-index parser? Findings reproduced here:

* Mison speeds up projection substantially over Jackson;
* for the queries whose JSONPaths Maxson cached, caching beats even the
  fast parser (cache reads do no per-record JSON work at all);
* for queries Maxson left uncached, Mison complements Maxson —
  Maxson+Mison is the best overall configuration.
"""

import pytest

from repro.jsonlib import MisonParser

from .conftest import once, save_result

#: The '300GB' budget point of the paper's Fig 15 setup.
BUDGET_FRACTION = 0.75

_rows: dict[str, dict[str, float]] = {}
CONFIGS = ("spark_jackson", "spark_mison", "maxson", "maxson_mison")


def _run_all(env, use_maxson: bool, use_mison: bool) -> dict[str, float]:
    session = env.system.session
    session.projection_parser_factory = MisonParser if use_mison else None
    try:
        results = env.run_all(use_maxson=use_maxson)
        return {qid: r.metrics.total_seconds for qid, r in results.items()}
    finally:
        session.projection_parser_factory = None


@pytest.mark.parametrize("config", CONFIGS)
def test_fig15_config(benchmark, env, config):
    use_maxson = config.startswith("maxson")
    use_mison = config.endswith("mison")
    if use_maxson:
        env.cache_with_budget(
            int(env.total_candidate_bytes() * BUDGET_FRACTION), "score"
        )
    else:
        env.drop_cache()

    _rows[config] = once(benchmark, lambda: _run_all(env, use_maxson, use_mison))
    save_result(f"fig15_{config}", _rows[config])

    if len(_rows) == len(CONFIGS):
        totals = {name: sum(row.values()) for name, row in _rows.items()}
        save_result(
            "fig15_summary",
            {
                "per_query_seconds": _rows,
                "totals": totals,
                "paper_claims": [
                    "Mison reduces execution time vs Jackson",
                    "caching beats fast parsing for cached queries",
                    "Maxson+Mison combines both benefits",
                ],
            },
        )
        assert totals["spark_mison"] < totals["spark_jackson"]
        assert totals["maxson"] < totals["spark_jackson"]
        assert totals["maxson_mison"] <= totals["spark_mison"]
        # Per-query: cached queries' Maxson time beats Spark+Mison for the
        # majority of the ten queries (the paper lists Q2,Q3,Q4,Q6,Q7,Q9,Q10).
        wins = sum(
            1
            for qid in _rows["maxson"]
            if _rows["maxson"][qid] < _rows["spark_mison"][qid]
        )
        assert wins >= 5
