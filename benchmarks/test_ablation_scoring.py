"""Ablation: which factors of Score_j = A_j * R_j * O_j matter?

Re-runs the constrained-budget experiment with degenerate scoring
functions — acceleration-per-byte only, occurrence only, relevance only,
the full product, and random — to show that the composite score is at
least as good as any single factor under a tight budget.
"""

import pytest

from repro.core.scoring import ScoredPath

from .conftest import once, save_result

BUDGET_FRACTION = 0.25  # the tight '100GB' point, where ranking matters

_totals: dict[str, float] = {}
VARIANTS = ("full", "acceleration_only", "occurrence_only", "relevance_only", "random")


def _select_variant(env, scored, budget, variant):
    if variant == "random":
        from repro.core.scoring import ScoringFunction

        return ScoringFunction.random_selection(scored, budget, seed=3)
    keyfuncs = {
        "full": lambda sp: sp.score,
        "acceleration_only": lambda sp: sp.stats.acceleration_per_byte,
        "occurrence_only": lambda sp: float(sp.occurrences),
        "relevance_only": lambda sp: sp.relevance,
    }
    ranked = sorted(scored, key=keyfuncs[variant], reverse=True)
    chosen: list[ScoredPath] = []
    remaining = budget
    for candidate in ranked:
        cost = candidate.budget_bytes()
        if cost <= remaining:
            chosen.append(candidate)
            remaining -= cost
    return chosen


@pytest.mark.parametrize("variant", VARIANTS)
def test_ablation_scoring_variant(benchmark, env, variant):
    budget = int(env.total_candidate_bytes() * BUDGET_FRACTION)
    scored = env.system.scoring.score(set(env.candidates), env.records)
    selected = _select_variant(env, scored, budget, variant)
    env.drop_cache()
    env.system.cacher.populate([sp.key for sp in selected])

    results = once(benchmark, lambda: env.run_all(use_maxson=True))
    total = sum(r.metrics.total_seconds for r in results.values())
    _totals[variant] = total
    save_result(
        f"ablation_scoring_{variant}",
        {"total_seconds": total, "cached_paths": len(selected)},
    )

    if len(_totals) == len(VARIANTS):
        save_result("ablation_scoring_summary", {"totals": _totals})
        # The full score should be within noise of the best variant and
        # beat random selection under the tight budget.
        assert _totals["full"] <= _totals["random"] * 1.1
