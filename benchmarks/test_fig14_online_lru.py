"""Fig 14: Maxson's predictive pre-caching vs an online LRU cache.

The paper replays the workload in submission order against an online
cache with LRU replacement and against Maxson. The online cache has a
lower hit ratio (first accesses always miss; correlated queries arriving
together gain nothing) and higher total execution time.

The replay uses measured per-path value sizes and parse costs from the
scoring function so both policies are costed identically.
"""

import pytest

from repro.core import JsonPathCollector, JsonPathPredictor, OnlineCacheSimulator, PredictorConfig
from repro.workload import PathKey

from .conftest import once, save_result

EVAL_DAYS = list(range(30, 38))
READ_SECONDS = 0.01


@pytest.fixture(scope="module")
def replay_inputs(trace):
    collector = JsonPathCollector()
    collector.ingest_trace(trace)
    # Uniform modelled costs keyed per path (the trace's paths are not
    # backed by real tables; the engine-level costs are measured in
    # fig11/fig12/fig15).
    path_bytes = {key: 1_000_000 for key in collector.universe}
    path_parse = {key: 1.0 for key in collector.universe}
    stream = [q for q in trace.queries if q.day in set(EVAL_DAYS)]
    return collector, path_bytes, path_parse, stream


def _maxson_replay(trace, collector, capacity, path_bytes, path_parse):
    predictor = JsonPathPredictor(PredictorConfig(model="oracle"))
    hits = misses = 0
    seconds = 0.0
    for day in EVAL_DAYS:
        predicted = sorted(predictor.predict(collector, day))
        cached: set[PathKey] = set()
        used = 0
        for key in predicted:
            size = path_bytes[key]
            if used + size <= capacity:
                cached.add(key)
                used += size
        for query in trace.queries_on_day(day):
            for key in query.paths:
                if key in cached:
                    hits += 1
                    seconds += READ_SECONDS
                else:
                    misses += 1
                    seconds += READ_SECONDS + path_parse[key]
    return hits / max(hits + misses, 1), seconds


def test_fig14_online_vs_maxson(benchmark, trace, replay_inputs):
    collector, path_bytes, path_parse, stream = replay_inputs
    capacity = int(len(collector.universe) * 0.5) * 1_000_000

    def run():
        lru = OnlineCacheSimulator(
            capacity_bytes=capacity,
            path_bytes=path_bytes,
            path_parse_seconds=path_parse,
            read_seconds=READ_SECONDS,
        ).replay(stream)
        maxson_hit, maxson_seconds = _maxson_replay(
            trace, collector, capacity, path_bytes, path_parse
        )
        return lru, maxson_hit, maxson_seconds

    lru, maxson_hit, maxson_seconds = once(benchmark, run)
    payload = {
        "capacity_bytes": capacity,
        "lru": {
            "hit_ratio": lru.hit_ratio,
            "modelled_seconds": lru.modelled_seconds,
            "evictions": lru.evictions,
        },
        "maxson": {
            "hit_ratio": maxson_hit,
            "modelled_seconds": maxson_seconds,
        },
        "paper_claims": [
            "LRU has lower hit ratio than Maxson",
            "LRU has higher execution time than Maxson",
        ],
    }
    save_result("fig14_online_lru", payload)
    assert maxson_hit > lru.hit_ratio
    assert maxson_seconds < lru.modelled_seconds
