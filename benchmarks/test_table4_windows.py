"""Table IV: LSTM+CRF vs Uni-LSTM across history window sizes.

The paper compares the two sequence models at windows of one week, two
weeks and one month, finding LSTM+CRF's F1 higher in general and both
models peaking at the one-week window.
"""

import pytest

from repro.core import JsonPathCollector, JsonPathPredictor, PredictorConfig

from .conftest import once, save_result

EVAL_DAYS = list(range(34, 40))
WINDOWS = {"1_week": 7, "2_weeks": 14, "1_month": 30}

_rows: dict[str, dict] = {}


@pytest.fixture(scope="module")
def collector(trace) -> JsonPathCollector:
    collector = JsonPathCollector()
    collector.ingest_trace(trace)
    return collector


@pytest.mark.parametrize("window_name", list(WINDOWS))
@pytest.mark.parametrize("model", ["lstm", "lstm_crf"])
def test_table4_window(benchmark, collector, window_name, model):
    window = WINDOWS[window_name]
    train_days = list(range(window + 1, 34))

    def run():
        predictor = JsonPathPredictor(
            PredictorConfig(model=model, window_days=window, epochs=15)
        )
        predictor.fit(collector, train_days)
        return predictor.evaluate(collector, EVAL_DAYS)

    prf = once(benchmark, run)
    _rows[f"{window_name}/{model}"] = prf.as_row()
    save_result(f"table4_{window_name}_{model}", prf.as_row())
    assert prf.f1 > 0.5

    if len(_rows) == len(WINDOWS) * 2:
        save_result(
            "table4_summary",
            {
                "rows": _rows,
                "paper": {
                    "1_week/lstm_crf": {"precision": 0.985, "recall": 0.912, "f1": 0.947},
                    "1_week/lstm": {"precision": 0.927, "recall": 0.916, "f1": 0.921},
                    "2_weeks/lstm_crf": {"precision": 0.997, "recall": 0.975, "f1": 0.916},
                    "2_weeks/lstm": {"precision": 0.912, "recall": 0.889, "f1": 0.9},
                    "1_month/lstm_crf": {"precision": 0.942, "recall": 0.900, "f1": 0.921},
                    "1_month/lstm": {"precision": 0.925, "recall": 0.885, "f1": 0.905},
                },
                "reproduction_target": "LSTM+CRF F1 >= Uni-LSTM per window",
            },
        )
