"""Fig 4: number of queries containing each JSONPath.

The paper's §II-D2 spatial-correlation analysis: JSONPath popularity
follows a power law (89% of parse traffic on 27% of paths, ~14 queries
per path on average). This bench regenerates the per-path query counts
and the concentration statistics from the synthetic trace.
"""

import numpy as np

from .conftest import once, save_result


def test_fig4_queries_per_path(benchmark, trace):
    counts = once(benchmark, trace.queries_per_path)
    series = sorted(counts.values(), reverse=True)
    total_paths = len(series)
    average = sum(series) / total_paths
    concentration = trace.traffic_concentration(0.27)
    payload = {
        "paths": total_paths,
        "queries_per_path_top20": series[:20],
        "average_queries_per_path": average,
        "max_queries_per_path": series[0],
        "median_queries_per_path": float(np.median(series)),
        "traffic_share_of_top_27pct_paths": concentration,
        "paper_claim": "89% of parsing traffic on 27% of JSONPaths; "
        "~14 queries per JSONPath on average",
    }
    save_result("fig4_path_popularity", payload)
    # Shape: heavy skew — top 27% of paths carry the clear majority of
    # traffic, and the max path is far above the median.
    assert concentration > 0.6
    assert series[0] > 5 * max(np.median(series), 1)
