"""Fig 2: time-of-day distribution of table updates.

The paper observes that table loads cluster around midday and are rare at
midnight — the idle window Maxson uses for cache population. This bench
regenerates the 24-bin histogram from the synthetic trace.
"""

import numpy as np

from .conftest import once, save_result


def test_fig2_update_time_histogram(benchmark, trace):
    hist = once(benchmark, trace.update_hour_histogram)
    total = int(hist.sum())
    midnight_share = float((hist[0] + hist[1] + hist[23]) / total)
    midday_share = float(hist[10:15].sum() / total)
    payload = {
        "histogram": [int(v) for v in hist],
        "peak_hour": int(np.argmax(hist)),
        "midnight_share_22_to_2": midnight_share,
        "midday_share_10_to_15": midday_share,
        "paper_claim": "updates frequent at noon, rare at midnight",
    }
    save_result("fig2_update_times", payload)
    # Shape assertions: midday busy, midnight idle.
    assert payload["peak_hour"] in range(9, 16)
    assert midday_share > 5 * midnight_share
