"""Operational features: persisted statistics and incremental refresh.

Two production concerns the paper leaves implicit:

1. the collector's statistics must survive process restarts — Maxson
   stores them in date-partitioned warehouse tables (``maxson_meta``);
2. rebuilding every cache table from scratch each midnight re-parses
   *all* history, but the workload is append-only (§II-B) — incremental
   refresh parses only the newly landed partitions while keeping the
   file-index alignment the Value Combiner depends on.

Run:  python examples/operations.py
"""

from repro.core import (
    JsonPathCollector,
    MaxsonSystem,
    StatsStore,
    cache_table_name,
    CACHE_DATABASE,
)
from repro.engine import Session
from repro.jsonlib import dumps
from repro.storage import BlockFileSystem, DataType, Schema
from repro.workload import PathKey


def main() -> None:
    clock = iter(range(1, 10_000_000))
    session = Session(fs=BlockFileSystem(clock=lambda: float(next(clock))))
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("db", "logs", schema)
    system = MaxsonSystem(session=session)
    key = PathKey("db", "logs", "payload", "$.metric")
    sql = "select get_json_object(payload, '$.metric') as m from db.logs"

    # --- day 0: load a partition, run queries, persist the statistics
    session.catalog.append_rows(
        "db", "logs", [(i, dumps({"metric": i})) for i in range(5000)],
        row_group_size=500,
    )
    for _ in range(3):
        system.sql(sql, day=0)
    store = StatsStore(session.catalog)
    store.save_day(system.collector, 0)
    print("day 0: stats persisted;", store.verify(system.collector))

    # --- restart: a fresh collector is rebuilt from the warehouse
    restored = store.load()
    print(
        f"restart: restored {len(restored.universe)} paths, "
        f"count(day 0) = {restored.count(key, 0)}"
    )

    # --- midnight: cache, then next day new data lands
    report = system.cacher.populate([key])
    print(
        f"midnight full build: parsed {report.build.rows_parsed if hasattr(report, 'build') else report.rows_parsed} rows, "
        f"{report.bytes_written:,} bytes"
    )
    session.catalog.append_rows(
        "db", "logs", [(5000 + i, dumps({"metric": 5000 + i})) for i in range(500)],
        row_group_size=500,
    )
    stale = system.sql(sql, day=1)
    print(
        f"after append: cache invalid -> parsed {stale.metrics.parse_documents} docs"
    )

    # --- incremental refresh: only the new partition is parsed, and the
    # invalid mark set by the failed lookup above is cleared in place
    refresh = system.cacher.refresh([key])
    print(
        f"incremental refresh: parsed only {refresh.rows_parsed} rows "
        f"({len(session.catalog.table_files(CACHE_DATABASE, cache_table_name('db', 'logs')))} cache files)"
    )
    fresh = system.sql(sql, day=1)
    print(
        f"after refresh: parsed {fresh.metrics.parse_documents} docs, "
        f"{len(fresh.rows)} rows served from cache"
    )


if __name__ == "__main__":
    main()
