"""Online LRU caching vs Maxson's predict-and-pre-cache (Fig 14).

Replays a synthetic trace in submission order against a byte-budgeted
online LRU cache, then models Maxson's behaviour on the same stream: the
nightly cycle pre-caches the predicted MPJPs before the day starts, so
correlated queries hit from their first access. Reports hit ratios and
modelled execution time for both policies across cache budgets.

Run:  python examples/online_vs_offline.py
"""

from repro.core import (
    JsonPathCollector,
    JsonPathPredictor,
    OnlineCacheSimulator,
    PredictorConfig,
)
from repro.workload import SyntheticTrace, TraceConfig

#: Modelled per-access costs (uniform for clarity; the benchmarks use
#: measured per-path costs instead).
PATH_BYTES = 1_000_000
PARSE_SECONDS = 1.0
READ_SECONDS = 0.05


def maxson_replay(trace, collector, predictor, capacity, days):
    """Model Maxson: paths pre-cached at midnight hit all day."""
    hits = misses = 0
    seconds = 0.0
    for day in days:
        predicted = sorted(predictor.predict(collector, day))
        # Budget: pre-cache in (deterministic) order until full.
        cached = set()
        used = 0
        for key in predicted:
            if used + PATH_BYTES <= capacity:
                cached.add(key)
                used += PATH_BYTES
        for query in trace.queries_on_day(day):
            for key in query.paths:
                if key in cached:
                    hits += 1
                    seconds += READ_SECONDS
                else:
                    misses += 1
                    seconds += READ_SECONDS + PARSE_SECONDS
    total = hits + misses
    return hits / total if total else 0.0, seconds


def main() -> None:
    trace = SyntheticTrace(TraceConfig(days=40, users=24, tables=14, seed=5))
    collector = JsonPathCollector()
    collector.ingest_trace(trace)
    predictor = JsonPathPredictor(PredictorConfig(model="oracle"))

    eval_days = list(range(30, 38))
    stream = [q for q in trace.queries if q.day in set(eval_days)]
    universe = len(collector.universe)

    print(f"{'budget (paths)':>15} {'LRU hit':>8} {'LRU time':>9} "
          f"{'Maxson hit':>11} {'Maxson time':>12}")
    for fraction in (0.25, 0.5, 0.75, 1.0):
        capacity = int(universe * fraction) * PATH_BYTES
        lru = OnlineCacheSimulator(
            capacity_bytes=capacity,
            default_bytes=PATH_BYTES,
            default_parse_seconds=PARSE_SECONDS,
            read_seconds=READ_SECONDS,
        ).replay(stream)
        maxson_hit, maxson_seconds = maxson_replay(
            trace, collector, predictor, capacity, eval_days
        )
        print(
            f"{int(universe * fraction):>15} {lru.hit_ratio:8.1%} "
            f"{lru.modelled_seconds:8.0f}s {maxson_hit:11.1%} "
            f"{maxson_seconds:11.0f}s"
        )

    print(
        "\nThe online cache misses every first access and loses correlated "
        "queries arriving together;\nMaxson pre-caches before the day "
        "starts, so hit ratio tracks the predictor, not arrival order."
    )


if __name__ == "__main__":
    main()
