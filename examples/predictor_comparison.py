"""Compare MPJP predictors on a synthetic production trace (Table III).

Generates a five-month-style workload trace with the paper's published
statistics (recurring daily/weekly templates, power-law path popularity,
bursty pipelines), trains each predictor on four weeks of history, and
reports precision / recall / F1 on the following week — a small-scale
rendition of the paper's Table III / Table IV comparison.

Run:  python examples/predictor_comparison.py
"""

import time

from repro.core import JsonPathCollector, JsonPathPredictor, PredictorConfig
from repro.workload import SyntheticTrace, TraceConfig


def main() -> None:
    trace = SyntheticTrace(
        TraceConfig(days=42, users=24, tables=14, seed=11, burst_fraction=0.5)
    )
    collector = JsonPathCollector()
    collector.ingest_trace(trace)
    print(
        f"trace: {len(trace.queries):,} queries over {trace.config.days} days, "
        f"{len(collector.universe)} JSONPaths"
    )
    print(
        f"recurring queries: {trace.recurring_fraction():.0%}   "
        f"duplicate parse traffic: {collector.duplicate_parse_fraction():.0%}"
    )

    train_days = list(range(10, 34))
    eval_days = list(range(34, 40))
    print(f"\n{'model':<10} {'precision':>9} {'recall':>7} {'f1':>6} {'train+eval':>11}")
    for model in ("lr", "svm", "mlp", "lstm", "lstm_crf"):
        started = time.perf_counter()
        predictor = JsonPathPredictor(
            PredictorConfig(model=model, window_days=7, epochs=15)
        )
        predictor.fit(collector, train_days)
        prf = predictor.evaluate(collector, eval_days)
        elapsed = time.perf_counter() - started
        print(
            f"{model:<10} {prf.precision:9.3f} {prf.recall:7.3f} "
            f"{prf.f1:6.3f} {elapsed:10.1f}s"
        )

    # What the winner actually caches tomorrow:
    predictor = JsonPathPredictor(
        PredictorConfig(model="lstm_crf", window_days=7, epochs=15)
    )
    predictor.fit(collector, train_days)
    predicted = predictor.predict(collector, eval_days[-1] + 1)
    actual = collector.mpjp_on(eval_days[-1])
    print(
        f"\npredicted MPJPs for tomorrow: {len(predicted)} "
        f"(yesterday's actual: {len(actual)})"
    )


if __name__ == "__main__":
    main()
