"""The full nightly cycle: collect → predict → score → cache → serve.

Simulates a week of a production deployment over the paper's Table II
tables. Each "day" the ten representative queries run (twice, with the
spatial correlation the trace exhibits); each "midnight" Maxson predicts
tomorrow's Multiple-Parsed JSONPaths, ranks them with the scoring
function, pre-parses them into cache tables, and the next day's queries
run against the cache. Also demonstrates cache invalidation when fresh
data lands after the cache was built.

Run:  python examples/daily_cycle.py
"""

from repro.core import MaxsonConfig, MaxsonSystem, PredictorConfig
from repro.engine import Session
from repro.storage import BlockFileSystem
from repro.workload import build_queries, load_tables


def main() -> None:
    clock = iter(range(1, 10_000_000))
    session = Session(fs=BlockFileSystem(clock=lambda: float(next(clock))))
    factories = load_tables(
        session.catalog, rows_per_table=600, days=3, row_group_size=100
    )
    queries = build_queries(factories)
    system = MaxsonSystem(
        session=session,
        config=MaxsonConfig(
            cache_budget_bytes=1 << 30,
            predictor=PredictorConfig(model="oracle"),
        ),
    )

    print("== Week of daily queries ==")
    for day in range(4):
        day_seconds = 0.0
        day_parse = 0.0
        for query in queries.values():
            # Each query template fires twice a day (two correlated users).
            for _ in range(2):
                result = system.sql(query.sql, day=day)
                day_seconds += result.metrics.total_seconds
                day_parse += result.metrics.parse_seconds
        cached = system.cache_summary()["cached_paths"]
        print(
            f"  day {day}: exec={day_seconds:6.2f}s  parse={day_parse:6.2f}s  "
            f"cached_paths={cached}"
        )
        if day < 3:
            # Midnight: predict tomorrow's MPJPs and pre-cache them.
            # (The oracle predictor needs tomorrow's accesses in the
            # collector; a learned predictor would extrapolate instead.)
            for query in queries.values():
                planned = system.session.compile(query.sql)
                for _ in range(2):
                    system.collector.record_planned(
                        day + 1, planned.referenced_json_paths
                    )
            report = system.run_midnight_cycle(day=day + 1)
            print(
                f"    midnight: predicted={report.predicted_mpjp} "
                f"selected={len(report.selected)} "
                f"cache_bytes={system.registry.total_bytes():,} "
                f"build={report.build.build_seconds:4.2f}s"
            )

    print("\n== Fresh data lands -> cache invalidated automatically ==")
    factory = factories["Q1"]
    spec = factory.spec
    rows = [(9_000_000 + i, "20190104", factory.json(i)) for i in range(100)]
    session.catalog.append_rows(spec.database, spec.table, rows)
    result = system.sql(queries["Q1"].sql, day=4)
    print(
        f"  Q1 after append: parse_docs={result.metrics.parse_documents} "
        f"(cache bypassed), invalidated={system.registry.invalid_tables()}"
    )


if __name__ == "__main__":
    main()
