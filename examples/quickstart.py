"""Quickstart: cache JSONPath results and watch the parsing cost vanish.

Builds the paper's Fig 1 scenario — a warehouse table whose ``sale_logs``
column stores JSON — runs the two correlated daily queries against plain
SparkSQL-style execution, then caches the hot JSONPaths with Maxson and
runs them again.

Run:  python examples/quickstart.py
"""

from repro.core import MaxsonSystem
from repro.engine import Session
from repro.jsonlib import dumps
from repro.storage import BlockFileSystem, DataType, Schema
from repro.workload import PathKey


def build_warehouse() -> MaxsonSystem:
    """Create mydb.T with three daily partitions of JSON sale logs."""
    session = Session(fs=BlockFileSystem())
    schema = Schema.of(
        ("mall_id", DataType.STRING),
        ("date", DataType.STRING),
        ("sale_logs", DataType.STRING),
    )
    session.catalog.create_table("mydb", "T", schema)
    for day in (1, 2, 3):
        rows = []
        for i in range(2000):
            log = {
                "item_id": i % 50,
                "item_name": f"item{i % 50}",
                "sale_count": (i * 3) % 100,
                "turnover": (i * 7) % 1000,
                "price": (i % 50) + 1,
            }
            rows.append(("0001", f"2019010{day}", dumps(log)))
        session.catalog.append_rows("mydb", "T", rows, row_group_size=200)
    return MaxsonSystem(session=session)


TURNOVER_QUERY = """
select mall_id,
       get_json_object(sale_logs, '$.item_id') as item_id,
       get_json_object(sale_logs, '$.item_name') as item_name,
       get_json_object(sale_logs, '$.turnover') as turnover
from mydb.T
where date between '20190101' and '20190103'
order by get_json_object(sale_logs, '$.turnover') desc limit 1
"""

SALES_QUERY = """
select mall_id,
       get_json_object(sale_logs, '$.item_id') as item_id,
       get_json_object(sale_logs, '$.item_name') as item_name,
       get_json_object(sale_logs, '$.sale_count') as sale_count
from mydb.T
where date between '20190101' and '20190103'
order by get_json_object(sale_logs, '$.sale_count') desc limit 1
"""


def describe(label: str, result) -> None:
    m = result.metrics
    print(
        f"  {label:<18} total={m.total_seconds * 1000:7.1f} ms  "
        f"parse={m.parse_seconds * 1000:7.1f} ms "
        f"({m.parse_fraction:5.1%})  docs_parsed={m.parse_documents:6d}  "
        f"bytes_read={m.bytes_read:,}"
    )


def main() -> None:
    system = build_warehouse()

    print("== Baseline (every query re-parses the JSON) ==")
    base_turnover = system.baseline_sql(TURNOVER_QUERY)
    base_sales = system.baseline_sql(SALES_QUERY)
    describe("turnover query", base_turnover)
    describe("sales query", base_sales)

    # The two queries share item_id/item_name and each parses its metric —
    # exactly the spatial correlation Maxson caches away.
    hot_paths = [
        PathKey("mydb", "T", "sale_logs", path)
        for path in ("$.item_id", "$.item_name", "$.turnover", "$.sale_count")
    ]
    report = system.cacher.populate(hot_paths)
    print(
        f"\n== Cached {len(report.entries)} JSONPaths "
        f"({report.bytes_written:,} bytes, "
        f"{report.build_seconds * 1000:.1f} ms build) =="
    )

    maxson_turnover = system.sql(TURNOVER_QUERY)
    maxson_sales = system.sql(SALES_QUERY)
    describe("turnover query", maxson_turnover)
    describe("sales query", maxson_sales)

    assert maxson_turnover.rows == base_turnover.rows
    assert maxson_sales.rows == base_sales.rows
    print("\nresults identical to baseline:", maxson_turnover.rows)

    total_base = base_turnover.metrics.total_seconds + base_sales.metrics.total_seconds
    total_maxson = (
        maxson_turnover.metrics.total_seconds + maxson_sales.metrics.total_seconds
    )
    print(f"speedup: {total_base / total_maxson:.1f}x")


if __name__ == "__main__":
    main()
