"""Pre-caching beyond JSON: the same machinery over XML payloads.

The paper's conclusion suggests the pre-caching technique "can also be
applied to other data formats, such as XML". This example stores machine
state logs as XML, queries them through ``get_xml_object``, and lets
Maxson cache the hot XPath values — plan rewriting, value combining and
predicate pushdown all work unchanged because cache keys only care about
the (db, table, column, path) tuple, and the path's syntax selects the
parser ('$' = JSONPath, '/' = XPath).

Run:  python examples/xml_caching.py
"""

from repro.core import MaxsonSystem
from repro.engine import Session
from repro.storage import BlockFileSystem, DataType, Schema
from repro.workload import PathKey


def machine_log(i: int) -> str:
    return (
        f'<log host="node{i % 40:02d}" dc="dc{i % 3}">'
        f"<cpu><user>{(i * 7) % 100}</user><sys>{(i * 3) % 40}</sys></cpu>"
        f"<mem used='{(i * 11) % 64}' total='64'/>"
        f"<disk latency_ms='{(i % 500) / 10}'/>"
        "</log>"
    )


QUERY = """
select get_xml_object(payload, '/log/@host') as host,
       max(get_xml_object(payload, '/log/cpu/user')) as peak_cpu,
       avg(get_xml_object(payload, '/log/mem/@used')) as avg_mem
from ops.machine_state
where get_xml_object(payload, '/log/cpu/user') >= 90
group by get_xml_object(payload, '/log/@host')
order by peak_cpu desc limit 5
"""


def main() -> None:
    session = Session(fs=BlockFileSystem())
    schema = Schema.of(("id", DataType.INT64), ("payload", DataType.STRING))
    session.catalog.create_table("ops", "machine_state", schema)
    rows = [(i, machine_log(i)) for i in range(5000)]
    session.catalog.append_rows("ops", "machine_state", rows, row_group_size=500)
    system = MaxsonSystem(session=session)

    baseline = system.baseline_sql(QUERY)
    print("baseline (XML parsed per call):")
    print(
        f"  {baseline.metrics.total_seconds * 1000:7.1f} ms, "
        f"parse {baseline.metrics.parse_fraction:5.1%}, "
        f"{baseline.metrics.parse_documents} documents parsed"
    )

    hot = [
        PathKey("ops", "machine_state", "payload", path)
        for path in ("/log/@host", "/log/cpu/user", "/log/mem/@used")
    ]
    report = system.cacher.populate(hot)
    print(
        f"\ncached {len(report.entries)} XPath values "
        f"({report.bytes_written:,} bytes)"
    )

    cached = system.sql(QUERY)
    assert cached.rows == baseline.rows
    print("maxson (cache reads, predicate pushed onto cache table):")
    print(
        f"  {cached.metrics.total_seconds * 1000:7.1f} ms, "
        f"parse {cached.metrics.parse_fraction:5.1%}, "
        f"{cached.metrics.parse_documents} documents parsed, "
        f"row groups skipped "
        f"{cached.metrics.row_groups_skipped}/{cached.metrics.row_groups_total}"
    )
    print(
        f"\nspeedup {baseline.metrics.total_seconds / cached.metrics.total_seconds:.1f}x"
    )
    print("top hosts:", [row["host"] for row in cached.rows])


if __name__ == "__main__":
    main()
