"""A batched LSTM layer with full backpropagation through time.

Standard LSTM equations (Hochreiter & Schmidhuber 1997) with the four gate
projections fused into one weight matrix. All operations are batched: the
layer maps ``(B, T, D)`` input to ``(B, T, H)`` hidden states, so training
over thousands of equal-length (path, window) sequences vectorises across
the batch instead of looping in Python.

:class:`LSTMTagger` stacks layers and adds a per-timestep linear head for
sequence labelling — the Uni-LSTM comparator of the paper's Table IV, and
the emission network under the CRF in :mod:`repro.ml.lstm_crf`.
"""

from __future__ import annotations

import numpy as np

from .optim import Adam, clip_gradients

__all__ = ["LSTMLayer", "LSTMTagger", "LSTMSequenceClassifier", "softmax_rows"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


class LSTMLayer:
    """One LSTM layer. Gate order in the fused matrices: i, f, g, o."""

    def __init__(
        self, input_size: int, hidden_size: int, rng: np.random.Generator
    ) -> None:
        self.input_size = input_size
        self.hidden_size = hidden_size
        scale = 1.0 / np.sqrt(hidden_size)
        self.w_x = rng.uniform(-scale, scale, size=(input_size, 4 * hidden_size))
        self.w_h = rng.uniform(-scale, scale, size=(hidden_size, 4 * hidden_size))
        self.bias = np.zeros(4 * hidden_size)
        # Forget-gate bias init at 1.0: standard trick for gradient flow.
        self.bias[hidden_size : 2 * hidden_size] = 1.0
        self._cache: dict | None = None

    @property
    def params(self) -> list[np.ndarray]:
        return [self.w_x, self.w_h, self.bias]

    def forward(self, x: np.ndarray) -> np.ndarray:
        """x: (B, T, D) -> hidden states (B, T, H); caches for backward."""
        B, T, _ = x.shape
        H = self.hidden_size
        h = np.zeros((T + 1, B, H))
        c = np.zeros((T + 1, B, H))
        gates = np.zeros((T, B, 4 * H))
        c_tanh = np.zeros((T, B, H))
        for t in range(T):
            z = x[:, t, :] @ self.w_x + h[t] @ self.w_h + self.bias
            i = _sigmoid(z[:, :H])
            f = _sigmoid(z[:, H : 2 * H])
            g = np.tanh(z[:, 2 * H : 3 * H])
            o = _sigmoid(z[:, 3 * H :])
            c[t + 1] = f * c[t] + i * g
            ct = np.tanh(c[t + 1])
            h[t + 1] = o * ct
            gates[t, :, :H] = i
            gates[t, :, H : 2 * H] = f
            gates[t, :, 2 * H : 3 * H] = g
            gates[t, :, 3 * H :] = o
            c_tanh[t] = ct
        self._cache = {"x": x, "h": h, "c": c, "gates": gates, "c_tanh": c_tanh}
        return np.transpose(h[1:], (1, 0, 2))

    def backward(self, d_h_out: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        """BPTT. d_h_out: (B, T, H) gradient wrt the hidden outputs.

        Returns (d_x, [d_w_x, d_w_h, d_bias]).
        """
        if self._cache is None:
            raise RuntimeError("backward() before forward()")
        cache = self._cache
        x, h, c = cache["x"], cache["h"], cache["c"]
        gates, c_tanh = cache["gates"], cache["c_tanh"]
        B, T, _ = x.shape
        H = self.hidden_size
        d_w_x = np.zeros_like(self.w_x)
        d_w_h = np.zeros_like(self.w_h)
        d_bias = np.zeros_like(self.bias)
        d_x = np.zeros_like(x)
        d_h_next = np.zeros((B, H))
        d_c_next = np.zeros((B, H))
        for t in range(T - 1, -1, -1):
            i = gates[t, :, :H]
            f = gates[t, :, H : 2 * H]
            g = gates[t, :, 2 * H : 3 * H]
            o = gates[t, :, 3 * H :]
            ct = c_tanh[t]
            dh = d_h_out[:, t, :] + d_h_next
            do = dh * ct
            dc = dh * o * (1 - ct * ct) + d_c_next
            di = dc * g
            df = dc * c[t]
            dg = dc * i
            d_c_next = dc * f
            dz = np.concatenate(
                [
                    di * i * (1 - i),
                    df * f * (1 - f),
                    dg * (1 - g * g),
                    do * o * (1 - o),
                ],
                axis=1,
            )
            d_w_x += x[:, t, :].T @ dz
            d_w_h += h[t].T @ dz
            d_bias += dz.sum(axis=0)
            d_x[:, t, :] = dz @ self.w_x.T
            d_h_next = dz @ self.w_h.T
        return d_x, [d_w_x, d_w_h, d_bias]


class LSTMTagger:
    """Stacked LSTM + per-timestep linear head (logits over labels).

    This is the Uni-LSTM model of Table IV when trained with per-timestep
    cross-entropy, and the emission network of the LSTM+CRF model when its
    logits feed the CRF layer instead.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int = 50,
        num_layers: int = 2,
        num_labels: int = 2,
        seed: int = 0,
    ) -> None:
        rng = np.random.default_rng(seed)
        self.layers: list[LSTMLayer] = []
        size = input_size
        for _ in range(num_layers):
            self.layers.append(LSTMLayer(size, hidden_size, rng))
            size = hidden_size
        scale = 1.0 / np.sqrt(hidden_size)
        self.w_out = rng.uniform(-scale, scale, size=(hidden_size, num_labels))
        self.b_out = np.zeros(num_labels)
        self.num_labels = num_labels
        self._last_hidden: np.ndarray | None = None

    @property
    def params(self) -> list[np.ndarray]:
        out: list[np.ndarray] = []
        for layer in self.layers:
            out.extend(layer.params)
        out.extend([self.w_out, self.b_out])
        return out

    def forward(self, x: np.ndarray) -> np.ndarray:
        """x: (B, T, D) -> per-timestep logits (B, T, num_labels).

        A single (T, D) sequence is accepted too and yields (T, labels).
        """
        x = np.asarray(x, dtype=float)
        squeeze = x.ndim == 2
        if squeeze:
            x = x[None, :, :]
        h = x
        for layer in self.layers:
            h = layer.forward(h)
        self._last_hidden = h
        logits = h @ self.w_out + self.b_out
        return logits[0] if squeeze else logits

    def backward(self, d_logits: np.ndarray) -> list[np.ndarray]:
        """Gradient wrt params given d(loss)/d(logits); mirrors params order."""
        if self._last_hidden is None:
            raise RuntimeError("backward() before forward()")
        if d_logits.ndim == 2:
            d_logits = d_logits[None, :, :]
        hidden = self._last_hidden
        B, T, H = hidden.shape
        flat_hidden = hidden.reshape(B * T, H)
        flat_d = d_logits.reshape(B * T, -1)
        d_w_out = flat_hidden.T @ flat_d
        d_b_out = flat_d.sum(axis=0)
        d_h = d_logits @ self.w_out.T
        layer_grads: list[list[np.ndarray]] = []
        for layer in reversed(self.layers):
            d_h, grads = layer.backward(d_h)
            layer_grads.append(grads)
        out: list[np.ndarray] = []
        for grads in reversed(layer_grads):
            out.extend(grads)
        out.extend([d_w_out, d_b_out])
        return out


def softmax_rows(z: np.ndarray) -> np.ndarray:
    shifted = z - z.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


class LSTMSequenceClassifier:
    """Uni-LSTM sequence labeller trained with per-timestep cross-entropy.

    ``fit`` consumes a list of (sequence, labels) pairs with shapes
    ``(T, D)`` and ``(T,)`` (equal T across the dataset); prediction
    labels every timestep and the caller reads the position of interest —
    the final, masked "tomorrow" step in the MPJP task, which also gets
    ``target_weight`` x loss during training.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int = 50,
        num_layers: int = 2,
        learning_rate: float = 1e-2,
        epochs: int = 12,
        batch_size: int = 64,
        clip_norm: float = 5.0,
        target_weight: float = 3.0,
        seed: int = 0,
    ) -> None:
        self.tagger = LSTMTagger(
            input_size, hidden_size, num_layers, num_labels=2, seed=seed
        )
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.clip_norm = clip_norm
        self.target_weight = target_weight
        self.seed = seed
        self.loss_history_: list[float] = []

    def fit(self, sequences: list[np.ndarray], labels: list[np.ndarray]):
        if len(sequences) != len(labels):
            raise ValueError("sequences and labels length mismatch")
        if not sequences:
            return self
        X = np.stack([np.asarray(s, dtype=float) for s in sequences])
        Y = np.stack([np.asarray(l, dtype=int) for l in labels])
        N, T, _ = X.shape
        weights = np.ones(T)
        weights[-1] = self.target_weight
        optimizer = Adam(learning_rate=self.learning_rate)
        rng = np.random.default_rng(self.seed)
        self.loss_history_ = []
        for _ in range(self.epochs):
            order = rng.permutation(N)
            total = 0.0
            for start in range(0, N, self.batch_size):
                batch = order[start : start + self.batch_size]
                x = X[batch]
                y = Y[batch]
                B = len(batch)
                logits = self.tagger.forward(x)
                probs = softmax_rows(logits)
                eps = 1e-12
                picked = probs[
                    np.arange(B)[:, None], np.arange(T)[None, :], y
                ]
                total += -float(np.sum(weights * np.log(picked + eps))) / (B * T)
                d_logits = probs.copy()
                d_logits[np.arange(B)[:, None], np.arange(T)[None, :], y] -= 1.0
                d_logits *= weights[None, :, None]
                d_logits /= B * T
                grads = self.tagger.backward(d_logits)
                clip_gradients(grads, self.clip_norm)
                optimizer.step(self.tagger.params, grads)
            self.loss_history_.append(total / max(1, (N // self.batch_size) or 1))
        return self

    def predict_sequence(self, x: np.ndarray) -> np.ndarray:
        logits = self.tagger.forward(np.asarray(x, dtype=float))
        return logits.argmax(axis=-1)

    def predict_last(self, sequences: list[np.ndarray]) -> np.ndarray:
        """Label of the final timestep of each sequence."""
        if not sequences:
            return np.zeros(0, dtype=int)
        X = np.stack([np.asarray(s, dtype=float) for s in sequences])
        logits = self.tagger.forward(X)
        return logits[:, -1, :].argmax(axis=-1).astype(int)
