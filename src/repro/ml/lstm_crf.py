"""The LSTM+CRF sequence labeller — the paper's proposed predictor.

An :class:`~repro.ml.lstm.LSTMTagger` encodes the per-day feature sequence
into per-timestep emission scores; a
:class:`~repro.ml.crf.LinearChainCRF` models label-transition structure on
top. Training minimises the CRF negative log-likelihood end to end: the
CRF returns d(NLL)/d(emissions), which flows back through the LSTM via
BPTT. Decoding is Viterbi (the paper's stated decoder).

Emissions are computed for a whole minibatch at once (the LSTM is
batched); the CRF's forward-backward runs per sequence, which is cheap at
two labels.
"""

from __future__ import annotations

import numpy as np

from .crf import LinearChainCRF
from .lstm import LSTMTagger
from .optim import Adam, clip_gradients

__all__ = ["LSTMCRFTagger"]


class LSTMCRFTagger:
    """End-to-end trained LSTM encoder + linear-chain CRF decoder.

    Parameters follow the paper's Table III configuration:
    ``num_layers=2``, hidden ("word") size 50, and
    ``all_possible_transitions=True``.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int = 50,
        num_layers: int = 2,
        num_labels: int = 2,
        all_possible_transitions: bool = True,
        learning_rate: float = 1e-2,
        epochs: int = 12,
        batch_size: int = 64,
        clip_norm: float = 5.0,
        target_weight: float = 3.0,
        seed: int = 0,
    ) -> None:
        self.tagger = LSTMTagger(
            input_size, hidden_size, num_layers, num_labels=num_labels, seed=seed
        )
        self.crf = LinearChainCRF(
            num_labels=num_labels,
            all_possible_transitions=all_possible_transitions,
            seed=seed,
        )
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.clip_norm = clip_norm
        #: strength of the auxiliary softmax loss on the final timestep's
        #: emissions — the masked "tomorrow" position is the actual
        #: prediction target, so its emissions get extra supervision on
        #: top of the sequence-level CRF likelihood.
        self.target_weight = target_weight
        self.seed = seed
        self.loss_history_: list[float] = []

    def fit(
        self,
        sequences: list[np.ndarray],
        labels: list[np.ndarray],
    ) -> "LSTMCRFTagger":
        """Train on (T, D) sequences with (T,) integer label vectors."""
        if len(sequences) != len(labels):
            raise ValueError("sequences and labels length mismatch")
        if not sequences:
            return self
        X = np.stack([np.asarray(s, dtype=float) for s in sequences])
        Y = np.stack([np.asarray(l, dtype=int) for l in labels])
        N = X.shape[0]
        optimizer = Adam(learning_rate=self.learning_rate)
        rng = np.random.default_rng(self.seed)
        self.loss_history_ = []
        for _ in range(self.epochs):
            order = rng.permutation(N)
            total = 0.0
            batches = 0
            for start in range(0, N, self.batch_size):
                batch = order[start : start + self.batch_size]
                x = X[batch]
                y = Y[batch]
                B = len(batch)
                emissions = self.tagger.forward(x)  # (B, T, L)
                d_emissions = np.zeros_like(emissions)
                crf_grads = [np.zeros_like(p) for p in self.crf.params]
                batch_nll = 0.0
                for b in range(B):
                    nll, d_em, grads = self.crf.gradients(emissions[b], y[b])
                    batch_nll += nll
                    d_emissions[b] = d_em
                    for acc, g in zip(crf_grads, grads):
                        acc += g
                if self.target_weight:
                    # Auxiliary supervision on the target position.
                    last = emissions[:, -1, :]
                    shifted = last - last.max(axis=1, keepdims=True)
                    probs = np.exp(shifted)
                    probs /= probs.sum(axis=1, keepdims=True)
                    aux = probs.copy()
                    aux[np.arange(B), y[:, -1]] -= 1.0
                    d_emissions[:, -1, :] += self.target_weight * aux
                batch_nll /= B
                d_emissions /= B
                crf_grads = [g / B for g in crf_grads]
                total += batch_nll
                batches += 1
                lstm_grads = self.tagger.backward(d_emissions)
                grads = lstm_grads + crf_grads
                clip_gradients(grads, self.clip_norm)
                optimizer.step(self.tagger.params + self.crf.params, grads)
            self.loss_history_.append(total / max(batches, 1))
        return self

    def predict_sequence(self, x: np.ndarray) -> np.ndarray:
        """Viterbi-decoded label sequence for one (T, D) input."""
        emissions = self.tagger.forward(np.asarray(x, dtype=float))
        return self.crf.decode(emissions)

    def predict_last(self, sequences: list[np.ndarray]) -> np.ndarray:
        """Label of the final timestep of each sequence (the MPJP verdict)."""
        if not sequences:
            return np.zeros(0, dtype=int)
        X = np.stack([np.asarray(s, dtype=float) for s in sequences])
        emissions = self.tagger.forward(X)
        return np.array(
            [int(self.crf.decode(emissions[b])[-1]) for b in range(len(sequences))],
            dtype=int,
        )

    def log_likelihood(self, x: np.ndarray, y: np.ndarray) -> float:
        emissions = self.tagger.forward(np.asarray(x, dtype=float))
        return self.crf.log_likelihood(emissions, np.asarray(y, dtype=int))
