"""Feature preprocessing and data splitting."""

from __future__ import annotations

import numpy as np

__all__ = ["StandardScaler", "train_val_test_split", "one_hot"]


class StandardScaler:
    """Zero-mean, unit-variance standardisation fit on training data."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "StandardScaler":
        X = np.asarray(X, dtype=float)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std == 0] = 1.0  # constant features pass through unscaled
        self.scale_ = std
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("StandardScaler used before fit()")
        return (np.asarray(X, dtype=float) - self.mean_) / self.scale_

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


def train_val_test_split(
    n: int,
    train: float = 0.7,
    val: float = 0.2,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Shuffled index split; the paper uses 70/20/10."""
    if not 0 < train < 1 or not 0 <= val < 1 or train + val >= 1:
        raise ValueError(f"invalid split fractions train={train}, val={val}")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    n_train = int(round(n * train))
    n_val = int(round(n * val))
    return (
        order[:n_train],
        order[n_train : n_train + n_val],
        order[n_train + n_val :],
    )


def one_hot(indices: np.ndarray, size: int) -> np.ndarray:
    """Row-wise one-hot encoding; out-of-range indices map to all-zeros."""
    indices = np.asarray(indices, dtype=int)
    out = np.zeros((indices.shape[0], size), dtype=float)
    valid = (indices >= 0) & (indices < size)
    out[np.arange(indices.shape[0])[valid], indices[valid]] = 1.0
    return out
