"""Gradient-descent optimisers for the NumPy models.

Parameters and gradients are flat lists of arrays in a fixed order; each
optimiser keeps per-parameter state keyed by position. Updates are applied
in place so callers can hold references to the arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam", "clip_gradients"]


def clip_gradients(grads: list[np.ndarray], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= max_norm.

    Returns the pre-clip norm. LSTM BPTT over long windows can blow up;
    the paper-scale models train stably with max_norm around 5.
    """
    total = float(np.sqrt(sum(float(np.sum(g * g)) for g in grads)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for g in grads:
            g *= scale
    return total


class Optimizer:
    """Base class: subclasses implement ``step(params, grads)``."""

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Plain SGD with optional momentum and L2 weight decay."""

    def __init__(
        self,
        learning_rate: float = 0.1,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[int, np.ndarray] = {}

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        for i, (p, g) in enumerate(zip(params, grads)):
            if self.weight_decay:
                g = g + self.weight_decay * p
            if self.momentum:
                v = self._velocity.get(i)
                if v is None:
                    v = np.zeros_like(p)
                v *= self.momentum
                v -= self.learning_rate * g
                self._velocity[i] = v
                p += v
            else:
                p -= self.learning_rate * g


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    def __init__(
        self,
        learning_rate: float = 1e-2,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t = 0

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        for i, (p, g) in enumerate(zip(params, grads)):
            if self.weight_decay:
                g = g + self.weight_decay * p
            m = self._m.get(i)
            v = self._v.get(i)
            if m is None:
                m = np.zeros_like(p)
                v = np.zeros_like(p)
            m = b1 * m + (1 - b1) * g
            v = b2 * v + (1 - b2) * (g * g)
            self._m[i] = m
            self._v[i] = v
            m_hat = m / (1 - b1**self._t)
            v_hat = v / (1 - b2**self._t)
            p -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
