"""Binary logistic regression (the paper's LR baseline).

Trained with full-batch Adam on the regularised negative log-likelihood.
The feature vectors in the MPJP prediction task are flat (location one-hots
plus the count/datediff sequences concatenated), so a linear model can only
exploit marginal signal — exactly why the paper reports it with perfect
precision but poor recall (Table III).
"""

from __future__ import annotations

import numpy as np

from .optim import Adam

__all__ = ["LogisticRegression"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


class LogisticRegression:
    """L2-regularised binary logistic regression.

    Parameters mirror the paper's Table III configuration in spirit:
    ``penalty='l2'`` maps to ``l2`` (the regularisation strength), and
    ``max_iterations`` bounds the optimiser steps.
    """

    def __init__(
        self,
        l2: float = 1e-3,
        learning_rate: float = 0.05,
        max_iterations: int = 1000,
        tolerance: float = 1e-6,
        class_weight: str | None = None,
        seed: int = 0,
    ) -> None:
        self.l2 = l2
        self.learning_rate = learning_rate
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.class_weight = class_weight
        self.seed = seed
        self.weights_: np.ndarray | None = None
        self.bias_: float = 0.0
        self.loss_history_: list[float] = []

    def _sample_weights(self, y: np.ndarray) -> np.ndarray:
        if self.class_weight != "balanced":
            return np.ones_like(y, dtype=float)
        positive = max(int(y.sum()), 1)
        negative = max(int((1 - y).sum()), 1)
        n = y.shape[0]
        w = np.where(y == 1, n / (2 * positive), n / (2 * negative))
        return w.astype(float)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes X={X.shape} y={y.shape}")
        rng = np.random.default_rng(self.seed)
        w = rng.normal(scale=0.01, size=X.shape[1])
        b = np.zeros(1)
        optimizer = Adam(learning_rate=self.learning_rate)
        sample_w = self._sample_weights(y)
        norm = sample_w.sum()
        previous = np.inf
        self.loss_history_ = []
        for _ in range(self.max_iterations):
            z = X @ w + b[0]
            p = _sigmoid(z)
            eps = 1e-12
            loss = (
                -np.sum(sample_w * (y * np.log(p + eps) + (1 - y) * np.log(1 - p + eps)))
                / norm
                + 0.5 * self.l2 * float(w @ w)
            )
            self.loss_history_.append(float(loss))
            residual = sample_w * (p - y) / norm
            grad_w = X.T @ residual + self.l2 * w
            grad_b = np.array([residual.sum()])
            optimizer.step([w, b], [grad_w, grad_b])
            if abs(previous - loss) < self.tolerance:
                break
            previous = loss
        self.weights_ = w
        self.bias_ = float(b[0])
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self.weights_ is None:
            raise RuntimeError("model used before fit()")
        return np.asarray(X, dtype=float) @ self.weights_ + self.bias_

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        return _sigmoid(self.decision_function(X))

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        return (self.predict_proba(X) >= threshold).astype(int)
