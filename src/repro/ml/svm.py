"""Linear SVM with squared hinge loss (the paper's SVM baseline).

Matches the spirit of ``LinearSVC(loss='squared_hinge', penalty='l2',
max_iter=1000)`` used in the paper's Table III: a linear decision boundary
trained by full-batch subgradient descent on the squared hinge objective.
"""

from __future__ import annotations

import numpy as np

from .optim import Adam

__all__ = ["LinearSVM"]


class LinearSVM:
    """L2-regularised linear SVM, squared hinge loss, labels {0, 1}."""

    def __init__(
        self,
        c: float = 1.0,
        learning_rate: float = 0.05,
        max_iter: int = 1000,
        tolerance: float = 1e-7,
        class_weight: str | None = None,
        seed: int = 0,
    ) -> None:
        self.c = c
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.tolerance = tolerance
        self.class_weight = class_weight
        self.seed = seed
        self.weights_: np.ndarray | None = None
        self.bias_: float = 0.0
        self.loss_history_: list[float] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "LinearSVM":
        X = np.asarray(X, dtype=float)
        y01 = np.asarray(y, dtype=float).ravel()
        if X.ndim != 2 or X.shape[0] != y01.shape[0]:
            raise ValueError(f"bad shapes X={X.shape} y={y01.shape}")
        signs = np.where(y01 == 1, 1.0, -1.0)
        if self.class_weight == "balanced":
            positive = max(int(y01.sum()), 1)
            negative = max(int((1 - y01).sum()), 1)
            n = y01.shape[0]
            sample_w = np.where(y01 == 1, n / (2 * positive), n / (2 * negative))
        else:
            sample_w = np.ones_like(y01)
        rng = np.random.default_rng(self.seed)
        w = rng.normal(scale=0.01, size=X.shape[1])
        b = np.zeros(1)
        optimizer = Adam(learning_rate=self.learning_rate)
        previous = np.inf
        self.loss_history_ = []
        n = X.shape[0]
        for _ in range(self.max_iter):
            margins = signs * (X @ w + b[0])
            slack = np.maximum(0.0, 1.0 - margins)
            loss = 0.5 * float(w @ w) + self.c * float(
                np.sum(sample_w * slack * slack)
            ) / n
            self.loss_history_.append(loss)
            # d/dw squared hinge: -2 * C * slack * sign * x  (where slack>0)
            coeff = -2.0 * self.c * sample_w * slack * signs / n
            grad_w = w + X.T @ coeff
            grad_b = np.array([coeff.sum()])
            optimizer.step([w, b], [grad_w, grad_b])
            if abs(previous - loss) < self.tolerance:
                break
            previous = loss
        self.weights_ = w
        self.bias_ = float(b[0])
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        if self.weights_ is None:
            raise RuntimeError("model used before fit()")
        return np.asarray(X, dtype=float) @ self.weights_ + self.bias_

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.decision_function(X) >= 0.0).astype(int)
