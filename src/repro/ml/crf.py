"""A linear-chain conditional random field over emission scores.

The CRF layer of the paper's LSTM+CRF predictor. Given per-timestep
emission scores ``(T, L)`` (from the LSTM's linear head), the CRF defines

    score(y) = sum_t emissions[t, y_t]
             + start[y_0] + sum_t transitions[y_{t-1}, y_t] + end[y_{T-1}]

and models p(y | x) = exp(score(y)) / Z. Training maximises the exact
log-likelihood via the forward algorithm in log space; decoding uses
Viterbi. Gradients are returned both for the CRF's own parameters and for
the emissions, so an upstream network (the LSTM) can backpropagate
through the layer.
"""

from __future__ import annotations

import numpy as np

__all__ = ["LinearChainCRF"]


def _logsumexp(a: np.ndarray, axis: int | None = None) -> np.ndarray:
    peak = a.max(axis=axis, keepdims=True)
    out = np.log(np.sum(np.exp(a - peak), axis=axis, keepdims=True)) + peak
    return out.squeeze(axis=axis) if axis is not None else out.reshape(())


class LinearChainCRF:
    """CRF with learned start/transition/end potentials.

    ``all_possible_transitions=True`` (the paper's setting) means every
    label-to-label transition has its own learned weight; ``False`` ties
    them all to zero (emissions only), which is useful in ablations.
    """

    def __init__(
        self,
        num_labels: int = 2,
        all_possible_transitions: bool = True,
        seed: int = 0,
    ) -> None:
        rng = np.random.default_rng(seed)
        self.num_labels = num_labels
        self.all_possible_transitions = all_possible_transitions
        if all_possible_transitions:
            self.transitions = rng.normal(scale=0.01, size=(num_labels, num_labels))
            self.start = rng.normal(scale=0.01, size=num_labels)
            self.end = rng.normal(scale=0.01, size=num_labels)
        else:
            self.transitions = np.zeros((num_labels, num_labels))
            self.start = np.zeros(num_labels)
            self.end = np.zeros(num_labels)

    @property
    def params(self) -> list[np.ndarray]:
        return [self.transitions, self.start, self.end]

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def log_partition(self, emissions: np.ndarray) -> float:
        """log Z via the forward algorithm (log space)."""
        alpha = self.start + emissions[0]
        for t in range(1, emissions.shape[0]):
            # alpha'_j = logsumexp_i(alpha_i + trans_ij) + emit_tj
            alpha = _logsumexp(alpha[:, None] + self.transitions, axis=0) + emissions[t]
        return float(_logsumexp(alpha + self.end))

    def sequence_score(self, emissions: np.ndarray, labels: np.ndarray) -> float:
        """Unnormalised score of one label sequence."""
        labels = np.asarray(labels, dtype=int)
        score = self.start[labels[0]] + float(emissions[0, labels[0]])
        for t in range(1, emissions.shape[0]):
            score += self.transitions[labels[t - 1], labels[t]]
            score += float(emissions[t, labels[t]])
        score += self.end[labels[-1]]
        return float(score)

    def log_likelihood(self, emissions: np.ndarray, labels: np.ndarray) -> float:
        return self.sequence_score(emissions, labels) - self.log_partition(emissions)

    def marginals(self, emissions: np.ndarray) -> np.ndarray:
        """Posterior label marginals (T, L) via forward-backward."""
        T, L = emissions.shape
        alpha = np.zeros((T, L))
        alpha[0] = self.start + emissions[0]
        for t in range(1, T):
            alpha[t] = (
                _logsumexp(alpha[t - 1][:, None] + self.transitions, axis=0)
                + emissions[t]
            )
        beta = np.zeros((T, L))
        beta[T - 1] = self.end
        for t in range(T - 2, -1, -1):
            beta[t] = _logsumexp(
                self.transitions + (emissions[t + 1] + beta[t + 1])[None, :], axis=1
            )
        log_z = float(_logsumexp(alpha[T - 1] + self.end))
        return np.exp(alpha + beta - log_z)

    def decode(self, emissions: np.ndarray) -> np.ndarray:
        """Viterbi: the most probable label sequence."""
        T, L = emissions.shape
        score = self.start + emissions[0]
        backpointers = np.zeros((T, L), dtype=int)
        for t in range(1, T):
            candidate = score[:, None] + self.transitions  # (from, to)
            backpointers[t] = candidate.argmax(axis=0)
            score = candidate.max(axis=0) + emissions[t]
        score = score + self.end
        best = np.zeros(T, dtype=int)
        best[T - 1] = int(score.argmax())
        for t in range(T - 1, 0, -1):
            best[t - 1] = backpointers[t, best[t]]
        return best

    # ------------------------------------------------------------------
    # learning
    # ------------------------------------------------------------------
    def gradients(
        self, emissions: np.ndarray, labels: np.ndarray
    ) -> tuple[float, np.ndarray, list[np.ndarray]]:
        """Negative log-likelihood and its gradients.

        Returns ``(nll, d_emissions, [d_transitions, d_start, d_end])``.
        The gradient of the NLL wrt emissions is (marginals - one_hot),
        and wrt transitions it is (expected counts - observed counts);
        both come from one forward-backward pass.
        """
        labels = np.asarray(labels, dtype=int)
        T, L = emissions.shape
        # Forward-backward in log space.
        alpha = np.zeros((T, L))
        alpha[0] = self.start + emissions[0]
        for t in range(1, T):
            alpha[t] = (
                _logsumexp(alpha[t - 1][:, None] + self.transitions, axis=0)
                + emissions[t]
            )
        beta = np.zeros((T, L))
        beta[T - 1] = self.end
        for t in range(T - 2, -1, -1):
            beta[t] = _logsumexp(
                self.transitions + (emissions[t + 1] + beta[t + 1])[None, :], axis=1
            )
        log_z = float(_logsumexp(alpha[T - 1] + self.end))
        nll = log_z - self.sequence_score(emissions, labels)

        marginals = np.exp(alpha + beta - log_z)
        d_emissions = marginals.copy()
        d_emissions[np.arange(T), labels] -= 1.0

        d_transitions = np.zeros_like(self.transitions)
        for t in range(1, T):
            # pairwise marginal p(y_{t-1}=i, y_t=j)
            pairwise = (
                alpha[t - 1][:, None]
                + self.transitions
                + (emissions[t] + beta[t])[None, :]
                - log_z
            )
            d_transitions += np.exp(pairwise)
            d_transitions[labels[t - 1], labels[t]] -= 1.0

        d_start = marginals[0].copy()
        d_start[labels[0]] -= 1.0
        d_end = marginals[T - 1].copy()
        d_end[labels[-1]] -= 1.0
        if not self.all_possible_transitions:
            d_transitions[:] = 0.0
            d_start[:] = 0.0
            d_end[:] = 0.0
        return nll, d_emissions, [d_transitions, d_start, d_end]
