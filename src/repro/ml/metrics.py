"""Classification metrics: precision, recall, F1.

The paper evaluates its predictors with precision/recall/F1 over the
binary MPJP / non-MPJP labels (Tables III and IV). The positive class is
label ``1`` (MPJP) throughout.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PRF", "precision_recall_f1", "confusion_counts", "accuracy"]


@dataclass(frozen=True)
class PRF:
    """Precision / recall / F1 triple."""

    precision: float
    recall: float
    f1: float

    def as_row(self) -> dict[str, float]:
        return {
            "precision": round(self.precision, 3),
            "recall": round(self.recall, 3),
            "f1": round(self.f1, 3),
        }


def confusion_counts(
    y_true: np.ndarray, y_pred: np.ndarray
) -> tuple[int, int, int, int]:
    """(tp, fp, fn, tn) for the positive class 1."""
    y_true = np.asarray(y_true).ravel().astype(int)
    y_pred = np.asarray(y_pred).ravel().astype(int)
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    tp = int(np.sum((y_true == 1) & (y_pred == 1)))
    fp = int(np.sum((y_true == 0) & (y_pred == 1)))
    fn = int(np.sum((y_true == 1) & (y_pred == 0)))
    tn = int(np.sum((y_true == 0) & (y_pred == 0)))
    return tp, fp, fn, tn


def precision_recall_f1(y_true, y_pred) -> PRF:
    """Binary P/R/F1 with the convention 0/0 = 0."""
    tp, fp, fn, _ = confusion_counts(np.asarray(y_true), np.asarray(y_pred))
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return PRF(precision=precision, recall=recall, f1=f1)


def accuracy(y_true, y_pred) -> float:
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    if y_true.size == 0:
        return 0.0
    return float(np.mean(y_true == y_pred))
