"""Multi-layer perceptron classifier (the paper's MLPClassifier baseline).

A feed-forward network with ReLU hidden layers and a softmax output,
trained by full-batch Adam on cross-entropy — the NumPy equivalent of
sklearn's ``MLPClassifier(solver='lbfgs', hidden_layer_sizes=(50, 10, 2))``
configuration reported in Table III (the solver differs; the capacity and
the resulting accuracy regime match).
"""

from __future__ import annotations

import numpy as np

from .optim import Adam

__all__ = ["MLPClassifier"]


def _softmax(z: np.ndarray) -> np.ndarray:
    shifted = z - z.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class MLPClassifier:
    """ReLU MLP with a 2-way softmax head."""

    def __init__(
        self,
        hidden_layer_sizes: tuple[int, ...] = (50, 10, 2),
        alpha: float = 1e-5,
        learning_rate: float = 1e-2,
        max_iter: int = 400,
        tolerance: float = 1e-7,
        random_state: int = 0,
    ) -> None:
        self.hidden_layer_sizes = tuple(hidden_layer_sizes)
        self.alpha = alpha
        self.learning_rate = learning_rate
        self.max_iter = max_iter
        self.tolerance = tolerance
        self.random_state = random_state
        self.weights_: list[np.ndarray] = []
        self.biases_: list[np.ndarray] = []
        self.loss_history_: list[float] = []

    def _init_params(self, n_features: int) -> None:
        rng = np.random.default_rng(self.random_state)
        sizes = [n_features, *self.hidden_layer_sizes, 2]
        self.weights_ = []
        self.biases_ = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)  # He init for ReLU stacks
            self.weights_.append(rng.normal(scale=scale, size=(fan_in, fan_out)))
            self.biases_.append(np.zeros(fan_out))

    def _forward(self, X: np.ndarray) -> tuple[list[np.ndarray], np.ndarray]:
        activations = [X]
        h = X
        last = len(self.weights_) - 1
        for i, (w, b) in enumerate(zip(self.weights_, self.biases_)):
            z = h @ w + b
            h = z if i == last else np.maximum(z, 0.0)
            activations.append(h)
        return activations, _softmax(h)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "MLPClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=int).ravel()
        if X.ndim != 2 or X.shape[0] != y.shape[0]:
            raise ValueError(f"bad shapes X={X.shape} y={y.shape}")
        self._init_params(X.shape[1])
        optimizer = Adam(learning_rate=self.learning_rate)
        n = X.shape[0]
        targets = np.zeros((n, 2))
        targets[np.arange(n), y] = 1.0
        previous = np.inf
        self.loss_history_ = []
        for _ in range(self.max_iter):
            activations, probs = self._forward(X)
            eps = 1e-12
            data_loss = -float(np.sum(targets * np.log(probs + eps))) / n
            reg_loss = 0.5 * self.alpha * sum(
                float(np.sum(w * w)) for w in self.weights_
            )
            loss = data_loss + reg_loss
            self.loss_history_.append(loss)
            # Backward pass.
            grads_w: list[np.ndarray] = [None] * len(self.weights_)  # type: ignore
            grads_b: list[np.ndarray] = [None] * len(self.biases_)  # type: ignore
            delta = (probs - targets) / n
            for i in range(len(self.weights_) - 1, -1, -1):
                grads_w[i] = activations[i].T @ delta + self.alpha * self.weights_[i]
                grads_b[i] = delta.sum(axis=0)
                if i > 0:
                    delta = delta @ self.weights_[i].T
                    delta[activations[i] <= 0] = 0.0  # ReLU gate
            optimizer.step(
                self.weights_ + self.biases_, grads_w + grads_b
            )
            if abs(previous - loss) < self.tolerance:
                break
            previous = loss
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self.weights_:
            raise RuntimeError("model used before fit()")
        _, probs = self._forward(np.asarray(X, dtype=float))
        return probs

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.predict_proba(X).argmax(axis=1)
