"""Learning substrate: NumPy-only models for MPJP prediction.

Model zoo matching the paper's Table III/IV comparison:
LR (:class:`LogisticRegression`), SVM (:class:`LinearSVM`),
MLP (:class:`MLPClassifier`), Uni-LSTM (:class:`LSTMSequenceClassifier`)
and the proposed LSTM+CRF hybrid (:class:`LSTMCRFTagger`).
"""

from .crf import LinearChainCRF
from .linear import LogisticRegression
from .lstm import LSTMLayer, LSTMSequenceClassifier, LSTMTagger
from .lstm_crf import LSTMCRFTagger
from .metrics import PRF, accuracy, confusion_counts, precision_recall_f1
from .mlp import MLPClassifier
from .optim import Adam, SGD, clip_gradients
from .preprocessing import StandardScaler, one_hot, train_val_test_split
from .svm import LinearSVM

__all__ = [
    "LogisticRegression",
    "LinearSVM",
    "MLPClassifier",
    "LSTMLayer",
    "LSTMTagger",
    "LSTMSequenceClassifier",
    "LSTMCRFTagger",
    "LinearChainCRF",
    "PRF",
    "precision_recall_f1",
    "confusion_counts",
    "accuracy",
    "Adam",
    "SGD",
    "clip_gradients",
    "StandardScaler",
    "one_hot",
    "train_val_test_split",
]
