"""Storage substrate: simulated HDFS + ORC-like columnar format + SARGs."""

from .codec import CodecError, checksum_of
from .fs import BlockFileSystem, FileStatus, FsError, TransientFsError
from .orc import (
    DEFAULT_ROW_GROUP_SIZE,
    DEFAULT_STRIPE_BYTES,
    CorruptStripeError,
    OrcError,
    OrcFileReader,
    OrcWriter,
    RowGroupInfo,
    StripeInfo,
)
from .readers import OrcReader, ReadResult
from .sargs import (
    AndSarg,
    ColumnStats,
    ComparisonSarg,
    OrSarg,
    Sarg,
    SargOp,
    always_true,
)
from .schema import DataType, Field, Schema, SchemaError

__all__ = [
    "BlockFileSystem",
    "FileStatus",
    "FsError",
    "TransientFsError",
    "CodecError",
    "checksum_of",
    "OrcError",
    "CorruptStripeError",
    "OrcWriter",
    "OrcFileReader",
    "OrcReader",
    "ReadResult",
    "RowGroupInfo",
    "StripeInfo",
    "DEFAULT_ROW_GROUP_SIZE",
    "DEFAULT_STRIPE_BYTES",
    "Sarg",
    "SargOp",
    "ComparisonSarg",
    "AndSarg",
    "OrSarg",
    "ColumnStats",
    "always_true",
    "DataType",
    "Field",
    "Schema",
    "SchemaError",
]
