"""A simulated append-only, block-based distributed file system.

Plays HDFS's role in the paper: tables are directories of immutable files,
each file is divided into fixed-size *blocks* (a block never spans files),
and the query engine reads files split-by-split where — as in Maxson's
cacher — one *file* equals one input split so that raw-table files and
cache-table files align by index (paper §IV-C, Fig 7).

All data lives in memory as ``bytes``. The file system tracks every byte
moved through :meth:`BlockFileSystem.read` so the engine can report input
sizes (paper Fig 12b/12d).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = ["FsError", "TransientFsError", "FileStatus", "BlockFileSystem"]

#: Default simulated block size. The real deployment uses 128-256MB; tests
#: use small files, so a small default keeps block maths observable.
DEFAULT_BLOCK_SIZE = 4 * 1024 * 1024


class FsError(Exception):
    """File system operation failure (missing path, overwrite, etc.)."""


class TransientFsError(FsError):
    """A failure that may succeed on retry (injected or environmental).

    Retry loops key on this type: a plain :class:`FsError` (missing path,
    double create) is permanent and retrying it is pointless, while a
    transient error models the blips a distributed file system shows
    under load — the :mod:`repro.faults` layer injects exactly these.
    """


@dataclass(frozen=True)
class FileStatus:
    """Metadata for one file: path, length, block count, mtime."""

    path: str
    length: int
    block_count: int
    modification_time: float


@dataclass
class _File:
    data: bytes
    modification_time: float


@dataclass
class IoStats:
    """Bytes and operations moved through the file system."""

    bytes_read: int = 0
    bytes_written: int = 0
    reads: int = 0
    writes: int = 0
    seconds_read: float = 0.0

    def reset(self) -> None:
        self.bytes_read = 0
        self.bytes_written = 0
        self.reads = 0
        self.writes = 0
        self.seconds_read = 0.0


def _normalise(path: str) -> str:
    path = "/" + path.strip("/")
    if "//" in path:
        raise FsError(f"invalid path {path!r}")
    return path


def _parent(path: str) -> str:
    head, _, _ = path.rpartition("/")
    return head or "/"


@dataclass
class BlockFileSystem:
    """An in-memory append-only file system with HDFS-like semantics.

    Files are write-once (append allowed, in-place modification not).
    Directories are implicit but listable. A logical *clock* can be
    injected so the workload simulator controls modification times — cache
    validity in Maxson compares cache time against table modification time,
    so deterministic clocks make those tests exact.
    """

    block_size: int = DEFAULT_BLOCK_SIZE
    clock: object = None  # callable () -> float; defaults to time.time
    #: Simulated device latency charged per :meth:`read` call. The sleep
    #: happens *outside* the lock so concurrent readers overlap their
    #: waits — the property morsel-parallel scans exploit.
    read_latency_seconds: float = 0.0
    _files: dict[str, _File] = field(default_factory=dict)
    stats: IoStats = field(default_factory=IoStats)
    # Server mode reads and writes from many threads; the lock keeps
    # directory listings consistent with concurrent creates/deletes and
    # the io counters exact.
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    def _now(self) -> float:
        if self.clock is not None:
            return self.clock()  # type: ignore[operator]
        return time.time()

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def create(self, path: str, data: bytes) -> FileStatus:
        """Create a new file. Fails if the path already exists."""
        path = _normalise(path)
        with self._lock:
            if path in self._files:
                raise FsError(f"file exists: {path}")
            self._files[path] = _File(data=data, modification_time=self._now())
            self.stats.bytes_written += len(data)
            self.stats.writes += 1
            return self.status(path)

    def append(self, path: str, data: bytes) -> FileStatus:
        """Append to an existing file (the only permitted mutation)."""
        path = _normalise(path)
        with self._lock:
            if path not in self._files:
                raise FsError(f"no such file: {path}")
            existing = self._files[path]
            self._files[path] = _File(
                data=existing.data + data, modification_time=self._now()
            )
            self.stats.bytes_written += len(data)
            self.stats.writes += 1
            return self.status(path)

    def delete(self, path: str) -> bool:
        """Delete a file, or a directory recursively.

        Idempotent: deleting a path that does not exist returns ``False``
        instead of raising, because retry and crash-recovery paths
        re-issue deletes they may have already completed.
        """
        path = _normalise(path)
        with self._lock:
            if path in self._files:
                del self._files[path]
                return True
            prefix = path.rstrip("/") + "/"
            doomed = [p for p in self._files if p.startswith(prefix)]
            for p in doomed:
                del self._files[p]
            return bool(doomed)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def read(self, path: str, offset: int = 0, length: int | None = None) -> bytes:
        """Read ``length`` bytes (default: to EOF) starting at ``offset``."""
        path = _normalise(path)
        started = time.perf_counter()
        with self._lock:
            if path not in self._files:
                raise FsError(f"no such file: {path}")
            data = self._files[path].data
            if length is None:
                chunk = data[offset:]
            else:
                chunk = data[offset : offset + length]
            self.stats.bytes_read += len(chunk)
            self.stats.reads += 1
        if self.read_latency_seconds > 0.0:
            time.sleep(self.read_latency_seconds)
        with self._lock:
            self.stats.seconds_read += time.perf_counter() - started
        return chunk

    def exists(self, path: str) -> bool:
        path = _normalise(path)
        with self._lock:
            if path in self._files:
                return True
            prefix = path.rstrip("/") + "/"
            return any(p.startswith(prefix) for p in self._files)

    def status(self, path: str) -> FileStatus:
        path = _normalise(path)
        with self._lock:
            if path not in self._files:
                raise FsError(f"no such file: {path}")
            f = self._files[path]
            blocks = max(1, -(-len(f.data) // self.block_size)) if f.data else 0
            return FileStatus(
                path=path,
                length=len(f.data),
                block_count=blocks,
                modification_time=f.modification_time,
            )

    def list_directory(self, path: str) -> list[FileStatus]:
        """Statuses of the files directly inside directory ``path``, sorted.

        Sorted lexicographically by name — the ordering guarantee Maxson's
        cacher relies on so file index *i* of the cache table corresponds
        to file index *i* of the raw table.
        """
        prefix = _normalise(path).rstrip("/") + "/"
        with self._lock:
            names = [
                p
                for p in self._files
                if p.startswith(prefix) and "/" not in p[len(prefix) :]
            ]
            return [self.status(p) for p in sorted(names)]

    def directory_mtime(self, path: str) -> float:
        """Latest modification time across a directory's files."""
        statuses = self.list_directory(path)
        if not statuses:
            raise FsError(f"empty or missing directory: {path}")
        return max(s.modification_time for s in statuses)

    def directory_size(self, path: str) -> int:
        """Total bytes across a directory's files (0 if missing)."""
        return sum(s.length for s in self.list_directory(path)) if self.exists(path) else 0

    # ------------------------------------------------------------------
    # splits
    # ------------------------------------------------------------------
    def blocks_of(self, path: str) -> list[tuple[int, int]]:
        """(offset, length) of each block of the file."""
        status = self.status(path)
        out: list[tuple[int, int]] = []
        offset = 0
        while offset < status.length:
            length = min(self.block_size, status.length - offset)
            out.append((offset, length))
            offset += length
        return out

    def file_splits(self, directory: str) -> list[str]:
        """One split per file, in index order (the Maxson alignment rule)."""
        return [s.path for s in self.list_directory(directory)]
