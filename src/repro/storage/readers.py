"""SARG-aware table readers over the ORC-like format.

:class:`OrcReader` connects the pieces: it loads a file from the
:class:`~repro.storage.fs.BlockFileSystem`, evaluates an optional SARG
against every row group's statistics to build a skip mask, and decodes only
the surviving groups for the requested columns.

The skip mask is exposed (:attr:`OrcReader.row_group_mask`) because
Maxson's predicate pushdown (paper Algorithm 3) shares the mask computed on
the *cache* table with the *primary* reader of the raw table.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from .fs import BlockFileSystem, FsError
from .orc import OrcError, OrcFileReader
from .sargs import Sarg

__all__ = ["ReadResult", "OrcReader", "NdjsonReader", "split_reader"]


@dataclass
class ReadResult:
    """Outcome of one split read."""

    columns: dict[str, list[object]]
    rows_read: int
    row_groups_total: int
    row_groups_read: int
    bytes_read: int

    @property
    def row_groups_skipped(self) -> int:
        return self.row_groups_total - self.row_groups_read


class OrcReader:
    """Read one ORC-like file (one *split* in Maxson's alignment scheme).

    Parameters
    ----------
    fs:
        The file system holding the file.
    path:
        File path inside ``fs``.
    columns:
        Column names to decode; ``None`` means all.
    sarg:
        Optional search argument evaluated against row-group statistics.
    """

    def __init__(
        self,
        fs: BlockFileSystem,
        path: str,
        columns: list[str] | None = None,
        sarg: Sarg | None = None,
    ) -> None:
        self.fs = fs
        self.path = path
        self.columns = columns
        self.sarg = sarg
        self._file = OrcFileReader(fs.read(path))
        self._mask: list[bool] | None = None
        self._shared_mask: list[bool] | None = None

    @property
    def schema(self):
        return self._file.schema

    @property
    def row_count(self) -> int:
        return self._file.row_count

    @property
    def stripe_count(self) -> int:
        return self._file.stripe_count

    # ------------------------------------------------------------------
    # row-group elimination
    # ------------------------------------------------------------------
    @property
    def row_group_mask(self) -> list[bool]:
        """Per-row-group include mask (True = must read).

        Combines the local SARG mask with any shared mask installed by
        :meth:`share_row_group_mask`. Computed lazily and cached.
        """
        if self._mask is None:
            layout = self._file.row_group_layout()
            if self.sarg is None:
                mask = [True] * len(layout)
            else:
                mask = [self.sarg.may_match(rg.column_stats) for rg in layout]
            if self._shared_mask is not None:
                if len(self._shared_mask) != len(mask):
                    raise OrcError(
                        "shared row-group mask length mismatch: "
                        f"{len(self._shared_mask)} vs {len(mask)} groups"
                    )
                mask = [a and b for a, b in zip(mask, self._shared_mask)]
            self._mask = mask
        return self._mask

    def share_row_group_mask(self, mask: list[bool]) -> None:
        """Install a mask computed by another reader (Algorithm 3, line 7).

        Only legal before the first read. Alignment requires identical
        row-group layouts, which Maxson guarantees for single-stripe files
        parsed file-for-file from the raw table.
        """
        self._shared_mask = list(mask)
        self._mask = None  # recompute on next access

    def can_align_row_groups(self) -> bool:
        """Pushdown sharing precondition: the file has exactly one stripe."""
        return self.stripe_count == 1

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def read(self) -> ReadResult:
        """Decode the requested columns of all non-skipped row groups."""
        mask = self.row_group_mask
        columns, bytes_read = self._file.read_columns(self.columns, mask)
        rows = len(next(iter(columns.values()))) if columns else 0
        return ReadResult(
            columns=columns,
            rows_read=rows,
            row_groups_total=len(mask),
            row_groups_read=sum(mask),
            bytes_read=bytes_read,
        )

    def read_rows(self) -> list[tuple]:
        """Row-major convenience; column order follows the request order."""
        result = self.read()
        wanted = self.columns if self.columns is not None else self.schema.names
        series = [result.columns[name] for name in wanted]
        return list(zip(*series)) if series else []


class NdjsonReader:
    """Read one NDJSON segment file with the :class:`OrcReader` surface.

    Telemetry segments (``system.*`` tables) are newline-delimited JSON
    appended while the engine runs, so this reader is deliberately
    forgiving where the ORC reader is strict:

    * A missing file yields zero rows — segment rotation can delete a
      file between split listing and split read.
    * A torn tail (crash mid-append) or any unparseable line is skipped
      and counted, never raised — the registered system tables must stay
      queryable after a crash.
    * SARGs are accepted but not used for skipping (the residual filter
      above the scan preserves correctness); the whole file is one row
      group, so the pushdown-sharing protocol degrades to no-ops.

    Requested columns are promoted from each document's top-level keys;
    a missing key reads as NULL, nested values are re-encoded as JSON
    text (so ``get_json_object`` works on them), and the virtual
    ``payload`` column carries the whole document as JSON text.
    """

    def __init__(
        self,
        fs: BlockFileSystem,
        path: str,
        columns: list[str] | None = None,
        sarg: Sarg | None = None,
    ) -> None:
        self.fs = fs
        self.path = path
        self.columns = columns
        self.sarg = sarg
        self.lines_skipped = 0
        try:
            data = fs.read(path)
        except FsError:
            data = b""
        self._bytes_read = len(data)
        self._docs: list[dict] = []
        for line in data.split(b"\n"):
            if not line.strip():
                continue
            try:
                doc = json.loads(line)
            except (ValueError, UnicodeDecodeError):
                self.lines_skipped += 1
                continue
            if not isinstance(doc, dict):
                self.lines_skipped += 1
                continue
            self._docs.append(doc)

    @property
    def row_count(self) -> int:
        return len(self._docs)

    @property
    def stripe_count(self) -> int:
        return 1

    @property
    def row_group_mask(self) -> list[bool]:
        return [True]

    def share_row_group_mask(self, mask: list[bool]) -> None:
        """Accepted and ignored — there are no group stats to combine."""

    def can_align_row_groups(self) -> bool:
        return False

    @staticmethod
    def _cell(doc: dict, name: str) -> object:
        if name == "payload":
            return json.dumps(doc, sort_keys=True, default=str)
        value = doc.get(name)
        if isinstance(value, (dict, list)):
            return json.dumps(value, sort_keys=True, default=str)
        return value

    def read(self) -> ReadResult:
        if self.columns is not None:
            wanted = list(self.columns)
        else:
            seen: dict[str, None] = {}
            for doc in self._docs:
                for key in doc:
                    seen.setdefault(key, None)
            wanted = list(seen)
        columns = {
            name: [self._cell(doc, name) for doc in self._docs]
            for name in wanted
        }
        return ReadResult(
            columns=columns,
            rows_read=len(self._docs),
            row_groups_total=1,
            row_groups_read=1,
            bytes_read=self._bytes_read,
        )

    def read_rows(self) -> list[tuple]:
        result = self.read()
        series = list(result.columns.values())
        return list(zip(*series)) if series else []


def split_reader(
    fs: BlockFileSystem,
    path: str,
    columns: list[str] | None = None,
    sarg: Sarg | None = None,
):
    """Reader factory dispatching on the split's storage format.

    Telemetry segments are ``.ndjson``; everything else in the warehouse
    is the ORC-like format. Scan operators go through this factory so
    system tables flow through the identical execution path as raw
    tables (prefilter, batch engine, morsels, cache builds)."""
    if path.endswith(".ndjson"):
        return NdjsonReader(fs, path, columns=columns, sarg=sarg)
    return OrcReader(fs, path, columns=columns, sarg=sarg)
