"""Physical schema shared by the storage layer and the query engine.

The type lattice is the small fragment the paper's workload needs: the
warehouse stores JSON as strings plus ordinary scalar columns (Fig 1 of the
paper: ``mall_id string, date string, sale_logs string``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["DataType", "Field", "Schema", "SchemaError", "python_type_of"]


class SchemaError(Exception):
    """Schema construction or lookup failure."""


class DataType(enum.Enum):
    """Physical column types supported by the ORC-like format."""

    INT64 = "int64"
    FLOAT64 = "float64"
    STRING = "string"
    BOOL = "bool"

    @classmethod
    def infer(cls, value: object) -> "DataType":
        """Infer the physical type of a Python value (bool before int!)."""
        if isinstance(value, bool):
            return cls.BOOL
        if isinstance(value, int):
            return cls.INT64
        if isinstance(value, float):
            return cls.FLOAT64
        if isinstance(value, str):
            return cls.STRING
        raise SchemaError(f"unsupported value type: {type(value).__name__}")


_PYTHON_TYPES = {
    DataType.INT64: int,
    DataType.FLOAT64: float,
    DataType.STRING: str,
    DataType.BOOL: bool,
}


def python_type_of(dtype: DataType) -> type:
    """The Python type that carries values of ``dtype``."""
    return _PYTHON_TYPES[dtype]


@dataclass(frozen=True)
class Field:
    """One named, nullable column."""

    name: str
    dtype: DataType

    def validate(self, value: object) -> None:
        """Raise :class:`SchemaError` if ``value`` does not fit this field."""
        if value is None:
            return
        expected = _PYTHON_TYPES[self.dtype]
        if expected is float and isinstance(value, int) and not isinstance(value, bool):
            return  # ints are acceptable in float columns
        if not isinstance(value, expected) or (
            expected is int and isinstance(value, bool)
        ):
            raise SchemaError(
                f"column {self.name!r} expects {self.dtype.value}, "
                f"got {type(value).__name__}"
            )


@dataclass(frozen=True)
class Schema:
    """An ordered collection of fields with O(1) name lookup."""

    fields: tuple[Field, ...]

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in schema: {names}")
        object.__setattr__(
            self, "_index", {f.name: i for i, f in enumerate(self.fields)}
        )

    @classmethod
    def of(cls, *columns: tuple[str, DataType]) -> "Schema":
        """Build a schema from ``(name, dtype)`` pairs."""
        return cls(tuple(Field(name, dtype) for name, dtype in columns))

    @property
    def names(self) -> list[str]:
        return [f.name for f in self.fields]

    def __len__(self) -> int:
        return len(self.fields)

    def __contains__(self, name: str) -> bool:
        return name in self._index  # type: ignore[attr-defined]

    def index_of(self, name: str) -> int:
        try:
            return self._index[name]  # type: ignore[attr-defined]
        except KeyError:
            raise SchemaError(
                f"no column {name!r}; have {self.names}"
            ) from None

    def field(self, name: str) -> Field:
        return self.fields[self.index_of(name)]

    def select(self, names: list[str]) -> "Schema":
        """Projection of this schema onto ``names`` (in the given order)."""
        return Schema(tuple(self.field(n) for n in names))

    def concat(self, other: "Schema") -> "Schema":
        """Schema of this record extended by ``other``'s fields."""
        return Schema(self.fields + other.fields)
