"""Search ARGuments (SARGs): row-group elimination predicates.

ORC readers evaluate simplified predicate trees against the per-row-group
min/max statistics to decide which row groups can be skipped entirely
(paper §IV-F). A SARG answers *maybe* or *no* per row group: ``no`` means
the predicate provably matches zero rows of the group; ``maybe`` means the
group must be read. The evaluation is therefore conservative — SARGs can
never drop a matching row.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "ColumnStats",
    "SargOp",
    "Sarg",
    "ComparisonSarg",
    "AndSarg",
    "OrSarg",
    "always_true",
]


@dataclass(frozen=True)
class ColumnStats:
    """Per-row-group statistics for one column."""

    minimum: object
    maximum: object
    null_count: int
    value_count: int

    @property
    def all_null(self) -> bool:
        return self.null_count == self.value_count

    @classmethod
    def of(cls, values: list[object]) -> "ColumnStats":
        """Compute stats over one row group's values."""
        non_null = [v for v in values if v is not None]
        if not non_null:
            return cls(None, None, len(values), len(values))
        return cls(
            minimum=min(non_null),
            maximum=max(non_null),
            null_count=len(values) - len(non_null),
            value_count=len(values),
        )


class SargOp(enum.Enum):
    """Comparison operators expressible in a SARG."""

    EQ = "="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    IS_NULL = "is null"
    IS_NOT_NULL = "is not null"


class Sarg:
    """Base class. ``may_match(stats)`` is the row-group test."""

    def may_match(self, stats_by_column: dict[str, ColumnStats]) -> bool:
        raise NotImplementedError

    def columns(self) -> set[str]:
        """The column names this SARG inspects."""
        raise NotImplementedError


def _comparable(a: object, b: object) -> bool:
    """min/max comparisons are only meaningful within one type family."""
    numeric = (int, float)
    if isinstance(a, bool) or isinstance(b, bool):
        return isinstance(a, bool) and isinstance(b, bool)
    if isinstance(a, numeric) and isinstance(b, numeric):
        return True
    return type(a) is type(b)


@dataclass(frozen=True)
class ComparisonSarg(Sarg):
    """``column OP literal`` (or a null test when ``op`` is a null op)."""

    column: str
    op: SargOp
    literal: object = None

    def columns(self) -> set[str]:
        return {self.column}

    def may_match(self, stats_by_column: dict[str, ColumnStats]) -> bool:
        stats = stats_by_column.get(self.column)
        if stats is None:
            return True  # no statistics -> cannot eliminate
        if self.op is SargOp.IS_NULL:
            return stats.null_count > 0
        if self.op is SargOp.IS_NOT_NULL:
            return not stats.all_null
        if stats.all_null:
            return False  # comparisons with NULL never match
        lo, hi = stats.minimum, stats.maximum
        lit = self.literal
        if lit is None or not _comparable(lo, lit):
            return True  # incomparable domains -> be conservative
        if self.op is SargOp.EQ:
            return lo <= lit <= hi
        if self.op is SargOp.LT:
            return lo < lit
        if self.op is SargOp.LE:
            return lo <= lit
        if self.op is SargOp.GT:
            return hi > lit
        if self.op is SargOp.GE:
            return hi >= lit
        raise AssertionError(f"unhandled op {self.op}")  # pragma: no cover


@dataclass(frozen=True)
class AndSarg(Sarg):
    """Conjunction: eliminable if any conjunct is eliminable."""

    children: tuple[Sarg, ...]

    def columns(self) -> set[str]:
        return set().union(*(c.columns() for c in self.children)) if self.children else set()

    def may_match(self, stats_by_column: dict[str, ColumnStats]) -> bool:
        return all(c.may_match(stats_by_column) for c in self.children)


@dataclass(frozen=True)
class OrSarg(Sarg):
    """Disjunction: eliminable only if every disjunct is eliminable."""

    children: tuple[Sarg, ...]

    def columns(self) -> set[str]:
        return set().union(*(c.columns() for c in self.children)) if self.children else set()

    def may_match(self, stats_by_column: dict[str, ColumnStats]) -> bool:
        if not self.children:
            return True
        return any(c.may_match(stats_by_column) for c in self.children)


class _AlwaysTrue(Sarg):
    def may_match(self, stats_by_column: dict[str, ColumnStats]) -> bool:
        return True

    def columns(self) -> set[str]:
        return set()

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return "Sarg(TRUE)"


def always_true() -> Sarg:
    """The SARG that never eliminates anything (no pushdown possible)."""
    return _AlwaysTrue()
