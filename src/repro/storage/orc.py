"""An ORC-like columnar file format.

Mirrors the pieces of Apache ORC the paper relies on (§IV-F):

* a file is split into **stripes** (bounded by a target byte size, 64MB by
  default in real ORC — configurable here);
* each stripe holds columnar chunks for **row groups** of a fixed number of
  rows (10,000 in ORC and in this implementation's default);
* every row group records per-column min/max/null statistics used by
  readers with SARGs to skip row groups entirely;
* the file footer carries the schema and the stripe directory.

Files serialise to ``bytes`` and live in a
:class:`~repro.storage.fs.BlockFileSystem`. Layout::

    magic "MORC"  version u8
    stripe 0 .. stripe N-1           (column chunks, row-group major)
    footer                           (schema, stripe directory + checksums, stats)
    footer_crc32 u32-le  footer_length u32-le  magic "MORC"

Format version 2 adds integrity checksums: every stripe's CRC32 lives in
the footer's stripe directory and the footer itself carries a trailing
CRC32. Readers verify the footer eagerly and each stripe lazily before
its first decode, raising :class:`CorruptStripeError` instead of
decoding garbage — the contract Maxson's graceful-degradation path
(fall back to raw parsing) depends on. Version 1 files (no checksums)
remain readable.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .codec import (
    CodecError,
    checksum_of,
    decode_column,
    encode_column,
    read_varint,
    write_varint,
)
from .sargs import ColumnStats
from .schema import DataType, Field, Schema

__all__ = [
    "OrcError",
    "CorruptStripeError",
    "RowGroupInfo",
    "StripeInfo",
    "OrcWriter",
    "OrcFileReader",
    "DEFAULT_ROW_GROUP_SIZE",
    "DEFAULT_STRIPE_BYTES",
]

MAGIC = b"MORC"
VERSION = 2

#: Rows per row group — ORC's documented default.
DEFAULT_ROW_GROUP_SIZE = 10_000

#: Target stripe payload size before a new stripe is cut. Real ORC uses
#: 64MB; the experiments in this reproduction use far smaller files, so the
#: default keeps most files single-stripe, matching the paper's pushdown
#: precondition ("we only perform this optimisation when a file has only
#: one stripe and that is quite common").
DEFAULT_STRIPE_BYTES = 64 * 1024 * 1024


class OrcError(Exception):
    """Malformed ORC-like file or invalid writer use."""


class CorruptStripeError(OrcError):
    """A stripe's bytes do not match the checksum recorded in the footer.

    Raised *before* any value of the stripe is decoded, so a corrupt
    cache table can never leak wrong JSONPath values into query results.
    """


@dataclass(frozen=True)
class RowGroupInfo:
    """Directory entry for one row group inside a stripe.

    ``chunk_lengths`` holds the encoded byte length of each column chunk
    (schema order) so readers can seek past unwanted chunks instead of
    decoding them — the moral equivalent of ORC's row index streams.
    """

    row_count: int
    column_stats: dict[str, ColumnStats]
    chunk_lengths: tuple[int, ...]


@dataclass(frozen=True)
class StripeInfo:
    """Directory entry for one stripe."""

    offset: int
    length: int
    row_count: int
    row_groups: tuple[RowGroupInfo, ...]
    checksum: int = 0
    """CRC32 of the stripe's bytes (0 in version-1 files: unverified)."""


@dataclass
class _PendingStripe:
    columns: list[list[object]]
    rows: int = 0
    approx_bytes: int = 0


def _approx_row_bytes(row: tuple) -> int:
    total = 8
    for value in row:
        if isinstance(value, str):
            total += len(value) + 4
        else:
            total += 8
    return total


class OrcWriter:
    """Stream rows into an ORC-like byte buffer.

    Usage::

        writer = OrcWriter(schema)
        writer.write_row((1, "a", ...))
        data = writer.finish()

    Rows are tuples in schema order. ``finish`` returns the serialised
    file; the writer cannot be reused afterwards.
    """

    def __init__(
        self,
        schema: Schema,
        row_group_size: int = DEFAULT_ROW_GROUP_SIZE,
        stripe_bytes: int = DEFAULT_STRIPE_BYTES,
    ) -> None:
        if row_group_size <= 0:
            raise OrcError("row_group_size must be positive")
        self.schema = schema
        self.row_group_size = row_group_size
        self.stripe_bytes = stripe_bytes
        self._buffer = bytearray(MAGIC)
        self._buffer.append(VERSION)
        self._stripes: list[StripeInfo] = []
        self._pending = _PendingStripe(columns=[[] for _ in schema.fields])
        self._finished = False

    def write_row(self, row: tuple) -> None:
        """Append one row (tuple in schema order)."""
        if self._finished:
            raise OrcError("writer already finished")
        if len(row) != len(self.schema):
            raise OrcError(
                f"row has {len(row)} values, schema has {len(self.schema)}"
            )
        for column, value, fld in zip(self._pending.columns, row, self.schema.fields):
            fld.validate(value)
            column.append(value)
        self._pending.rows += 1
        self._pending.approx_bytes += _approx_row_bytes(row)
        if self._pending.approx_bytes >= self.stripe_bytes:
            self._flush_stripe()

    def write_rows(self, rows) -> None:
        """Append an iterable of rows."""
        for row in rows:
            self.write_row(row)

    def _flush_stripe(self) -> None:
        if self._pending.rows == 0:
            return
        offset = len(self._buffer)
        row_groups: list[RowGroupInfo] = []
        chunk = bytearray()
        total = self._pending.rows
        for start in range(0, total, self.row_group_size):
            end = min(start + self.row_group_size, total)
            stats: dict[str, ColumnStats] = {}
            lengths: list[int] = []
            for fld, column in zip(self.schema.fields, self._pending.columns):
                values = column[start:end]
                stats[fld.name] = ColumnStats.of(values)
                encoded = encode_column(fld.dtype, values)
                lengths.append(len(encoded))
                chunk.extend(encoded)
            row_groups.append(
                RowGroupInfo(
                    row_count=end - start,
                    column_stats=stats,
                    chunk_lengths=tuple(lengths),
                )
            )
        self._buffer.extend(chunk)
        self._stripes.append(
            StripeInfo(
                offset=offset,
                length=len(chunk),
                row_count=total,
                row_groups=tuple(row_groups),
                checksum=checksum_of(bytes(chunk)),
            )
        )
        self._pending = _PendingStripe(columns=[[] for _ in self.schema.fields])

    def finish(self) -> bytes:
        """Flush, write the footer, and return the file bytes."""
        if self._finished:
            raise OrcError("writer already finished")
        self._flush_stripe()
        self._finished = True
        footer = _encode_footer(self.schema, self._stripes)
        self._buffer.extend(footer)
        self._buffer.extend(struct.pack("<I", checksum_of(footer)))
        self._buffer.extend(struct.pack("<I", len(footer)))
        self._buffer.extend(MAGIC)
        return bytes(self._buffer)


# ----------------------------------------------------------------------
# footer encoding
# ----------------------------------------------------------------------
_DTYPE_CODES = {t: i for i, t in enumerate(DataType)}
_CODE_DTYPES = {i: t for i, t in enumerate(DataType)}


def _encode_stat_value(out: bytearray, value: object) -> None:
    # A single stats value: reuse the column codec on a 1-element column.
    if value is None:
        out.append(0)
        return
    out.append(1)
    dtype = DataType.infer(value)
    out.extend(encode_column(dtype, [value]))


def _decode_stat_value(data: bytes, pos: int) -> tuple[object, int]:
    flag = data[pos]
    pos += 1
    if flag == 0:
        return None, pos
    _, values, pos = decode_column(data, pos)
    return values[0], pos


def _encode_footer(
    schema: Schema, stripes: list[StripeInfo], version: int = VERSION
) -> bytes:
    out = bytearray()
    write_varint(out, len(schema))
    for fld in schema.fields:
        raw = fld.name.encode("utf-8")
        write_varint(out, len(raw))
        out.extend(raw)
        out.append(_DTYPE_CODES[fld.dtype])
    write_varint(out, len(stripes))
    for stripe in stripes:
        write_varint(out, stripe.offset)
        write_varint(out, stripe.length)
        write_varint(out, stripe.row_count)
        if version >= 2:
            write_varint(out, stripe.checksum)
        write_varint(out, len(stripe.row_groups))
        for rg in stripe.row_groups:
            write_varint(out, rg.row_count)
            for length, fld in zip(rg.chunk_lengths, schema.fields):
                write_varint(out, length)
                stats = rg.column_stats[fld.name]
                _encode_stat_value(out, stats.minimum)
                _encode_stat_value(out, stats.maximum)
                write_varint(out, stats.null_count)
                write_varint(out, stats.value_count)
    return bytes(out)


def _decode_footer(data: bytes, version: int = VERSION) -> tuple[Schema, list[StripeInfo]]:
    pos = 0
    n_fields, pos = read_varint(data, pos)
    fields: list[Field] = []
    for _ in range(n_fields):
        length, pos = read_varint(data, pos)
        name = data[pos : pos + length].decode("utf-8")
        pos += length
        dtype = _CODE_DTYPES[data[pos]]
        pos += 1
        fields.append(Field(name, dtype))
    schema = Schema(tuple(fields))
    n_stripes, pos = read_varint(data, pos)
    stripes: list[StripeInfo] = []
    for _ in range(n_stripes):
        offset, pos = read_varint(data, pos)
        length, pos = read_varint(data, pos)
        row_count, pos = read_varint(data, pos)
        checksum = 0
        if version >= 2:
            checksum, pos = read_varint(data, pos)
        n_groups, pos = read_varint(data, pos)
        groups: list[RowGroupInfo] = []
        for _ in range(n_groups):
            rg_rows, pos = read_varint(data, pos)
            stats: dict[str, ColumnStats] = {}
            lengths: list[int] = []
            for fld in fields:
                chunk_len, pos = read_varint(data, pos)
                lengths.append(chunk_len)
                minimum, pos = _decode_stat_value(data, pos)
                maximum, pos = _decode_stat_value(data, pos)
                null_count, pos = read_varint(data, pos)
                value_count, pos = read_varint(data, pos)
                stats[fld.name] = ColumnStats(minimum, maximum, null_count, value_count)
            groups.append(
                RowGroupInfo(
                    row_count=rg_rows,
                    column_stats=stats,
                    chunk_lengths=tuple(lengths),
                )
            )
        stripes.append(
            StripeInfo(
                offset=offset,
                length=length,
                row_count=row_count,
                row_groups=tuple(groups),
                checksum=checksum,
            )
        )
    return schema, stripes


class OrcFileReader:
    """Random-access reader over serialised ORC-like bytes.

    The reader decodes the footer eagerly and stripes lazily. Column
    pruning (read only some columns) and row-group skipping (via a boolean
    include mask) are both supported — they are the levers Maxson's
    predicate pushdown pulls.
    """

    def __init__(self, data: bytes) -> None:
        if len(data) < len(MAGIC) * 2 + 5 or data[: len(MAGIC)] != MAGIC:
            raise OrcError("not an MORC file (bad magic)")
        if data[-len(MAGIC) :] != MAGIC:
            raise OrcError("truncated MORC file (bad tail magic)")
        self.version = data[len(MAGIC)]
        if self.version not in (1, VERSION):
            raise OrcError(f"unsupported MORC version {self.version}")
        (footer_len,) = struct.unpack_from("<I", data, len(data) - len(MAGIC) - 4)
        # Version 2 stores the footer's own CRC32 just before its length.
        tail_fixed = len(MAGIC) + 4 + (4 if self.version >= 2 else 0)
        footer_start = len(data) - tail_fixed - footer_len
        if footer_start < len(MAGIC) + 1:
            raise OrcError("corrupt footer length")
        footer = data[footer_start : footer_start + footer_len]
        if self.version >= 2:
            (footer_crc,) = struct.unpack_from(
                "<I", data, len(data) - len(MAGIC) - 8
            )
            if checksum_of(footer) != footer_crc:
                raise OrcError("corrupt footer (checksum mismatch)")
        try:
            self.schema, self.stripes = _decode_footer(footer, self.version)
        except (CodecError, IndexError) as exc:
            raise OrcError(f"corrupt footer: {exc}") from exc
        self._data = data
        self._verified_stripes: set[int] = set()

    @property
    def row_count(self) -> int:
        return sum(s.row_count for s in self.stripes)

    @property
    def stripe_count(self) -> int:
        return len(self.stripes)

    def _verify_stripe(self, index: int, stripe: StripeInfo) -> None:
        """Check the stripe's CRC32 before its first decode (version ≥ 2).

        Verification is lazy and cached per stripe: fully skipped stripes
        are never checksummed (their bytes are never interpreted), and a
        verified stripe is not re-hashed on later column reads.
        """
        if self.version < 2 or index in self._verified_stripes:
            return
        span = self._data[stripe.offset : stripe.offset + stripe.length]
        if checksum_of(span) != stripe.checksum:
            raise CorruptStripeError(
                f"stripe {index} checksum mismatch "
                f"(offset={stripe.offset}, length={stripe.length})"
            )
        self._verified_stripes.add(index)

    def row_group_layout(self) -> list[RowGroupInfo]:
        """All row groups of the file in row order (across stripes)."""
        out: list[RowGroupInfo] = []
        for stripe in self.stripes:
            out.extend(stripe.row_groups)
        return out

    def read_columns(
        self,
        names: list[str] | None = None,
        row_group_mask: list[bool] | None = None,
    ) -> tuple[dict[str, list[object]], int]:
        """Decode the requested columns.

        ``names=None`` reads every column. ``row_group_mask`` is indexed
        over :meth:`row_group_layout`; ``False`` entries are *skipped*
        without decoding (their rows simply do not appear in the output).
        Returns ``(columns, bytes_decoded)`` where ``bytes_decoded`` counts
        only the column chunks actually touched — the reader's contribution
        to input-size accounting.
        """
        wanted = names if names is not None else self.schema.names
        for name in wanted:
            self.schema.index_of(name)  # raise early on unknown columns
        columns: dict[str, list[object]] = {name: [] for name in wanted}
        bytes_decoded = 0
        group_index = 0
        for stripe_index, stripe in enumerate(self.stripes):
            pos = stripe.offset
            for rg in stripe.row_groups:
                include = (
                    row_group_mask[group_index]
                    if row_group_mask is not None and group_index < len(row_group_mask)
                    else True
                )
                for fld, chunk_len in zip(self.schema.fields, rg.chunk_lengths):
                    if include and fld.name in columns:
                        self._verify_stripe(stripe_index, stripe)
                        _, values, end = decode_column(self._data, pos)
                        if end - pos != chunk_len:
                            raise OrcError(
                                f"chunk length mismatch for {fld.name!r}: "
                                f"directory says {chunk_len}, decoded {end - pos}"
                            )
                        columns[fld.name].extend(values)
                        bytes_decoded += chunk_len
                        pos = end
                    else:
                        pos += chunk_len  # true seek: skipped chunks cost nothing
                group_index += 1
        return columns, bytes_decoded

    def read_rows(
        self,
        names: list[str] | None = None,
        row_group_mask: list[bool] | None = None,
    ) -> list[tuple]:
        """Row-oriented convenience over :meth:`read_columns`."""
        wanted = names if names is not None else self.schema.names
        columns, _ = self.read_columns(wanted, row_group_mask)
        series = [columns[name] for name in wanted]
        return list(zip(*series)) if series else []


