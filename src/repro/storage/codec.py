"""Binary encoding primitives for the ORC-like file format.

Column chunks are encoded with a presence bitmap followed by type-specific
value streams: zigzag varints for integers, IEEE doubles for floats,
length-prefixed UTF-8 for strings, and packed bits for booleans. The codec
is deliberately byte-exact and versioned so files round-trip across
writer/reader revisions.
"""

from __future__ import annotations

import struct
import zlib

from .schema import DataType

__all__ = [
    "CodecError",
    "checksum_of",
    "write_varint",
    "read_varint",
    "zigzag_encode",
    "zigzag_decode",
    "encode_column",
    "decode_column",
]


class CodecError(Exception):
    """Corrupt or truncated encoded data."""


def checksum_of(data: bytes) -> int:
    """CRC32 of a byte span (detects every single-byte flip).

    Used by the ORC-like format for per-stripe and footer integrity:
    readers verify before decoding so corruption surfaces as a typed
    error instead of garbage values.
    """
    return zlib.crc32(data) & 0xFFFFFFFF


def write_varint(out: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint."""
    if value < 0:
        raise CodecError("varint requires a non-negative value")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_varint(data: bytes, pos: int) -> tuple[int, int]:
    """Read an unsigned LEB128 varint; returns (value, new_pos)."""
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise CodecError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise CodecError("varint too long")


def zigzag_encode(value: int) -> int:
    """Map a signed int to unsigned so small magnitudes stay small."""
    return (value << 1) ^ (value >> 63) if -(2**63) <= value < 2**63 else _big_zigzag(value)


def _big_zigzag(value: int) -> int:
    # Arbitrary-precision fallback (Python ints are unbounded).
    return value << 1 if value >= 0 else ((-value) << 1) - 1


def zigzag_decode(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def _encode_presence(out: bytearray, values: list[object]) -> None:
    bits = bytearray((len(values) + 7) // 8)
    for i, v in enumerate(values):
        if v is not None:
            bits[i >> 3] |= 1 << (i & 7)
    out.extend(bits)


def _decode_presence(data: bytes, pos: int, count: int) -> tuple[list[bool], int]:
    nbytes = (count + 7) // 8
    if pos + nbytes > len(data):
        raise CodecError("truncated presence bitmap")
    bits = data[pos : pos + nbytes]
    present = [bool(bits[i >> 3] & (1 << (i & 7))) for i in range(count)]
    return present, pos + nbytes


_TYPE_TAGS = {
    DataType.INT64: 1,
    DataType.FLOAT64: 2,
    DataType.STRING: 3,
    DataType.BOOL: 4,
}
_TAG_TYPES = {v: k for k, v in _TYPE_TAGS.items()}


def encode_column(dtype: DataType, values: list[object]) -> bytes:
    """Encode one column chunk: tag, count, presence bitmap, values."""
    out = bytearray()
    out.append(_TYPE_TAGS[dtype])
    write_varint(out, len(values))
    _encode_presence(out, values)
    if dtype is DataType.INT64:
        for v in values:
            if v is not None:
                write_varint(out, _big_zigzag(int(v)))
    elif dtype is DataType.FLOAT64:
        for v in values:
            if v is not None:
                out.extend(struct.pack("<d", float(v)))
    elif dtype is DataType.STRING:
        for v in values:
            if v is not None:
                raw = str(v).encode("utf-8")
                write_varint(out, len(raw))
                out.extend(raw)
    elif dtype is DataType.BOOL:
        bits = bytearray((len(values) + 7) // 8)
        for i, v in enumerate(values):
            if v:
                bits[i >> 3] |= 1 << (i & 7)
        out.extend(bits)
    else:  # pragma: no cover - the tag table is exhaustive
        raise CodecError(f"unsupported dtype {dtype}")
    return bytes(out)


def decode_column(data: bytes, pos: int = 0) -> tuple[DataType, list[object], int]:
    """Decode a column chunk; returns (dtype, values, new_pos)."""
    if pos >= len(data):
        raise CodecError("empty column chunk")
    tag = data[pos]
    pos += 1
    if tag not in _TAG_TYPES:
        raise CodecError(f"unknown type tag {tag}")
    dtype = _TAG_TYPES[tag]
    count, pos = read_varint(data, pos)
    present, pos = _decode_presence(data, pos, count)
    values: list[object] = [None] * count
    if dtype is DataType.INT64:
        for i in range(count):
            if present[i]:
                raw, pos = read_varint(data, pos)
                values[i] = zigzag_decode(raw)
    elif dtype is DataType.FLOAT64:
        for i in range(count):
            if present[i]:
                if pos + 8 > len(data):
                    raise CodecError("truncated float64")
                (values[i],) = struct.unpack_from("<d", data, pos)
                pos += 8
    elif dtype is DataType.STRING:
        for i in range(count):
            if present[i]:
                length, pos = read_varint(data, pos)
                if pos + length > len(data):
                    raise CodecError("truncated string")
                values[i] = data[pos : pos + length].decode("utf-8")
                pos += length
    elif dtype is DataType.BOOL:
        nbytes = (count + 7) // 8
        if pos + nbytes > len(data):
            raise CodecError("truncated bool bitmap")
        bits = data[pos : pos + nbytes]
        pos += nbytes
        for i in range(count):
            if present[i]:
                values[i] = bool(bits[i >> 3] & (1 << (i & 7)))
    return dtype, values, pos
