"""Physical-plan instrumentation: wrap operators in tracing decorators.

``instrument_plan`` rewrites a compiled physical plan so every operator
node is wrapped in a :class:`TracedExec` that records a span (wall time
plus *inclusive* counter deltas — read/parse seconds, bytes, documents,
cache hits, row groups) around the node's execution on **both** the row
and the batch path. Because instrumentation is a plan rewrite performed
only when a query carries a tracer, the untraced path executes the
original operator objects with zero added branches — the "near-zero
overhead when disabled" contract is structural, not measured.

Counter deltas are taken against a combined snapshot of the execution's
:class:`~repro.engine.metrics.QueryMetrics` and the live parser stats of
its :class:`~repro.engine.expressions.EvalContext` (parse time accrues
in the parsers until the session folds it into the metrics at query
end). Deltas are inclusive of children; ``EXPLAIN ANALYZE`` and the
reconciliation tests subtract child spans where they need self-time.
"""

from __future__ import annotations

from ..engine.physical import (
    AggregateExec,
    ExecState,
    FilterExec,
    HashJoinExec,
    LimitExec,
    PhysicalPlan,
    ProjectExec,
    ScanExec,
    SortExec,
)
from .trace import Tracer

__all__ = ["TracedExec", "instrument_plan", "stage_of", "COUNTER_KEYS"]

#: Inclusive per-span counters, in snapshot order.
COUNTER_KEYS = (
    "read_seconds",
    "parse_seconds",
    "parse_documents",
    "parse_bytes",
    "bytes_read",
    "rows_scanned",
    "row_groups_total",
    "row_groups_skipped",
    "cache_hits",
    "cache_misses",
    "shared_parse_hits",
    "duplicate_extractions_eliminated",
)

_STAGE_BY_TYPE = {
    ScanExec: "scan",
    FilterExec: "filter",
    ProjectExec: "project",
    AggregateExec: "aggregate",
    SortExec: "sort",
    LimitExec: "limit",
    HashJoinExec: "join",
}


def stage_of(node: PhysicalPlan) -> str:
    """The span name for an operator (subclass-aware: MaxsonScanExec is
    a scan; unknown operators fall back to their lowercased class name)."""
    for node_type, stage in _STAGE_BY_TYPE.items():
        if isinstance(node, node_type):
            return stage
    return type(node).__name__.replace("Exec", "").lower()


def counter_snapshot(state: ExecState) -> tuple[float, ...]:
    """Current inclusive counter values, parsers folded in live."""
    metrics = state.metrics
    context = state.context
    parse_seconds = metrics.parse_seconds
    parse_documents = metrics.parse_documents
    parse_bytes = metrics.parse_bytes
    for parser in (
        context.parser,
        context.projection_parser,
        context.xml_parser,
    ):
        stats = getattr(parser, "stats", None)
        if stats is not None:
            parse_seconds += stats.seconds
            parse_documents += stats.documents
            parse_bytes += stats.bytes_scanned
    return (
        metrics.read_seconds,
        parse_seconds,
        parse_documents,
        parse_bytes,
        metrics.bytes_read,
        metrics.rows_scanned,
        metrics.row_groups_total,
        metrics.row_groups_skipped,
        metrics.cache_hits,
        metrics.cache_misses,
        metrics.shared_parse_hits + state.context.shared_parse_hits(),
        metrics.duplicate_extractions_eliminated,
    )


class TracedExec(PhysicalPlan):
    """Transparent tracing decorator around one physical operator.

    Delegates plan-shape queries (children, labels, output names) to the
    wrapped node so ``describe`` output and downstream plan inspection
    are unchanged; only ``execute``/``execute_batch`` differ, recording a
    span around the inner call. Child operators are wrapped too (the
    rewrite is bottom-up), so the inner node's own child calls produce
    correctly nested child spans.
    """

    def __init__(self, inner: PhysicalPlan, tracer: Tracer) -> None:
        self.inner = inner
        self.tracer = tracer

    # -- plan-shape passthrough ----------------------------------------
    def children(self) -> tuple[PhysicalPlan, ...]:
        return self.inner.children()

    def output_names(self) -> set[str]:
        return self.inner.output_names()

    def describe(self, indent: int = 0) -> str:
        return self.inner.describe(indent)

    def _label(self) -> str:
        return self.inner._label()

    # -- traced execution ----------------------------------------------
    def _run(self, state: ExecState, method: str):
        span = self.tracer.begin(stage_of(self.inner), label=self.inner._label())
        before = counter_snapshot(state)
        try:
            result = getattr(self.inner, method)(state)
        except Exception as exc:
            span.attributes["error"] = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            after = counter_snapshot(state)
            for key, b, a in zip(COUNTER_KEYS, before, after):
                delta = a - b
                if delta:
                    span.attributes[key] = delta
            self.tracer.end(span)
        span.attributes["rows_out"] = (
            len(result) if isinstance(result, list) else result.length
        )
        return result

    def execute(self, state: ExecState) -> list[dict]:
        return self._run(state, "execute")

    def execute_batch(self, state: ExecState):
        return self._run(state, "execute_batch")


def instrument_plan(plan: PhysicalPlan, tracer: Tracer) -> PhysicalPlan:
    """Wrap every node of ``plan`` (bottom-up) in :class:`TracedExec`.

    Run *after* plan modifiers so cache-aware scan replacements are
    what gets timed. Idempotence guard: an already-wrapped node is
    left alone, so double instrumentation cannot double-count.
    """
    if not tracer.enabled:
        return plan

    def wrap(node: PhysicalPlan) -> PhysicalPlan | None:
        if isinstance(node, TracedExec):
            return None
        return TracedExec(node, tracer)

    return plan.transform_nodes(wrap)


def unwrap_plan(plan: PhysicalPlan) -> PhysicalPlan:
    """The original operator at the top of a possibly-wrapped plan."""
    while isinstance(plan, TracedExec):
        plan = plan.inner
    return plan
