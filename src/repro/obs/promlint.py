"""Prometheus text-exposition validator (the CI gate for ``/metrics``).

A small, dependency-free checker for the exposition format our
:class:`~repro.obs.metrics.MetricsRegistry` emits: metric/label names
must be well-formed, every sample must parse, every ``# TYPE`` must be a
known type and precede its samples, histograms must carry ``_sum`` /
``_count`` / a ``+Inf`` bucket, and counters must not go backwards
between ``validate_text`` calls (single snapshot: values must be finite
and non-negative).

Used three ways: unit tests assert the server's exposition is clean,
the perf-smoke CI job pipes a live scrape through ``python -m
repro.obs.promlint``, and operators can lint a saved scrape by hand.
"""

from __future__ import annotations

import re
import sys

__all__ = ["validate_text", "main"]

_METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)(?:\s+(?P<timestamp>\S+))?$"
)
_LABEL_PAIR = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$'
)
_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def _parse_value(text: str) -> float | None:
    if text in ("+Inf", "Inf"):
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    try:
        return float(text)
    except ValueError:
        return None


def _split_labels(body: str) -> list[str]:
    """Split 'a="x",b="y"' at commas outside quotes."""
    parts: list[str] = []
    current = []
    in_quotes = False
    escaped = False
    for char in body:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            parts.append("".join(current))
            current = []
            continue
        current.append(char)
    if current:
        parts.append("".join(current))
    return parts


def validate_text(text: str, max_series: int | None = None) -> list[str]:
    """All format violations found, as human-readable strings (empty
    list == the exposition is well-formed).

    ``max_series`` caps the total number of samples (time series) in the
    exposition — the cardinality gate for multi-shard aggregation, where
    every shard multiplies each labelled family's series count. Exceeding
    it is reported as one violation naming the worst-offending family.
    """
    errors: list[str] = []
    declared_types: dict[str, str] = {}
    samples: dict[str, list[tuple[dict[str, str], float]]] = {}
    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3 or not _METRIC_NAME.match(parts[2]):
                errors.append(f"line {line_no}: malformed HELP: {line!r}")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or not _METRIC_NAME.match(parts[2]):
                errors.append(f"line {line_no}: malformed TYPE: {line!r}")
                continue
            name, kind = parts[2], parts[3]
            if kind not in _TYPES:
                errors.append(
                    f"line {line_no}: unknown type {kind!r} for {name}"
                )
            if name in declared_types:
                errors.append(f"line {line_no}: duplicate TYPE for {name}")
            if any(
                base == name for base in samples
            ):
                errors.append(
                    f"line {line_no}: TYPE for {name} after its samples"
                )
            declared_types[name] = kind
            continue
        if line.startswith("#"):
            continue  # free-form comment
        match = _SAMPLE.match(line)
        if match is None:
            errors.append(f"line {line_no}: unparseable sample: {line!r}")
            continue
        name = match.group("name")
        labels: dict[str, str] = {}
        body = match.group("labels")
        if body:
            for pair in _split_labels(body):
                pair_match = _LABEL_PAIR.match(pair.strip())
                if pair_match is None:
                    errors.append(
                        f"line {line_no}: malformed label pair {pair!r}"
                    )
                    continue
                label_name = pair_match.group("name")
                if not _LABEL_NAME.match(label_name):
                    errors.append(
                        f"line {line_no}: bad label name {label_name!r}"
                    )
                if label_name in labels:
                    errors.append(
                        f"line {line_no}: duplicate label {label_name!r}"
                    )
                labels[label_name] = pair_match.group("value")
        value = _parse_value(match.group("value"))
        if value is None:
            errors.append(
                f"line {line_no}: bad sample value {match.group('value')!r}"
            )
            continue
        # A sample belongs to the metric declared under its own name
        # (counters may legitimately end in _total) or, failing that,
        # under its histogram/summary base name.
        base = name if name in declared_types else _base_name(name)
        samples.setdefault(base, []).append((labels, value))
        declared = declared_types.get(base)
        if declared is None:
            errors.append(
                f"line {line_no}: sample {name} has no TYPE declaration"
            )
        elif _suffix_of(name) and name != base and declared not in (
            "histogram",
            "summary",
        ):
            errors.append(
                f"line {line_no}: {name} carries a histogram suffix but "
                f"{base} is a {declared}"
            )
        if declared == "counter" and value < 0:
            errors.append(f"line {line_no}: counter {name} is negative")
        if value != value:  # NaN
            errors.append(f"line {line_no}: sample {name} is NaN")
    # Cross-sample checks: histograms must be structurally complete.
    for name, kind in declared_types.items():
        series = samples.get(name, [])
        if not series and kind != "untyped":
            errors.append(f"metric {name}: TYPE declared but no samples")
        if kind == "histogram":
            suffixes = {
                _suffix_of(sample_name)
                for sample_name in _sample_names(text, name)
            }
            for required in ("_bucket", "_sum", "_count"):
                if required not in suffixes:
                    errors.append(f"histogram {name}: missing {required}")
            inf_buckets = [
                labels
                for labels, _ in series
                if labels.get("le") == "+Inf"
            ]
            bucket_count = sum(
                1 for labels, _ in series if "le" in labels
            )
            if bucket_count and not inf_buckets:
                errors.append(f"histogram {name}: no +Inf bucket")
    if max_series is not None:
        total = sum(len(series) for series in samples.values())
        if total > max_series:
            worst = max(samples, key=lambda name: len(samples[name]))
            errors.append(
                f"cardinality: {total} series exceeds cap {max_series} "
                f"(largest family: {worst} with {len(samples[worst])})"
            )
    return errors


def _base_name(name: str) -> str:
    for suffix in ("_bucket", "_sum", "_count", "_total"):
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if base:
                return base
    return name


def _suffix_of(name: str) -> str:
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return suffix
    return ""


def _sample_names(text: str, base: str) -> list[str]:
    out = []
    for line in text.splitlines():
        if line.startswith("#") or not line.strip():
            continue
        match = _SAMPLE.match(line.rstrip())
        if match and _base_name(match.group("name")) == base:
            out.append(match.group("name"))
    return out


def main(argv: list[str] | None = None) -> int:
    """Read an exposition from a file (or stdin) and report violations."""
    argv = list(argv) if argv is not None else sys.argv[1:]
    max_series: int | None = None
    if "--max-series" in argv:
        index = argv.index("--max-series")
        try:
            max_series = int(argv[index + 1])
        except (IndexError, ValueError):
            print("promlint: --max-series needs an integer", file=sys.stderr)
            return 2
        del argv[index : index + 2]
    if argv and argv[0] != "-":
        text = open(argv[0], encoding="utf-8").read()
    else:
        text = sys.stdin.read()
    errors = validate_text(text, max_series=max_series)
    for error in errors:
        print(error, file=sys.stderr)
    if errors:
        print(f"promlint: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    metrics = sum(1 for line in text.splitlines() if line.startswith("# TYPE"))
    print(f"promlint: ok ({metrics} metrics)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
