"""Structured JSON logging with query and generation IDs.

One :class:`StructuredLogger` per server writes newline-delimited JSON
events (``{"ts": ..., "event": ..., ...fields}``) to a stream or file.
Events carry correlation IDs — ``query_id`` for the request path,
``generation`` for the cache lifecycle — so a flat grep reconstructs any
query's journey through admission, execution and the cache generation it
leased.

The **slow-query log** is a filter, not a second stream: queries whose
wall time crosses ``slow_query_seconds`` are logged at the distinct
``slow_query`` event (with their stage breakdown attached) even when
routine per-query logging is off, which is the production-shaped default:
silence until something is worth looking at.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

__all__ = ["StructuredLogger"]


class StructuredLogger:
    """Thread-safe NDJSON event writer with slow-query filtering."""

    def __init__(
        self,
        stream=None,
        path: str | Path | None = None,
        slow_query_seconds: float = 0.0,
        log_all_queries: bool = False,
        clock=time.time,
    ) -> None:
        if stream is not None and path is not None:
            raise ValueError("pass a stream or a path, not both")
        self._stream = stream
        self._handle = None
        if path is not None:
            path = Path(path)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = path.open("a", encoding="utf-8")
            self._stream = self._handle
        self.slow_query_seconds = slow_query_seconds
        self.log_all_queries = log_all_queries
        self.clock = clock
        self.events_written = 0
        self.slow_queries = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def log(self, event: str, **fields) -> dict | None:
        """Write one event; returns the payload (None when unwritable)."""
        payload = {"ts": round(self.clock(), 6), "event": event}
        payload.update(fields)
        line = json.dumps(payload, sort_keys=True, default=str)
        with self._lock:
            if self._stream is None:
                return payload
            try:
                self._stream.write(line + "\n")
                self._stream.flush()
            except (OSError, ValueError):
                return None
            self.events_written += 1
        return payload

    def query(
        self,
        query_id: str,
        seconds: float,
        tenant: str = "",
        generation: int = 0,
        **fields,
    ) -> dict | None:
        """Log a completed query; escalates to ``slow_query`` past the
        threshold. Returns the payload written, or None when the event
        fell below every enabled filter."""
        slow = (
            self.slow_query_seconds > 0
            and seconds >= self.slow_query_seconds
        )
        if slow:
            with self._lock:
                self.slow_queries += 1
        if not slow and not self.log_all_queries:
            return None
        return self.log(
            "slow_query" if slow else "query",
            query_id=query_id,
            tenant=tenant,
            generation=generation,
            seconds=round(seconds, 6),
            **fields,
        )

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None
                self._stream = None

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                "events_written": self.events_written,
                "slow_queries": self.slow_queries,
            }
