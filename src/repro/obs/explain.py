"""``EXPLAIN ANALYZE`` rendering: an annotated plan from a query trace.

Turns the span tree recorded by an instrumented execution into the
familiar per-operator breakdown: one line per physical operator, indented
by plan depth, annotated with actual wall time, row counts and the
Maxson-specific counters (parse documents/bytes, cache hits, row groups
skipped). The renderer reads only span names and attributes, so the
output is identically shaped on the row and batch engines — the two
paths differ in operator *internals*, not plan structure.
"""

from __future__ import annotations

from .trace import Span

__all__ = ["render_explain_analyze", "operator_root"]

#: Attribute -> (display key, formatter). Order is display order.
_ANNOTATIONS = (
    ("rows_out", "rows", lambda v: f"{int(v)}"),
    ("read_seconds", "read", lambda v: f"{v * 1000:.2f}ms"),
    ("parse_seconds", "parse", lambda v: f"{v * 1000:.2f}ms"),
    ("parse_documents", "docs", lambda v: f"{int(v)}"),
    ("parse_bytes", "parse_bytes", lambda v: f"{int(v)}"),
    ("bytes_read", "bytes", lambda v: f"{int(v)}"),
    ("rows_scanned", "scanned", lambda v: f"{int(v)}"),
    ("cache_hits", "cache_hits", lambda v: f"{int(v)}"),
    ("cache_misses", "cache_misses", lambda v: f"{int(v)}"),
    ("row_groups_skipped", "rg_skipped", lambda v: f"{int(v)}"),
    ("row_groups_total", "rg_total", lambda v: f"{int(v)}"),
    ("shared_parse_hits", "shared_parse_hits", lambda v: f"{int(v)}"),
    (
        "duplicate_extractions_eliminated",
        "dup_elim",
        lambda v: f"{int(v)}",
    ),
    ("fallback_splits", "fallback_splits", lambda v: f"{int(v)}"),
    ("degraded", "degraded", lambda v: "yes" if v else "no"),
    ("error", "error", str),
)

#: Span names that are interior detail of an operator, not operators
#: themselves; they render one level deeper with a ``+`` marker.
_DETAIL_SPANS = {"combine", "parse"}


def operator_root(root: Span) -> Span | None:
    """The top operator span under a query trace (or ``root`` itself
    when the caller hands the operator subtree directly)."""
    if root is None:
        return None
    execute = root.find("execute")
    if execute is not None:
        return execute.children[0] if execute.children else None
    if root.name in ("query", "midnight"):
        return None
    return root


def _format_annotations(span: Span) -> str:
    parts = [f"time={span.wall_seconds * 1000:.2f}ms"]
    for attribute, display, fmt in _ANNOTATIONS:
        value = span.attributes.get(attribute)
        if value is None:
            continue
        parts.append(f"{display}={fmt(value)}")
    return " ".join(parts)


def _render_span(span: Span, depth: int, lines: list[str]) -> None:
    marker = "+ " if span.name in _DETAIL_SPANS else "-> " if depth else ""
    title = span.label if span.label != span.name else span.name
    if span.name not in _DETAIL_SPANS and not title.lower().startswith(
        span.name
    ):
        title = f"{span.name}: {title}"
    lines.append(
        f"{'  ' * depth}{marker}{title}  [{_format_annotations(span)}]"
    )
    for child in span.children:
        _render_span(child, depth + 1, lines)


def render_explain_analyze(
    root: Span,
    metrics=None,
    mode: str = "",
    sql: str = "",
) -> str:
    """Render a query trace as an ``EXPLAIN ANALYZE`` report.

    ``root`` is the ``query`` span (as produced by
    ``Session.explain_analyze``) or any operator span subtree.
    ``metrics`` (a :class:`~repro.engine.metrics.QueryMetrics`) adds the
    query-level read/parse/compute footer the paper's evaluation plots.
    """
    lines: list[str] = []
    header = "EXPLAIN ANALYZE"
    if mode:
        header += f" (mode={mode})"
    lines.append(header)
    if sql:
        lines.append(f"query: {sql.strip()}")
    if root is not None and root.name == "query":
        lines.append(f"total: {root.wall_seconds * 1000:.2f}ms")
        for stage in ("plan", "rewrite"):
            span = root.find(stage)
            if span is not None:
                lines.append(
                    f"{stage}: {span.wall_seconds * 1000:.2f}ms"
                )
    top = operator_root(root)
    if top is None:
        lines.append("(no operator spans recorded)")
    else:
        execute = root.find("execute") if root is not None else None
        if execute is not None:
            lines.append(
                f"execute: {execute.wall_seconds * 1000:.2f}ms"
            )
        lines.append("")
        _render_span(top, 0, lines)
    if metrics is not None:
        lines.append("")
        lines.append(
            "metrics: read={:.2f}ms parse={:.2f}ms compute={:.2f}ms "
            "parse_fraction={:.1%} docs={} cache_hits={} "
            "rg_skipped={}/{}".format(
                metrics.read_seconds * 1000,
                metrics.parse_seconds * 1000,
                metrics.compute_seconds * 1000,
                metrics.parse_fraction,
                metrics.parse_documents,
                metrics.cache_hits,
                metrics.row_groups_skipped,
                metrics.row_groups_total,
            )
        )
    return "\n".join(lines)
