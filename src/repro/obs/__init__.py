"""repro.obs: end-to-end observability for the Maxson reproduction.

Four concerns, one subsystem:

* **Tracing** (:mod:`~repro.obs.trace`, :mod:`~repro.obs.instrument`,
  :mod:`~repro.obs.explain`) — per-query span trees recorded by wrapping
  physical operators, exported as JSONL, rendered as ``EXPLAIN ANALYZE``.
* **Metrics** (:mod:`~repro.obs.metrics`, :mod:`~repro.obs.promlint`) —
  a bounded process-wide registry with Prometheus text exposition and a
  dependency-free format validator for CI.
* **Structured logging** (:mod:`~repro.obs.logging`) — NDJSON events
  with query/generation correlation IDs and a slow-query filter.
* **Cache efficacy** (:mod:`~repro.obs.efficacy`) — per-generation
  precision/recall of the MPJP prediction against realized parse demand,
  count- and byte-weighted.

Nothing here is imported by the engine at module load; the engine
reaches into :mod:`repro.obs` lazily and only when a query carries a
tracer, keeping the disabled path byte-identical to the uninstrumented
code.
"""

from .efficacy import EfficacyAccountant, GenerationEfficacy
from .explain import render_explain_analyze
from .instrument import TracedExec, instrument_plan
from .logging import StructuredLogger
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .promlint import validate_text
from .systables import SYSTEM_DATABASE, SYSTEM_TABLES, TelemetryStore
from .trace import Span, TraceSink, Tracer, export_subtree

__all__ = [
    "Span",
    "Tracer",
    "TraceSink",
    "export_subtree",
    "TelemetryStore",
    "SYSTEM_DATABASE",
    "SYSTEM_TABLES",
    "TracedExec",
    "instrument_plan",
    "render_explain_analyze",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "StructuredLogger",
    "EfficacyAccountant",
    "GenerationEfficacy",
    "validate_text",
]
