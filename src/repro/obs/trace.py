"""Per-query trace contexts: span trees and JSONL export.

A :class:`Tracer` records one tree of :class:`Span` objects for a unit
of work — a query (``query → plan → rewrite → execute → scan → …``) or a
midnight maintenance cycle (``midnight → collect → predict → score →
build → swap``). Spans carry wall-clock bounds plus free-form numeric
attributes (rows, bytes, parse counts, cache hits), which is what the
``EXPLAIN ANALYZE`` renderer and the span-vs-:class:`~repro.engine.
metrics.QueryMetrics` reconciliation tests consume.

Design constraints, in order:

* **Zero cost when off.** Nothing in the engine holds a tracer by
  default: plans are only instrumented (wrapped in
  :class:`~repro.obs.instrument.TracedExec` nodes) when a query is
  handed an explicit tracer, so the disabled path executes the exact
  same operator code as before this module existed.
* **Single-threaded per tracer.** One tracer belongs to one query (or
  one maintenance cycle) on one thread; the server creates one per
  traced request. Cross-thread aggregation happens in the
  :class:`~repro.obs.metrics.MetricsRegistry`, not here.
* **Flat JSONL export.** :class:`TraceSink` appends one JSON object per
  span (``trace_id``/``span_id``/``parent_id`` reconstruct the tree), so
  trace files stream and concatenate like logs.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from contextlib import contextmanager
from pathlib import Path

__all__ = ["Span", "Tracer", "TraceSink", "export_subtree"]

_trace_ids = itertools.count(1)


class Span:
    """One timed node of a trace tree."""

    __slots__ = (
        "name",
        "label",
        "span_id",
        "parent_id",
        "started_seconds",
        "ended_seconds",
        "attributes",
        "children",
    )

    def __init__(
        self,
        name: str,
        label: str = "",
        span_id: int = 0,
        parent_id: int | None = None,
    ) -> None:
        self.name = name
        self.label = label or name
        self.span_id = span_id
        self.parent_id = parent_id
        self.started_seconds = 0.0
        self.ended_seconds = 0.0
        self.attributes: dict[str, object] = {}
        self.children: list[Span] = []

    @property
    def wall_seconds(self) -> float:
        return max(0.0, self.ended_seconds - self.started_seconds)

    def find(self, name: str) -> "Span | None":
        """First descendant (depth-first, self included) named ``name``."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def find_all(self, name: str) -> list["Span"]:
        """Every descendant (self included) named ``name``, depth-first."""
        out = [self] if self.name == name else []
        for child in self.children:
            out.extend(child.find_all(name))
        return out

    def walk(self):
        """Depth-first iteration over self and all descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def total(self, attribute: str) -> float:
        """Sum of a numeric attribute over this subtree's *leaf-most*
        carriers: spans whose own attributes include it. Callers summing
        inclusive counters should instead read the root's attribute."""
        value = self.attributes.get(attribute, 0) or 0
        return float(value) + sum(c.total(attribute) for c in self.children)

    def to_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "label": self.label,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "started_seconds": self.started_seconds,
            "wall_seconds": self.wall_seconds,
            "attributes": dict(self.attributes),
        }


class Tracer:
    """Records one span tree. Not thread-safe by design (one per query)."""

    #: Instrumentation hooks check this instead of ``isinstance``; a
    #: subclass can flip it to drop span recording while keeping the API.
    enabled = True

    def __init__(self, trace_id: str | None = None, clock=time.perf_counter) -> None:
        self.trace_id = trace_id or f"trace-{next(_trace_ids)}"
        self.clock = clock
        self.root: Span | None = None
        self._stack: list[Span] = []
        self._next_span_id = 1

    # ------------------------------------------------------------------
    def begin(self, name: str, label: str = "", **attributes) -> Span:
        """Open a span as a child of the current innermost span."""
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name,
            label=label,
            span_id=self._next_span_id,
            parent_id=parent.span_id if parent is not None else None,
        )
        self._next_span_id += 1
        if attributes:
            span.attributes.update(attributes)
        span.started_seconds = self.clock()
        if parent is not None:
            parent.children.append(span)
        elif self.root is None:
            self.root = span
        else:  # a second root: wrap is missing; attach to keep the tree
            self.root.children.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span) -> Span:
        """Close ``span`` (and anything opened inside it but left open)."""
        now = self.clock()
        while self._stack:
            top = self._stack.pop()
            top.ended_seconds = now
            if top is span:
                break
        return span

    @contextmanager
    def span(self, name: str, label: str = "", **attributes):
        span = self.begin(name, label=label, **attributes)
        try:
            yield span
        finally:
            self.end(span)

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def annotate(self, **attributes) -> None:
        """Merge attributes into the current innermost span (no-op when
        no span is open)."""
        if self._stack:
            self._stack[-1].attributes.update(attributes)

    # ------------------------------------------------------------------
    def spans(self) -> list[Span]:
        """All recorded spans, depth-first from the root."""
        if self.root is None:
            return []
        return list(self.root.walk())

    def to_dicts(self) -> list[dict[str, object]]:
        out = []
        for span in self.spans():
            payload = span.to_dict()
            payload["trace_id"] = self.trace_id
            out.append(payload)
        return out

    # ------------------------------------------------------------------
    # cross-tracer propagation (morsel workers → coordinator)
    # ------------------------------------------------------------------
    def graft(self, tree: dict) -> Span:
        """Attach a worker-exported subtree (see :func:`export_subtree`)
        under the current innermost span.

        Span ids are reassigned from this tracer's counter so the merged
        tree has no duplicates regardless of which worker produced the
        subtree. Timestamps are rebased onto this tracer's clock: worker
        clocks (another thread's or process's ``perf_counter``) share no
        epoch with ours, so the subtree is shifted to *end now* — at the
        moment the coordinator received it — which preserves every
        relative offset and duration inside the subtree.
        """
        parent = self._stack[-1] if self._stack else None
        now = self.clock()
        try:
            span_end = float(tree["start"]) + float(tree["wall"])
        except (KeyError, TypeError, ValueError):
            span_end = now
        shift = now - span_end

        def build(node: dict, parent_id: int | None) -> Span:
            span = Span(
                str(node.get("name", "span")),
                label=str(node.get("label", "")),
                span_id=self._next_span_id,
                parent_id=parent_id,
            )
            self._next_span_id += 1
            attributes = node.get("attributes")
            if isinstance(attributes, dict):
                span.attributes.update(attributes)
            try:
                span.started_seconds = float(node["start"]) + shift
                span.ended_seconds = span.started_seconds + float(node["wall"])
            except (KeyError, TypeError, ValueError):
                span.started_seconds = span.ended_seconds = now
            for child in node.get("children") or ():
                if isinstance(child, dict):
                    span.children.append(build(child, span.span_id))
            return span

        root = build(tree, parent.span_id if parent is not None else None)
        if parent is not None:
            parent.children.append(root)
        elif self.root is None:
            self.root = root
        else:
            root.parent_id = self.root.span_id
            self.root.children.append(root)
        return root


def export_subtree(span: Span) -> dict:
    """A self-contained, JSON-serialisable copy of ``span``'s subtree.

    The format :meth:`Tracer.graft` consumes: ``start`` is the worker
    clock's absolute start (meaningless across processes on its own —
    graft rebases it), ``wall`` the duration, ids deliberately omitted
    (the receiving tracer assigns fresh ones).
    """
    return {
        "name": span.name,
        "label": span.label,
        "start": span.started_seconds,
        "wall": span.wall_seconds,
        "attributes": dict(span.attributes),
        "children": [export_subtree(child) for child in span.children],
    }


class TraceSink:
    """Appends finished traces to a JSONL file, one span per line.

    Thread-safe: server worker threads write completed query traces
    concurrently with the maintenance thread writing midnight traces.
    ``max_spans`` bounds the file (oldest-first truncation is *not*
    attempted — the sink simply stops writing and counts drops), so a
    long replay cannot fill the disk.
    """

    def __init__(
        self,
        directory: str | Path,
        filename: str = "traces.jsonl",
        max_spans: int = 250_000,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / filename
        self.max_spans = max_spans
        self.spans_written = 0
        self.traces_written = 0
        self.spans_dropped = 0
        self._lock = threading.Lock()

    def write(self, tracer: Tracer, **metadata) -> int:
        """Append every span of ``tracer``; returns spans written.

        ``metadata`` (query id, tenant, generation, …) is merged into
        each exported line so a flat grep can slice by any of them.
        """
        payloads = tracer.to_dicts()
        if not payloads:
            return 0
        lines = []
        for payload in payloads:
            if metadata:
                payload.update(metadata)
            lines.append(json.dumps(payload, sort_keys=True))
        with self._lock:
            budget = self.max_spans - self.spans_written
            if budget <= 0:
                self.spans_dropped += len(lines)
                return 0
            kept = lines[:budget]
            self.spans_dropped += len(lines) - len(kept)
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write("\n".join(kept) + "\n")
            self.spans_written += len(kept)
            self.traces_written += 1
            return len(kept)

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            return {
                "path": str(self.path),
                "traces_written": self.traces_written,
                "spans_written": self.spans_written,
                "spans_dropped": self.spans_dropped,
            }
