"""Process-wide metrics registry with Prometheus text exposition.

The server keeps one :class:`MetricsRegistry` and feeds it from the
query path (counters, latency histograms) and the status snapshot
(gauges). ``to_prometheus()`` renders the standard text exposition
format (``# HELP`` / ``# TYPE`` / samples) that a scraper — or the
repo's own :mod:`repro.obs.promlint` validator — consumes.

Everything is bounded by construction:

* histograms have a fixed bucket ladder chosen at creation;
* labelled metrics cap the number of distinct label sets
  (``max_label_sets``); overflow is folded into an ``other`` series
  instead of growing without limit (tenant names are client-controlled);
* the registry itself only holds metrics created through it, so the
  exposition size is proportional to code, not traffic.
"""

from __future__ import annotations

import math
import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Seconds ladder covering sub-millisecond engine hits through slow
#: degraded queries; chosen once so dashboards stay comparable.
DEFAULT_LATENCY_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_NAME_OK = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_:"


def _check_name(name: str) -> str:
    if not name or name[0].isdigit() or any(c not in _NAME_OK for c in name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _format_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape(value)}"' for key, value in labels
    )
    return "{" + body + "}"


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


class _Metric:
    """Shared plumbing: name, help text, labelled children, lock."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: tuple[str, ...] = (),
        max_label_sets: int = 64,
    ) -> None:
        self.name = _check_name(name)
        self.help_text = help_text
        self.label_names = tuple(label_names)
        self.max_label_sets = max_label_sets
        self._lock = threading.Lock()
        self._series: dict[tuple[tuple[str, str], ...], object] = {}
        if not self.label_names:
            self._series[()] = self._zero()

    def _zero(self):
        return 0.0

    def _series_for(self, label_values: dict[str, str]):
        if set(label_values) != set(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, "
                f"got {tuple(label_values)}"
            )
        key = tuple((name, str(label_values[name])) for name in self.label_names)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                if len(self._series) >= self.max_label_sets:
                    # Cardinality cap: fold the overflow into 'other'.
                    key = tuple((name, "other") for name in self.label_names)
                    series = self._series.get(key)
                    if series is None:
                        series = self._series[key] = self._zero()
                else:
                    series = self._series[key] = self._zero()
            return key, series

    def samples(self) -> list[tuple[str, tuple[tuple[str, str], ...], float]]:
        raise NotImplementedError

    def expose(self) -> list[str]:
        samples = self.samples()
        if not samples:
            # A labelled metric with no series yet: emitting HELP/TYPE
            # with zero samples is a lint violation, so emit nothing.
            return []
        lines = [
            f"# HELP {self.name} {self.help_text}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for sample_name, labels, value in samples:
            lines.append(
                f"{sample_name}{_format_labels(labels)} {_format_value(value)}"
            )
        return lines


class Counter(_Metric):
    """Monotonically increasing counter (optionally labelled)."""

    kind = "counter"

    def inc(self, value: float = 1.0, **labels) -> None:
        if value < 0:
            raise ValueError("counters only go up")
        key, _ = self._series_for(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + value

    def value(self, **labels) -> float:
        key, _ = self._series_for(labels)
        with self._lock:
            return float(self._series.get(key, 0.0))

    def samples(self):
        with self._lock:
            return [
                (self.name, labels, float(value))
                for labels, value in sorted(self._series.items())
            ]


class Gauge(_Metric):
    """A value that can go up and down (set from status snapshots)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        key, _ = self._series_for(labels)
        with self._lock:
            self._series[key] = float(value)

    def value(self, **labels) -> float:
        key, _ = self._series_for(labels)
        with self._lock:
            return float(self._series.get(key, 0.0))

    def samples(self):
        with self._lock:
            return [
                (self.name, labels, float(value))
                for labels, value in sorted(self._series.items())
            ]


class _HistogramSeries:
    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, n_buckets: int) -> None:
        self.bucket_counts = [0] * n_buckets
        self.total = 0.0
        self.count = 0


class Histogram(_Metric):
    """Cumulative histogram over a fixed, bounded bucket ladder."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets=DEFAULT_LATENCY_BUCKETS,
        label_names: tuple[str, ...] = (),
        max_label_sets: int = 64,
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds
        super().__init__(name, help_text, label_names, max_label_sets)

    def _zero(self):
        return _HistogramSeries(len(self.bounds) + 1)  # +Inf bucket

    def observe(self, value: float, **labels) -> None:
        key, _ = self._series_for(labels)
        with self._lock:
            series: _HistogramSeries = self._series[key]
            index = len(self.bounds)
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    index = i
                    break
            series.bucket_counts[index] += 1
            series.total += value
            series.count += 1

    def count(self, **labels) -> int:
        key, _ = self._series_for(labels)
        with self._lock:
            return self._series[key].count

    def samples(self):
        out = []
        with self._lock:
            for labels, series in sorted(self._series.items()):
                cumulative = 0
                for bound, bucket in zip(self.bounds, series.bucket_counts):
                    cumulative += bucket
                    out.append(
                        (
                            f"{self.name}_bucket",
                            labels + (("le", _format_value(bound)),),
                            float(cumulative),
                        )
                    )
                cumulative += series.bucket_counts[-1]
                out.append(
                    (
                        f"{self.name}_bucket",
                        labels + (("le", "+Inf"),),
                        float(cumulative),
                    )
                )
                out.append((f"{self.name}_sum", labels, series.total))
                out.append((f"{self.name}_count", labels, float(series.count)))
        return out


class MetricsRegistry:
    """Creates and owns metrics; renders the full exposition."""

    def __init__(self, namespace: str = "maxson") -> None:
        self.namespace = _check_name(namespace)
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    def _register(self, metric: _Metric) -> _Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is not None:
                if type(existing) is not type(metric):
                    raise ValueError(
                        f"metric {metric.name!r} already registered "
                        f"as {existing.kind}"
                    )
                return existing
            self._metrics[metric.name] = metric
            return metric

    def _full_name(self, name: str) -> str:
        return f"{self.namespace}_{name}" if self.namespace else name

    def counter(self, name: str, help_text: str, label_names=()) -> Counter:
        return self._register(
            Counter(self._full_name(name), help_text, tuple(label_names))
        )

    def gauge(self, name: str, help_text: str, label_names=()) -> Gauge:
        return self._register(
            Gauge(self._full_name(name), help_text, tuple(label_names))
        )

    def histogram(
        self, name: str, help_text: str, buckets=DEFAULT_LATENCY_BUCKETS,
        label_names=(),
    ) -> Histogram:
        return self._register(
            Histogram(
                self._full_name(name), help_text, buckets, tuple(label_names)
            )
        )

    def to_prometheus(self) -> str:
        """The complete text exposition, terminated by a newline."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: list[str] = []
        for metric in metrics:
            lines.extend(metric.expose())
        return "\n".join(lines) + "\n" if lines else ""

    def snapshot(self) -> dict[str, object]:
        """JSON-safe {metric: {label-string: value}} view (histograms
        expose their _sum/_count/_bucket samples)."""
        out: dict[str, object] = {}
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            for sample_name, labels, value in metric.samples():
                series = out.setdefault(sample_name, {})
                series[_format_labels(labels) or "{}"] = value
        return out
