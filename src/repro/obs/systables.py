"""System tables: the engine's own telemetry as queryable raw data.

The paper's thesis is that raw JSON is queryable fast enough to skip
ETL — so the engine's telemetry is stored the same way the workload's
data is: newline-delimited JSON segment files in the warehouse,
registered in the catalog under the ``system`` database and queried
through the ordinary Session/SQL path (JSONPath extraction over the
``payload`` column, Sparser prefilter, batch engine, morsel workers,
even Maxson cache builds over the telemetry itself).

:class:`TelemetryStore` is the single writer. Properties, in order:

* **Bounded.** Segments rotate under a byte budget: when total bytes
  exceed it the oldest sealed segments are deleted, oldest first,
  across all tables. The budget is published to the
  :class:`~repro.engine.cachebudget.CacheLedger` as a *reported* tier —
  visible next to the result/plan/document tiers, not charged against
  their shared budget.
* **Crash-tolerant.** Appends are single fs operations; a crash
  mid-append leaves at most one torn tail line, which the NDJSON
  reader skips (and counts) instead of failing the scan. A store
  re-opened over an existing data dir adopts the surviving segments.
* **Never in the query path's way.** A failed append is counted and
  swallowed — telemetry loss must not fail the query that produced it.
* **No catalog-version churn.** Appends go straight to the file
  system, never through :meth:`Catalog.append_rows`; bumping the
  catalog version on every query would invalidate every cached plan.
  Scans list segment files at execution time, so fresh rows are
  visible without a version bump.
"""

from __future__ import annotations

import json
import threading
import time

from ..engine.catalog import Catalog
from ..storage.fs import FsError
from ..storage.schema import DataType, Field, Schema

__all__ = ["TelemetryStore", "SYSTEM_DATABASE", "SYSTEM_TABLES"]

SYSTEM_DATABASE = "system"

#: Default byte budget for all telemetry segments together.
DEFAULT_BUDGET_BYTES = 8 * 1024 * 1024

#: Default segment size before sealing. Appends on the in-memory fs
#: copy the whole file, so segments are kept small; rotation granularity
#: follows segment size.
DEFAULT_SEGMENT_BYTES = 64 * 1024

_S = DataType.STRING
_F = DataType.FLOAT64
_I = DataType.INT64

#: Promoted columns per table. Every table also carries the virtual
#: ``payload`` column (the full event as JSON text) which the NDJSON
#: reader synthesises; it is declared here so the planner resolves it.
SYSTEM_TABLES: dict[str, Schema] = {
    "queries": Schema(
        [
            Field("ts", _F),
            Field("query_id", _S),
            Field("tenant", _S),
            Field("status", _S),
            Field("seconds", _F),
            Field("generation", _I),
            Field("backend", _S),
            Field("reason", _S),
            Field("retry_after_seconds", _F),
            Field("result_cache", _S),
            Field("plan_cache", _S),
            Field("error", _S),
            Field("payload", _S),
        ]
    ),
    "spans": Schema(
        [
            Field("ts", _F),
            Field("query_id", _S),
            Field("trace_id", _S),
            Field("span_id", _I),
            Field("parent_id", _I),
            Field("name", _S),
            Field("label", _S),
            Field("wall_seconds", _F),
            Field("worker", _S),
            Field("backend", _S),
            Field("payload", _S),
        ]
    ),
    "cache_events": Schema(
        [
            Field("ts", _F),
            Field("event", _S),
            Field("table_name", _S),
            Field("generation", _I),
            Field("detail", _S),
            Field("payload", _S),
        ]
    ),
    "workers": Schema(
        [
            Field("ts", _F),
            Field("event", _S),
            Field("worker", _S),
            Field("backend", _S),
            Field("detail", _S),
            Field("payload", _S),
        ]
    ),
    "incidents": Schema(
        [
            Field("ts", _F),
            Field("query_id", _S),
            Field("kind", _S),
            Field("tenant", _S),
            Field("sql", _S),
            Field("fingerprint", _S),
            Field("seconds", _F),
            Field("payload", _S),
        ]
    ),
}


class _TableState:
    __slots__ = ("location", "segments", "active", "active_bytes", "next_index")

    def __init__(self, location: str) -> None:
        self.location = location
        #: sealed + active segment paths -> byte size, in creation order.
        self.segments: dict[str, int] = {}
        self.active: str | None = None
        self.active_bytes = 0
        self.next_index = 0


class TelemetryStore:
    """Bounded, crash-tolerant NDJSON event store behind ``system.*``."""

    def __init__(
        self,
        catalog: Catalog,
        budget_bytes: int = DEFAULT_BUDGET_BYTES,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        ledger=None,
        clock=time.time,
    ) -> None:
        self.catalog = catalog
        self.fs = catalog.fs
        self.budget_bytes = budget_bytes
        self.segment_bytes = segment_bytes
        self.ledger = ledger
        self.clock = clock
        self.events: dict[str, int] = {name: 0 for name in SYSTEM_TABLES}
        self.events_dropped = 0
        self.segments_rotated = 0
        self._lock = threading.Lock()
        self._tables: dict[str, _TableState] = {}
        #: (path, table state) in creation order, oldest first — the
        #: rotation queue. Per-table segment indices restart at zero, so
        #: cross-table age must be tracked here, not read off filenames.
        self._order: list[tuple[str, _TableState]] = []
        adopted: list[tuple[float, str, _TableState]] = []
        for name, schema in SYSTEM_TABLES.items():
            if not catalog.table_exists(SYSTEM_DATABASE, name):
                catalog.create_table(
                    SYSTEM_DATABASE,
                    name,
                    schema,
                    properties={"format": "ndjson"},
                )
            info = catalog.get_table(SYSTEM_DATABASE, name)
            state = _TableState(info.location)
            adopted.extend(self._adopt_existing(state))
            self._tables[name] = state
        for _, path, state in sorted(adopted, key=lambda t: (t[0], t[1])):
            self._order.append((path, state))
        self._publish()

    def _adopt_existing(
        self, state: _TableState
    ) -> list[tuple[float, str, "_TableState"]]:
        """Re-open over a data dir that already holds segments (restart
        after a crash): adopt their sizes and continue numbering."""
        if not self.fs.exists(state.location):
            return []
        adopted = []
        for status in self.fs.list_directory(state.location):
            if not status.path.endswith(".ndjson"):
                continue
            state.segments[status.path] = status.length
            adopted.append((status.modification_time, status.path, state))
            stem = status.path.rsplit("/", 1)[-1]
            try:
                index = int(stem[len("seg-") : -len(".ndjson")])
            except ValueError:
                continue
            state.next_index = max(state.next_index, index + 1)
        return adopted

    # ------------------------------------------------------------------
    def record(self, table: str, event: dict) -> bool:
        """Append one event; returns False when dropped (fs failure).

        ``ts`` is stamped when absent. The event dict is the row: its
        top-level keys feed the promoted columns, the whole document is
        the ``payload`` column.
        """
        state = self._tables[table]
        event.setdefault("ts", round(self.clock(), 6))
        line = (json.dumps(event, sort_keys=True, default=str) + "\n").encode(
            "utf-8"
        )
        with self._lock:
            try:
                self._append_locked(state, line)
            except FsError:
                self.events_dropped += 1
                return False
            self.events[table] += 1
            self._rotate_locked()
            self._publish()
        return True

    def _append_locked(self, state: _TableState, line: bytes) -> None:
        if (
            state.active is None
            or state.active_bytes + len(line) > self.segment_bytes
        ):
            path = f"{state.location}/seg-{state.next_index:06d}.ndjson"
            state.next_index += 1
            self.fs.create(path, line)
            state.active = path
            state.active_bytes = len(line)
            state.segments[path] = len(line)
            self._order.append((path, state))
        else:
            self.fs.append(state.active, line)
            state.active_bytes += len(line)
            state.segments[state.active] = state.active_bytes

    def _rotate_locked(self) -> None:
        """Delete oldest sealed segments until back under budget."""
        while self.total_bytes() > self.budget_bytes:
            victim = None
            for i, (path, state) in enumerate(self._order):
                if path != state.active:
                    victim = i
                    break
            if victim is None:
                break  # only active segments remain; never delete those
            path, state = self._order.pop(victim)
            self.fs.delete(path)
            state.segments.pop(path, None)
            self.segments_rotated += 1

    def total_bytes(self) -> int:
        return sum(
            size
            for state in self._tables.values()
            for size in state.segments.values()
        )

    def _publish(self) -> None:
        if self.ledger is not None:
            self.ledger.set_tier("telemetry", self.total_bytes())

    # ------------------------------------------------------------------
    def record_spans(self, tracer, query_id: str, backend: str = "") -> int:
        """One ``system.spans`` row per span of a finished trace."""
        written = 0
        for span in tracer.spans():
            row = {
                "query_id": query_id,
                "trace_id": tracer.trace_id,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "name": span.name,
                "label": span.label,
                "wall_seconds": round(span.wall_seconds, 6),
                "worker": str(span.attributes.get("worker", "")),
                "backend": str(span.attributes.get("backend", backend)),
                "attributes": dict(span.attributes),
            }
            if self.record("spans", row):
                written += 1
        return written

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            return {
                "budget_bytes": self.budget_bytes,
                "bytes": self.total_bytes(),
                "segments": sum(
                    len(state.segments) for state in self._tables.values()
                ),
                "segments_rotated": self.segments_rotated,
                "events": dict(self.events),
                "events_dropped": self.events_dropped,
            }
