"""Cache-efficacy accounting: did the predictor earn its cache bytes?

The paper's loop is predictive: at midnight the predictor proposes
tomorrow's MPJPs (paths that will be parsed more than once), the scorer
selects within budget, and the cacher materialises them. This module
closes that loop with *realized* outcomes. While a generation serves, the
collector keeps counting actual parses; when the generation retires (the
next midnight), the accountant compares

* the **predicted** MPJP set (what the predictor proposed),
* the **cached** set (what survived scoring + budget), and
* the **realized** MPJP set (paths actually parsed ≥ threshold times
  during the generation's serving days)

into per-generation precision / recall / F1 of the prediction, plus hit
ratios of the *cached* set against realized demand weighted two ways:
by access count (how many duplicate parses the cache could intercept)
and by estimated bytes (how much parse *work*, the paper's real
currency). Records are bounded (``max_records``) and surfaced through
``ServerStatus``, the Prometheus exposition and the Markdown report.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["GenerationEfficacy", "EfficacyAccountant"]


@dataclass(frozen=True)
class GenerationEfficacy:
    """Realized prediction quality for one retired cache generation."""

    generation: int
    predicted_for_day: int
    served_days: tuple[int, ...]
    predicted_paths: int
    cached_paths: int
    realized_paths: int
    true_positives: int
    precision: float
    recall: float
    f1: float
    cached_realized: int
    count_weighted_hit_ratio: float
    byte_weighted_hit_ratio: float

    def to_dict(self) -> dict[str, object]:
        out = dict(self.__dict__)
        out["served_days"] = list(self.served_days)
        return out


@dataclass
class _PendingGeneration:
    generation: int
    day: int
    predicted: frozenset
    cached: frozenset
    served_days: list[int] = field(default_factory=list)


def _safe_ratio(numerator: float, denominator: float) -> float:
    return numerator / denominator if denominator else 0.0


class EfficacyAccountant:
    """Tracks the open generation and scores each one at retirement.

    Thread-safe: the midnight cycle opens/closes generations from the
    maintenance thread while status snapshots read records from query
    threads. ``byte_weight`` is an optional ``PathKey -> int`` estimating
    per-path parse bytes (the system wires the scorer's sampler in); it
    is consulted only at close time, once per realized path, and any
    failure inside it degrades that path's weight to zero rather than
    failing the cycle.
    """

    def __init__(self, byte_weight=None, max_records: int = 64) -> None:
        self.byte_weight = byte_weight
        self.max_records = max_records
        self.records: list[GenerationEfficacy] = []
        self._pending: _PendingGeneration | None = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def open_generation(
        self, generation: int, day: int, predicted, cached
    ) -> None:
        """Start accounting for a generation that begins serving ``day``."""
        with self._lock:
            self._pending = _PendingGeneration(
                generation=generation,
                day=day,
                predicted=frozenset(predicted),
                cached=frozenset(cached),
            )

    def close_pending(
        self, collector, up_to_day: int, threshold: int = 2
    ) -> GenerationEfficacy | None:
        """Score the open generation against days ``[day, up_to_day)``.

        Called at the next midnight, right before the swap that retires
        the generation. Returns the record (also appended to
        :attr:`records`), or ``None`` when nothing was open or the
        generation never served a complete day.
        """
        with self._lock:
            pending = self._pending
            self._pending = None
        if pending is None:
            return None
        served_days = [day for day in range(pending.day, up_to_day)]
        if not served_days:
            return None
        realized: set = set()
        counts: dict = {}
        for day in served_days:
            day_counts = collector.counts_on(day)
            for key, count in day_counts.items():
                counts[key] = counts.get(key, 0) + count
                if count >= threshold:
                    realized.add(key)
        true_positives = len(pending.predicted & realized)
        precision = _safe_ratio(true_positives, len(pending.predicted))
        recall = _safe_ratio(true_positives, len(realized))
        f1 = _safe_ratio(2 * precision * recall, precision + recall)
        cached_realized = len(pending.cached & realized)
        count_total = sum(counts.get(key, 0) for key in realized)
        count_hit = sum(
            counts.get(key, 0) for key in realized & pending.cached
        )
        byte_total = 0.0
        byte_hit = 0.0
        if self.byte_weight is not None:
            for key in realized:
                try:
                    weight = float(self.byte_weight(key) or 0)
                except Exception:
                    weight = 0.0
                byte_total += weight
                if key in pending.cached:
                    byte_hit += weight
        record = GenerationEfficacy(
            generation=pending.generation,
            predicted_for_day=pending.day,
            served_days=tuple(served_days),
            predicted_paths=len(pending.predicted),
            cached_paths=len(pending.cached),
            realized_paths=len(realized),
            true_positives=true_positives,
            precision=precision,
            recall=recall,
            f1=f1,
            cached_realized=cached_realized,
            count_weighted_hit_ratio=_safe_ratio(count_hit, count_total),
            byte_weighted_hit_ratio=_safe_ratio(byte_hit, byte_total),
        )
        with self._lock:
            self.records.append(record)
            if len(self.records) > self.max_records:
                del self.records[: -self.max_records]
        return record

    # ------------------------------------------------------------------
    def latest(self) -> GenerationEfficacy | None:
        with self._lock:
            return self.records[-1] if self.records else None

    def snapshot(self, limit: int = 8) -> list[dict[str, object]]:
        """The most recent ``limit`` per-generation records, oldest
        first — the ``ServerStatus.cache_efficacy`` payload."""
        with self._lock:
            return [record.to_dict() for record in self.records[-limit:]]

    def summary(self) -> dict[str, float]:
        """Averages over every retained record (0.0 when empty)."""
        with self._lock:
            records = list(self.records)
        if not records:
            return {
                "generations_scored": 0,
                "mean_precision": 0.0,
                "mean_recall": 0.0,
                "mean_byte_weighted_hit_ratio": 0.0,
            }
        n = len(records)
        return {
            "generations_scored": n,
            "mean_precision": sum(r.precision for r in records) / n,
            "mean_recall": sum(r.recall for r in records) / n,
            "mean_byte_weighted_hit_ratio": (
                sum(r.byte_weighted_hit_ratio for r in records) / n
            ),
        }
