"""Parse-once document sharing.

Maxson's thesis is that raw data should never be parsed twice — yet an
execution engine can silently re-introduce duplicate parsing when several
expressions extract different paths from the *same* source column: each
``get_json_object`` call re-parses the document once per expression per
row. :class:`DocumentCache` is the shared-parse primitive that fixes
this: it wraps a parser and memoises parsed documents by source text, so
within one evaluation scope (a query's :class:`~repro.engine.expressions.
EvalContext`, a cache build, a combiner fallback split) every distinct
document is parsed exactly once no matter how many consumers evaluate
paths against it.

Cost accounting contract: the wrapped parser's
:class:`~repro.jsonlib.jackson.ParseStats` charge each unique parse
**once** — a cache hit never re-charges parse time, documents or bytes to
the stats, which is what keeps the engine's "Parse" breakdown honest
under sharing (over-reporting would count the same wall-clock parse once
per consuming expression). Hits are tracked separately in :attr:`hits`
and surfaced as ``shared_parse_hits`` in query metrics.

Failed parses are cached too (as :data:`INVALID`): a malformed document
costs one parse attempt per scope, not one per consuming expression, and
the parser's ``errors`` counter moves once.

The cache is bounded two ways: by entry count (``max_entries``) and by a
byte budget (``max_bytes``, charged as the length of the *source text* —
a cheap proxy for the parsed tree that needs no traversal). Eviction is
LRU: a hit refreshes the entry, so a handful of hot documents survive a
scan over many cold ones. Evictions are counted and surfaced as
``doc_cache_evictions`` in query metrics.
"""

from __future__ import annotations

__all__ = ["DEFAULT_DOC_CACHE_BYTES", "INVALID", "DocumentCache"]

#: Sentinel cached for documents the parser rejected. Distinct from
#: ``None`` because ``"null"`` is a *valid* document that parses to None.
INVALID = object()

#: Default per-scope byte budget (source-text bytes). Generous enough
#: that typical queries never evict, small enough that a scan over large
#: documents cannot hold every one of them in memory at once.
DEFAULT_DOC_CACHE_BYTES = 64 * 1024 * 1024


class DocumentCache:
    """Memoise ``parser.parse(text)`` by source text.

    Parameters
    ----------
    parser:
        Any object with ``parse(text) -> object`` (JacksonParser,
        XmlParser, ...). Its own stats keep counting unique parses.
    error:
        Exception type (or tuple) the parser raises on malformed input;
        those texts cache as :data:`INVALID` instead of propagating.
    max_entries:
        Bound on cached documents.
    max_bytes:
        Bound on retained source-text bytes (``len(text)`` per entry —
        evicting by the text we key on avoids measuring parsed trees).
        ``None`` disables the byte budget.

    When either bound is hit the least-recently-used entry is evicted
    and :attr:`evictions` increments.
    """

    def __init__(
        self,
        parser,
        error: type[BaseException] | tuple,
        max_entries: int = 65536,
        max_bytes: int | None = DEFAULT_DOC_CACHE_BYTES,
    ) -> None:
        self.parser = parser
        self.error = error
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.current_bytes = 0
        self._documents: dict[str, object] = {}

    def document(self, text: str) -> object:
        """The parsed document for ``text``, or :data:`INVALID`.

        Parses on first sight (charging the parser's stats once) and
        serves every later request for the same text from the cache.
        """
        documents = self._documents
        try:
            cached = documents.pop(text)
        except KeyError:
            pass
        else:
            # Re-insert to refresh recency (dicts iterate oldest-first).
            documents[text] = cached
            self.hits += 1
            return cached
        self.misses += 1
        size = len(text)
        while documents and (
            len(documents) >= self.max_entries
            or (
                self.max_bytes is not None
                and self.current_bytes + size > self.max_bytes
            )
        ):
            oldest = next(iter(documents))
            documents.pop(oldest)
            self.current_bytes -= len(oldest)
            self.evictions += 1
        try:
            document = self.parser.parse(text)
        except self.error:
            document = INVALID
        documents[text] = document
        self.current_bytes += size
        return document

    def __len__(self) -> int:
        return len(self._documents)

    def clear(self) -> None:
        """Drop every cached document (hit/miss counters survive)."""
        self._documents.clear()
        self.current_bytes = 0
