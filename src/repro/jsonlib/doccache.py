"""Parse-once document sharing.

Maxson's thesis is that raw data should never be parsed twice — yet an
execution engine can silently re-introduce duplicate parsing when several
expressions extract different paths from the *same* source column: each
``get_json_object`` call re-parses the document once per expression per
row. :class:`DocumentCache` is the shared-parse primitive that fixes
this: it wraps a parser and memoises parsed documents by source text, so
within one evaluation scope (a query's :class:`~repro.engine.expressions.
EvalContext`, a cache build, a combiner fallback split) every distinct
document is parsed exactly once no matter how many consumers evaluate
paths against it.

Cost accounting contract: the wrapped parser's
:class:`~repro.jsonlib.jackson.ParseStats` charge each unique parse
**once** — a cache hit never re-charges parse time, documents or bytes to
the stats, which is what keeps the engine's "Parse" breakdown honest
under sharing (over-reporting would count the same wall-clock parse once
per consuming expression). Hits are tracked separately in :attr:`hits`
and surfaced as ``shared_parse_hits`` in query metrics.

Failed parses are cached too (as :data:`INVALID`): a malformed document
costs one parse attempt per scope, not one per consuming expression, and
the parser's ``errors`` counter moves once.
"""

from __future__ import annotations

__all__ = ["INVALID", "DocumentCache"]

#: Sentinel cached for documents the parser rejected. Distinct from
#: ``None`` because ``"null"`` is a *valid* document that parses to None.
INVALID = object()


class DocumentCache:
    """Memoise ``parser.parse(text)`` by source text.

    Parameters
    ----------
    parser:
        Any object with ``parse(text) -> object`` (JacksonParser,
        XmlParser, ...). Its own stats keep counting unique parses.
    error:
        Exception type (or tuple) the parser raises on malformed input;
        those texts cache as :data:`INVALID` instead of propagating.
    max_entries:
        Bound on cached documents. When full, the oldest entry is
        evicted (FIFO) — the cache is a per-scope sharing device, not a
        long-lived store, so recency bookkeeping is not worth its cost.
    """

    def __init__(
        self, parser, error: type[BaseException] | tuple, max_entries: int = 65536
    ) -> None:
        self.parser = parser
        self.error = error
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._documents: dict[str, object] = {}

    def document(self, text: str) -> object:
        """The parsed document for ``text``, or :data:`INVALID`.

        Parses on first sight (charging the parser's stats once) and
        serves every later request for the same text from the cache.
        """
        documents = self._documents
        try:
            cached = documents[text]
        except KeyError:
            pass
        else:
            self.hits += 1
            return cached
        self.misses += 1
        if len(documents) >= self.max_entries:
            documents.pop(next(iter(documents)))
        try:
            document = self.parser.parse(text)
        except self.error:
            document = INVALID
        documents[text] = document
        return document

    def __len__(self) -> int:
        return len(self._documents)

    def clear(self) -> None:
        """Drop every cached document (hit/miss counters survive)."""
        self._documents.clear()
