"""A Mison-style structural-index JSON parser.

Mison (Li et al., VLDB 2017) speeds up field projection by first building a
*structural index* over the raw bytes — the positions of unescaped colons
and braces at each nesting level — and then jumping directly to the fields a
query needs, parsing only those values. This module reproduces that design
in pure Python:

1. :func:`build_structural_index` makes one linear scan of the document,
   classifying every structural character while tracking string/escape
   state (the bitwise-SIMD phase of the original paper collapses to this
   scan in Python).
2. :class:`MisonParser.project` walks the colon positions of the requested
   nesting levels only, decoding keys it meets and values only for matched
   fields. Unrequested subtrees are *skipped* structurally, not parsed.

The behavioural property the paper's Fig 15 relies on survives the
translation: projecting a few fields touches far fewer characters than full
parsing, but the advantage shrinks when many fields are requested or the
schema varies (each miss still pays key decoding).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from .errors import JsonParseError
from .jackson import JacksonParser, ParseStats
from .jsonpath import Index, JsonPath, Member, parse_path
from .tokens import scan_number, scan_string

__all__ = ["StructuralIndex", "build_structural_index", "MisonParser"]

_WHITESPACE = " \t\n\r"
_DIGITS = "0123456789"


@dataclass(slots=True)
class StructuralIndex:
    """Positions of structural characters, bucketed by nesting level.

    ``colons[level]`` lists offsets of the colons that separate keys from
    values for objects at ``level`` (the root object is level 0).
    ``spans`` maps the offset of every ``{``/``[`` to the offset of its
    matching ``}``/``]``, enabling O(1) skipping of unrequested subtrees.
    """

    colons: list[list[int]]
    spans: dict[int, int]
    length: int


def build_structural_index(text: str, max_level: int = 32) -> StructuralIndex:
    """Single-pass structural scan of ``text``.

    Raises :class:`JsonParseError` for unbalanced structure; string
    contents (including escaped quotes) are handled exactly.
    """
    colons: list[list[int]] = [[] for _ in range(max_level)]
    spans: dict[int, int] = {}
    stack: list[int] = []
    level = -1
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == '"':
            # Skip the whole string literal, honouring escapes.
            i += 1
            while i < n:
                if text[i] == "\\":
                    i += 2
                    continue
                if text[i] == '"':
                    break
                i += 1
            if i >= n:
                raise JsonParseError("unterminated string", n)
        elif ch == "{" or ch == "[":
            stack.append(i)
            level += 1
            if level >= max_level:
                raise JsonParseError("nesting exceeds structural index depth", i)
        elif ch == "}" or ch == "]":
            if not stack:
                raise JsonParseError("unbalanced closing bracket", i)
            spans[stack.pop()] = i
            level -= 1
        elif ch == ":" and 0 <= level < max_level:
            colons[level].append(i)
        i += 1
    if stack:
        raise JsonParseError("unterminated container", stack[-1])
    return StructuralIndex(colons=colons, spans=spans, length=n)


class MisonParser:
    """Project specific JSONPaths out of a document without full parsing.

    The public surface mirrors what the Maxson engine needs from a parser:

    ``project(text, paths)``
        returns ``{path.raw: value}`` for each requested path, with ``None``
        for misses — the same NULL contract as ``get_json_object``.

    ``parse(text)``
        full parse fallback (delegates to Jackson) so a ``MisonParser`` can
        stand in anywhere a full parser is required.

    Stats accounting: ``stats.bytes_scanned`` counts the structural scan
    plus only the *value bytes actually decoded*, making the projection
    saving measurable.

    **Speculative parsing** (Pikkr's optimisation, enabled by default):
    after a successful projection the parser remembers, per path, the
    byte offset where the value was found together with the probe text
    (``"key":``) immediately before it. On the next document it first
    checks whether the probe matches at the remembered offset; if so, the
    value is decoded directly with *no structural scan at all*. When the
    dataset's JSON pattern "has little change" (the paper's Q6), nearly
    every document hits the speculation and projection cost collapses;
    schema-varying datasets miss and pay the full structural scan, which
    is exactly the degradation mode Fig 15 discusses.
    """

    name = "mison"

    def __init__(self, speculative: bool = True) -> None:
        self.stats = ParseStats()
        self.speculative = speculative
        self._fallback = JacksonParser()
        #: per-path speculation state: raw path -> (probe, probe_offset)
        self._speculation: dict[str, tuple[str, int]] = {}
        self.speculation_hits = 0
        self.speculation_misses = 0

    # ------------------------------------------------------------------
    def parse(self, text: str) -> object:
        """Full document parse (Jackson fallback, stats attributed here)."""
        started = time.perf_counter()
        try:
            return self._fallback.parse(text)
        finally:
            self.stats.seconds += time.perf_counter() - started
            self.stats.documents += 1
            self.stats.bytes_scanned += len(text)

    def project(self, text: str, paths: list[JsonPath | str]) -> dict[str, object]:
        """Extract the values of ``paths`` from ``text``.

        Malformed documents yield all-``None`` results (Hive NULL
        contract) and count as errors in the stats.
        """
        parsed_paths = [parse_path(p) if isinstance(p, str) else p for p in paths]
        started = time.perf_counter()
        decoded_bytes = 0
        results: dict[str, object] = {}
        pending: list[JsonPath] = []
        if self.speculative:
            for path in parsed_paths:
                hit = self._try_speculation(text, path)
                if hit is None:
                    pending.append(path)
                else:
                    value, touched = hit
                    results[path.raw] = value
                    decoded_bytes += touched
        else:
            pending = list(parsed_paths)
        if pending:
            try:
                index = build_structural_index(text)
            except JsonParseError:
                self.stats.errors += 1
                self.stats.documents += 1
                self.stats.seconds += time.perf_counter() - started
                return {p.raw: None for p in parsed_paths}
            for path in pending:
                value, touched = self._follow(text, index, path)
                decoded_bytes += touched
                results[path.raw] = value
            decoded_bytes += len(text)  # the structural scan itself
        self.stats.documents += 1
        self.stats.bytes_scanned += decoded_bytes
        self.stats.seconds += time.perf_counter() - started
        return results

    # ------------------------------------------------------------------
    # speculative fast path (Pikkr)
    # ------------------------------------------------------------------
    def _try_speculation(
        self, text: str, path: JsonPath
    ) -> tuple[object, int] | None:
        """Decode ``path`` at its remembered offset if the probe matches.

        Returns ``(value, bytes_touched)`` on a hit, ``None`` on a miss
        (including when no speculation is recorded yet). Hits never
        consult the structural index.
        """
        record = self._speculation.get(path.raw)
        if record is None:
            return None
        probe, offset = record
        if not text.startswith(probe, offset):
            self.speculation_misses += 1
            return None
        value_start = _skip_ws(text, offset + len(probe))
        try:
            value, length = _decode_scalar_or_balanced(text, value_start)
        except JsonParseError:
            self.speculation_misses += 1
            return None
        self.speculation_hits += 1
        return value, len(probe) + length

    def _remember(self, text: str, path: JsonPath, value_start: int) -> None:
        """Record the probe for future speculation on this path.

        Only simple member chains are speculated: the probe is the final
        ``"leaf":`` token plus its absolute offset, validated on reuse.
        """
        if not all(isinstance(step, Member) for step in path.steps):
            return
        leaf = path.steps[-1].name  # type: ignore[union-attr]
        probe_text = f'"{leaf}"'
        # Walk back from the value start to the key that names it.
        key_end = _rskip_ws(text, value_start)
        if key_end == 0 or text[key_end - 1] != ":":
            return
        key_close = _rskip_ws(text, key_end - 1)
        probe_start = key_close - len(probe_text)
        if probe_start < 0 or text[probe_start:key_close] != probe_text:
            return
        probe = text[probe_start:value_start]
        self._speculation[path.raw] = (probe, probe_start)

    # ------------------------------------------------------------------
    def _follow(
        self, text: str, index: StructuralIndex, path: JsonPath
    ) -> tuple[object, int]:
        """Walk ``path`` through the structural index. Returns (value, bytes)."""
        # Current container span; the root container is the first structural
        # open bracket in the document.
        start = _skip_ws(text, 0)
        if start >= index.length or text[start] not in "{[":
            # Scalar root: only valid if the path immediately misses.
            return None, 0
        node_start = start
        touched = 0
        for step_no, step in enumerate(path.steps):
            node_end = index.spans.get(node_start)
            if node_end is None:
                return None, touched
            if isinstance(step, Member):
                if text[node_start] != "{":
                    return None, touched
                found = self._find_member(text, index, node_start, node_end, step.name)
                if found is None:
                    return None, touched
                value_start, key_len = found
                touched += key_len
                node_start = value_start
            elif isinstance(step, Index):
                if text[node_start] != "[":
                    return None, touched
                element = self._nth_element(text, index, node_start, node_end, step.index)
                if element is None:
                    return None, touched
                node_start = element
            else:  # Wildcard — fall back to decoding the array subtree fully.
                if text[node_start] != "[":
                    return None, touched
                subtree = text[node_start : index.spans[node_start] + 1]
                touched += len(subtree)
                try:
                    decoded = self._fallback.parse(subtree)
                except JsonParseError:
                    return None, touched
                remainder = JsonPath(raw=path.raw, steps=path.steps[step_no:])
                from .jsonpath import evaluate

                return evaluate(remainder, decoded), touched
        if self.speculative:
            self._remember(text, path, node_start)
        value, value_len = _decode_value(text, index, node_start)
        return value, touched + value_len

    def _find_member(
        self,
        text: str,
        index: StructuralIndex,
        obj_start: int,
        obj_end: int,
        name: str,
    ) -> tuple[int, int] | None:
        """Locate member ``name`` of the object spanning [obj_start, obj_end].

        Returns ``(value_start_offset, key_bytes_decoded)`` or ``None``.
        """
        level = _level_of(index, obj_start)
        key_bytes = 0
        for colon in _colons_between(index, level, obj_start, obj_end):
            key_end = _rskip_ws(text, colon)
            if key_end <= obj_start or text[key_end - 1] != '"':
                continue
            key_start = _string_start(text, key_end - 1, obj_start)
            if key_start is None:
                continue
            key, _ = scan_string(text, key_start)
            key_bytes += key_end - key_start
            if key == name:
                return _skip_ws(text, colon + 1), key_bytes
        return None

    def _nth_element(
        self,
        text: str,
        index: StructuralIndex,
        arr_start: int,
        arr_end: int,
        target: int,
    ) -> int | None:
        """Offset of the ``target``-th element of the array, or ``None``."""
        i = _skip_ws(text, arr_start + 1)
        if i >= arr_end:
            return None
        element = 0
        while i < arr_end:
            if element == target:
                return i
            i = _end_of_value(text, index, i)
            i = _skip_ws(text, i)
            if i >= arr_end or text[i] != ",":
                return None
            i = _skip_ws(text, i + 1)
            element += 1
        return None


# ----------------------------------------------------------------------
# offset helpers
# ----------------------------------------------------------------------
def _skip_ws(text: str, i: int) -> int:
    n = len(text)
    while i < n and text[i] in _WHITESPACE:
        i += 1
    return i


def _rskip_ws(text: str, i: int) -> int:
    while i > 0 and text[i - 1] in _WHITESPACE:
        i -= 1
    return i


def _string_start(text: str, closing_quote: int, floor: int) -> int | None:
    """Offset of the opening quote of the string ending at ``closing_quote``."""
    i = closing_quote - 1
    while i >= floor:
        if text[i] == '"':
            # Count the backslashes immediately before; an even count means
            # this quote is unescaped and therefore the opener.
            backslashes = 0
            j = i - 1
            while j >= floor and text[j] == "\\":
                backslashes += 1
                j -= 1
            if backslashes % 2 == 0:
                return i
        i -= 1
    return None


def _level_of(index: StructuralIndex, container_start: int) -> int:
    """Nesting level of the container opening at ``container_start``."""
    level = 0
    for open_pos, close_pos in index.spans.items():
        if open_pos < container_start and close_pos > container_start:
            level += 1
    return level


def _colons_between(
    index: StructuralIndex, level: int, start: int, end: int
) -> list[int]:
    if level >= len(index.colons):
        return []
    return [c for c in index.colons[level] if start < c < end]


def _end_of_value(text: str, index: StructuralIndex, i: int) -> int:
    """Offset one past the value starting at ``i``."""
    ch = text[i]
    if ch in "{[":
        return index.spans[i] + 1
    if ch == '"':
        _, end = scan_string(text, i)
        return end
    if ch == "-" or ch in _DIGITS:
        _, end = scan_number(text, i)
        return end
    for literal in ("true", "false", "null"):
        if text.startswith(literal, i):
            return i + len(literal)
    raise JsonParseError("unexpected value start", i)


def _decode_scalar_or_balanced(text: str, i: int) -> tuple[object, int]:
    """Decode the value at ``i`` without a structural index.

    Containers are decoded by scanning for their matching close bracket
    (string-aware), so speculation hits can return nested values too.
    Returns ``(value, bytes_consumed)``.
    """
    if i >= len(text):
        raise JsonParseError("unexpected end of input", i)
    ch = text[i]
    if ch == '"':
        value, end = scan_string(text, i)
        return value, end - i
    if ch == "-" or ch in _DIGITS:
        value, end = scan_number(text, i)
        return value, end - i
    if text.startswith("true", i):
        return True, 4
    if text.startswith("false", i):
        return False, 5
    if text.startswith("null", i):
        return None, 4
    if ch in "{[":
        depth = 0
        j = i
        n = len(text)
        while j < n:
            cj = text[j]
            if cj == '"':
                _, j = scan_string(text, j)
                continue
            if cj in "{[":
                depth += 1
            elif cj in "}]":
                depth -= 1
                if depth == 0:
                    subtree = text[i : j + 1]
                    return JacksonParser().parse(subtree), len(subtree)
            j += 1
        raise JsonParseError("unterminated container", i)
    raise JsonParseError("unexpected value start", i)


def _decode_value(text: str, index: StructuralIndex, i: int) -> tuple[object, int]:
    """Decode the single value at offset ``i``. Returns (value, bytes)."""
    ch = text[i]
    if ch in "{[":
        end = index.spans[i] + 1
        subtree = text[i:end]
        return JacksonParser().parse(subtree), len(subtree)
    if ch == '"':
        value, end = scan_string(text, i)
        return value, end - i
    if ch == "-" or ch in _DIGITS:
        value, end = scan_number(text, i)
        return value, end - i
    if text.startswith("true", i):
        return True, 4
    if text.startswith("false", i):
        return False, 5
    if text.startswith("null", i):
        return None, 4
    raise JsonParseError("unexpected value start", i)
