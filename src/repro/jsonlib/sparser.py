"""A Sparser-style raw-byte prefilter.

Sparser (Palkar et al., VLDB 2018) observes that analytical queries over raw
data are often highly selective, so it is cheaper to run approximate
*raw filters* (substring probes) over the undecoded bytes and only parse the
records that pass. The filters are conservative: they may pass a record
that the exact predicate later rejects (false positive) but must never drop
a record the predicate would accept.

This module implements the two raw-filter families from the paper that are
expressible without SIMD:

* :class:`SubstringFilter` — the record must contain a byte substring;
* :class:`KeyValueFilter` — the record must contain ``"key":value`` with
  optional whitespace, a common exact-match accelerant.

plus a small cost-based cascade optimiser that orders filters by measured
selectivity-per-cost on a calibration sample, mirroring Sparser's
optimiser.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .jackson import ParseStats

__all__ = ["RawFilter", "SubstringFilter", "KeyValueFilter", "FilterCascade"]


class RawFilter:
    """Base class: a conservative predicate over undecoded JSON text."""

    def matches(self, text: str) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class SubstringFilter(RawFilter):
    """Pass records whose raw text contains ``needle``."""

    needle: str

    def matches(self, text: str) -> bool:
        return self.needle in text

    def describe(self) -> str:
        return f"substring({self.needle!r})"


@dataclass(frozen=True)
class KeyValueFilter(RawFilter):
    """Pass records containing ``"key"`` followed by ``: value``.

    A conservative approximation of the exact predicate ``$.key == value``:
    whitespace between the colon and the value is tolerated, but the probe
    may also fire on the same key/value pair in a *nested* object, which the
    exact evaluation later filters out — that is the allowed false-positive
    direction.
    """

    key: str
    value: str

    def matches(self, text: str) -> bool:
        probe = f'"{self.key}"'
        start = 0
        while True:
            at = text.find(probe, start)
            if at == -1:
                return False
            i = at + len(probe)
            n = len(text)
            while i < n and text[i] in " \t\n\r":
                i += 1
            if i < n and text[i] == ":":
                i += 1
                while i < n and text[i] in " \t\n\r":
                    i += 1
                if text.startswith(self.value, i):
                    return True
            start = at + 1

    def describe(self) -> str:
        return f"kv({self.key!r}={self.value!r})"


@dataclass
class FilterCascade:
    """An ordered conjunction of raw filters with selectivity calibration.

    ``calibrate`` measures each filter's pass rate and per-record cost on a
    sample and re-orders the cascade so the filter with the best
    (records eliminated / second) runs first — Sparser's core optimisation.
    """

    filters: list[RawFilter]
    stats: ParseStats = field(default_factory=ParseStats)

    def matches(self, text: str) -> bool:
        """True iff every filter passes. Records stats for the scan."""
        started = time.perf_counter()
        try:
            return all(f.matches(text) for f in self.filters)
        finally:
            self.stats.documents += 1
            self.stats.bytes_scanned += len(text)
            self.stats.seconds += time.perf_counter() - started

    def filter(self, records: list[str]) -> list[str]:
        """Return the sub-list of ``records`` passing the cascade."""
        return [record for record in records if self.matches(record)]

    def calibrate(self, sample: list[str]) -> None:
        """Reorder filters by measured elimination rate per unit cost."""
        if not sample or not self.filters:
            return
        ranked: list[tuple[float, int, RawFilter]] = []
        for position, raw_filter in enumerate(self.filters):
            started = time.perf_counter()
            passed = sum(1 for record in sample if raw_filter.matches(record))
            elapsed = max(time.perf_counter() - started, 1e-9)
            eliminated = len(sample) - passed
            # Higher elimination per second is better; ties keep original
            # order via the position component.
            ranked.append((-(eliminated / elapsed), position, raw_filter))
        ranked.sort(key=lambda item: (item[0], item[1]))
        self.filters = [raw_filter for _, _, raw_filter in ranked]

    def pass_rate(self, sample: list[str]) -> float:
        """Fraction of ``sample`` records that pass the whole cascade."""
        if not sample:
            return 1.0
        passed = sum(1 for record in sample if all(f.matches(record) for f in self.filters))
        return passed / len(sample)
