"""A full recursive-descent JSON parser — the "Jackson" baseline.

In the paper the default SparkSQL parser is Jackson: a conventional parser
that fully deserialises the document into an object tree before any field
can be read. This module plays that role. It is the *reference semantics*
for every other parser in the package, and it maintains a
:class:`ParseStats` counter so the query engine can attribute time and
bytes to parsing (Fig 3, Fig 12 of the paper).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .errors import DepthLimitError, JsonParseError
from .tokens import scan_number, scan_string

__all__ = ["JacksonParser", "ParseStats", "parse", "dumps"]

_WHITESPACE = " \t\n\r"
_DIGITS = "0123456789"

#: Default maximum nesting depth. NoBench and the production documents in
#: the paper nest at most 5 levels (Table II); 128 is generous headroom
#: while still catching runaway inputs.
DEFAULT_MAX_DEPTH = 128


@dataclass
class ParseStats:
    """Counters accumulated across calls to a parser instance.

    These counters are the raw material of the paper's cost breakdowns:
    the engine sums ``seconds`` to report the "Parse" bar of Fig 3/12 and
    ``bytes_scanned`` to report input size.
    """

    documents: int = 0
    bytes_scanned: int = 0
    seconds: float = 0.0
    errors: int = 0
    extra: dict[str, float] = field(default_factory=dict)

    def merge(self, other: "ParseStats") -> None:
        """Fold ``other`` into this instance (used by parallel readers)."""
        self.documents += other.documents
        self.bytes_scanned += other.bytes_scanned
        self.seconds += other.seconds
        self.errors += other.errors
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0.0) + value

    def reset(self) -> None:
        """Zero every counter."""
        self.documents = 0
        self.bytes_scanned = 0
        self.seconds = 0.0
        self.errors = 0
        self.extra.clear()


class JacksonParser:
    """Parse a complete JSON document into Python objects.

    The parser is strict: trailing garbage, unterminated containers and
    invalid escapes all raise :class:`JsonParseError`. Objects decode to
    ``dict``, arrays to ``list``, and scalar types to their natural Python
    equivalents.

    A single instance may be reused across many documents; it accumulates
    :class:`ParseStats` across calls.
    """

    name = "jackson"

    def __init__(self, max_depth: int = DEFAULT_MAX_DEPTH) -> None:
        self.max_depth = max_depth
        self.stats = ParseStats()

    def parse(self, text: str) -> object:
        """Parse ``text`` and return the decoded document."""
        started = time.perf_counter()
        try:
            value, end = self._parse_value(text, self._skip_ws(text, 0), 0)
            end = self._skip_ws(text, end)
            if end != len(text):
                raise JsonParseError("trailing data after document", end)
        except JsonParseError:
            self.stats.errors += 1
            raise
        finally:
            self.stats.seconds += time.perf_counter() - started
            self.stats.documents += 1
            self.stats.bytes_scanned += len(text)
        return value

    # ------------------------------------------------------------------
    # recursive descent
    # ------------------------------------------------------------------
    @staticmethod
    def _skip_ws(text: str, i: int) -> int:
        n = len(text)
        while i < n and text[i] in _WHITESPACE:
            i += 1
        return i

    def _parse_value(self, text: str, i: int, depth: int) -> tuple[object, int]:
        if depth > self.max_depth:
            raise DepthLimitError("maximum nesting depth exceeded", i)
        if i >= len(text):
            raise JsonParseError("unexpected end of input", i)
        ch = text[i]
        if ch == "{":
            return self._parse_object(text, i, depth)
        if ch == "[":
            return self._parse_array(text, i, depth)
        if ch == '"':
            return scan_string(text, i)
        if ch == "-" or ch in _DIGITS:
            return scan_number(text, i)
        if text.startswith("true", i):
            return True, i + 4
        if text.startswith("false", i):
            return False, i + 5
        if text.startswith("null", i):
            return None, i + 4
        raise JsonParseError(f"unexpected character {ch!r}", i)

    def _parse_object(self, text: str, i: int, depth: int) -> tuple[dict, int]:
        obj: dict[str, object] = {}
        i = self._skip_ws(text, i + 1)
        if i < len(text) and text[i] == "}":
            return obj, i + 1
        while True:
            if i >= len(text) or text[i] != '"':
                raise JsonParseError("expected object key", i)
            key, i = scan_string(text, i)
            i = self._skip_ws(text, i)
            if i >= len(text) or text[i] != ":":
                raise JsonParseError("expected ':' after object key", i)
            i = self._skip_ws(text, i + 1)
            value, i = self._parse_value(text, i, depth + 1)
            obj[key] = value
            i = self._skip_ws(text, i)
            if i >= len(text):
                raise JsonParseError("unterminated object", i)
            if text[i] == ",":
                i = self._skip_ws(text, i + 1)
                continue
            if text[i] == "}":
                return obj, i + 1
            raise JsonParseError("expected ',' or '}' in object", i)

    def _parse_array(self, text: str, i: int, depth: int) -> tuple[list, int]:
        arr: list[object] = []
        i = self._skip_ws(text, i + 1)
        if i < len(text) and text[i] == "]":
            return arr, i + 1
        while True:
            value, i = self._parse_value(text, i, depth + 1)
            arr.append(value)
            i = self._skip_ws(text, i)
            if i >= len(text):
                raise JsonParseError("unterminated array", i)
            if text[i] == ",":
                i = self._skip_ws(text, i + 1)
                continue
            if text[i] == "]":
                return arr, i + 1
            raise JsonParseError("expected ',' or ']' in array", i)


_MODULE_PARSER = JacksonParser()


def parse(text: str) -> object:
    """Parse ``text`` with a module-level :class:`JacksonParser`."""
    return _MODULE_PARSER.parse(text)


_STRING_ESCAPES = {
    '"': '\\"',
    "\\": "\\\\",
    "\b": "\\b",
    "\f": "\\f",
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
}


def _escape(value: str) -> str:
    out: list[str] = []
    for ch in value:
        if ch in _STRING_ESCAPES:
            out.append(_STRING_ESCAPES[ch])
        elif ord(ch) < 0x20:
            out.append(f"\\u{ord(ch):04x}")
        else:
            out.append(ch)
    return "".join(out)


def dumps(value: object) -> str:
    """Serialise a Python object tree to compact JSON text.

    The inverse of :func:`parse` for the value domain the parsers produce
    (dict/list/str/int/float/bool/None). Used by the workload generators so
    the package is self-contained and never depends on the stdlib ``json``
    module's exact formatting.
    """
    if value is None:
        return "null"
    if value is True:
        return "true"
    if value is False:
        return "false"
    if isinstance(value, str):
        return f'"{_escape(value)}"'
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise ValueError("JSON cannot represent NaN or infinity")
        return repr(value)
    if isinstance(value, dict):
        items = ",".join(f'"{_escape(str(k))}":{dumps(v)}' for k, v in value.items())
        return "{" + items + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(dumps(v) for v in value) + "]"
    raise TypeError(f"cannot serialise {type(value).__name__} to JSON")
