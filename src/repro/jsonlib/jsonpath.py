"""JSONPath parsing and evaluation with ``get_json_object`` semantics.

The paper's queries access JSON fields through Hive/Spark's
``get_json_object(column, '$.a.b[0]')`` UDF. This module implements that
path dialect:

* ``$`` — the root document;
* ``.name`` / ``['name']`` — object member access;
* ``[i]`` — array index (non-negative);
* ``[*]`` — wildcard over array elements (result is a list);
* chained steps, e.g. ``$.items[*].price``.

Evaluation returns ``None`` for any missing step (Hive returns SQL NULL),
never raising, while *path parsing* errors raise :class:`JsonPathError` so
malformed queries fail loudly at plan time rather than silently returning
NULLs at run time.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Union

from .errors import JsonPathError

__all__ = [
    "Step",
    "Member",
    "Index",
    "Wildcard",
    "JsonPath",
    "parse_path",
    "evaluate",
    "get_json_object",
]


@dataclass(frozen=True, slots=True)
class Member:
    """Object member access ``.name`` or ``['name']``."""

    name: str


@dataclass(frozen=True, slots=True)
class Index:
    """Array index access ``[i]``."""

    index: int


@dataclass(frozen=True, slots=True)
class Wildcard:
    """Array wildcard ``[*]``; fans the evaluation out over elements."""


Step = Union[Member, Index, Wildcard]


@dataclass(frozen=True)
class JsonPath:
    """A parsed JSONPath: an ordered tuple of steps rooted at ``$``.

    Instances are hashable and therefore usable directly as cache keys —
    Maxson's cache tables key on ``(db, table, column, JsonPath)``.
    """

    raw: str
    steps: tuple[Step, ...]

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.raw

    @property
    def depth(self) -> int:
        """Number of member steps — the nesting level of the target field."""
        return sum(1 for step in self.steps if isinstance(step, Member))

    @property
    def leaf(self) -> str:
        """Name of the final member step, or '' if the path ends in an index."""
        for step in reversed(self.steps):
            if isinstance(step, Member):
                return step.name
        return ""

    def evaluate(self, document: object) -> object:
        """Evaluate this path against a decoded document."""
        return evaluate(self, document)


_IDENT_TERMINATORS = ".["


def _parse_bracket(raw: str, i: int) -> tuple[Step, int]:
    """Parse one ``[...]`` selector starting at the ``[`` in ``raw[i]``."""
    end = raw.find("]", i)
    if end == -1:
        raise JsonPathError("unterminated '['", raw)
    inner = raw[i + 1 : end].strip()
    if not inner:
        raise JsonPathError("empty bracket selector", raw)
    if inner == "*":
        return Wildcard(), end + 1
    if inner[0] in "'\"":
        if len(inner) < 2 or inner[-1] != inner[0]:
            raise JsonPathError("unterminated quoted member", raw)
        return Member(inner[1:-1]), end + 1
    try:
        index = int(inner)
    except ValueError as exc:
        raise JsonPathError(f"invalid index {inner!r}", raw) from exc
    if index < 0:
        raise JsonPathError("negative indices are not supported", raw)
    return Index(index), end + 1


@lru_cache(maxsize=4096)
def parse_path(raw: str) -> JsonPath:
    """Parse a JSONPath string such as ``$.a.b[0]`` into a :class:`JsonPath`.

    Results are memoised: workloads evaluate the same handful of paths
    millions of times, and path parsing must not show up in the parse-cost
    accounting.
    """
    text = raw.strip()
    if not text.startswith("$"):
        raise JsonPathError("path must start with '$'", raw)
    steps: list[Step] = []
    i = 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == ".":
            i += 1
            if i >= n:
                raise JsonPathError("trailing '.'", raw)
            if text[i] == "." or text[i] == "[":
                raise JsonPathError("empty member name", raw)
            j = i
            while j < n and text[j] not in _IDENT_TERMINATORS:
                j += 1
            steps.append(Member(text[i:j]))
            i = j
        elif ch == "[":
            step, i = _parse_bracket(text, i)
            steps.append(step)
        else:
            raise JsonPathError(f"unexpected character {ch!r}", raw)
    if not steps:
        raise JsonPathError("path selects the whole document; use at least one step", raw)
    return JsonPath(raw=text, steps=tuple(steps))


def evaluate(path: JsonPath | str, document: object) -> object:
    """Evaluate ``path`` against ``document``; missing steps yield ``None``."""
    if isinstance(path, str):
        path = parse_path(path)
    return _walk(document, path.steps, 0)


def _walk(node: object, steps: tuple[Step, ...], i: int) -> object:
    while i < len(steps):
        step = steps[i]
        if isinstance(step, Member):
            if not isinstance(node, dict):
                return None
            if step.name not in node:
                return None
            node = node[step.name]
        elif isinstance(step, Index):
            if not isinstance(node, list) or step.index >= len(node):
                return None
            node = node[step.index]
        else:  # Wildcard
            if not isinstance(node, list):
                return None
            fanned = [_walk(element, steps, i + 1) for element in node]
            return [value for value in fanned if value is not None]
        i += 1
    return node


def get_json_object(json_text: str | None, path: str, parser=None) -> object:
    """Hive-compatible ``get_json_object``: parse then evaluate.

    ``None`` input, malformed JSON and missing paths all yield ``None``
    (matching Hive's NULL-on-error contract). Pass a parser instance to
    attribute parse cost to a caller-owned :class:`~repro.jsonlib.jackson.ParseStats`.
    """
    if json_text is None:
        return None
    from .jackson import JacksonParser
    from .errors import JsonParseError

    if parser is None:
        parser = JacksonParser()
    try:
        document = parser.parse(json_text)
    except JsonParseError:
        return None
    return evaluate(path, document)
