"""JSON substrate: parsers, JSONPath, and raw prefiltering.

Three parser families reproduce the comparators of the paper's Fig 15:

* :class:`~repro.jsonlib.jackson.JacksonParser` — conventional full
  deserialisation (SparkSQL's default Jackson parser);
* :class:`~repro.jsonlib.mison.MisonParser` — structural-index projection
  (Mison / Pikkr);
* :class:`~repro.jsonlib.sparser.FilterCascade` — raw-byte prefiltering
  (Sparser).

:mod:`~repro.jsonlib.jsonpath` implements the ``get_json_object`` path
dialect shared by all of them.
"""

from .doccache import INVALID, DocumentCache
from .errors import DepthLimitError, JsonError, JsonParseError, JsonPathError
from .jackson import JacksonParser, ParseStats, dumps, parse
from .jsonpath import JsonPath, evaluate, get_json_object, parse_path
from .mison import MisonParser, StructuralIndex, build_structural_index
from .sparser import FilterCascade, KeyValueFilter, RawFilter, SubstringFilter

__all__ = [
    "JsonError",
    "JsonParseError",
    "JsonPathError",
    "DepthLimitError",
    "JacksonParser",
    "ParseStats",
    "DocumentCache",
    "INVALID",
    "parse",
    "dumps",
    "JsonPath",
    "parse_path",
    "evaluate",
    "get_json_object",
    "MisonParser",
    "StructuralIndex",
    "build_structural_index",
    "FilterCascade",
    "SubstringFilter",
    "KeyValueFilter",
    "RawFilter",
]
