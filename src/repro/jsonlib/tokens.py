"""A hand written JSON tokenizer shared by the parsers in this package.

The tokenizer turns JSON text into a flat stream of :class:`Token` objects.
It is deliberately written without regular expressions so that the cost of
tokenisation is proportional to the number of characters scanned — the same
property that makes "how much of the document did we touch" a meaningful
metric for the Mison-style parser in :mod:`repro.jsonlib.mison`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from .errors import JsonParseError

__all__ = ["TokenType", "Token", "tokenize", "scan_string", "scan_number"]


class TokenType(enum.Enum):
    """Lexical categories of JSON tokens."""

    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COLON = ":"
    COMMA = ","
    STRING = "string"
    NUMBER = "number"
    TRUE = "true"
    FALSE = "false"
    NULL = "null"
    EOF = "eof"


@dataclass(frozen=True, slots=True)
class Token:
    """A single lexical token.

    ``value`` carries the decoded payload for STRING/NUMBER tokens and
    ``None`` otherwise. ``start``/``end`` are character offsets into the
    original text (end is exclusive).
    """

    type: TokenType
    value: object
    start: int
    end: int


_WHITESPACE = " \t\n\r"

_ESCAPES = {
    '"': '"',
    "\\": "\\",
    "/": "/",
    "b": "\b",
    "f": "\f",
    "n": "\n",
    "r": "\r",
    "t": "\t",
}


def scan_string(text: str, pos: int) -> tuple[str, int]:
    """Decode the JSON string starting at ``text[pos]`` (a ``\"``).

    Returns the decoded value and the offset one past the closing quote.
    Raises :class:`JsonParseError` on unterminated strings or bad escapes.
    """
    if pos >= len(text) or text[pos] != '"':
        raise JsonParseError("expected string", pos)
    i = pos + 1
    n = len(text)
    # Fast path: scan for a closing quote with no escapes in between.
    j = text.find('"', i)
    if j == -1:
        raise JsonParseError("unterminated string", pos)
    if "\\" not in text[i:j]:
        return text[i:j], j + 1
    parts: list[str] = []
    while i < n:
        ch = text[i]
        if ch == '"':
            return "".join(parts), i + 1
        if ch == "\\":
            if i + 1 >= n:
                raise JsonParseError("unterminated escape", i)
            esc = text[i + 1]
            if esc in _ESCAPES:
                parts.append(_ESCAPES[esc])
                i += 2
            elif esc == "u":
                if i + 6 > n:
                    raise JsonParseError("truncated \\u escape", i)
                hex_digits = text[i + 2 : i + 6]
                try:
                    code = int(hex_digits, 16)
                except ValueError as exc:
                    raise JsonParseError(
                        f"invalid \\u escape {hex_digits!r}", i
                    ) from exc
                # Surrogate pair handling for astral-plane characters.
                if 0xD800 <= code <= 0xDBFF and text[i + 6 : i + 8] == "\\u":
                    low_digits = text[i + 8 : i + 12]
                    try:
                        low = int(low_digits, 16)
                    except ValueError:
                        low = -1
                    if 0xDC00 <= low <= 0xDFFF:
                        combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                        parts.append(chr(combined))
                        i += 12
                        continue
                parts.append(chr(code))
                i += 6
            else:
                raise JsonParseError(f"invalid escape \\{esc}", i)
        else:
            # Consume a run of ordinary characters in one slice.
            j = i
            while j < n and text[j] != '"' and text[j] != "\\":
                j += 1
            parts.append(text[i:j])
            i = j
    raise JsonParseError("unterminated string", pos)


_DIGITS = "0123456789"


def scan_number(text: str, pos: int) -> tuple[int | float, int]:
    """Decode the JSON number starting at ``text[pos]``.

    Returns ``(value, end)``; integers that fit exactly stay ``int``.
    """
    i = pos
    n = len(text)
    if i < n and text[i] == "-":
        i += 1
    if i >= n or text[i] not in _DIGITS:
        raise JsonParseError("invalid number", pos)
    if text[i] == "0":
        i += 1
    else:
        while i < n and text[i] in _DIGITS:
            i += 1
    is_float = False
    if i < n and text[i] == ".":
        is_float = True
        i += 1
        if i >= n or text[i] not in _DIGITS:
            raise JsonParseError("digit expected after decimal point", i)
        while i < n and text[i] in _DIGITS:
            i += 1
    if i < n and text[i] in "eE":
        is_float = True
        i += 1
        if i < n and text[i] in "+-":
            i += 1
        if i >= n or text[i] not in _DIGITS:
            raise JsonParseError("digit expected in exponent", i)
        while i < n and text[i] in _DIGITS:
            i += 1
    raw = text[pos:i]
    value: int | float = float(raw) if is_float else int(raw)
    return value, i


def tokenize(text: str) -> Iterator[Token]:
    """Yield the tokens of ``text``, ending with a single EOF token."""
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in _WHITESPACE:
            i += 1
            continue
        if ch == "{":
            yield Token(TokenType.LBRACE, None, i, i + 1)
            i += 1
        elif ch == "}":
            yield Token(TokenType.RBRACE, None, i, i + 1)
            i += 1
        elif ch == "[":
            yield Token(TokenType.LBRACKET, None, i, i + 1)
            i += 1
        elif ch == "]":
            yield Token(TokenType.RBRACKET, None, i, i + 1)
            i += 1
        elif ch == ":":
            yield Token(TokenType.COLON, None, i, i + 1)
            i += 1
        elif ch == ",":
            yield Token(TokenType.COMMA, None, i, i + 1)
            i += 1
        elif ch == '"':
            value, end = scan_string(text, i)
            yield Token(TokenType.STRING, value, i, end)
            i = end
        elif ch == "-" or ch in _DIGITS:
            value, end = scan_number(text, i)
            yield Token(TokenType.NUMBER, value, i, end)
            i = end
        elif text.startswith("true", i):
            yield Token(TokenType.TRUE, True, i, i + 4)
            i += 4
        elif text.startswith("false", i):
            yield Token(TokenType.FALSE, False, i, i + 5)
            i += 5
        elif text.startswith("null", i):
            yield Token(TokenType.NULL, None, i, i + 4)
            i += 4
        else:
            raise JsonParseError(f"unexpected character {ch!r}", i)
    yield Token(TokenType.EOF, None, n, n)
