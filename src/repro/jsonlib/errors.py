"""Error types raised by the JSON substrate.

The parsers in :mod:`repro.jsonlib` never raise bare ``ValueError`` for
malformed input; they raise :class:`JsonParseError` (or a subclass) carrying
the byte offset where parsing failed, so callers can report precise
diagnostics and so tests can assert on error positions.
"""

from __future__ import annotations


class JsonError(Exception):
    """Base class for every error raised by :mod:`repro.jsonlib`."""


class JsonParseError(JsonError):
    """Malformed JSON text.

    Parameters
    ----------
    message:
        Human readable description of the problem.
    position:
        Character offset into the input where the problem was detected.
    """

    def __init__(self, message: str, position: int = -1) -> None:
        self.position = position
        if position >= 0:
            message = f"{message} (at offset {position})"
        super().__init__(message)


class JsonPathError(JsonError):
    """Malformed JSONPath expression."""

    def __init__(self, message: str, path: str = "") -> None:
        self.path = path
        if path:
            message = f"{message} (in path {path!r})"
        super().__init__(message)


class DepthLimitError(JsonParseError):
    """Nesting exceeded the configured maximum depth."""
