"""A minimal, strict XML parser.

Supports the XML fragment that warehouse payload columns actually carry:
elements, attributes, character data, self-closing tags, comments, CDATA
sections, and the five predefined entities. Not supported (and rejected
loudly rather than mis-parsed): DTDs, processing instructions beyond the
XML declaration, and namespaces (prefixes are kept as literal tag text).

The parser mirrors :mod:`repro.jsonlib.jackson`'s contract: strict errors
with byte offsets, and a :class:`~repro.jsonlib.jackson.ParseStats`
counter so XML parse time is attributed exactly like JSON parse time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..jsonlib.jackson import ParseStats

__all__ = ["XmlParseError", "XmlElement", "XmlParser", "parse_xml"]

_WHITESPACE = " \t\n\r"

_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}


class XmlParseError(Exception):
    """Malformed XML text."""

    def __init__(self, message: str, position: int = -1) -> None:
        self.position = position
        if position >= 0:
            message = f"{message} (at offset {position})"
        super().__init__(message)


@dataclass
class XmlElement:
    """One element: tag, attributes, ordered children, and its own text.

    ``text`` is the concatenated character data directly inside this
    element (children's text is not included; use :meth:`full_text`).
    """

    tag: str
    attributes: dict[str, str] = field(default_factory=dict)
    children: list["XmlElement"] = field(default_factory=list)
    text: str = ""

    def find_all(self, tag: str) -> list["XmlElement"]:
        """Direct children with the given tag."""
        return [child for child in self.children if child.tag == tag]

    def find(self, tag: str) -> "XmlElement | None":
        """First direct child with the given tag, or None."""
        for child in self.children:
            if child.tag == tag:
                return child
        return None

    def full_text(self) -> str:
        """This element's text plus all descendants' text, in order."""
        parts = [self.text]
        for child in self.children:
            parts.append(child.full_text())
        return "".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<XmlElement {self.tag} attrs={len(self.attributes)} children={len(self.children)}>"


def _decode_entities(text: str, base: int) -> str:
    if "&" not in text:
        return text
    out: list[str] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = text.find(";", i + 1)
        if end == -1:
            raise XmlParseError("unterminated entity", base + i)
        name = text[i + 1 : end]
        if name.startswith("#x") or name.startswith("#X"):
            try:
                out.append(chr(int(name[2:], 16)))
            except ValueError as exc:
                raise XmlParseError(f"bad character reference &{name};", base + i) from exc
        elif name.startswith("#"):
            try:
                out.append(chr(int(name[1:])))
            except ValueError as exc:
                raise XmlParseError(f"bad character reference &{name};", base + i) from exc
        elif name in _ENTITIES:
            out.append(_ENTITIES[name])
        else:
            raise XmlParseError(f"unknown entity &{name};", base + i)
        i = end + 1
    return "".join(out)


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in "_:"


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in "_:-."


class XmlParser:
    """Parse one XML document into an :class:`XmlElement` tree."""

    def __init__(self, max_depth: int = 128) -> None:
        self.max_depth = max_depth
        self.stats = ParseStats()

    def parse(self, text: str) -> XmlElement:
        started = time.perf_counter()
        try:
            i = self._skip_prolog(text, 0)
            root, i = self._parse_element(text, i, 0)
            i = self._skip_misc(text, i)
            if i != len(text):
                raise XmlParseError("trailing content after document element", i)
        except XmlParseError:
            self.stats.errors += 1
            raise
        finally:
            self.stats.seconds += time.perf_counter() - started
            self.stats.documents += 1
            self.stats.bytes_scanned += len(text)
        return root

    # ------------------------------------------------------------------
    def _skip_ws(self, text: str, i: int) -> int:
        n = len(text)
        while i < n and text[i] in _WHITESPACE:
            i += 1
        return i

    def _skip_prolog(self, text: str, i: int) -> int:
        i = self._skip_ws(text, i)
        if text.startswith("<?xml", i):
            end = text.find("?>", i)
            if end == -1:
                raise XmlParseError("unterminated XML declaration", i)
            i = end + 2
        return self._skip_misc(text, i)

    def _skip_misc(self, text: str, i: int) -> int:
        while True:
            i = self._skip_ws(text, i)
            if text.startswith("<!--", i):
                end = text.find("-->", i)
                if end == -1:
                    raise XmlParseError("unterminated comment", i)
                i = end + 3
            else:
                return i

    def _parse_name(self, text: str, i: int) -> tuple[str, int]:
        if i >= len(text) or not _is_name_start(text[i]):
            raise XmlParseError("expected a name", i)
        j = i + 1
        n = len(text)
        while j < n and _is_name_char(text[j]):
            j += 1
        return text[i:j], j

    def _parse_attributes(self, text: str, i: int) -> tuple[dict[str, str], int]:
        attributes: dict[str, str] = {}
        n = len(text)
        while True:
            i = self._skip_ws(text, i)
            if i >= n:
                raise XmlParseError("unterminated start tag", i)
            if text[i] in ">/":
                return attributes, i
            name, i = self._parse_name(text, i)
            i = self._skip_ws(text, i)
            if i >= n or text[i] != "=":
                raise XmlParseError(f"attribute {name!r} missing '='", i)
            i = self._skip_ws(text, i + 1)
            if i >= n or text[i] not in "'\"":
                raise XmlParseError(f"attribute {name!r} value must be quoted", i)
            quote = text[i]
            end = text.find(quote, i + 1)
            if end == -1:
                raise XmlParseError(f"unterminated attribute {name!r}", i)
            if name in attributes:
                raise XmlParseError(f"duplicate attribute {name!r}", i)
            attributes[name] = _decode_entities(text[i + 1 : end], i + 1)
            i = end + 1

    def _parse_element(self, text: str, i: int, depth: int) -> tuple[XmlElement, int]:
        if depth > self.max_depth:
            raise XmlParseError("maximum nesting depth exceeded", i)
        if i >= len(text) or text[i] != "<":
            raise XmlParseError("expected '<'", i)
        tag, i = self._parse_name(text, i + 1)
        attributes, i = self._parse_attributes(text, i)
        element = XmlElement(tag=tag, attributes=attributes)
        if text.startswith("/>", i):
            return element, i + 2
        if text[i] != ">":
            raise XmlParseError(f"malformed start tag <{tag}>", i)
        i += 1
        text_parts: list[str] = []
        n = len(text)
        while True:
            if i >= n:
                raise XmlParseError(f"unterminated element <{tag}>", i)
            if text.startswith("</", i):
                close_tag, j = self._parse_name(text, i + 2)
                j = self._skip_ws(text, j)
                if j >= n or text[j] != ">":
                    raise XmlParseError(f"malformed end tag </{close_tag}>", i)
                if close_tag != tag:
                    raise XmlParseError(
                        f"mismatched end tag </{close_tag}> for <{tag}>", i
                    )
                element.text = "".join(text_parts)
                return element, j + 1
            if text.startswith("<!--", i):
                end = text.find("-->", i)
                if end == -1:
                    raise XmlParseError("unterminated comment", i)
                i = end + 3
            elif text.startswith("<![CDATA[", i):
                end = text.find("]]>", i)
                if end == -1:
                    raise XmlParseError("unterminated CDATA section", i)
                text_parts.append(text[i + 9 : end])
                i = end + 3
            elif text[i] == "<":
                child, i = self._parse_element(text, i, depth + 1)
                element.children.append(child)
            else:
                j = text.find("<", i)
                if j == -1:
                    raise XmlParseError(f"unterminated element <{tag}>", i)
                text_parts.append(_decode_entities(text[i:j], i))
                i = j


_MODULE_PARSER = XmlParser()


def parse_xml(text: str) -> XmlElement:
    """Parse ``text`` with a module-level :class:`XmlParser`."""
    return _MODULE_PARSER.parse(text)
