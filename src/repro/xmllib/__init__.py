"""XML substrate — the paper's stated extension target.

The paper's conclusion notes that the pre-caching technique "can also be
applied to other data formats, such as XML". This package makes that
concrete: a strict XML parser with the same cost-accounting contract as
the JSON substrate, plus an XPath-like dialect whose paths flow through
the *same* collector/scorer/cacher/plan-rewrite machinery (paths starting
with ``/`` are XML, paths starting with ``$`` are JSON).
"""

from .parser import XmlElement, XmlParseError, XmlParser, parse_xml
from .xpath import (
    XPathError,
    XmlPath,
    evaluate_xpath,
    get_xml_object,
    parse_xpath,
)

__all__ = [
    "XmlParser",
    "XmlParseError",
    "XmlElement",
    "parse_xml",
    "XmlPath",
    "XPathError",
    "parse_xpath",
    "evaluate_xpath",
    "get_xml_object",
]
