"""A small XPath-like dialect for warehouse XML columns.

Mirrors the role :mod:`repro.jsonlib.jsonpath` plays for JSON, with the
same Hive contract: missing steps yield ``None``, path syntax errors
raise. The dialect:

* ``/root/item`` — child element steps;
* ``/root/item[2]`` — zero-based positional index among same-tag
  siblings;
* ``/root/item/@id`` — terminal attribute access;
* ``/root/item/text()`` — explicit text content (also the default for a
  path ending at an element).

Values are returned as strings (XML is untyped); numeric-looking text is
coerced to int/float so cached XML values get typed columns, matching the
behaviour users expect from ``get_json_object``-style extraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Union

from .parser import XmlElement

__all__ = ["XPathError", "XmlPath", "parse_xpath", "evaluate_xpath", "get_xml_object"]


class XPathError(Exception):
    """Malformed XPath expression."""

    def __init__(self, message: str, path: str = "") -> None:
        self.path = path
        if path:
            message = f"{message} (in path {path!r})"
        super().__init__(message)


@dataclass(frozen=True, slots=True)
class ChildStep:
    tag: str
    index: int | None = None


@dataclass(frozen=True, slots=True)
class AttributeStep:
    name: str


@dataclass(frozen=True, slots=True)
class TextStep:
    pass


Step = Union[ChildStep, AttributeStep, TextStep]


@dataclass(frozen=True)
class XmlPath:
    """A parsed path: root tag match plus a chain of steps."""

    raw: str
    steps: tuple[Step, ...]

    @property
    def leaf(self) -> str:
        for step in reversed(self.steps):
            if isinstance(step, ChildStep):
                return step.tag
            if isinstance(step, AttributeStep):
                return step.name
        return ""


def _parse_segment(segment: str, raw: str) -> Step:
    if segment == "text()":
        return TextStep()
    if segment.startswith("@"):
        name = segment[1:]
        if not name:
            raise XPathError("empty attribute name", raw)
        return AttributeStep(name)
    index: int | None = None
    if segment.endswith("]"):
        open_bracket = segment.find("[")
        if open_bracket == -1:
            raise XPathError("']' without '['", raw)
        inner = segment[open_bracket + 1 : -1]
        try:
            index = int(inner)
        except ValueError as exc:
            raise XPathError(f"invalid index {inner!r}", raw) from exc
        if index < 0:
            raise XPathError("negative indices are not supported", raw)
        segment = segment[:open_bracket]
    if not segment:
        raise XPathError("empty element name", raw)
    return ChildStep(segment, index)


@lru_cache(maxsize=4096)
def parse_xpath(raw: str) -> XmlPath:
    """Parse ``/a/b[0]/@id`` into an :class:`XmlPath` (memoised)."""
    text = raw.strip()
    if not text.startswith("/"):
        raise XPathError("path must start with '/'", raw)
    segments = text[1:].split("/")
    if not segments or segments == [""]:
        raise XPathError("path selects nothing", raw)
    steps: list[Step] = []
    for position, segment in enumerate(segments):
        step = _parse_segment(segment, raw)
        if isinstance(step, (AttributeStep, TextStep)) and position != len(segments) - 1:
            raise XPathError("attribute/text() steps must be terminal", raw)
        steps.append(step)
    return XmlPath(raw=text, steps=tuple(steps))


def _coerce_text(value: str) -> object:
    """Give numeric-looking text a numeric type (for typed cache columns)."""
    stripped = value.strip()
    if not stripped:
        return value
    try:
        return int(stripped)
    except ValueError:
        try:
            return float(stripped)
        except ValueError:
            return value


def evaluate_xpath(path: XmlPath | str, root: XmlElement) -> object:
    """Evaluate against a parsed document; missing steps yield ``None``."""
    if isinstance(path, str):
        path = parse_xpath(path)
    steps = path.steps
    first = steps[0]
    if not isinstance(first, ChildStep) or first.tag != root.tag:
        return None
    if first.index not in (None, 0):
        return None
    node: XmlElement = root
    for step in steps[1:]:
        if isinstance(step, AttributeStep):
            value = node.attributes.get(step.name)
            return _coerce_text(value) if value is not None else None
        if isinstance(step, TextStep):
            return _coerce_text(node.full_text())
        matches = node.find_all(step.tag)
        index = step.index if step.index is not None else 0
        if index >= len(matches):
            return None
        node = matches[index]
    return _coerce_text(node.full_text())


def get_xml_object(xml_text: str | None, path: str, parser=None) -> object:
    """Hive-style extraction: parse then evaluate, NULL on bad input."""
    if xml_text is None:
        return None
    from .parser import XmlParseError, XmlParser

    if parser is None:
        parser = XmlParser()
    try:
        document = parser.parse(xml_text)
    except XmlParseError:
        return None
    return evaluate_xpath(path, document)
