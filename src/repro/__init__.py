"""Maxson reproduction: a prediction-based JSONPath result cache.

This package reproduces *Maxson: Reduce Duplicate Parsing Overhead on Raw
Data* (ICDE 2020) as a self-contained Python library:

* :mod:`repro.jsonlib` — JSON parsers (Jackson / Mison / Sparser styles)
  and ``get_json_object`` JSONPath evaluation;
* :mod:`repro.storage` — an ORC-like columnar format with row-group
  statistics over a simulated append-only block file system;
* :mod:`repro.engine` — a SparkSQL-like query engine (SQL text to physical
  plans) with parse/read/compute cost attribution;
* :mod:`repro.ml` — NumPy-only learning substrate (LR, SVM, MLP, LSTM,
  linear-chain CRF, LSTM+CRF);
* :mod:`repro.workload` — synthetic Alibaba-style query trace and
  NoBench-style document generators;
* :mod:`repro.core` — Maxson itself: collector, predictor, scoring
  function, cacher, plan rewriter, value combiner, predicate pushdown,
  and the online LRU comparator.

Quickstart::

    from repro import MaxsonSystem
    system = MaxsonSystem.for_demo()
    system.run_midnight_cycle()
    result = system.sql("select get_json_object(logs, '$.item_id') from db.t")
"""

from .version import __version__

__all__ = ["__version__", "MaxsonSystem"]


def __getattr__(name):
    # Lazy import: keeps `import repro` cheap and avoids import cycles.
    if name == "MaxsonSystem":
        from .core.system import MaxsonSystem

        return MaxsonSystem
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
