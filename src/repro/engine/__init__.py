"""Query engine: SQL text → logical plan → physical plan → rows.

A deliberately compact SparkSQL stand-in with the pieces Maxson touches:
expression trees containing ``get_json_object`` calls, replaceable scan
operators, SARG pushdown, and read/parse/compute cost attribution.
"""

from .cancel import CancelToken
from .catalog import Catalog, TableInfo
from .functions import SCALAR_FUNCTIONS, FunctionCall, is_scalar_function
from .errors import (
    CatalogError,
    DeadlineExceededError,
    EngineError,
    ExecutionError,
    PlanError,
    QueryCancelledError,
    SqlSyntaxError,
)
from .expressions import (
    AggregateCall,
    Alias,
    Between,
    BinaryOp,
    CachedField,
    CastExpr,
    Column,
    EvalContext,
    Expression,
    ExtractionCall,
    GetJsonObject,
    GetXmlObject,
    InList,
    Literal,
    UnaryOp,
    transform,
    walk,
)
from .logical import (
    LogicalAggregate,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalPlan,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    SortKey,
)
from .metrics import QueryMetrics
from .parallel import MorselAggregateExec, MorselPipelineExec, parallelize_plan
from .physical import (
    AggregateExec,
    ExecState,
    FilterExec,
    HashJoinExec,
    LimitExec,
    PhysicalPlan,
    ProjectExec,
    ScanExec,
    SortExec,
)
from .cachebudget import BUDGETED_TIERS, CacheLedger
from .plancache import PlanCache, fingerprint as plan_fingerprint
from .planner import PlannedQuery, Planner
from .resultcache import CanonicalStatement, ResultCache, canonicalize
from .session import QueryResult, Session
from .sqlparser import parse_sql

__all__ = [
    "Session",
    "QueryResult",
    "QueryMetrics",
    "Catalog",
    "TableInfo",
    "parse_sql",
    "Planner",
    "PlannedQuery",
    "EngineError",
    "SqlSyntaxError",
    "PlanError",
    "CatalogError",
    "ExecutionError",
    "QueryCancelledError",
    "DeadlineExceededError",
    "CancelToken",
    "EvalContext",
    "Expression",
    "Column",
    "Literal",
    "Alias",
    "ExtractionCall",
    "GetJsonObject",
    "GetXmlObject",
    "CachedField",
    "BinaryOp",
    "UnaryOp",
    "CastExpr",
    "InList",
    "Between",
    "AggregateCall",
    "FunctionCall",
    "SCALAR_FUNCTIONS",
    "is_scalar_function",
    "walk",
    "transform",
    "LogicalPlan",
    "LogicalScan",
    "LogicalJoin",
    "LogicalFilter",
    "LogicalProject",
    "LogicalAggregate",
    "LogicalSort",
    "LogicalLimit",
    "SortKey",
    "PhysicalPlan",
    "ScanExec",
    "FilterExec",
    "ProjectExec",
    "AggregateExec",
    "SortExec",
    "LimitExec",
    "HashJoinExec",
    "ExecState",
    "MorselPipelineExec",
    "MorselAggregateExec",
    "parallelize_plan",
    "PlanCache",
    "plan_fingerprint",
    "CacheLedger",
    "BUDGETED_TIERS",
    "ResultCache",
    "CanonicalStatement",
    "canonicalize",
]
