"""Morsel-driven split-level parallel execution.

The paper's Value Combiner (Algorithm 2) and predicate pushdown
(Algorithm 3) are both *file/split aligned*, which makes a file split the
natural morsel of intra-query parallelism (HyPer-style): each split runs
the whole scan→Sparser-prefilter→filter→project pipeline — including the
combiner's cache/raw stitching and its per-split degraded fallback — as
one work unit on a worker thread, and the coordinator merges the
per-split results **in split-index order**. Aggregations lower to
per-split partial aggregates merged the same way.

Determinism contract
--------------------
Results are bit-identical at any worker count, including 1, because
nothing about the computation depends on completion order:

* each worker gets a forked :class:`~repro.engine.physical.ExecState`
  (private parser, parse-once document cache, compiled-expression
  cache), so no shared mutable evaluation state exists;
* batches, rows, metrics and partial aggregates are merged in split
  order, so concatenation order and float-sum association are fixed;
* group order and group representatives follow first occurrence across
  ordered splits — the same rows serial execution would pick;
* per-split fallback stays split-local (the combiner's morsel API), and
  whole-scan accounting (cache hits, breaker close, degraded counters)
  settles once on the coordinator, exactly as the serial combiner does.

``scan_workers == 1`` runs the identical morsel path inline, so "serial"
and "parallel" differ only in which thread executes a split.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from ..jsonlib.sparser import FilterCascade
from .batch import ColumnBatch
from .expressions import AggregateCall, Expression, Literal, transform
from .metrics import QueryMetrics
from .physical import (
    AggregateExec,
    ExecState,
    FilterExec,
    PhysicalPlan,
    ProjectExec,
    ScanExec,
    _Accumulator,
    _hashable,
    collect_aggregates,
)
from .rawfilter import SparserPrefilterExec

__all__ = ["MorselPipelineExec", "MorselAggregateExec", "parallelize_plan"]


def _fold_context_stats(metrics: QueryMetrics, context) -> None:
    """Fold a worker context's parser/sharing counters into its metrics.

    Mirrors what the session does for the coordinator context at the end
    of a query — workers must do it before returning because their
    contexts are not visible to the session.
    """
    metrics.shared_parse_hits += context.shared_parse_hits()
    metrics.doc_cache_evictions += context.doc_cache_evictions()
    for parser in (context.parser, context.projection_parser, context.xml_parser):
        stats = getattr(parser, "stats", None)
        if stats is None:
            continue
        metrics.parse_seconds += stats.seconds
        metrics.parse_documents += stats.documents
        metrics.parse_bytes += stats.bytes_scanned


def _scan_of(plan) -> ScanExec | None:
    """The scan feeding a morsel plan (pipeline or partial aggregate)."""
    if plan is None:
        return None
    pipeline = getattr(plan, "pipeline", plan)
    return getattr(pipeline, "scan", None)


def _reads_live_segments(plan) -> bool:
    """True when the plan scans ``system.*`` telemetry segments.

    Telemetry appends deliberately never bump the catalog version, so a
    process worker's warm snapshot would miss segments written since it
    was built and silently return stale rows. Such scans stay in this
    process (thread pool or inline), where the live file system is
    visible.
    """
    scan = _scan_of(plan)
    return scan is not None and scan.database.lower() == "system"


def _graft_worker_spans(state: ExecState, results: list) -> None:
    """Attach completed workers' span subtrees on an error path, so the
    coordinator tree stays well-formed (every recorded split appears
    exactly once) even when the query is about to fail."""
    if state.tracer is None:
        return
    for entry in results:
        if entry is None:
            continue
        metrics = entry[2]
        subtree = metrics.extra.pop("span_tree", None)
        if isinstance(subtree, dict):
            state.tracer.graft(subtree)


def _run_morsels(
    state: ExecState, units: list, fn, plan=None, mode: str | None = None
) -> list:
    """Run ``fn(worker_state, unit)`` for every unit; results in unit order.

    Dispatches to the session's worker pool when the state carries one
    and there is genuine parallelism to exploit; otherwise runs inline.
    Each invocation gets a forked state; the returned tuples carry the
    worker's metrics so the coordinator can merge them deterministically.

    ``plan``/``mode`` describe the same work declaratively for the
    process backend (:mod:`repro.engine.procpool`), whose workers cannot
    run the ``fn`` closure and instead ship the pipeline itself.
    """

    def task(unit):
        worker = state.fork()
        worker.check_cancelled()
        split_span = None
        if state.tracer is not None:
            from ..obs.trace import Tracer, export_subtree

            tracer = Tracer(clock=time.perf_counter)
            worker.tracer = tracer
            split_span = tracer.begin(
                "split",
                backend="thread",
                worker=threading.current_thread().name,
            )
        started = time.perf_counter()
        try:
            payload, fallback = fn(worker, unit)
        finally:
            if split_span is not None:
                tracer.end(split_span)
        _fold_context_stats(worker.metrics, worker.context)
        if split_span is not None:
            worker.metrics.extra["span_tree"] = export_subtree(split_span)
        return payload, fallback, worker.metrics, time.perf_counter() - started

    pool = state.scan_pool
    if pool is not None and state.scan_workers > 1 and len(units) > 1:
        state.check_cancelled()
        run_in_processes = getattr(pool, "run_morsels", None)
        if run_in_processes is not None and plan is not None:
            if _reads_live_segments(plan):
                # Process snapshots cannot see live telemetry appends;
                # run system-table scans inline on the coordinator.
                return [task(unit) for unit in units]
            return run_in_processes(state, plan, mode, units)
        futures = [pool.submit(task, unit) for unit in units]
        results = []
        first_error: BaseException | None = None
        for future in futures:
            if first_error is not None:
                # Free workers promptly: unstarted morsels are dropped;
                # running ones unwind at their next cancellation check.
                future.cancel()
                continue
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                first_error = exc
        if first_error is not None:
            # Drain stragglers so no morsel of this query is still
            # running when the error surfaces to the caller.
            for future in futures:
                if not future.cancel():
                    try:
                        future.result()
                    except BaseException:  # noqa: BLE001 - already failing
                        pass
            _graft_worker_spans(state, results)
            raise first_error
        return results
    return [task(unit) for unit in units]


def _settle(state: ExecState, scan: ScanExec, results: list, row_counts: list) -> int:
    """Coordinator-side merge: metrics in split order, per-split spans,
    then the scan's whole-scan accounting. Returns fallback split count."""
    fallback_splits = 0
    for index, (_, fallback, metrics, seconds) in enumerate(results):
        # The worker's exported span subtree is transport, not a counter:
        # pop it before the merge (merge would try to add dicts).
        subtree = metrics.extra.pop("span_tree", None)
        state.metrics.merge(metrics)
        if fallback:
            fallback_splits += 1
        if state.tracer is not None:
            if isinstance(subtree, dict):
                span = state.tracer.graft(subtree)
            else:
                # No worker subtree shipped (legacy worker): synthesize
                # the split span coordinator-side as before.
                span = state.tracer.begin("split")
                state.tracer.end(span)
            span.attributes["index"] = index
            span.attributes["rows"] = row_counts[index]
            span.attributes["fallback"] = bool(fallback)
            span.attributes["seconds"] = seconds
            # Process-backend transport accounting, when present.
            shm_bytes = metrics.extra.get("shm_bytes")
            if shm_bytes is not None:
                span.attributes["shm_bytes"] = shm_bytes
            dispatch = metrics.extra.get("proc_dispatch_seconds")
            if dispatch is not None:
                span.attributes["dispatch_seconds"] = dispatch
    scan.finish_morsels(state, fallback_splits)
    return fallback_splits


def _concat_batches(batches: list[ColumnBatch]) -> ColumnBatch:
    """Concatenate per-split batches in order, preserving aliasing:
    names that share one list in every input share one list in the
    output (the qualified-alias invariant scans rely on)."""
    first = batches[0]
    names = list(first.names)
    merged_by_identity: dict[tuple, list] = {}
    columns: dict[str, list] = {}
    for name in names:
        identity = tuple(id(batch.columns[name]) for batch in batches)
        merged = merged_by_identity.get(identity)
        if merged is None:
            merged = []
            for batch in batches:
                merged.extend(batch.columns[name])
            merged_by_identity[identity] = merged
        columns[name] = merged
    return ColumnBatch(names, columns, sum(batch.length for batch in batches))


@dataclass
class MorselPipelineExec(PhysicalPlan):
    """Scan→prefilter→filter→project, executed one split at a time.

    The stages are *absorbed* operators from the serial plan; attribute
    names deliberately avoid ``child`` so later plan rewrites (and span
    instrumentation, which recurses through ``child``/``left``/``right``)
    treat the pipeline as one opaque operator.
    """

    scan: ScanExec
    prefilter: SparserPrefilterExec | None = None
    condition: Expression | None = None
    projections: list[Expression] | None = None

    def children(self) -> tuple[PhysicalPlan, ...]:
        # For describe(): show the prefilter (which still points at the
        # scan) when present, so EXPLAIN keeps the familiar subtree.
        if self.prefilter is not None:
            return (self.prefilter,)
        return (self.scan,)

    def output_names(self) -> set[str]:
        if self.projections is not None:
            return {e.output_name() for e in self.projections}
        return self.scan.output_names()

    def _label(self) -> str:
        stages = []
        if self.condition is not None:
            stages.append(f"Filter {self.condition.sql()}")
        if self.projections is not None:
            stages.append(
                f"Project [{', '.join(e.sql() for e in self.projections)}]"
            )
        inner = f" [{'; '.join(stages)}]" if stages else ""
        return f"MorselPipeline{inner}"

    # -- per-split stages (worker side) --------------------------------
    def _apply_prefilter_batch(self, worker: ExecState, batch: ColumnBatch):
        """Per-split Sparser prefilter with a worker-local cascade clone.

        ``FilterCascade.calibrate`` reorders its filter list and
        ``matches`` mutates stats, so the plan's cascade is a template:
        each split calibrates its own copy on its own leading sample —
        deterministic because it only depends on the split's rows.
        """
        prefilter = self.prefilter
        cascade = FilterCascade(list(prefilter.cascade.filters))
        started = time.perf_counter()
        if prefilter.column in batch.columns:
            texts = batch.column(prefilter.column)
        else:
            texts = [None] * batch.length
        sample = [
            text
            for text in texts[: prefilter.calibration_sample]
            if isinstance(text, str)
        ]
        cascade.calibrate(sample)
        keep = [
            i
            for i, text in enumerate(texts)
            if not isinstance(text, str) or cascade.matches(text)
        ]
        extra = worker.metrics.extra
        extra["sparser_seconds"] = (
            extra.get("sparser_seconds", 0.0) + time.perf_counter() - started
        )
        extra["sparser_rows_dropped"] = (
            extra.get("sparser_rows_dropped", 0.0) + batch.length - len(keep)
        )
        counts = (batch.length, len(keep))
        if len(keep) == batch.length:
            return batch, counts
        return batch.take(keep), counts

    def _apply_prefilter_rows(self, worker: ExecState, rows: list[dict]):
        prefilter = self.prefilter
        cascade = FilterCascade(list(prefilter.cascade.filters))
        started = time.perf_counter()
        sample = [
            row[prefilter.column]
            for row in rows[: prefilter.calibration_sample]
            if isinstance(row.get(prefilter.column), str)
        ]
        cascade.calibrate(sample)
        out = []
        for row in rows:
            text = row.get(prefilter.column)
            if not isinstance(text, str) or cascade.matches(text):
                out.append(row)
        extra = worker.metrics.extra
        extra["sparser_seconds"] = (
            extra.get("sparser_seconds", 0.0) + time.perf_counter() - started
        )
        extra["sparser_rows_dropped"] = (
            extra.get("sparser_rows_dropped", 0.0) + len(rows) - len(out)
        )
        return out, (len(rows), len(out))

    def _process_batch(self, worker: ExecState, unit):
        batch, fallback = self.scan.run_morsel(worker, unit)
        worker.check_cancelled()
        prefilter_counts = None
        if self.prefilter is not None:
            batch, prefilter_counts = self._apply_prefilter_batch(worker, batch)
        if self.condition is not None:
            values = (
                worker.batch_compiler().compile(self.condition).evaluate(batch)
            )
            keep = [i for i, value in enumerate(values) if value is True]
            if len(keep) != batch.length:
                batch = batch.take(keep)
        if self.projections is not None:
            compiler = worker.batch_compiler()
            names: list[str] = []
            columns: dict[str, list] = {}
            for expr in self.projections:
                name = expr.output_name()
                if name not in columns:
                    names.append(name)
                columns[name] = compiler.compile(expr).evaluate(batch)
            batch = ColumnBatch(names, columns, batch.length)
        return (batch, prefilter_counts), fallback

    def _process_rows(self, worker: ExecState, unit):
        batch, fallback = self.scan.run_morsel(worker, unit)
        worker.check_cancelled()
        rows = batch.to_rows()
        prefilter_counts = None
        if self.prefilter is not None:
            rows, prefilter_counts = self._apply_prefilter_rows(worker, rows)
        context = worker.context
        if self.condition is not None:
            rows = [
                row
                for row in rows
                if self.condition.evaluate(row, context) is True
            ]
        if self.projections is not None:
            names = [e.output_name() for e in self.projections]
            rows = [
                {
                    name: expr.evaluate(row, context)
                    for name, expr in zip(names, self.projections)
                }
                for row in rows
            ]
        return (rows, prefilter_counts), fallback

    def _process(self, worker: ExecState, unit, mode: str):
        if mode == "batch":
            return self._process_batch(worker, unit)
        return self._process_rows(worker, unit)

    def _fold_prefilter(self, counts: list) -> None:
        """Deterministic whole-scan prefilter counters (coordinator)."""
        if self.prefilter is None:
            return
        pairs = [pair for pair in counts if pair is not None]
        self.prefilter.rows_in = sum(pair[0] for pair in pairs)
        self.prefilter.rows_out = sum(pair[1] for pair in pairs)

    def _output_name_list(self) -> list[str]:
        if self.projections is not None:
            return list(
                dict.fromkeys(e.output_name() for e in self.projections)
            )
        return self.scan.morsel_output_names()

    def _empty_batch(self) -> ColumnBatch:
        names = self._output_name_list()
        return ColumnBatch(names, {name: [] for name in names}, 0)

    # -- coordinator entry points --------------------------------------
    def execute_batch(self, state: ExecState) -> ColumnBatch:
        units = self.scan.morsel_units(state)
        results = _run_morsels(
            state, units, self._process_batch, plan=self, mode="batch"
        )
        payloads = [payload for payload, _, _, _ in results]
        _settle(state, self.scan, results, [p[0].length for p in payloads])
        self._fold_prefilter([p[1] for p in payloads])
        batches = [p[0] for p in payloads]
        if not batches:
            return self._empty_batch()
        if len(batches) == 1:
            return batches[0]
        return _concat_batches(batches)

    def execute(self, state: ExecState) -> list[dict]:
        units = self.scan.morsel_units(state)
        results = _run_morsels(
            state, units, self._process_rows, plan=self, mode="row"
        )
        payloads = [payload for payload, _, _, _ in results]
        _settle(state, self.scan, results, [len(p[0]) for p in payloads])
        self._fold_prefilter([p[1] for p in payloads])
        rows: list[dict] = []
        for split_rows, _ in payloads:
            rows.extend(split_rows)
        return rows


@dataclass
class MorselAggregateExec(PhysicalPlan):
    """Per-split partial aggregation with an ordered final merge.

    Each worker runs the pipeline stages over its split and builds
    group→accumulator partials; the coordinator merges partials in
    split-index order (:meth:`_Accumulator.merge`), so GROUP BY
    parallelizes without serializing rows at the sink and without
    perturbing float sums or group order.
    """

    pipeline: MorselPipelineExec
    group_keys: list[Expression]
    output: list[Expression]

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.pipeline,)

    def output_names(self) -> set[str]:
        return {e.output_name() for e in self.output}

    def _label(self) -> str:
        keys = ", ".join(e.sql() for e in self.group_keys) or "<global>"
        return f"MorselAggregate keys=[{keys}]"

    def _partials(self, worker: ExecState, unit, mode: str, aggregates):
        payload, fallback = self.pipeline._process(worker, unit, mode)
        data, prefilter_counts = payload
        groups: dict[tuple, list[_Accumulator]] = {}
        representatives: dict[tuple, dict] = {}
        if mode == "batch":
            batch = data
            compiler = worker.batch_compiler()
            key_columns = [
                compiler.compile(k).evaluate(batch) for k in self.group_keys
            ]
            argument_columns = [
                None
                if agg.argument is None
                else compiler.compile(agg.argument).evaluate(batch)
                for agg in aggregates
            ]
            for i in range(batch.length):
                key = tuple(_hashable(column[i]) for column in key_columns)
                accumulators = groups.get(key)
                if accumulators is None:
                    accumulators = groups[key] = [
                        _Accumulator(a.func, a.distinct) for a in aggregates
                    ]
                    representatives[key] = batch.row(i)
                for agg, argument, acc in zip(
                    aggregates, argument_columns, accumulators
                ):
                    if argument is None:
                        acc.count += 1  # count(*) counts rows, NULLs included
                    else:
                        acc.add(argument[i])
            rows_seen = batch.length
        else:
            rows = data
            context = worker.context
            for row in rows:
                key = tuple(
                    _hashable(k.evaluate(row, context)) for k in self.group_keys
                )
                accumulators = groups.get(key)
                if accumulators is None:
                    accumulators = groups[key] = [
                        _Accumulator(a.func, a.distinct) for a in aggregates
                    ]
                    representatives[key] = row
                for agg, acc in zip(aggregates, accumulators):
                    if agg.argument is None:
                        acc.count += 1
                    else:
                        acc.add(agg.argument.evaluate(row, context))
            rows_seen = len(rows)
        return (groups, representatives, rows_seen, prefilter_counts), fallback

    def _execute_common(self, state: ExecState, mode: str):
        aggregates = collect_aggregates(self.output)
        units = self.pipeline.scan.morsel_units(state)
        results = _run_morsels(
            state,
            units,
            lambda worker, unit: self._partials(worker, unit, mode, aggregates),
            plan=self,
            mode=mode,
        )
        payloads = [payload for payload, _, _, _ in results]
        _settle(state, self.pipeline.scan, results, [p[2] for p in payloads])
        self.pipeline._fold_prefilter([p[3] for p in payloads])

        merged: dict[tuple, list[_Accumulator]] = {}
        representatives: dict[tuple, dict] = {}
        for groups, reps, _, _ in payloads:
            for key, accumulators in groups.items():
                mine = merged.get(key)
                if mine is None:
                    # First occurrence across ordered splits: both group
                    # order and the representative row match what serial
                    # execution over the concatenated table would pick.
                    merged[key] = accumulators
                    representatives[key] = reps[key]
                else:
                    for acc, other in zip(mine, accumulators):
                        acc.merge(other)

        if not merged and not self.group_keys:
            # Global aggregate over zero rows still yields one row.
            merged[()] = [_Accumulator(a.func, a.distinct) for a in aggregates]
            representatives[()] = {}

        context = state.context
        names = [e.output_name() for e in self.output]
        out: list[dict] = []
        for key, accumulators in merged.items():
            results_map = {
                agg: acc.result() for agg, acc in zip(aggregates, accumulators)
            }
            representative = representatives[key]

            def _splice(node: Expression) -> Expression | None:
                if isinstance(node, AggregateCall):
                    return Literal(results_map[node])
                return None

            row_out: dict = {}
            for name, expr in zip(names, self.output):
                spliced = transform(expr, _splice)
                row_out[name] = spliced.evaluate(representative, context)
            out.append(row_out)
        return out, names

    def execute(self, state: ExecState) -> list[dict]:
        out, _ = self._execute_common(state, "row")
        return out

    def execute_batch(self, state: ExecState) -> ColumnBatch:
        out, names = self._execute_common(state, "batch")
        return ColumnBatch.from_rows(
            out, list(dict.fromkeys(names)) if not out else None
        )


def parallelize_plan(plan: PhysicalPlan) -> PhysicalPlan:
    """Rewrite a physical plan onto the morsel execution path.

    Bottom-up absorption: every scan becomes a bare pipeline; a
    Sparser prefilter, a filter and a projection directly above a
    pipeline fold into it (in that stage order); an aggregation over a
    projection-less pipeline becomes a partial-aggregate operator.
    Anything else — sorts, limits, joins, filters over aggregates —
    keeps its serial operator and simply pulls from morselized inputs.
    """

    def visit(node: PhysicalPlan) -> PhysicalPlan | None:
        if isinstance(node, ScanExec):
            return MorselPipelineExec(scan=node)
        if isinstance(node, SparserPrefilterExec):
            child = node.child
            if (
                isinstance(child, MorselPipelineExec)
                and child.prefilter is None
                and child.condition is None
                and child.projections is None
            ):
                # Re-point the absorbed prefilter at the real scan (the
                # bottom-up rewrite made its child the pipeline itself).
                node.child = child.scan
                child.prefilter = node
                return child
            return None
        if isinstance(node, FilterExec):
            child = node.child
            if (
                isinstance(child, MorselPipelineExec)
                and child.condition is None
                and child.projections is None
            ):
                child.condition = node.condition
                return child
            return None
        if isinstance(node, ProjectExec):
            child = node.child
            if (
                isinstance(child, MorselPipelineExec)
                and child.projections is None
            ):
                child.projections = node.expressions
                return child
            return None
        if isinstance(node, AggregateExec):
            child = node.child
            if (
                isinstance(child, MorselPipelineExec)
                and child.projections is None
            ):
                return MorselAggregateExec(
                    pipeline=child,
                    group_keys=node.group_keys,
                    output=node.output,
                )
            return None
        return None

    return plan.transform_nodes(visit)
