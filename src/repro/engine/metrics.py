"""Query cost accounting.

The paper's evaluation reports query time split into **Read**, **Parse**
and **Compute** (Fig 3, Fig 12a/12c) plus the **input size** actually read
(Fig 12b/12d). :class:`QueryMetrics` collects exactly those series:

* *read* — wall time and bytes spent in the file system + ORC decoding;
* *parse* — wall time, bytes and document counts spent inside JSON
  parsers (accumulated via :class:`~repro.jsonlib.jackson.ParseStats`);
* *compute* — everything else (derived: total − read − parse).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["QueryMetrics"]


@dataclass
class QueryMetrics:
    """Counters for one query execution."""

    total_seconds: float = 0.0
    plan_seconds: float = 0.0
    read_seconds: float = 0.0
    parse_seconds: float = 0.0
    bytes_read: int = 0
    rows_scanned: int = 0
    rows_output: int = 0
    row_groups_total: int = 0
    row_groups_skipped: int = 0
    parse_documents: int = 0
    parse_bytes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Extraction evaluations skipped because an identical call compiled
    #: to the same node (batch-path common-subexpression elimination).
    duplicate_extractions_eliminated: int = 0
    #: Document parses avoided by parse-once sharing (batch path): calls
    #: served from the per-context document cache instead of re-parsing.
    shared_parse_hits: int = 0
    #: Documents evicted from the budgeted per-context document caches
    #: (entry-count or byte-budget pressure). Non-zero means sharing lost
    #: some reuse to memory bounds.
    doc_cache_evictions: int = 0
    extra: dict[str, int | float] = field(default_factory=dict)

    @property
    def compute_seconds(self) -> float:
        """Everything that is neither read nor parse, floored at zero."""
        return max(0.0, self.total_seconds - self.read_seconds - self.parse_seconds)

    @property
    def parse_fraction(self) -> float:
        """Share of total time spent parsing (the paper's ≥80% headline)."""
        if self.total_seconds <= 0:
            return 0.0
        return self.parse_seconds / self.total_seconds

    def breakdown(self) -> dict[str, float]:
        """The three-way split the paper plots."""
        return {
            "read": self.read_seconds,
            "parse": self.parse_seconds,
            "compute": self.compute_seconds,
        }

    @property
    def cache_hit_ratio(self) -> float:
        """Cache hits over all cache-eligible extraction calls."""
        total = self.cache_hits + self.cache_misses
        if total <= 0:
            return 0.0
        return self.cache_hits / total

    def to_dict(self) -> dict[str, object]:
        """A JSON-serialisable snapshot of every counter plus the derived
        rates — the payload of the server's status endpoint."""
        return {
            "total_seconds": self.total_seconds,
            "plan_seconds": self.plan_seconds,
            "read_seconds": self.read_seconds,
            "parse_seconds": self.parse_seconds,
            "compute_seconds": self.compute_seconds,
            "parse_fraction": self.parse_fraction,
            "bytes_read": self.bytes_read,
            "rows_scanned": self.rows_scanned,
            "rows_output": self.rows_output,
            "row_groups_total": self.row_groups_total,
            "row_groups_skipped": self.row_groups_skipped,
            "parse_documents": self.parse_documents,
            "parse_bytes": self.parse_bytes,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_ratio": self.cache_hit_ratio,
            "duplicate_extractions_eliminated": (
                self.duplicate_extractions_eliminated
            ),
            "shared_parse_hits": self.shared_parse_hits,
            "doc_cache_evictions": self.doc_cache_evictions,
            "extra": dict(self.extra),
        }

    def snapshot(self) -> "QueryMetrics":
        """An independent copy (accumulators keep mutating the original)."""
        copy = QueryMetrics()
        copy.merge(self)
        return copy

    def merge(self, other: "QueryMetrics") -> None:
        """Accumulate another query's counters into this one."""
        self.total_seconds += other.total_seconds
        self.plan_seconds += other.plan_seconds
        self.read_seconds += other.read_seconds
        self.parse_seconds += other.parse_seconds
        self.bytes_read += other.bytes_read
        self.rows_scanned += other.rows_scanned
        self.rows_output += other.rows_output
        self.row_groups_total += other.row_groups_total
        self.row_groups_skipped += other.row_groups_skipped
        self.parse_documents += other.parse_documents
        self.parse_bytes += other.parse_bytes
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.duplicate_extractions_eliminated += (
            other.duplicate_extractions_eliminated
        )
        self.shared_parse_hits += other.shared_parse_hits
        self.doc_cache_evictions += other.doc_cache_evictions
        for key, value in other.extra.items():
            # Default to int 0, not float 0.0: merging (and therefore
            # snapshot round-trips) must not silently coerce integer
            # counters stored in ``extra`` into floats.
            self.extra[key] = self.extra.get(key, 0) + value
