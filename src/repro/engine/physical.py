"""Physical operators.

Operators are pull-at-once: ``execute(ExecState)`` returns a list of row
environments (dicts). The engine's data volumes are single-node scale, so
whole-operator materialisation keeps the code straightforward while still
letting us attribute time precisely (scans time their own I/O; JSON parse
time accrues inside the shared :class:`EvalContext`'s parser stats).

``ScanExec`` is deliberately *replaceable*: Maxson's plan rewriter swaps it
for a cache-aware subclass (``MaxsonScanExec`` in
:mod:`repro.core.combiner`) that runs the dual-reader Value Combiner. The
rest of the plan never notices.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..storage.readers import split_reader
from ..storage.sargs import Sarg
from .batch import BatchCompiler, ColumnBatch, ExpressionAnalysis
from .catalog import Catalog
from .errors import ExecutionError
from .expressions import (
    AggregateCall,
    EvalContext,
    Expression,
    Literal,
    transform,
    walk,
)
from .logical import SortKey
from .metrics import QueryMetrics

__all__ = [
    "ExecState",
    "PhysicalPlan",
    "ScanExec",
    "FilterExec",
    "ProjectExec",
    "AggregateExec",
    "SortExec",
    "LimitExec",
    "HashJoinExec",
]


@dataclass
class ExecState:
    """Everything shared across the operators of one query execution."""

    catalog: Catalog
    context: EvalContext
    metrics: QueryMetrics = field(default_factory=QueryMetrics)
    compiler: BatchCompiler | None = None
    #: Optional :class:`repro.obs.trace.Tracer` for this execution. None
    #: on the untraced path; operators that emit interior spans (e.g. the
    #: Maxson combiner) must guard on ``state.tracer is not None``.
    tracer: object | None = None
    #: Factory for worker-local :class:`EvalContext`s (morsel execution).
    #: ``None`` falls back to cloning the coordinator context's parser
    #: classes.
    context_factory: object | None = None
    #: Degree of split-level parallelism for morsel scans (1 = inline).
    scan_workers: int = 1
    #: Shared ``ThreadPoolExecutor`` supplied by the session when
    #: ``scan_workers > 1``; ``None`` runs morsels inline.
    scan_pool: object | None = None
    #: Optional :class:`repro.engine.cancel.CancelToken` shared by the
    #: coordinator and every morsel worker. Checked at split/batch
    #: boundaries via :meth:`check_cancelled`.
    cancel_token: object | None = None
    #: Immutable per-expression analysis memo (extraction counts) shared
    #: read-only between the coordinator and every morsel fork. Compiled
    #: expressions themselves stay fork-private — their per-batch result
    #: caches are mutable — but the structural analysis never changes,
    #: so forks skip re-walking each expression tree.
    expression_analysis: ExpressionAnalysis = field(
        default_factory=ExpressionAnalysis
    )

    def check_cancelled(self) -> None:
        """Raise ``QueryCancelledError``/``DeadlineExceededError`` if due."""
        token = self.cancel_token
        if token is not None:
            token.check()

    def fork(self) -> "ExecState":
        """A worker-local state for one morsel.

        Shares the catalog (and through it the file system) but gets a
        private context/metrics/compiler, so parser stats, parse-once
        document sharing and compiled-expression caches stay
        split-local. Forks drop the coordinator's tracer — when a split
        is traced, the morsel runner attaches a worker-local tracer to
        the fork and grafts its subtree back afterwards. Workers never
        re-fork.
        """
        if self.context_factory is not None:
            context = self.context_factory()  # type: ignore[operator]
        else:
            context = EvalContext(parser=type(self.context.parser)())
            if self.context.projection_parser is not None:
                context.projection_parser = type(
                    self.context.projection_parser
                )()
        return ExecState(
            catalog=self.catalog,
            context=context,
            context_factory=self.context_factory,
            cancel_token=self.cancel_token,
            expression_analysis=self.expression_analysis,
        )

    def batch_compiler(self) -> BatchCompiler:
        """The query-wide expression compiler (created lazily).

        One compiler per execution is what makes common-subexpression
        elimination work across operators: identical expression subtrees
        anywhere in the plan compile to the same node.
        """
        if self.compiler is None:
            self.compiler = BatchCompiler(
                self.context, self.metrics, analysis=self.expression_analysis
            )
        return self.compiler


class PhysicalPlan:
    """Base class for physical operators."""

    def execute(self, state: ExecState) -> list[dict]:
        raise NotImplementedError

    def execute_batch(self, state: ExecState) -> ColumnBatch:
        """Batch-mode execution; the default wraps the row path.

        Operators without a native vectorized implementation run their
        row-path ``execute`` and wrap the result, so *any* plan can run
        in batch mode — the fallback contract that guarantees batch mode
        is never less capable than row mode.
        """
        rows = self.execute(state)
        names = None if rows else sorted(self.output_names())
        return ColumnBatch.from_rows(rows, names)

    def children(self) -> tuple["PhysicalPlan", ...]:
        return ()

    def output_names(self) -> set[str]:
        """Row-environment keys this operator produces."""
        raise NotImplementedError

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [f"{pad}{self._label()}"]
        for child in self.children():
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)

    def _label(self) -> str:
        return type(self).__name__

    def transform_nodes(self, fn) -> "PhysicalPlan":
        """Bottom-up plan rewrite; ``fn`` may return a replacement node."""
        for attr in ("child", "left", "right"):
            child = getattr(self, attr, None)
            if isinstance(child, PhysicalPlan):
                setattr(self, attr, child.transform_nodes(fn))
        replacement = fn(self)
        return replacement if replacement is not None else self


@dataclass
class ScanExec(PhysicalPlan):
    """Table scan with column pruning and optional SARG pushdown.

    Produces row dicts keyed by bare column names and, when the scan is
    aliased, also by ``alias.column`` so join conditions can disambiguate.
    """

    database: str
    table: str
    alias: str | None
    columns: list[str]
    sarg: Sarg | None = None

    def output_names(self) -> set[str]:
        names = set(self.columns)
        if self.alias:
            names |= {f"{self.alias}.{c}" for c in self.columns}
        return names

    def _label(self) -> str:
        sarg = f" sarg={self.sarg!r}" if self.sarg else ""
        return (
            f"Scan {self.database}.{self.table} cols={self.columns}{sarg}"
        )

    def execute(self, state: ExecState) -> list[dict]:
        started = time.perf_counter()
        rows: list[dict] = []
        for path in state.catalog.table_files(self.database, self.table):
            state.check_cancelled()
            reader = split_reader(
                state.catalog.fs, path, columns=self.columns, sarg=self.sarg
            )
            result = reader.read()
            state.metrics.bytes_read += result.bytes_read
            state.metrics.row_groups_total += result.row_groups_total
            state.metrics.row_groups_skipped += result.row_groups_skipped
            series = [result.columns[name] for name in self.columns]
            for values in zip(*series):
                row = dict(zip(self.columns, values))
                if self.alias:
                    for name, value in zip(self.columns, values):
                        row[f"{self.alias}.{name}"] = value
                rows.append(row)
        state.metrics.rows_scanned += len(rows)
        state.metrics.read_seconds += time.perf_counter() - started
        return rows

    def execute_batch(self, state: ExecState) -> ColumnBatch:
        started = time.perf_counter()
        columns: dict[str, list] = {name: [] for name in self.columns}
        for path in state.catalog.table_files(self.database, self.table):
            state.check_cancelled()
            reader = split_reader(
                state.catalog.fs, path, columns=self.columns, sarg=self.sarg
            )
            result = reader.read()
            state.metrics.bytes_read += result.bytes_read
            state.metrics.row_groups_total += result.row_groups_total
            state.metrics.row_groups_skipped += result.row_groups_skipped
            for name in self.columns:
                columns[name].extend(result.columns[name])
        length = len(columns[self.columns[0]]) if self.columns else 0
        names = list(self.columns)
        if self.alias:
            # Qualified names alias the same lists — no copies.
            for name in self.columns:
                qualified = f"{self.alias}.{name}"
                columns[qualified] = columns[name]
                names.append(qualified)
        state.metrics.rows_scanned += length
        state.metrics.read_seconds += time.perf_counter() - started
        return ColumnBatch(names, columns, length)

    # -- morsel API (split-level parallel execution) -------------------
    def morsel_units(self, state: ExecState) -> list:
        """Opaque work units, one per file split, in split-index order.

        Units are interpreted only by the class that produced them
        (:meth:`run_morsel`); subclasses may attach companion files.
        Called on the coordinator thread.
        """
        return list(state.catalog.table_files(self.database, self.table))

    def morsel_output_names(self) -> list[str]:
        """Deterministic column order of a morsel batch (bare names
        first, then alias-qualified)."""
        names = list(self.columns)
        if self.alias:
            names.extend(f"{self.alias}.{name}" for name in self.columns)
        return names

    def run_morsel(self, state: ExecState, unit) -> tuple[ColumnBatch, bool]:
        """Scan one unit into a batch on a (possibly worker) thread.

        Returns ``(batch, used_fallback)``; the flag is always False for
        plain scans — cache-aware subclasses use it to report per-split
        degraded fallback.
        """
        state.check_cancelled()
        started = time.perf_counter()
        reader = split_reader(
            state.catalog.fs, unit, columns=self.columns, sarg=self.sarg
        )
        result = reader.read()
        state.metrics.bytes_read += result.bytes_read
        state.metrics.row_groups_total += result.row_groups_total
        state.metrics.row_groups_skipped += result.row_groups_skipped
        columns = {name: result.columns[name] for name in self.columns}
        length = result.rows_read
        names = list(self.columns)
        if self.alias:
            for name in self.columns:
                qualified = f"{self.alias}.{name}"
                columns[qualified] = columns[name]
                names.append(qualified)
        state.metrics.rows_scanned += length
        state.metrics.read_seconds += time.perf_counter() - started
        return ColumnBatch(names, columns, length), False

    def finish_morsels(self, state: ExecState, fallback_splits: int) -> None:
        """Coordinator hook after all morsels merged (no-op for plain
        scans; cache-aware subclasses settle whole-scan accounting)."""


@dataclass
class FilterExec(PhysicalPlan):
    """Keep rows where the condition evaluates to SQL TRUE."""

    child: PhysicalPlan
    condition: Expression

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,)

    def output_names(self) -> set[str]:
        return self.child.output_names()

    def _label(self) -> str:
        return f"Filter {self.condition.sql()}"

    def execute(self, state: ExecState) -> list[dict]:
        rows = self.child.execute(state)
        context = state.context
        return [
            row for row in rows if self.condition.evaluate(row, context) is True
        ]

    def execute_batch(self, state: ExecState) -> ColumnBatch:
        batch = self.child.execute_batch(state)
        values = state.batch_compiler().compile(self.condition).evaluate(batch)
        indices = [i for i, value in enumerate(values) if value is True]
        if len(indices) == batch.length:
            # Passing the child batch through unchanged lets downstream
            # operators reuse per-batch compiled results (CSE across
            # filter and projection).
            return batch
        return batch.take(indices)


@dataclass
class ProjectExec(PhysicalPlan):
    """Evaluate the SELECT list; output keys are the expressions' names."""

    child: PhysicalPlan
    expressions: list[Expression]

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,)

    def output_names(self) -> set[str]:
        return {e.output_name() for e in self.expressions}

    def _label(self) -> str:
        return f"Project [{', '.join(e.sql() for e in self.expressions)}]"

    def execute(self, state: ExecState) -> list[dict]:
        rows = self.child.execute(state)
        context = state.context
        names = [e.output_name() for e in self.expressions]
        out: list[dict] = []
        for row in rows:
            out.append(
                {
                    name: expr.evaluate(row, context)
                    for name, expr in zip(names, self.expressions)
                }
            )
        return out

    def execute_batch(self, state: ExecState) -> ColumnBatch:
        batch = self.child.execute_batch(state)
        compiler = state.batch_compiler()
        names: list[str] = []
        columns: dict[str, list] = {}
        for expr in self.expressions:
            name = expr.output_name()
            if name not in columns:
                names.append(name)
            # Duplicate output names keep the last expression's values,
            # matching the row path's dict-comprehension semantics.
            columns[name] = compiler.compile(expr).evaluate(batch)
        return ColumnBatch(names, columns, batch.length)


def _sort_token(value: object) -> tuple:
    """Total-order key: NULLs first, then by type family, then value."""
    if value is None:
        return (0, "", 0.0)
    if isinstance(value, bool):
        return (1, "", float(value))
    if isinstance(value, (int, float)):
        return (2, "", float(value))
    return (3, str(value), 0.0)


@dataclass
class SortExec(PhysicalPlan):
    """ORDER BY with NULLS FIRST semantics (Hive default for ASC)."""

    child: PhysicalPlan
    keys: list[SortKey]

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,)

    def output_names(self) -> set[str]:
        return self.child.output_names()

    def _label(self) -> str:
        keys = ", ".join(
            f"{k.expression.sql()} {'ASC' if k.ascending else 'DESC'}"
            for k in self.keys
        )
        return f"Sort [{keys}]"

    def execute(self, state: ExecState) -> list[dict]:
        rows = self.child.execute(state)
        context = state.context
        # Stable multi-key sort: apply keys right-to-left.
        for key in reversed(self.keys):
            rows.sort(
                key=lambda row: _sort_token(key.expression.evaluate(row, context)),
                reverse=not key.ascending,
            )
        return rows

    def execute_batch(self, state: ExecState) -> ColumnBatch:
        batch = self.child.execute_batch(state)
        compiler = state.batch_compiler()
        indices = list(range(batch.length))
        # Same stable right-to-left multi-key sort, over row indices;
        # key columns are computed once per key instead of once per
        # comparison row.
        for key in reversed(self.keys):
            values = compiler.compile(key.expression).evaluate(batch)
            indices.sort(
                key=lambda i: _sort_token(values[i]),
                reverse=not key.ascending,
            )
        if indices == list(range(batch.length)):
            return batch
        return batch.take(indices)


@dataclass
class LimitExec(PhysicalPlan):
    """LIMIT n."""

    child: PhysicalPlan
    count: int

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,)

    def output_names(self) -> set[str]:
        return self.child.output_names()

    def _label(self) -> str:
        return f"Limit {self.count}"

    def execute(self, state: ExecState) -> list[dict]:
        return self.child.execute(state)[: self.count]

    def execute_batch(self, state: ExecState) -> ColumnBatch:
        batch = self.child.execute_batch(state)
        if batch.length <= self.count:
            return batch
        return batch.take(range(self.count))


class _Accumulator:
    """Streaming accumulator for one AggregateCall.

    Also serves as the *partial aggregate* of morsel-parallel execution:
    per-split accumulators are combined with :meth:`merge` in split-index
    order, which keeps float sums bit-identical at any worker count.
    """

    __slots__ = ("func", "distinct", "count", "total", "minimum", "maximum", "seen")

    def __init__(self, func: str, distinct: bool) -> None:
        self.func = func
        self.distinct = distinct
        self.count = 0
        self.total: float | int = 0
        self.minimum: object = None
        self.maximum: object = None
        # Insertion-ordered so that merging partials replays distinct
        # values deterministically (a set would iterate by hash).
        self.seen: dict | None = {} if distinct else None

    def add(self, value: object) -> None:
        if value is None:
            return
        if self.seen is not None:
            if value in self.seen:
                return
            self.seen[value] = None
        self.count += 1
        if self.func == "sum" or self.func == "avg":
            number = _to_number(value)
            if number is None:
                raise ExecutionError(
                    f"{self.func}() over non-numeric value {value!r}"
                )
            self.total += number
        elif self.func == "min":
            if self.minimum is None or _sort_token(value) < _sort_token(self.minimum):
                self.minimum = value
        elif self.func == "max":
            if self.maximum is None or _sort_token(value) > _sort_token(self.maximum):
                self.maximum = value

    def merge(self, other: "_Accumulator") -> None:
        """Fold another split's partial into this one.

        Distinct partials replay the other side's values through
        :meth:`add` (dedup against this side's ``seen``); plain partials
        combine counters directly. Merge order is the caller's contract —
        the morsel scheduler always merges in split-index order so sums
        stay deterministic.
        """
        if self.seen is not None:
            for value in other.seen:  # type: ignore[union-attr]
                self.add(value)
            return
        self.count += other.count
        self.total += other.total
        if other.minimum is not None and (
            self.minimum is None
            or _sort_token(other.minimum) < _sort_token(self.minimum)
        ):
            self.minimum = other.minimum
        if other.maximum is not None and (
            self.maximum is None
            or _sort_token(other.maximum) > _sort_token(self.maximum)
        ):
            self.maximum = other.maximum

    def result(self) -> object:
        if self.func == "count":
            return self.count
        if self.count == 0:
            return None
        if self.func == "sum":
            return self.total
        if self.func == "avg":
            return self.total / self.count
        if self.func == "min":
            return self.minimum
        return self.maximum


def _to_number(value: object) -> int | float | None:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, str):
        try:
            return int(value)
        except ValueError:
            try:
                return float(value)
            except ValueError:
                return None
    return None


def collect_aggregates(output: list[Expression]) -> list[AggregateCall]:
    """The distinct AggregateCalls inside ``output``, in walk order.

    Shared by serial aggregation and the morsel partial-aggregate path so
    both index accumulators identically.
    """
    aggregates: list[AggregateCall] = []
    for expr in output:
        for node in walk(expr):
            if isinstance(node, AggregateCall) and node not in aggregates:
                aggregates.append(node)
    return aggregates


@dataclass
class AggregateExec(PhysicalPlan):
    """Hash aggregation over the group keys.

    Output expressions may mix group keys, aggregates and arithmetic over
    both; aggregates inside each output expression are computed first and
    spliced in as literals before the outer expression evaluates.
    """

    child: PhysicalPlan
    group_keys: list[Expression]
    output: list[Expression]

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.child,)

    def output_names(self) -> set[str]:
        return {e.output_name() for e in self.output}

    def _label(self) -> str:
        keys = ", ".join(e.sql() for e in self.group_keys) or "<global>"
        return f"Aggregate keys=[{keys}]"

    def execute(self, state: ExecState) -> list[dict]:
        rows = self.child.execute(state)
        context = state.context
        aggregates = collect_aggregates(self.output)

        groups: dict[tuple, list[_Accumulator]] = {}
        sample_rows: dict[tuple, dict] = {}
        for row in rows:
            key = tuple(
                _hashable(k.evaluate(row, context)) for k in self.group_keys
            )
            if key not in groups:
                groups[key] = [
                    _Accumulator(a.func, a.distinct) for a in aggregates
                ]
                sample_rows[key] = row
            accumulators = groups[key]
            for agg, acc in zip(aggregates, accumulators):
                if agg.argument is None:
                    acc.count += 1  # count(*) counts rows, NULLs included
                else:
                    acc.add(agg.argument.evaluate(row, context))

        if not groups and not self.group_keys:
            # Global aggregate over zero rows still yields one row.
            groups[()] = [_Accumulator(a.func, a.distinct) for a in aggregates]
            sample_rows[()] = {}

        out: list[dict] = []
        names = [e.output_name() for e in self.output]
        for key, accumulators in groups.items():
            results = {
                agg: acc.result() for agg, acc in zip(aggregates, accumulators)
            }
            representative = sample_rows[key]

            def _splice(node: Expression) -> Expression | None:
                if isinstance(node, AggregateCall):
                    return Literal(results[node])
                return None

            row_out: dict = {}
            for name, expr in zip(names, self.output):
                spliced = transform(expr, _splice)
                row_out[name] = spliced.evaluate(representative, context)
            out.append(row_out)
        return out

    def execute_batch(self, state: ExecState) -> ColumnBatch:
        batch = self.child.execute_batch(state)
        context = state.context
        compiler = state.batch_compiler()
        aggregates = collect_aggregates(self.output)

        # Group keys and aggregate arguments evaluate as whole columns —
        # this is where repeated extractions share parses — then rows
        # stream through the same accumulators as the row path.
        key_columns = [
            compiler.compile(k).evaluate(batch) for k in self.group_keys
        ]
        argument_columns = [
            None
            if agg.argument is None
            else compiler.compile(agg.argument).evaluate(batch)
            for agg in aggregates
        ]

        groups: dict[tuple, list[_Accumulator]] = {}
        sample_index: dict[tuple, int | None] = {}
        for i in range(batch.length):
            key = tuple(_hashable(column[i]) for column in key_columns)
            accumulators = groups.get(key)
            if accumulators is None:
                accumulators = groups[key] = [
                    _Accumulator(a.func, a.distinct) for a in aggregates
                ]
                sample_index[key] = i
            for agg, argument, acc in zip(
                aggregates, argument_columns, accumulators
            ):
                if argument is None:
                    acc.count += 1  # count(*) counts rows, NULLs included
                else:
                    acc.add(argument[i])

        if not groups and not self.group_keys:
            groups[()] = [_Accumulator(a.func, a.distinct) for a in aggregates]
            sample_index[()] = None

        out: list[dict] = []
        names = [e.output_name() for e in self.output]
        for key, accumulators in groups.items():
            results = {
                agg: acc.result() for agg, acc in zip(aggregates, accumulators)
            }
            index = sample_index[key]
            representative = {} if index is None else batch.row(index)

            def _splice(node: Expression) -> Expression | None:
                if isinstance(node, AggregateCall):
                    return Literal(results[node])
                return None

            row_out: dict = {}
            for name, expr in zip(names, self.output):
                spliced = transform(expr, _splice)
                row_out[name] = spliced.evaluate(representative, context)
            out.append(row_out)
        return ColumnBatch.from_rows(
            out, list(dict.fromkeys(names)) if not out else None
        )


def _hashable(value: object) -> object:
    if isinstance(value, (list, dict)):
        from ..jsonlib.jackson import dumps

        return dumps(value)
    return value


@dataclass
class HashJoinExec(PhysicalPlan):
    """Inner equi-join: hash build on the right, probe from the left.

    ``left_keys``/``right_keys`` are the equi-join key expressions; any
    residual (non-equi) conjuncts are evaluated on the merged row.
    """

    left: PhysicalPlan
    right: PhysicalPlan
    left_keys: list[Expression]
    right_keys: list[Expression]
    residual: Expression | None = None

    def children(self) -> tuple[PhysicalPlan, ...]:
        return (self.left, self.right)

    def output_names(self) -> set[str]:
        return self.left.output_names() | self.right.output_names()

    def _label(self) -> str:
        pairs = ", ".join(
            f"{l.sql()}={r.sql()}" for l, r in zip(self.left_keys, self.right_keys)
        )
        residual = f" residual={self.residual.sql()}" if self.residual else ""
        return f"HashJoin [{pairs}]{residual}"

    def execute(self, state: ExecState) -> list[dict]:
        left_rows = self.left.execute(state)
        right_rows = self.right.execute(state)
        context = state.context
        table: dict[tuple, list[dict]] = {}
        for row in right_rows:
            key = tuple(
                _hashable(k.evaluate(row, context)) for k in self.right_keys
            )
            if any(part is None for part in key):
                continue  # NULL keys never join
            table.setdefault(key, []).append(row)
        out: list[dict] = []
        for row in left_rows:
            key = tuple(
                _hashable(k.evaluate(row, context)) for k in self.left_keys
            )
            if any(part is None for part in key):
                continue
            for match in table.get(key, ()):
                merged = {**match, **row}
                if (
                    self.residual is None
                    or self.residual.evaluate(merged, context) is True
                ):
                    out.append(merged)
        return out

    def execute_batch(self, state: ExecState) -> ColumnBatch:
        left_batch = self.left.execute_batch(state)
        right_batch = self.right.execute_batch(state)
        compiler = state.batch_compiler()
        right_columns = [
            compiler.compile(k).evaluate(right_batch) for k in self.right_keys
        ]
        table: dict[tuple, list[int]] = {}
        for i in range(right_batch.length):
            key = tuple(_hashable(column[i]) for column in right_columns)
            if any(part is None for part in key):
                continue  # NULL keys never join
            table.setdefault(key, []).append(i)
        left_columns = [
            compiler.compile(k).evaluate(left_batch) for k in self.left_keys
        ]
        # Probe to index pairs first, then gather whole columns — the
        # joined batch is never materialised as per-row dicts.
        left_index: list[int] = []
        right_index: list[int] = []
        for i in range(left_batch.length):
            key = tuple(_hashable(column[i]) for column in left_columns)
            if any(part is None for part in key):
                continue
            matches = table.get(key)
            if not matches:
                continue
            for j in matches:
                left_index.append(i)
                right_index.append(j)
        left_taken = left_batch.take(left_index)
        right_taken = right_batch.take(right_index)
        # Merged-row semantics of the row path ({**right, **left}):
        # every left column, plus right columns not shadowed by a left name.
        names = list(left_taken.names)
        columns = dict(left_taken.columns)
        for name in right_taken.names:
            if name not in columns:
                names.append(name)
                columns[name] = right_taken.columns[name]
        joined = ColumnBatch(names, columns, len(left_index))
        if self.residual is not None and joined.length:
            values = compiler.compile(self.residual).evaluate(joined)
            keep = [i for i, value in enumerate(values) if value is True]
            if len(keep) != joined.length:
                joined = joined.take(keep)
        return joined
