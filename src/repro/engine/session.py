"""Session: the SparkSQL-like entry point.

A :class:`Session` owns a catalog and compiles SQL text through
parse → logical plan → physical plan → execution, timing each stage into a
:class:`~repro.engine.metrics.QueryMetrics`.

Extension point: *physical plan modifiers*. Maxson registers one
(:class:`repro.core.maxson_parser.MaxsonPlanModifier`) which rewrites the
plan between compilation and execution — exactly where the paper's
MaxsonParser sits relative to SparkSQL. The baseline engine runs with no
modifiers installed.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..jsonlib.jackson import JacksonParser
from ..storage.fs import BlockFileSystem
from .catalog import Catalog
from .expressions import EvalContext
from .metrics import QueryMetrics
from .physical import ExecState, PhysicalPlan
from .planner import PlannedQuery, Planner
from .sqlparser import parse_sql

__all__ = ["QueryResult", "Session"]


@dataclass
class QueryResult:
    """Rows plus the metrics of the execution that produced them."""

    rows: list[dict]
    metrics: QueryMetrics
    plan: PhysicalPlan
    #: Root :class:`repro.obs.trace.Span` when the query ran with a
    #: tracer; None on the (default) untraced path.
    trace: object | None = None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column(self, name: str) -> list[object]:
        """One output column as a list."""
        return [row[name] for row in self.rows]

    def first(self) -> dict | None:
        return self.rows[0] if self.rows else None


@dataclass
class Session:
    """A single-tenant query session over a shared file system + catalog."""

    fs: BlockFileSystem = field(default_factory=BlockFileSystem)
    catalog: Catalog = None  # type: ignore[assignment]
    parser_factory: object = JacksonParser
    projection_parser_factory: object = None
    #: "batch" (vectorized, parse-once sharing — the default) or "row"
    #: (the per-row tree-walking interpreter). Any query can also be
    #: forced down either path per call: ``session.sql(q, execution_mode=...)``.
    execution_mode: str = "batch"

    def __post_init__(self) -> None:
        if self.execution_mode not in ("batch", "row"):
            raise ValueError(
                f"execution_mode must be 'batch' or 'row', "
                f"got {self.execution_mode!r}"
            )
        if self.catalog is None:
            self.catalog = Catalog(self.fs)
        self.planner = Planner(self.catalog)
        self._plan_modifiers: list = []
        self._lock = threading.RLock()
        #: accumulated across queries; reset with `reset_session_metrics`
        self.session_metrics = QueryMetrics()

    # ------------------------------------------------------------------
    # plan modifiers (the Maxson hook)
    # ------------------------------------------------------------------
    def add_plan_modifier(self, modifier) -> None:
        """Register an object with ``modify(planned, state) -> PhysicalPlan``.

        Idempotent: registering an already-installed modifier is a no-op,
        so nested install/remove pairs (e.g. re-entrant ``baseline_sql``)
        cannot double-apply a modifier.
        """
        with self._lock:
            if modifier not in self._plan_modifiers:
                self._plan_modifiers.append(modifier)

    def remove_plan_modifier(self, modifier) -> None:
        """Deregister a modifier. Idempotent: removing a modifier that is
        not installed is a no-op rather than a ``ValueError``."""
        with self._lock:
            if modifier in self._plan_modifiers:
                self._plan_modifiers.remove(modifier)

    # ------------------------------------------------------------------
    def compile(self, sql: str) -> PlannedQuery:
        """Parse and plan without executing."""
        logical = parse_sql(sql)
        return self.planner.plan(logical)

    def explain(self, sql: str) -> str:
        """The physical plan as text, after plan modifiers run."""
        planned, _, _ = self._prepare(sql)
        return planned.physical.describe()

    def _prepare(
        self, sql: str, tracer=None
    ) -> tuple[PlannedQuery, ExecState, float]:
        started = time.perf_counter()
        if tracer is not None:
            with tracer.span("plan"):
                planned = self.compile(sql)
        else:
            planned = self.compile(sql)
        context = EvalContext(parser=self.parser_factory())
        if self.projection_parser_factory is not None:
            context.projection_parser = self.projection_parser_factory()
        state = ExecState(catalog=self.catalog, context=context, tracer=tracer)
        with self._lock:
            modifiers = list(self._plan_modifiers)
        if tracer is not None:
            with tracer.span("rewrite", modifiers=len(modifiers)):
                for modifier in modifiers:
                    planned.physical = modifier.modify(planned, state)
            if tracer.enabled:
                from ..obs.instrument import instrument_plan

                planned.physical = instrument_plan(planned.physical, tracer)
        else:
            for modifier in modifiers:
                planned.physical = modifier.modify(planned, state)
        plan_seconds = time.perf_counter() - started
        return planned, state, plan_seconds

    def sql(
        self,
        sql: str,
        execution_mode: str | None = None,
        tracer=None,
    ) -> QueryResult:
        """Compile and execute one SELECT statement.

        ``execution_mode`` overrides the session default for this query:
        ``"batch"`` runs the vectorized path (operators exchange column
        batches, parses are shared), ``"row"`` forces the per-row
        interpreter. Both produce identical rows — the batch compiler
        falls back to the row interpreter for anything not vectorized.

        ``tracer`` (a :class:`repro.obs.trace.Tracer`) opts this query
        into span recording: the plan is instrumented so every operator
        records wall time and counter deltas, and the result carries the
        root span as ``result.trace``. Without a tracer the query runs
        the exact pre-observability code path.
        """
        mode = execution_mode if execution_mode is not None else self.execution_mode
        if mode not in ("batch", "row"):
            raise ValueError(
                f"execution_mode must be 'batch' or 'row', got {mode!r}"
            )
        query_span = (
            tracer.begin("query", mode=mode) if tracer is not None else None
        )
        planned, state, plan_seconds = self._prepare(sql, tracer=tracer)
        started = time.perf_counter()
        if tracer is None:
            if mode == "batch":
                rows = planned.physical.execute_batch(state).to_rows()
            else:
                rows = planned.physical.execute(state)
        else:
            with tracer.span("execute", mode=mode):
                if mode == "batch":
                    rows = planned.physical.execute_batch(state).to_rows()
                else:
                    rows = planned.physical.execute(state)
        total = time.perf_counter() - started
        metrics = state.metrics
        metrics.plan_seconds = plan_seconds
        metrics.total_seconds = total
        metrics.rows_output = len(rows)
        metrics.shared_parse_hits += state.context.shared_parse_hits()
        parse_stats = state.context.parser.stats
        metrics.parse_seconds += parse_stats.seconds
        metrics.parse_documents += parse_stats.documents
        metrics.parse_bytes += parse_stats.bytes_scanned
        for extra_parser in (
            state.context.projection_parser,
            state.context.xml_parser,
        ):
            if extra_parser is not None and hasattr(extra_parser, "stats"):
                metrics.parse_seconds += extra_parser.stats.seconds
                metrics.parse_documents += extra_parser.stats.documents
                metrics.parse_bytes += extra_parser.stats.bytes_scanned
        with self._lock:
            self.session_metrics.merge(metrics)
        trace_root = None
        if tracer is not None:
            query_span.attributes.update(
                total_seconds=metrics.total_seconds,
                plan_seconds=metrics.plan_seconds,
                read_seconds=metrics.read_seconds,
                parse_seconds=metrics.parse_seconds,
                parse_documents=metrics.parse_documents,
                rows_out=metrics.rows_output,
            )
            tracer.end(query_span)
            trace_root = query_span
        return QueryResult(
            rows=rows,
            metrics=metrics,
            plan=planned.physical,
            trace=trace_root,
        )

    def explain_analyze(
        self, sql: str, execution_mode: str | None = None
    ) -> str:
        """Execute ``sql`` under a fresh tracer and render the annotated
        plan (per-operator wall time, rows, parse counts, cache hits)."""
        from ..obs.explain import render_explain_analyze
        from ..obs.trace import Tracer

        mode = (
            execution_mode if execution_mode is not None else self.execution_mode
        )
        result = self.sql(sql, execution_mode=mode, tracer=Tracer())
        return render_explain_analyze(
            result.trace, result.metrics, mode=mode, sql=sql
        )

    def reset_session_metrics(self) -> None:
        with self._lock:
            self.session_metrics = QueryMetrics()
